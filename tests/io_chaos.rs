//! Integration: the crash-safe artifact plane. Every injected host-I/O
//! fault class must end in one of exactly two states — a byte-identical
//! completed artifact (after retries/recovery) or a typed error — and
//! never a panic or a torn published artifact.

use proptest::prelude::*;
use sgxgauge::core::io::{self as aio, Journal};
use sgxgauge::core::{
    ArtifactError, ArtifactIo, ChaosFs, ExecMode, InputSetting, IoErrorKind, RealFs, RunnerConfig,
    SuiteRunner, SweepError, Workload,
};
use sgxgauge::faults::IoFaultPlan;
use sgxgauge::workloads::HashJoin;
use std::path::{Path, PathBuf};

fn suite() -> SuiteRunner {
    let mut cfg = RunnerConfig::quick_test();
    cfg.repetitions = 2;
    SuiteRunner::new(cfg)
        .modes(&[ExecMode::Native])
        .settings(&[InputSetting::Low, InputSetting::Medium])
        .threads(1)
}

fn scratch(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "sgxgauge-iochaos-{}-{name}.json",
        std::process::id()
    ));
    p
}

fn cleanup(path: &Path) {
    for p in [
        path.to_path_buf(),
        aio::tmp_sibling(path),
        aio::corrupt_sibling(path),
        Journal::for_artifact(path).path().to_path_buf(),
    ] {
        let _ = std::fs::remove_file(p);
    }
}

/// Runs the reference sweep through the real backend and returns its
/// fingerprint plus the sealed checkpoint bytes.
fn baseline(name: &str) -> (u64, String) {
    let wl = HashJoin::scaled(1024);
    let refs: Vec<&dyn Workload> = vec![&wl];
    let path = scratch(name);
    cleanup(&path);
    let sweep = suite()
        .run_with_checkpoint_io(&refs, &path, false, &RealFs)
        .expect("fault-free run");
    let bytes = std::fs::read_to_string(&path).expect("checkpoint written");
    cleanup(&path);
    (sweep.fingerprint(), bytes)
}

/// The chaos matrix: for every fault class the sweep either completes
/// with a byte-identical, integrity-sealed checkpoint, or surfaces a
/// typed artifact error — and the published file is never torn.
#[test]
fn chaos_matrix_completes_identically_or_fails_typed() {
    let (base_fp, base_bytes) = baseline("matrix-base");
    let wl = HashJoin::scaled(1024);
    let refs: Vec<&dyn Workload> = vec![&wl];
    let specs = [
        "seed=11,enospc=200",
        "seed=7,eio=300",
        "seed=5,torn=300",
        "seed=3,enospc=80,eio=120,torn=120",
    ];
    for (i, spec) in specs.iter().enumerate() {
        let path = scratch(&format!("matrix-{i}"));
        cleanup(&path);
        let plan = IoFaultPlan::parse(spec).expect("valid spec");
        let chaos = ChaosFs::over_real(plan);
        match suite().run_with_checkpoint_io(&refs, &path, false, &chaos) {
            Ok(sweep) => {
                assert_eq!(sweep.fingerprint(), base_fp, "{spec}: survived faults");
                let bytes = std::fs::read_to_string(&path).expect("published");
                assert_eq!(bytes, base_bytes, "{spec}: byte-identical artifact");
            }
            Err(SweepError::Artifact(e)) => {
                let typed = matches!(
                    &e,
                    ArtifactError::Io {
                        kind: IoErrorKind::NoSpace | IoErrorKind::Transient | IoErrorKind::Torn,
                        ..
                    }
                );
                assert!(typed, "{spec}: untyped failure {e:?}");
                // Whatever was published before the failure must still
                // unseal cleanly: torn data never reaches the artifact.
                if path.exists() {
                    let text = std::fs::read_to_string(&path).expect("readable");
                    let (crc, _) = aio::unseal(&path, &text).expect("published prefix is sealed");
                    assert!(crc.is_some(), "{spec}: checkpoint carries its footer");
                }
            }
            Err(other) => panic!("{spec}: unexpected error class: {other}"),
        }
        cleanup(&path);
    }
}

/// A chaos backend with an all-zero fault plan is indistinguishable from
/// the real filesystem, byte for byte.
#[test]
fn fault_free_chaos_backend_matches_real_fs_exactly() {
    let (base_fp, base_bytes) = baseline("noop-base");
    let wl = HashJoin::scaled(1024);
    let refs: Vec<&dyn Workload> = vec![&wl];
    let path = scratch("noop-chaos");
    cleanup(&path);
    let chaos = ChaosFs::over_real(IoFaultPlan::parse("seed=9").expect("valid"));
    let sweep = suite()
        .run_with_checkpoint_io(&refs, &path, false, &chaos)
        .expect("no faults configured");
    assert_eq!(sweep.fingerprint(), base_fp);
    assert_eq!(
        std::fs::read_to_string(&path).expect("published"),
        base_bytes
    );
    cleanup(&path);
}

/// Crash at the n-th rename, then resume on the real filesystem: the
/// recovery journal completes the interrupted publish and the resumed
/// sweep converges on the uninterrupted bytes.
#[test]
fn crash_at_rename_recovers_and_resumes_to_identical_bytes() {
    let (base_fp, base_bytes) = baseline("crash-base");
    let wl = HashJoin::scaled(1024);
    let refs: Vec<&dyn Workload> = vec![&wl];
    let path = scratch("crash-run");
    cleanup(&path);
    let chaos = ChaosFs::over_real(IoFaultPlan::parse("seed=2,crash_rename=3").expect("valid"));
    let err = suite()
        .run_with_checkpoint_io(&refs, &path, false, &chaos)
        .expect_err("the backend dies at the third rename");
    assert!(chaos.crashed());
    match err {
        SweepError::Artifact(ArtifactError::Io { kind, .. }) => {
            assert_eq!(kind, IoErrorKind::CrashRename)
        }
        other => panic!("unexpected error class: {other}"),
    }
    // The crash left a verified temp file and an intent journal behind.
    let report = aio::recover(&RealFs, &path).expect("recovery scan");
    assert_eq!(report.repaired, vec![path.clone()], "publish completed");
    assert!(report.quarantined.is_empty());
    // Resume on the healthy backend: same fingerprint, same bytes.
    let resumed = suite()
        .run_with_checkpoint_io(&refs, &path, true, &RealFs)
        .expect("resumed run");
    assert_eq!(resumed.fingerprint(), base_fp);
    assert_eq!(
        std::fs::read_to_string(&path).expect("rewritten"),
        base_bytes
    );
    cleanup(&path);
}

/// A checkpoint whose body no longer matches its CRC32 footer is refused
/// with a typed error and preserved as `<path>.corrupt` for inspection.
#[test]
fn corrupt_checkpoint_is_refused_and_preserved() {
    let (_, base_bytes) = baseline("corrupt-base");
    let wl = HashJoin::scaled(1024);
    let refs: Vec<&dyn Workload> = vec![&wl];
    let path = scratch("corrupt-run");
    cleanup(&path);
    std::fs::write(&path, base_bytes.replacen("\"index\":0", "\"index\":7", 1))
        .expect("seed tampered checkpoint");
    let err = suite()
        .run_with_checkpoint_io(&refs, &path, true, &RealFs)
        .expect_err("checksum mismatch must refuse the resume");
    match err {
        SweepError::Artifact(ArtifactError::Corrupt {
            expected, found, ..
        }) => assert_ne!(expected, found),
        other => panic!("unexpected error class: {other}"),
    }
    assert!(!path.exists(), "corrupt file is moved aside");
    assert!(
        aio::corrupt_sibling(&path).exists(),
        "tampered bytes are preserved for inspection"
    );
    cleanup(&path);
}

/// Pre-footer (v2) checkpoints without an integrity line still load, so
/// old sweeps stay resumable across the upgrade.
#[test]
fn legacy_checkpoint_without_footer_still_resumes() {
    let (base_fp, base_bytes) = baseline("legacy-base");
    let wl = HashJoin::scaled(1024);
    let refs: Vec<&dyn Workload> = vec![&wl];
    let path = scratch("legacy-run");
    cleanup(&path);
    let body: String = base_bytes
        .lines()
        .filter(|l| !l.starts_with(aio::INTEGRITY_PREFIX))
        .map(|l| format!("{l}\n"))
        .collect();
    std::fs::write(&path, body).expect("seed legacy checkpoint");
    let resumed = suite()
        .run_with_checkpoint_io(&refs, &path, true, &RealFs)
        .expect("legacy file loads");
    assert_eq!(resumed.fingerprint(), base_fp);
    cleanup(&path);
}

/// Journal replay, interrupted before the rename: a temp file whose
/// contents match the journaled intent CRC is completed; one that does
/// not is quarantined instead of published.
#[test]
fn journal_replay_completes_verified_and_quarantines_torn_temps() {
    // Verified temp → repaired.
    let good = scratch("journal-good");
    cleanup(&good);
    let journal = Journal::for_artifact(&good);
    let contents = "line one\nline two\n";
    journal
        .intent(&RealFs, &good, aio::crc32(contents.as_bytes()))
        .expect("intent");
    RealFs
        .write(&aio::tmp_sibling(&good), contents)
        .expect("temp lands");
    let report = aio::recover(&RealFs, &good).expect("scan");
    assert_eq!(report.repaired, vec![good.clone()]);
    assert_eq!(std::fs::read_to_string(&good).expect("published"), contents);
    cleanup(&good);

    // Torn temp (CRC mismatch) → quarantined, never published.
    let torn = scratch("journal-torn");
    cleanup(&torn);
    let journal = Journal::for_artifact(&torn);
    journal
        .intent(&RealFs, &torn, aio::crc32(contents.as_bytes()))
        .expect("intent");
    RealFs
        .write(&aio::tmp_sibling(&torn), "line on")
        .expect("torn temp lands");
    let report = aio::recover(&RealFs, &torn).expect("scan");
    assert!(report.repaired.is_empty());
    assert_eq!(report.quarantined.len(), 1);
    assert!(!torn.exists(), "torn data must not be published");
    let _ = std::fs::remove_file(&report.quarantined[0]);
    cleanup(&torn);
}

/// The IEEE CRC32 check values the footer format is defined against.
#[test]
fn crc32_known_vectors() {
    assert_eq!(aio::crc32(b""), 0);
    assert_eq!(aio::crc32(b"123456789"), 0xCBF4_3926);
    assert_eq!(
        aio::crc32(b"The quick brown fox jumps over the lazy dog"),
        0x414F_A339
    );
}

proptest! {
    /// Streaming CRC32 over any split equals the one-shot digest.
    #[test]
    fn crc32_append_equals_oneshot(data in prop::collection::vec(any::<u8>(), 0..2048),
                                   cut in 0usize..2048) {
        let cut = cut.min(data.len());
        let streamed = aio::crc32_append(aio::crc32(&data[..cut]), &data[cut..]);
        prop_assert_eq!(streamed, aio::crc32(&data));
    }

    /// seal/unseal round-trips any printable body, and unseal verifies
    /// the footer it finds.
    #[test]
    fn seal_unseal_roundtrip(raw in prop::collection::vec(any::<u8>(), 0..512)) {
        let body: String = raw.iter().map(|b| char::from(32 + b % 95)).collect();
        let sealed = aio::seal(&body);
        let (crc, unsealed) =
            aio::unseal(Path::new("prop.json"), &sealed).expect("own footer verifies");
        prop_assert!(crc.is_some());
        let mut expected = body.clone();
        if !expected.ends_with('\n') {
            expected.push('\n');
        }
        prop_assert_eq!(unsealed, expected);
    }

    /// Any body byte change under an intact footer is caught as
    /// `Corrupt`. (Destroying the footer itself demotes the file to a
    /// legacy unsealed artifact by design, so only body flips apply.)
    #[test]
    fn seal_detects_any_body_byte_change(raw in prop::collection::vec(any::<u8>(), 1..256),
                                         idx_seed in any::<u64>(), bit in 0usize..7) {
        // Printable ASCII body: one byte per char, so `idx` indexes the
        // body region of the sealed document directly.
        let body: String = raw.iter().map(|b| char::from(32 + b % 95)).collect();
        let sealed = aio::seal(&body);
        let mut bytes = sealed.clone().into_bytes();
        let idx = (idx_seed as usize) % body.len();
        let flipped = bytes[idx] ^ (1 << bit);
        // Keep the flip printable so it is a content change, not UTF-8
        // or line-structure breakage.
        bytes[idx] = if flipped.is_ascii_graphic() { flipped } else { b'~' };
        let text = String::from_utf8(bytes).expect("still ascii");
        if text != sealed {
            let err = aio::unseal(Path::new("prop.json"), &text).expect_err("flip caught");
            let corrupt = matches!(err, ArtifactError::Corrupt { .. });
            prop_assert!(corrupt);
        }
    }

    /// Journal replay is idempotent at *every* crash point: publish a
    /// sequence of versions through a backend that dies at rename `k`,
    /// then recover twice before the journal is retired. The crashed
    /// publish is completed exactly once (the artifact equals the
    /// version whose rename was interrupted, with a valid integrity
    /// footer), the second replay is a clean no-op, and no temp sibling
    /// survives to be double-published or lost.
    #[test]
    fn journal_replay_is_idempotent_at_every_crash_point(k in 1u64..5, seed in any::<u64>()) {
        let path = scratch("prop-replay");
        cleanup(&path);
        let versions: Vec<String> = (0..4u64)
            .map(|i| format!("{{\"version\":{i},\"seed\":{seed}}}\n"))
            .collect();
        // Each publish performs exactly one rename, so `crash_rename=k`
        // dies mid-publish of version k-1 (0-based), after its verified
        // temp and journal intent landed but before the rename.
        let chaos = ChaosFs::over_real(
            IoFaultPlan::parse(&format!("crash_rename={k}")).expect("valid plan"),
        );
        let journal = Journal::for_artifact(&path);
        let mut crashed_at = None;
        for (i, version) in versions.iter().enumerate() {
            match aio::publish_sealed(&chaos, &journal, &path, version, 1) {
                Ok(()) => {}
                Err(ArtifactError::Io { kind: IoErrorKind::CrashRename, .. }) => {
                    crashed_at = Some(i);
                    break;
                }
                Err(other) => return Err(TestCaseError::Fail(format!("unexpected: {other}"))),
            }
        }
        let crashed_at = crashed_at.expect("k <= version count, so the crash fires");
        prop_assert_eq!(crashed_at as u64, k - 1);

        let first = aio::recover(&RealFs, &path).expect("first replay");
        prop_assert_eq!(first.interrupted, 1);
        prop_assert_eq!(first.repaired.clone(), vec![path.clone()]);
        prop_assert!(first.quarantined.is_empty());
        let after_first = std::fs::read_to_string(&path).expect("artifact exists");

        // Idempotency: a second replay before anything retires the
        // journal must find nothing to do and change nothing.
        let second = aio::recover(&RealFs, &path).expect("second replay");
        prop_assert!(second.is_clean(), "second replay must be a no-op: {:?}", second);
        let after_second = std::fs::read_to_string(&path).expect("still exists");
        prop_assert_eq!(&after_first, &after_second);

        // Exactly the interrupted version, published whole and sealed.
        let (crc, body) = aio::unseal(&path, &after_second).expect("footer verifies");
        prop_assert!(crc.is_some());
        prop_assert_eq!(body, versions[crashed_at].as_str());
        prop_assert!(
            !aio::tmp_sibling(&path).exists(),
            "no temp sibling may survive replay"
        );
        cleanup(&path);
    }
}
