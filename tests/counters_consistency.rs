//! Integration: cross-layer counter-consistency invariants that must
//! hold for any full workload run — the kind of accounting bugs that
//! would silently corrupt every figure.

use sgxgauge::core::{ExecMode, InputSetting, Runner, RunnerConfig};
use sgxgauge::workloads::suite_scaled;

/// Every fault is either a fresh allocation or a load-back, every AEX in
/// these single-process runs comes from an EPC fault, and load-backs
/// can never exceed evictions.
#[test]
fn epc_accounting_balances_for_every_workload() {
    let runner = Runner::new(RunnerConfig::quick_test());
    for wl in suite_scaled(512) {
        for mode in [ExecMode::Native, ExecMode::LibOs] {
            if !wl.supports(mode) {
                continue;
            }
            let r = runner
                .run_once(wl.as_ref(), mode, InputSetting::High)
                .expect("run");
            let c = &r.sgx;
            assert_eq!(
                c.epc_faults,
                c.epc_allocs + c.epc_loadbacks,
                "{} {mode}: faults != allocs + loadbacks",
                wl.name()
            );
            assert!(
                c.epc_loadbacks <= c.epc_evictions,
                "{} {mode}: loadbacks {} > evictions {}",
                wl.name(),
                c.epc_loadbacks,
                c.epc_evictions
            );
            assert_eq!(
                c.aex_exits,
                c.epc_faults,
                "{} {mode}: AEX != faults",
                wl.name()
            );
        }
    }
}

/// TLB flushes must account for every transition: at least two per
/// classic OCALL, one per ECALL and one per AEX.
#[test]
fn tlb_flushes_cover_transitions() {
    let runner = Runner::new(RunnerConfig::quick_test());
    for wl in suite_scaled(512) {
        for mode in [ExecMode::Native, ExecMode::LibOs] {
            if !wl.supports(mode) {
                continue;
            }
            let r = runner
                .run_once(wl.as_ref(), mode, InputSetting::Low)
                .expect("run");
            let min_flushes = r.sgx.ecalls + 2 * r.sgx.ocalls + r.sgx.aex_exits;
            assert!(
                r.counters.tlb_flushes >= min_flushes,
                "{} {mode}: {} flushes < {} transitions",
                wl.name(),
                r.counters.tlb_flushes,
                min_flushes
            );
        }
    }
}

/// The cycle breakdown categories never exceed total thread-cycle mass:
/// compute + stalls + walks + transitions + faults <= sum over threads
/// of elapsed cycles (which is >= the reported wall-clock).
#[test]
fn breakdown_bounded_by_clock_mass() {
    use sgxgauge::core::report::cycle_breakdown;
    let runner = Runner::new(RunnerConfig::quick_test());
    for wl in suite_scaled(512) {
        let r = runner
            .run_once(wl.as_ref(), ExecMode::LibOs, InputSetting::Low)
            .expect("run");
        let accounted: u64 = cycle_breakdown(&r).iter().map(|(_, v)| v).sum();
        // Single-digit thread counts: total mass <= threads * wall-clock.
        let bound = r.runtime_cycles * 64;
        assert!(
            accounted <= bound,
            "{}: accounted {accounted} > bound {bound}",
            wl.name()
        );
        assert!(accounted > 0, "{}: empty breakdown", wl.name());
    }
}

/// In Vanilla mode no SGX counter may ever tick.
#[test]
fn vanilla_never_touches_sgx() {
    let runner = Runner::new(RunnerConfig::quick_test());
    for wl in suite_scaled(512) {
        let r = runner
            .run_once(wl.as_ref(), ExecMode::Vanilla, InputSetting::High)
            .expect("run");
        for (name, v) in r.sgx.fields() {
            assert_eq!(v, 0, "{}: vanilla run ticked sgx counter {name}", wl.name());
        }
    }
}
