//! Integration: the unified simulation-time tracing plane.
//!
//! Traces are keyed on *simulated* thread clocks and collected in
//! per-cell private sinks, so they must be byte-identical across runs
//! and across sweep parallelism; EPC-fault events must reproduce the
//! paper's boundary cliff (they only appear once residency reaches the
//! watermark); phase-span misuse must surface as a typed, deterministic
//! workload error; and the typed grid key must round-trip through its
//! display form.

use sgxgauge::core::{
    CellKey, Env, ExecMode, InputSetting, Runner, RunnerConfig, SuiteRunner, TraceConfig, Workload,
    WorkloadError, WorkloadOutput, WorkloadSpec,
};
use sgxgauge::workloads::suite_scaled;
use trace::{TraceError, TraceEvent};

fn quick_traced_runner() -> Runner {
    Runner::new(RunnerConfig::quick_test()).tracing(TraceConfig::default())
}

fn find(scale: u64, name: &str) -> Box<dyn Workload> {
    suite_scaled(scale)
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(name))
        .expect("workload in suite")
}

/// Renders the JSONL trace of every cell of one sweep, concatenated in
/// grid order.
fn sweep_jsonl(jobs: usize) -> String {
    let workloads = suite_scaled(2048);
    let refs: Vec<&dyn Workload> = workloads.iter().map(|w| w.as_ref()).collect();
    let sweep = SuiteRunner::new(RunnerConfig::quick_test())
        .modes(&[ExecMode::Vanilla, ExecMode::Native])
        .settings(&[InputSetting::Low])
        .threads(jobs)
        .tracing(TraceConfig::default())
        .run(&refs);
    let mut out = String::new();
    for cell in &sweep.cells {
        let Ok(r) = &cell.result else { continue };
        out.push_str(&format!("# {}\n", cell.cell));
        out.push_str(&r.trace.as_ref().expect("traced cell").render_jsonl());
    }
    assert!(!out.is_empty(), "sweep produced no traces");
    out
}

/// The whole-suite trace stream is byte-identical run to run and under
/// `--jobs 1` vs `--jobs 8`: per-cell sinks keyed on simulated clocks
/// leave host scheduling nothing to perturb.
#[test]
fn trace_stream_is_byte_identical_across_runs_and_jobs() {
    let sequential = sweep_jsonl(1);
    assert_eq!(sequential, sweep_jsonl(1), "run-to-run drift");
    assert_eq!(sequential, sweep_jsonl(8), "parallelism drift");
}

/// Tracing observes the simulation without perturbing it: cycle counts
/// and outputs match an untraced run exactly.
#[test]
fn tracing_charges_zero_simulated_cycles() {
    let wl = find(2048, "btree");
    let untraced = Runner::new(RunnerConfig::quick_test())
        .run_once(wl.as_ref(), ExecMode::Native, InputSetting::Low)
        .expect("untraced run");
    let traced = quick_traced_runner()
        .run_once(wl.as_ref(), ExecMode::Native, InputSetting::Low)
        .expect("traced run");
    assert_eq!(untraced.runtime_cycles, traced.runtime_cycles);
    assert_eq!(untraced.output.checksum, traced.output.checksum);
    assert_eq!(untraced.sgx.epc_faults, traced.sgx.epc_faults);
    assert!(untraced.trace.is_none() && traced.trace.is_some());
}

/// The paper's EPC boundary cliff, event-resolved: below the watermark
/// (Low fits in the quick-test EPC) no `epc_fault` events exist at all;
/// past it (High overflows) they appear, and every one fires with
/// residency pinned to the watermark band (full EPC minus at most one
/// eviction batch).
#[test]
fn epc_fault_events_appear_only_past_the_watermark() {
    // Scale 24 straddles the quick-test EPC (1024 pages = 4 MiB): the
    // Low arena fits, the High arena overflows.
    let wl = find(24, "btree");
    let faults_of = |setting| {
        let r = quick_traced_runner()
            .run_once(wl.as_ref(), ExecMode::Native, setting)
            .expect("run");
        let sink = r.trace.expect("traced");
        sink.records()
            .filter_map(|rec| match rec.event {
                TraceEvent::EpcFault { resident_pages, .. } => Some(resident_pages),
                _ => None,
            })
            .collect::<Vec<u64>>()
    };
    let low = faults_of(InputSetting::Low);
    assert!(
        low.is_empty(),
        "Low fits in EPC yet recorded {} paging-fault events",
        low.len()
    );
    let high = faults_of(InputSetting::High);
    assert!(
        !high.is_empty(),
        "High overflows EPC yet recorded no faults"
    );
    // with_tiny_epc(1024, 16): faults only fire with the EPC full, so
    // residency at fault time stays within one 16-page EWB batch of the
    // peak.
    let peak = *high.iter().max().unwrap();
    let floor = peak.saturating_sub(16);
    assert!(
        high.iter().all(|&r| r >= floor),
        "fault below the watermark band: min {} < {floor}",
        high.iter().min().unwrap()
    );
}

/// A workload that misuses the phase-span API.
struct BadPhases {
    /// Close a span that was never opened (vs leaving one open).
    mismatch: bool,
}

impl Workload for BadPhases {
    fn name(&self) -> &'static str {
        "BadPhases"
    }

    fn property(&self) -> &'static str {
        "test"
    }

    fn supported_modes(&self) -> &'static [ExecMode] {
        &[ExecMode::Vanilla, ExecMode::Native]
    }

    fn spec(&self, _: InputSetting) -> WorkloadSpec {
        WorkloadSpec::new(1 << 16, "bad-phases")
    }

    fn setup(&self, _: &mut Env, _: InputSetting) -> Result<(), WorkloadError> {
        Ok(())
    }

    fn execute(&self, env: &mut Env, _: InputSetting) -> Result<WorkloadOutput, WorkloadError> {
        env.compute(100);
        if self.mismatch {
            env.phase("build");
            env.phase_end("probe")?; // typed error propagates via `?`
        } else {
            env.phase("build"); // never closed — caught at run teardown
        }
        Ok(WorkloadOutput::default())
    }
}

/// Phase-span misuse is a typed, deterministic (fatal, non-retryable)
/// error — and only when tracing is on; untraced, the spans are no-ops.
#[test]
fn phase_misuse_is_a_typed_fatal_error() {
    let mismatch = quick_traced_runner()
        .run_once(
            &BadPhases { mismatch: true },
            ExecMode::Native,
            InputSetting::Low,
        )
        .expect_err("mismatched spans must fail");
    assert_eq!(
        mismatch,
        WorkloadError::Trace(TraceError::PhaseMismatch {
            expected: "build".into(),
            found: "probe".into(),
        })
    );
    let unclosed = quick_traced_runner()
        .run_once(
            &BadPhases { mismatch: false },
            ExecMode::Native,
            InputSetting::Low,
        )
        .expect_err("unclosed span must fail");
    assert!(
        matches!(unclosed, WorkloadError::Trace(_)),
        "unexpected error {unclosed:?}"
    );
    assert_eq!(unclosed.class(), sgxgauge::core::ErrorClass::Fatal);
    // Untraced, the same workload runs clean: spans cost nothing and
    // cannot fail when no sink is installed.
    for mismatch in [true, false] {
        Runner::new(RunnerConfig::quick_test())
            .run_once(&BadPhases { mismatch }, ExecMode::Native, InputSetting::Low)
            .expect("untraced spans are no-ops");
    }
}

/// The typed grid key round-trips through its display form and rejects
/// malformed strings.
#[test]
fn cell_key_display_round_trips() {
    let key = CellKey {
        workload: 3,
        mode: ExecMode::LibOs,
        setting: InputSetting::High,
        rep: 2,
        tenant: None,
        party: None,
    };
    assert_eq!(key.to_string(), "3/LibOS/High/2");
    assert_eq!(key.to_string().parse::<CellKey>(), Ok(key));
    assert_eq!("3/libos/high/2".parse::<CellKey>(), Ok(key));
    // The optional fifth field carries the co-tenancy dimension; keys
    // without it stay byte-identical to the legacy 4-field form.
    let cotenant = CellKey {
        tenant: Some(sgxgauge::core::TenantDim {
            tenants: 3,
            antagonists: 2,
        }),
        ..key
    };
    assert_eq!(cotenant.to_string(), "3/LibOS/High/2/t3a2");
    assert_eq!(cotenant.to_string().parse::<CellKey>(), Ok(cotenant));
    // The optional party dimension appends after the tenant field (or
    // stands alone); prefix dispatch keeps both grammars unambiguous.
    let party = sgxgauge::core::PartyDim {
        parties: 5,
        threshold: 3,
    };
    let mpc = CellKey {
        party: Some(party),
        ..key
    };
    assert_eq!(mpc.to_string(), "3/LibOS/High/2/p5q3");
    assert_eq!(mpc.to_string().parse::<CellKey>(), Ok(mpc));
    let both = CellKey {
        party: Some(party),
        ..cotenant
    };
    assert_eq!(both.to_string(), "3/LibOS/High/2/t3a2/p5q3");
    assert_eq!(both.to_string().parse::<CellKey>(), Ok(both));
    for bad in [
        "",
        "1/libos/high",
        "1/libos/high/2/9",
        "x/libos/high/2",
        "1/warp/high/0",
        "1/libos/high/2/t3",
        "1/libos/high/2/a2",
        "1/libos/high/2/t3a",
        "1/libos/high/2/t3a2/junk",
        "1/libos/high/2/p5",
        "1/libos/high/2/p5q",
        "1/libos/high/2/p5q3/t3a2",
        "1/libos/high/2/p5q3/p5q3",
        "1/libos/high/2/t3a2/p5q3/junk",
    ] {
        assert!(bad.parse::<CellKey>().is_err(), "accepted `{bad}`");
    }
}
