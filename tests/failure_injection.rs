//! Integration: failure injection — the security machinery must *fail
//! closed* when data is tampered with, and the harness must surface
//! usable errors rather than corrupt results.

use sgxgauge::core::env::Placement;
use sgxgauge::core::{Env, EnvConfig, ExecMode, InputSetting, Runner, RunnerConfig, WorkloadError};
use sgxgauge::crypto::{SealedBlob, SealingKey};
use sgxgauge::workloads::{Iozone, Memcached};

/// Tampering with a protected file on the host side must be detected at
/// read time (the PF MAC), not silently decrypted to garbage.
#[test]
fn pf_tamper_detected_at_read() {
    let mut env =
        Env::new(EnvConfig::quick_test(ExecMode::LibOs).with_protected_files()).expect("env");
    env.start_app().expect("start");
    env.write_file("secret.db", b"records that must not be forged")
        .expect("write");

    // Host-side attacker flips one ciphertext bit.
    let mut raw = env.file_raw("secret.db").expect("raw").to_vec();
    let idx = raw.len() / 2;
    raw[idx] ^= 0x01;
    env.put_file("secret.db", raw);
    // (put_file stores host bytes verbatim; mark it sealed again by
    // writing through a fresh name and swapping is not needed — the PF
    // reader detects the damage either way.)

    match env.read_file("secret.db") {
        Err(WorkloadError::Validation(msg)) => {
            assert!(msg.contains("PF"), "unexpected message: {msg}");
        }
        Ok(_) => {
            // put_file cleared the sealed flag, so the file is treated as
            // a plaintext trusted file; re-seal and tamper in place to
            // force the MAC path.
            let mut env2 = Env::new(EnvConfig::quick_test(ExecMode::LibOs).with_protected_files())
                .expect("env");
            env2.start_app().expect("start");
            env2.write_file("s", b"payload").expect("write");
            // Direct blob surgery through the crypto API:
            let raw = env2.file_raw("s").expect("raw").to_vec();
            let len = u32::from_le_bytes(raw[0..4].try_into().expect("4")) as usize;
            let mut blob = SealedBlob::from_bytes(&raw[4..4 + len]).expect("blob");
            blob.ciphertext[0] ^= 1;
            let key = SealingKey::derive(b"sgxgauge-platform", b"graphene-pf");
            assert!(key.unseal(&blob).is_err(), "tampered blob must not unseal");
        }
        Err(other) => panic!("unexpected error: {other}"),
    }
}

/// Asking for an unsupported mode is an error, not a silent fallback.
#[test]
fn unsupported_mode_is_an_error() {
    let runner = Runner::new(RunnerConfig::quick_test());
    let err = runner
        .run_once(
            &Memcached::scaled(2048),
            ExecMode::Native,
            InputSetting::Low,
        )
        .expect_err("memcached has no native port");
    assert!(err.to_string().contains("does not support"));
}

/// Missing input files surface as `FileNotFound` from the measured
/// region, with the file name in the message.
#[test]
fn missing_file_is_reported() {
    let mut env = Env::new(EnvConfig::quick_test(ExecMode::Vanilla)).expect("env");
    env.start_app().expect("start");
    let err = env.read_file("does-not-exist.bin").expect_err("must fail");
    assert!(matches!(err, WorkloadError::FileNotFound(ref n) if n == "does-not-exist.bin"));
}

/// Enclave heap exhaustion is reported as such (the SGX v1 sizing trap).
#[test]
fn enclave_heap_exhaustion_reported() {
    let mut cfg = EnvConfig::quick_test(ExecMode::Native);
    cfg.protected_hint = 1 << 20; // tiny enclave
    let mut env = Env::new(cfg).expect("env");
    env.start_app().expect("start");
    // Ask for far more than the ELRANGE can hold.
    let err = env
        .alloc(1 << 30, Placement::Protected)
        .expect_err("must fail");
    assert!(err.to_string().contains("heap exhausted"), "got: {err}");
}

/// A PF round trip through a *full workload* stays correct even when an
/// unrelated file is corrupted (fault isolation).
#[test]
fn pf_corruption_does_not_leak_across_files() {
    let wl = Iozone::scaled(512);
    let mut cfg = RunnerConfig::quick_test();
    cfg.env = cfg.env.with_protected_files();
    let runner = Runner::new(cfg);
    let a = runner
        .run_once(&wl, ExecMode::LibOs, InputSetting::Low)
        .expect("first");
    let b = runner
        .run_once(&wl, ExecMode::LibOs, InputSetting::Low)
        .expect("second");
    assert_eq!(a.output.checksum, b.output.checksum);
}
