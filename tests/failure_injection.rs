//! Integration: failure injection — the security machinery must *fail
//! closed* when data is tampered with, and the harness must surface
//! usable errors rather than corrupt results.

use sgxgauge::core::env::Placement;
use sgxgauge::core::{
    CellErrorKind, Env, EnvConfig, ExecMode, InputSetting, Runner, RunnerConfig, SuiteRunner,
    Workload, WorkloadError,
};
use sgxgauge::crypto::{SealedBlob, SealingKey};
use sgxgauge::faults::FaultPlan;
use sgxgauge::workloads::{Blockchain, HashJoin, Iozone, Memcached};
use std::path::PathBuf;

/// Tampering with a protected file on the host side must be detected at
/// read time (the PF MAC), not silently decrypted to garbage.
#[test]
fn pf_tamper_detected_at_read() {
    let mut env =
        Env::new(EnvConfig::quick_test(ExecMode::LibOs).with_protected_files()).expect("env");
    env.start_app().expect("start");
    env.write_file("secret.db", b"records that must not be forged")
        .expect("write");

    // Host-side attacker flips one ciphertext bit.
    let mut raw = env.file_raw("secret.db").expect("raw").to_vec();
    let idx = raw.len() / 2;
    raw[idx] ^= 0x01;
    env.put_file("secret.db", raw);
    // (put_file stores host bytes verbatim; mark it sealed again by
    // writing through a fresh name and swapping is not needed — the PF
    // reader detects the damage either way.)

    match env.read_file("secret.db") {
        Err(WorkloadError::Validation(msg)) => {
            assert!(msg.contains("PF"), "unexpected message: {msg}");
        }
        Ok(_) => {
            // put_file cleared the sealed flag, so the file is treated as
            // a plaintext trusted file; re-seal and tamper in place to
            // force the MAC path.
            let mut env2 = Env::new(EnvConfig::quick_test(ExecMode::LibOs).with_protected_files())
                .expect("env");
            env2.start_app().expect("start");
            env2.write_file("s", b"payload").expect("write");
            // Direct blob surgery through the crypto API:
            let raw = env2.file_raw("s").expect("raw").to_vec();
            let len = u32::from_le_bytes(raw[0..4].try_into().expect("4")) as usize;
            let mut blob = SealedBlob::from_bytes(&raw[4..4 + len]).expect("blob");
            blob.ciphertext[0] ^= 1;
            let key = SealingKey::derive(b"sgxgauge-platform", b"graphene-pf");
            assert!(key.unseal(&blob).is_err(), "tampered blob must not unseal");
        }
        Err(other) => panic!("unexpected error: {other}"),
    }
}

/// Asking for an unsupported mode is an error, not a silent fallback.
#[test]
fn unsupported_mode_is_an_error() {
    let runner = Runner::new(RunnerConfig::quick_test());
    let err = runner
        .run_once(
            &Memcached::scaled(2048),
            ExecMode::Native,
            InputSetting::Low,
        )
        .expect_err("memcached has no native port");
    assert!(err.to_string().contains("does not support"));
}

/// Missing input files surface as `FileNotFound` from the measured
/// region, with the file name in the message.
#[test]
fn missing_file_is_reported() {
    let mut env = Env::new(EnvConfig::quick_test(ExecMode::Vanilla)).expect("env");
    env.start_app().expect("start");
    let err = env.read_file("does-not-exist.bin").expect_err("must fail");
    assert!(matches!(err, WorkloadError::FileNotFound(ref n) if n == "does-not-exist.bin"));
}

/// Enclave heap exhaustion is reported as such (the SGX v1 sizing trap).
#[test]
fn enclave_heap_exhaustion_reported() {
    let mut cfg = EnvConfig::quick_test(ExecMode::Native);
    cfg.protected_hint = 1 << 20; // tiny enclave
    let mut env = Env::new(cfg).expect("env");
    env.start_app().expect("start");
    // Ask for far more than the ELRANGE can hold.
    let err = env
        .alloc(1 << 30, Placement::Protected)
        .expect_err("must fail");
    assert!(err.to_string().contains("heap exhausted"), "got: {err}");
}

/// A PF round trip through a *full workload* stays correct even when an
/// unrelated file is corrupted (fault isolation).
#[test]
fn pf_corruption_does_not_leak_across_files() {
    let wl = Iozone::scaled(512);
    let mut cfg = RunnerConfig::quick_test();
    cfg.env = cfg.env.with_protected_files();
    let runner = Runner::new(cfg);
    let a = runner
        .run_once(&wl, ExecMode::LibOs, InputSetting::Low)
        .expect("first");
    let b = runner
        .run_once(&wl, ExecMode::LibOs, InputSetting::Low)
        .expect("second");
    assert_eq!(a.output.checksum, b.output.checksum);
}

fn faulted_suite(plan: &str) -> SuiteRunner {
    let mut cfg = RunnerConfig::quick_test();
    cfg.repetitions = 2;
    SuiteRunner::new(cfg)
        .modes(&[ExecMode::Native])
        .settings(&[InputSetting::Low, InputSetting::Medium])
        .faults(FaultPlan::parse(plan).expect("valid plan"))
}

/// The tentpole determinism claim: the same fault plan produces the same
/// sweep fingerprint run-to-run AND independent of worker-thread count.
#[test]
fn aex_storm_sweeps_are_deterministic_across_job_counts() {
    let wl = HashJoin::scaled(1024);
    let refs: Vec<&dyn Workload> = vec![&wl];
    let plan = "seed=7,aex=2@20000";
    let one = faulted_suite(plan).threads(1).run(&refs);
    let four = faulted_suite(plan).threads(4).run(&refs);
    let again = faulted_suite(plan).threads(4).run(&refs);
    assert_eq!(
        one.fingerprint(),
        four.fingerprint(),
        "--jobs 1 and --jobs 4 must agree under fault injection"
    );
    assert_eq!(four.fingerprint(), again.fingerprint(), "run-to-run");
    assert!(
        one.reports().any(|r| r.sgx.injected_aex > 0),
        "the storm must actually land"
    );
    // A different storm intensity genuinely perturbs the sweep.
    let other = faulted_suite("seed=7,aex=4@20000").threads(1).run(&refs);
    assert_ne!(one.fingerprint(), other.fingerprint());
}

/// A certain-to-fail transient plan exhausts the retry budget; the cell
/// records every attempt and surfaces the last error — and the failure
/// stays contained to the cells that hit it.
#[test]
fn retry_exhaustion_surfaces_the_last_transient_error() {
    let wl = Blockchain::scaled(4096);
    let refs: Vec<&dyn Workload> = vec![&wl];
    let suite = faulted_suite("seed=3,syscall=1000").retries(2);
    let sweep = suite.threads(2).run(&refs);
    assert_eq!(sweep.cells.len(), 4);
    for cell in &sweep.cells {
        let err = cell.result.as_ref().expect_err("every syscall fails");
        assert_eq!(err.kind, CellErrorKind::Transient);
        assert!(err.message.contains("syscall"), "{}", err.message);
        assert_eq!(cell.attempts, 3, "retry budget of 2 means 3 attempts");
        assert!(cell.backoff_cycles > 0);
    }
}

/// The watchdog cancels runaway cells without taking down the sweep or
/// misclassifying the cancellation as a panic.
#[test]
fn watchdog_times_out_cells_but_not_the_sweep() {
    let wl = HashJoin::scaled(1024);
    let refs: Vec<&dyn Workload> = vec![&wl];
    let mut cfg = RunnerConfig::quick_test();
    cfg.repetitions = 1;
    let suite = SuiteRunner::new(cfg)
        .modes(&[ExecMode::Native])
        .settings(&[InputSetting::Low])
        .cell_budget(1_000) // far below any real run
        .threads(2);
    let sweep = suite.run(&refs);
    assert_eq!(sweep.cells.len(), 1);
    let err = sweep.cells[0].result.as_ref().expect_err("must time out");
    assert_eq!(err.kind, CellErrorKind::TimedOut);
    assert!(!err.panicked());
    assert!(err.message.contains("cycle budget"), "{}", err.message);
}

fn scratch(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "sgxgauge-resume-{}-{name}.json",
        std::process::id()
    ));
    p
}

/// Keeps only the first `keep` cells of a checkpoint file, simulating a
/// sweep killed mid-flight.
fn truncate_cells(text: &str, keep: usize) -> String {
    let mut starts = Vec::new();
    let mut from = 0;
    while let Some(i) = text[from..].find("{\"index\":") {
        starts.push(from + i);
        from += i + 1;
    }
    assert!(starts.len() > keep, "not enough cells to truncate");
    let mut out = text[..starts[keep]].trim_end_matches(',').to_owned();
    out.push_str("]}\n");
    out
}

/// A killed-and-resumed sweep must converge on the same report — and the
/// same checkpoint file bytes — as an uninterrupted one.
#[test]
fn resumed_sweep_is_byte_identical_to_uninterrupted() {
    let wl = HashJoin::scaled(1024);
    let refs: Vec<&dyn Workload> = vec![&wl];
    let full_path = scratch("full");
    let cut_path = scratch("cut");
    let plan = "seed=5,aex=1@40000";
    let full = faulted_suite(plan)
        .threads(2)
        .run_with_checkpoint(&refs, &full_path, false)
        .expect("uninterrupted run");
    let full_bytes = std::fs::read_to_string(&full_path).expect("checkpoint written");
    // "Kill" the sweep after one completed cell, then resume.
    std::fs::write(&cut_path, truncate_cells(&full_bytes, 1)).expect("truncate");
    let resumed = faulted_suite(plan)
        .threads(2)
        .run_with_checkpoint(&refs, &cut_path, true)
        .expect("resumed run");
    assert_eq!(
        full.fingerprint(),
        resumed.fingerprint(),
        "resume must reproduce the uninterrupted sweep"
    );
    let cut_bytes = std::fs::read_to_string(&cut_path).expect("rewritten");
    assert_eq!(full_bytes, cut_bytes, "checkpoint files must converge");
    let _ = std::fs::remove_file(&full_path);
    let _ = std::fs::remove_file(&cut_path);
}
