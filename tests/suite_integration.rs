//! Integration: the whole suite runs end-to-end in every supported mode
//! and produces identical results across modes.

use sgxgauge::core::{ExecMode, InputSetting, Runner, RunnerConfig};
use sgxgauge::workloads::suite_scaled;

/// Every workload, every supported mode, Low setting: runs succeed and
/// the computation's checksum is mode-independent (SGX must not change
/// *what* is computed, only how fast).
#[test]
fn checksums_mode_independent_for_all_ten() {
    let runner = Runner::new(RunnerConfig::quick_test());
    for wl in suite_scaled(1024) {
        let mut checksums = Vec::new();
        for mode in ExecMode::ALL {
            if !wl.supports(mode) {
                continue;
            }
            let r = runner
                .run_once(wl.as_ref(), mode, InputSetting::Low)
                .unwrap_or_else(|e| panic!("{} in {mode}: {e}", wl.name()));
            assert!(
                r.runtime_cycles > 0,
                "{} in {mode} took zero time",
                wl.name()
            );
            checksums.push((mode, r.output.checksum));
        }
        assert!(
            checksums.len() >= 2,
            "{} ran in fewer than two modes",
            wl.name()
        );
        let first = checksums[0].1;
        for (mode, sum) in &checksums {
            assert_eq!(*sum, first, "{} checksum differs in {mode}", wl.name());
        }
    }
}

/// SGX always costs something: for every workload, every SGX mode is
/// slower than Vanilla at the same input.
#[test]
fn sgx_modes_never_faster_than_vanilla() {
    let runner = Runner::new(RunnerConfig::quick_test());
    for wl in suite_scaled(1024) {
        let vanilla = runner
            .run_once(wl.as_ref(), ExecMode::Vanilla, InputSetting::Low)
            .expect("vanilla");
        for mode in [ExecMode::Native, ExecMode::LibOs] {
            if !wl.supports(mode) {
                continue;
            }
            let r = runner
                .run_once(wl.as_ref(), mode, InputSetting::Low)
                .expect("sgx run");
            assert!(
                r.runtime_cycles > vanilla.runtime_cycles,
                "{} in {mode}: {} <= vanilla {}",
                wl.name(),
                r.runtime_cycles,
                vanilla.runtime_cycles
            );
        }
    }
}

/// Determinism: two identical runs produce identical counters — the
/// property that lets the suite compare modes at all.
#[test]
fn runs_are_deterministic() {
    let runner = Runner::new(RunnerConfig::quick_test());
    for wl in suite_scaled(2048) {
        let a = runner
            .run_once(wl.as_ref(), ExecMode::LibOs, InputSetting::Low)
            .expect("first");
        let b = runner
            .run_once(wl.as_ref(), ExecMode::LibOs, InputSetting::Low)
            .expect("second");
        assert_eq!(
            a.runtime_cycles,
            b.runtime_cycles,
            "{} runtime differs",
            wl.name()
        );
        assert_eq!(a.counters, b.counters, "{} counters differ", wl.name());
        assert_eq!(
            a.output.checksum,
            b.output.checksum,
            "{} checksum differs",
            wl.name()
        );
    }
}

/// Larger inputs cost more, in every mode (monotonicity of the suite's
/// input settings).
#[test]
fn input_settings_scale_runtime() {
    let runner = Runner::new(RunnerConfig::quick_test());
    // Divisor 256 keeps every workload's Low/High sizes distinct after
    // the per-workload minimum clamps.
    for wl in suite_scaled(256) {
        for mode in ExecMode::ALL {
            if !wl.supports(mode) {
                continue;
            }
            let low = runner
                .run_once(wl.as_ref(), mode, InputSetting::Low)
                .expect("low");
            let high = runner
                .run_once(wl.as_ref(), mode, InputSetting::High)
                .expect("high");
            assert!(
                high.runtime_cycles > low.runtime_cycles,
                "{} in {mode}: High ({}) not slower than Low ({})",
                wl.name(),
                high.runtime_cycles,
                low.runtime_cycles
            );
        }
    }
}

/// LibOS runs report startup statistics and exclude them from runtime.
#[test]
fn libos_startup_reported_and_excluded() {
    let runner = Runner::new(RunnerConfig::quick_test());
    for wl in suite_scaled(2048) {
        let r = runner
            .run_once(wl.as_ref(), ExecMode::LibOs, InputSetting::Low)
            .expect("libos");
        let s = r
            .libos_startup
            .unwrap_or_else(|| panic!("{} missing startup stats", wl.name()));
        assert!(
            s.epc_evictions > 0,
            "{}: startup must stream the enclave",
            wl.name()
        );
        assert!(s.ecalls > 0);
        // Excluded: the measured SGX counters were reset after launch, so
        // measured evictions are well below the startup's full-enclave
        // streaming.
        assert!(
            r.sgx.pages_measured == 0,
            "{}: enclave build leaked into measurement",
            wl.name()
        );
    }
}
