//! Integration: the paper's headline qualitative claims, verified on
//! scaled-down configurations (the bench suite verifies them at paper
//! scale; these keep the claims under `cargo test`).

use sgxgauge::core::{Env, EnvConfig, ExecMode, InputSetting, Runner, RunnerConfig};
use sgxgauge::workloads::{HashJoin, Iozone, Lighttpd};

/// §3.2.1 / Fig 2: crossing the EPC boundary causes an abrupt jump in
/// paging counters, far beyond the workload's own growth.
#[test]
fn epc_boundary_cliff() {
    let runner = Runner::new(RunnerConfig::quick_test());
    let wl = HashJoin::scaled(24); // High > quick-test EPC > Low
    let low = runner
        .run_once(&wl, ExecMode::Native, InputSetting::Low)
        .expect("low");
    let high = runner
        .run_once(&wl, ExecMode::Native, InputSetting::High)
        .expect("high");
    // Input grows 2x; evictions must grow enormously more.
    assert_eq!(low.sgx.epc_evictions, 0, "Low fits the EPC");
    assert!(
        high.sgx.epc_evictions > 500,
        "High must thrash: {}",
        high.sgx.epc_evictions
    );
    let dtlb_ratio = high.counters.dtlb_misses as f64 / low.counters.dtlb_misses.max(1) as f64;
    assert!(
        dtlb_ratio > 4.0,
        "dTLB misses must jump at the boundary: {dtlb_ratio}"
    );
}

/// Abstract / §5.5: the library OS does not add a significant overhead
/// over Native (≈ ±10% at matching inputs once footprints dominate).
#[test]
fn libos_close_to_native() {
    let runner = Runner::new(RunnerConfig::quick_test());
    let wl = HashJoin::scaled(24);
    let native = runner
        .run_once(&wl, ExecMode::Native, InputSetting::High)
        .expect("native");
    let libos = runner
        .run_once(&wl, ExecMode::LibOs, InputSetting::High)
        .expect("libos");
    let ratio = libos.runtime_cycles as f64 / native.runtime_cycles as f64;
    assert!(
        (0.7..1.5).contains(&ratio),
        "LibOS/Native = {ratio:.2}, expected near 1.0"
    );
}

/// §5.5: LibOS's *relative* overhead shrinks as the input grows (the
/// fixed shim costs amortize).
#[test]
fn libos_overhead_decreases_with_input() {
    let runner = Runner::new(RunnerConfig::quick_test());
    let wl = HashJoin::scaled(24);
    let ratio = |setting| {
        let n = runner
            .run_once(&wl, ExecMode::Native, setting)
            .expect("native");
        let l = runner
            .run_once(&wl, ExecMode::LibOs, setting)
            .expect("libos");
        l.runtime_cycles as f64 / n.runtime_cycles as f64
    };
    let low = ratio(InputSetting::Low);
    let high = ratio(InputSetting::High);
    assert!(
        high <= low * 1.05,
        "LibOS/Native should not grow with input: Low {low:.3} -> High {high:.3}"
    );
}

/// §5.6 / Fig 6d: switchless OCALLs cut dTLB misses and improve latency.
#[test]
fn switchless_improves_lighttpd() {
    let wl = Lighttpd::scaled(512);
    let classic = Runner::new(RunnerConfig::quick_test())
        .run_once(&wl, ExecMode::LibOs, InputSetting::Low)
        .expect("classic");
    let mut cfg = RunnerConfig::quick_test();
    cfg.env = cfg.env.with_switchless(8);
    let switchless = Runner::new(cfg)
        .run_once(&wl, ExecMode::LibOs, InputSetting::Low)
        .expect("switchless");

    let classic_lat = classic
        .output
        .metric("mean_latency_cycles")
        .expect("metric");
    let swl_lat = switchless
        .output
        .metric("mean_latency_cycles")
        .expect("metric");
    assert!(
        swl_lat < classic_lat,
        "switchless latency {swl_lat} !< classic {classic_lat}"
    );
    assert!(
        switchless.counters.tlb_flushes < classic.counters.tlb_flushes,
        "switchless must avoid transition TLB flushes"
    );
    assert!(switchless.sgx.switchless_ocalls > 0);
    assert_eq!(
        switchless.sgx.ocalls, 0,
        "all OCALLs should take the proxy path"
    );
}

/// Appendix E / Fig 10: protected files slow I/O dramatically, beyond
/// plain LibOS shimming — but never corrupt data.
#[test]
fn protected_files_ordering() {
    let wl = Iozone::scaled(128);
    let runner = Runner::new(RunnerConfig::quick_test());
    let vanilla = runner
        .run_once(&wl, ExecMode::Vanilla, InputSetting::Low)
        .expect("vanilla");
    let libos = runner
        .run_once(&wl, ExecMode::LibOs, InputSetting::Low)
        .expect("libos");

    let mut pf_cfg = RunnerConfig::quick_test();
    pf_cfg.env = pf_cfg.env.with_protected_files();
    let pf = Runner::new(pf_cfg)
        .run_once(&wl, ExecMode::LibOs, InputSetting::Low)
        .expect("pf");

    assert!(vanilla.runtime_cycles < libos.runtime_cycles);
    assert!(libos.runtime_cycles < pf.runtime_cycles);
    assert_eq!(
        vanilla.output.checksum, pf.output.checksum,
        "PF must not corrupt data"
    );
    // The PF overhead over vanilla must clearly exceed plain LibOS's
    // (at paper scale Fig 10 shows ~2.1x vs ~1.3x; the quick-test
    // configuration compresses the gap, so assert the ordering with a
    // margin rather than the full factor).
    let libos_over = libos.runtime_cycles as f64 / vanilla.runtime_cycles as f64;
    let pf_over = pf.runtime_cycles as f64 / vanilla.runtime_cycles as f64;
    assert!(
        pf_over > 1.05 * libos_over,
        "PF {pf_over:.2}x vs LibOS {libos_over:.2}x"
    );
}

/// §5.4.1 / Fig 6a: a bigger enclave-size property means proportionally
/// more start-up evictions, while the workload itself is unchanged.
#[test]
fn enclave_size_drives_startup_evictions() {
    use sgxgauge::libos::Manifest;
    let evictions = |enclave_mb: u64| {
        let mut cfg = EnvConfig::quick_test(ExecMode::LibOs);
        cfg.manifest = Some(
            Manifest::builder("empty")
                .enclave_size(enclave_mb << 20)
                .internal_memory(8 << 20)
                .build(),
        );
        let env = Env::new(cfg).expect("env");
        env.libos_startup().expect("startup").epc_evictions
    };
    let small = evictions(128);
    let big = evictions(512);
    assert!(
        big > 3 * small,
        "startup evictions must scale with enclave size: {small} vs {big}"
    );
}

/// §3.2.2 / Fig 3: under SGX, Lighttpd latency grows with concurrency
/// much faster than without.
#[test]
fn concurrency_amplifies_sgx_latency() {
    let runner = Runner::new(RunnerConfig::quick_test());
    let lat = |mode, threads| {
        let wl = Lighttpd::scaled(512).with_threads(threads);
        runner
            .run_once(&wl, mode, InputSetting::Low)
            .expect("run")
            .output
            .metric("mean_latency_cycles")
            .expect("metric")
    };
    let sgx_growth = lat(ExecMode::LibOs, 16) / lat(ExecMode::LibOs, 1);
    let vanilla_growth = lat(ExecMode::Vanilla, 16) / lat(ExecMode::Vanilla, 1);
    assert!(
        sgx_growth > vanilla_growth,
        "SGX must amplify queueing: sgx {sgx_growth:.2}x vs vanilla {vanilla_growth:.2}x"
    );
}
