//! Integration: the cross-enclave relay plane. A fault-free relay must
//! be indistinguishable from direct in-order delivery (property-tested
//! over arbitrary send schedules); the acceptance scenario — five
//! parties under `drop=50,partykill=2@100000:500000` — must complete
//! with a t=3 quorum, surface typed suspect/recover supervision events,
//! and reproduce byte-identically; a partitioned sweep must be
//! byte-identical across worker counts; and losing quorum must be the
//! typed fatal error, never a panic or a hang.

use proptest::prelude::*;
use sgxgauge::core::{
    ExecMode, InputSetting, PartyDim, Runner, RunnerConfig, SuiteRunner, Workload, WorkloadError,
};
use sgxgauge::faults::NetFaultPlan;
use sgxgauge::relay::{run_mpc, MpcConfig, MpcError, Relay, SendOutcome};
use sgxgauge::sgx::costs::RELAY_LINK_CYCLES;
use sgxgauge::workloads::ThresholdSign;

proptest! {
    /// With an empty fault plan the relay is a pure pipeline: every send
    /// is queued exactly `RELAY_LINK_CYCLES` out, surfaces exactly once,
    /// in (deliver_at, seq) order, with untouched payloads and zeroed
    /// fault counters.
    #[test]
    fn clean_relay_is_direct_in_order_delivery(
        sends in prop::collection::vec(
            (0u64..1_000_000, 0u32..5, 1u32..5, 0u64..1_000_000_000),
            0..48,
        )
    ) {
        let mut relay = Relay::new(&NetFaultPlan::default(), 7);
        let mut expected = Vec::new();
        for (i, &(at, from, hop, payload)) in sends.iter().enumerate() {
            let to = (from + hop) % 5; // hop in 1..5 keeps to != from
            match relay.send(at, from, to, 0, payload) {
                SendOutcome::Queued { deliver_at } => {
                    prop_assert_eq!(deliver_at, at + RELAY_LINK_CYCLES);
                    expected.push((deliver_at, i as u64, from, to, payload));
                }
                SendOutcome::Dropped { reason } => {
                    prop_assert!(false, "clean plan dropped a message: {reason:?}");
                }
            }
        }
        expected.sort_unstable();
        let got = relay.due(u64::MAX);
        prop_assert_eq!(got.len(), expected.len());
        for (d, e) in got.iter().zip(&expected) {
            prop_assert_eq!(d.at_cycles, e.0);
            prop_assert_eq!(d.envelope.seq, e.1);
            prop_assert_eq!(d.envelope.from, e.2);
            prop_assert_eq!(d.envelope.to, e.3);
            prop_assert_eq!(d.envelope.payload, e.4);
            prop_assert!(!d.duplicate);
        }
        let stats = relay.stats();
        prop_assert_eq!(stats.sent, sends.len() as u64);
        prop_assert_eq!(stats.delivered, sends.len() as u64);
        prop_assert_eq!(stats.dropped, 0);
        prop_assert_eq!(stats.duplicated, 0);
        prop_assert_eq!(stats.delayed, 0);
        prop_assert_eq!(stats.reordered, 0);
    }
}

/// The acceptance scenario: five parties, t=3, half-percent message
/// loss, and party 2 dead for a 500k-cycle window. Every round must
/// complete, the failure detector must suspect and then recover exactly
/// party 2, and two runs must agree byte-for-byte on the supervision
/// stream.
#[test]
fn acceptance_scenario_completes_suspects_and_recovers() {
    let net = NetFaultPlan::parse("drop=50,partykill=2@100000:500000").expect("plan parses");
    let run =
        || run_mpc(&MpcConfig::new(5, 3).net(net.clone()).rounds(8), 9).expect("quorum holds");
    let a = run();
    assert_eq!(a.completed_rounds(), 8, "every round must reach quorum");
    assert_eq!(a.survival_permille(), 1000);
    assert_eq!(a.suspect_events(), 1, "exactly the killed party");
    assert_eq!(a.recover_events(), 1, "and it must rejoin");
    let jsonl = a.supervision.render_jsonl();
    assert!(
        jsonl.contains("\"event\":\"party_suspected\",\"party\":2"),
        "typed suspicion event:\n{jsonl}"
    );
    assert!(
        jsonl.contains("\"event\":\"party_recovered\",\"party\":2"),
        "typed recovery event:\n{jsonl}"
    );
    let b = run();
    assert_eq!(jsonl, b.supervision.render_jsonl(), "run-to-run drift");
    assert_eq!(a.checksum, b.checksum);
    assert_eq!(a.total_cycles, b.total_cycles);
}

/// Renders a partitioned 5-party ThresholdSign sweep to a comparable
/// string, executed with `jobs` worker threads.
fn partitioned_sweep(jobs: usize) -> String {
    let net = NetFaultPlan::parse("drop=30,partition=0-1@50000:300000").expect("plan parses");
    let wl = ThresholdSign::scaled(2).with_net(net);
    let refs: Vec<&dyn Workload> = vec![&wl];
    let sweep = SuiteRunner::new(RunnerConfig::quick_test())
        .modes(&[ExecMode::Vanilla, ExecMode::Native, ExecMode::LibOs])
        .settings(&[InputSetting::Low, InputSetting::Medium])
        .threads(jobs)
        .party(PartyDim {
            parties: 5,
            threshold: 3,
        })
        .run(&refs);
    let mut out = String::new();
    for cell in &sweep.cells {
        let r = cell.result.as_ref().expect("partitioned cell completes");
        out.push_str(&format!(
            "{} {} {} {}\n",
            cell.cell, r.runtime_cycles, r.output.ops, r.output.checksum
        ));
    }
    assert!(!out.is_empty());
    out
}

/// The partitioned sweep is byte-identical across `--jobs 1` and
/// `--jobs 4`, and its cell keys carry the party dimension.
#[test]
fn partitioned_sweep_is_byte_identical_across_jobs() {
    let sequential = partitioned_sweep(1);
    assert!(
        sequential.contains("/p5q3 "),
        "keys carry pNqT:\n{sequential}"
    );
    assert_eq!(sequential, partitioned_sweep(1), "run-to-run drift");
    assert_eq!(sequential, partitioned_sweep(4), "parallelism drift");
}

/// Below-threshold liveness is the typed loss at both layers: the
/// host-backed driver returns `MpcError::QuorumLost` with a partial
/// report, and the Env workload surfaces `WorkloadError::QuorumLost` —
/// fatal, deterministic, never a panic or a hang.
#[test]
fn quorum_loss_is_typed_at_both_layers() {
    let net = NetFaultPlan::parse("partykill=1@0:999999999999").expect("plan parses");
    match run_mpc(&MpcConfig::new(3, 3).net(net.clone()).rounds(4), 1) {
        Err(MpcError::QuorumLost {
            live,
            threshold,
            partial,
            ..
        }) => {
            assert_eq!((live, threshold), (2, 3));
            assert_eq!(partial.completed_rounds(), 0);
        }
        other => panic!("expected QuorumLost, got {other:?}"),
    }
    let wl = ThresholdSign::scaled(4).with_shape(3, 3).with_net(net);
    let err = Runner::new(RunnerConfig::quick_test())
        .run_once(&wl, ExecMode::Vanilla, InputSetting::Low)
        .expect_err("quorum cannot form");
    assert_eq!(
        err,
        WorkloadError::QuorumLost {
            live: 2,
            threshold: 3
        }
    );
    assert_eq!(err.class(), sgxgauge::core::ErrorClass::Fatal);
}
