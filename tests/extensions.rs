//! Integration: the platform extensions beyond the paper's baseline
//! (SGX2 EDMM, TLB reach, MEE sensitivity) behave as their ablation
//! benches assume.

use mem_sim::{AccessKind, PAGE_SIZE};
use sgxgauge::libos::{LibosProcess, Manifest};
use sgxgauge::sgx::{SgxConfig, SgxMachine};

/// SGX2 EDMM removes the start-up eviction storm entirely while leaving
/// demand paging intact.
#[test]
fn edmm_eliminates_startup_evictions() {
    let launch = |edmm: bool| {
        let mut cfg = SgxConfig::with_tiny_epc(4096, 16);
        cfg.sgx2_edmm = edmm;
        let mut m = SgxMachine::new(cfg);
        let t = m.add_thread();
        let manifest = Manifest::builder("app")
            .enclave_size(512 << 20)
            .internal_memory(8 << 20)
            .build();
        let p = LibosProcess::launch(&mut m, t, &manifest).expect("launch");
        p.startup().epc_evictions
    };
    let sgx1 = launch(false);
    let sgx2 = launch(true);
    assert!(sgx1 > 50_000, "SGX1 must stream the 512 MB ELRANGE: {sgx1}");
    assert!(
        sgx2 < sgx1 / 10,
        "EDMM must collapse start-up evictions: {sgx2} vs {sgx1}"
    );
}

/// EDMM still demand-faults heap pages (EAUG/EACCEPT), costing slightly
/// more per fresh page than a plain SGX1 allocation.
#[test]
fn edmm_demand_faults_cost_eaccept() {
    let fresh_page_cycles = |edmm: bool| {
        let mut cfg = SgxConfig::with_tiny_epc(4096, 16);
        cfg.sgx2_edmm = edmm;
        let mut m = SgxMachine::new(cfg);
        let t = m.add_thread();
        let e = m.create_enclave(64 << 20, 1 << 20).expect("enclave");
        m.ecall_enter(t, e).expect("enter");
        let heap = m.alloc_enclave_heap(e, 1 << 20).expect("heap");
        m.reset_measurement();
        m.access(t, heap, 8, AccessKind::Write);
        m.mem().cycles_of(t)
    };
    let sgx1 = fresh_page_cycles(false);
    let sgx2 = fresh_page_cycles(true);
    assert!(sgx2 > sgx1, "EACCEPT must add cost: {sgx2} vs {sgx1}");
    assert!(sgx2 < sgx1 * 2, "but not dominate the fault path");
}

/// Scaling TLB entries (the huge-page reach approximation) monotonically
/// reduces dTLB misses on a TLB-hostile stream.
#[test]
fn tlb_reach_cuts_misses() {
    let misses = |reach: usize| {
        let mut cfg = SgxConfig::with_tiny_epc(16_384, 16);
        cfg.mem.l1_tlb_entries *= reach;
        cfg.mem.stlb_entries *= reach;
        let mut m = SgxMachine::new(cfg);
        let t = m.add_thread();
        let e = m.create_enclave(48 << 20, 1 << 20).expect("enclave");
        m.ecall_enter(t, e).expect("enter");
        let pages = (32 << 20) / PAGE_SIZE;
        let heap = m.alloc_enclave_heap(e, pages * PAGE_SIZE).expect("heap");
        let mut x = 0xfeed_f00d_dead_beefu64;
        for _ in 0..200_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            m.access(t, heap + (x % pages) * PAGE_SIZE, 8, AccessKind::Read);
        }
        m.mem().counters().dtlb_misses
    };
    let base = misses(1);
    let wide = misses(16);
    assert!(
        wide < base / 2,
        "16x reach must cut misses: {wide} vs {base}"
    );
}

/// The MEE multiplier only affects EPC-bound traffic: vanilla-region
/// accesses are immune.
#[test]
fn mee_multiplier_scoped_to_epc() {
    let run = |mult: u64| {
        let mut cfg = SgxConfig::with_tiny_epc(16_384, 16);
        cfg.mem.latency.mee_mult_x100 = mult;
        let mut m = SgxMachine::new(cfg);
        let t = m.add_thread();
        let buf = m.alloc_untrusted(16 << 20);
        for p in 0..(16 << 20) / PAGE_SIZE {
            m.access(t, buf + p * PAGE_SIZE, 8, AccessKind::Read);
        }
        m.mem().cycles_of(t)
    };
    assert_eq!(
        run(100),
        run(500),
        "untrusted traffic must not pay MEE costs"
    );
}
