//! Integration: the campaign resilience plane. Declarative chaos
//! campaigns must be deterministic run-to-run, shed load through the
//! typed supervision vocabulary (breakers, retry budgets, SLOs), and —
//! the tentpole claim — converge to byte-identical artifacts after
//! repeated kill/resume cycles under a combined fault storm.

use sgxgauge::campaign::{run_campaign, run_soak, CampaignConfig};
use std::path::{Path, PathBuf};

fn scratch(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sgxgauge-campaign-{}-{name}", std::process::id()));
    p
}

fn fresh(name: &str) -> PathBuf {
    let p = scratch(name);
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Two uninterrupted runs of the same campaign config produce
/// byte-identical compared artifacts — the precondition for every
/// other claim in this file.
#[test]
fn campaign_runs_are_byte_deterministic() {
    let cfg = CampaignConfig::parse(
        r#"
[campaign]
name = "det"
seed = 11
scale = 4096
profile = "quick"
reps = 2
jobs = 2
retries = 1
breaker_threshold = 2
breaker_cooldown = 1

[[stage]]
name = "mixed"
modes = ["vanilla"]
settings = ["low"]
workloads = ["HashJoin", "BTree"]
faults = "syscall=250"
"#,
    )
    .expect("config parses");
    let a = fresh("det-a");
    let b = fresh("det-b");
    run_campaign(&cfg, &a, true, None).expect("first run");
    run_campaign(&cfg, &b, true, None).expect("second run");
    for artifact in ["report.csv", "trace.jsonl", "checkpoint.json"] {
        let left = read(&a.join("mixed").join(artifact));
        let right = read(&b.join("mixed").join(artifact));
        assert_eq!(left, right, "{artifact} must be byte-identical");
    }
    let _ = std::fs::remove_dir_all(&a);
    let _ = std::fs::remove_dir_all(&b);
}

/// A workload that fails transiently on every attempt trips its
/// breaker, sheds cooldown cells, sends half-open probes, and re-opens
/// on probe failure — all visible as typed trace events and degraded
/// rows in the report.
#[test]
fn breaker_transitions_are_typed_trace_events() {
    let cfg = CampaignConfig::parse(
        r#"
[campaign]
name = "breaker"
seed = 3
scale = 4096
profile = "quick"
reps = 6
jobs = 1
retries = 0
breaker_threshold = 2
breaker_cooldown = 1

[[stage]]
name = "storm"
modes = ["native"]
settings = ["low"]
workloads = ["Blockchain"]
faults = "syscall=1000"
"#,
    )
    .expect("config parses");
    let out = fresh("breaker");
    let report = run_campaign(&cfg, &out, true, None).expect("campaign completes");
    let stage = &report.stages[0];
    assert!(stage.shed > 0, "open breaker must shed cells");
    assert!(
        report.health.breaker_trips >= 2,
        "initial trip plus probe-failure re-trip"
    );
    let trace = read(&out.join("storm").join("trace.jsonl"));
    assert!(
        trace.contains("\"event\":\"breaker\"") && trace.contains("\"to\":\"open\""),
        "breaker transitions must be trace events:\n{trace}"
    );
    assert!(
        trace.contains("\"to\":\"half_open\""),
        "cooldown expiry must be visible"
    );
    assert!(
        trace.contains("\"event\":\"probe\"") && trace.contains("\"ok\":false"),
        "failed probes must be visible"
    );
    assert!(
        trace.contains("\"reason\":\"breaker_open\""),
        "shed cells must carry their reason"
    );
    let csv = read(&out.join("storm").join("report.csv"));
    assert!(
        csv.lines().any(|l| l.contains(",degraded,")),
        "shed cells must appear as degraded rows:\n{csv}"
    );
    let _ = std::fs::remove_dir_all(&out);
}

/// Draining the global retry budget flips the campaign into degraded
/// mode: repetitions beyond the first are shed, and a reached
/// antagonist stage is skipped whole — with empty artifacts so the
/// tree shape stays run-independent.
#[test]
fn drained_budget_degrades_and_skips_antagonists() {
    let cfg = CampaignConfig::parse(
        r#"
[campaign]
name = "degraded"
seed = 5
scale = 4096
profile = "quick"
reps = 3
jobs = 1
retries = 1
retry_budget_cycles = 1

[[stage]]
name = "drain"
modes = ["native"]
settings = ["low"]
workloads = ["Blockchain"]
faults = "syscall=1000"

[[stage]]
name = "hostile"
modes = ["vanilla"]
settings = ["low"]
workloads = ["BTree"]
antagonist = true
"#,
    )
    .expect("config parses");
    let out = fresh("degraded");
    let report = run_campaign(&cfg, &out, true, None).expect("campaign completes");
    assert!(
        report.health.degraded,
        "one backoff must drain a 1-cycle budget"
    );
    let drain = &report.stages[0];
    assert_eq!(drain.shed, 2, "reps 1 and 2 are shed once degraded");
    let trace = read(&out.join("drain").join("trace.jsonl"));
    assert!(trace.contains("\"event\":\"retry_budget_drained\""));
    assert!(trace.contains("\"reason\":\"retry_budget_drained\""));
    let hostile = &report.stages[1];
    assert!(hostile.skipped, "degraded campaigns skip antagonist stages");
    let skipped_trace = read(&out.join("hostile").join("trace.jsonl"));
    assert!(skipped_trace.contains("\"event\":\"stage_skipped\""));
    assert!(skipped_trace.contains("\"reason\":\"antagonist_skipped\""));
    let skipped_csv = read(&out.join("hostile").join("report.csv"));
    assert_eq!(
        skipped_csv.lines().count(),
        2,
        "header plus integrity footer only:\n{skipped_csv}"
    );
    let _ = std::fs::remove_dir_all(&out);
}

/// A stage deadline sheds the remainder of the stage but not the next
/// stage (the SLO ledger is per-stage).
#[test]
fn stage_deadline_sheds_only_its_own_remainder() {
    let cfg = CampaignConfig::parse(
        r#"
[campaign]
name = "slo"
seed = 9
scale = 4096
profile = "quick"
reps = 3
jobs = 1
retries = 0

[[stage]]
name = "tight"
modes = ["vanilla"]
settings = ["low"]
workloads = ["BTree"]
deadline_cycles = 1

[[stage]]
name = "roomy"
modes = ["vanilla"]
settings = ["low"]
workloads = ["BTree"]
"#,
    )
    .expect("config parses");
    let out = fresh("slo");
    let report = run_campaign(&cfg, &out, true, None).expect("campaign completes");
    let tight = &report.stages[0];
    assert_eq!(
        tight.executed, 1,
        "the first cell runs before the ledger trips"
    );
    assert_eq!(tight.shed, 2, "the rest of the stage is shed");
    let roomy = &report.stages[1];
    assert_eq!(roomy.shed, 0, "the SLO ledger resets at the stage boundary");
    assert_eq!(roomy.executed, 3);
    let trace = read(&out.join("tight").join("trace.jsonl"));
    assert!(trace.contains("\"reason\":\"slo_exceeded\""));
    let _ = std::fs::remove_dir_all(&out);
}

/// An MPC stage sweeps the stage-local ThresholdSign workload over its
/// relay shape: every cell key carries the `pNqT` dimension, the rows
/// complete under the network fault plan, and the artifacts stay
/// byte-deterministic run to run.
#[test]
fn mpc_stage_sweeps_threshold_sign_with_party_keys() {
    let cfg = CampaignConfig::parse(
        r#"
[campaign]
name = "mpc"
seed = 7
scale = 64
profile = "quick"
reps = 1
jobs = 2

[[stage]]
name = "quorum"
modes = ["vanilla", "native"]
settings = ["low"]
parties = 5
threshold = 3
net_faults = "drop=50,partykill=2@100000:500000"
"#,
    )
    .expect("config parses");
    let a = fresh("mpc-a");
    let b = fresh("mpc-b");
    let report = run_campaign(&cfg, &a, false, None).expect("first run");
    run_campaign(&cfg, &b, false, None).expect("second run");
    assert_eq!(report.stages[0].executed, 2);
    assert_eq!(report.stages[0].quarantined, 0);
    let csv = read(&a.join("quorum").join("report.csv"));
    assert!(
        csv.contains("/p5q3,ThresholdSign,"),
        "cell keys must carry the party dimension:\n{csv}"
    );
    assert_eq!(
        csv.lines().filter(|l| l.contains(",ok,")).count(),
        2,
        "both mode cells must complete:\n{csv}"
    );
    assert_eq!(
        csv,
        read(&b.join("quorum").join("report.csv")),
        "report must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&a);
    let _ = std::fs::remove_dir_all(&b);
}

/// A fault plan that makes the quorum unreachable surfaces as the typed
/// fatal loss: the cell quarantines (never retries, never hangs) and the
/// campaign reports it.
#[test]
fn mpc_quorum_loss_quarantines_the_cell() {
    let cfg = CampaignConfig::parse(
        r#"
[campaign]
name = "lost"
seed = 13
scale = 64
profile = "quick"
reps = 1
jobs = 1
retries = 2

[[stage]]
name = "dead"
modes = ["vanilla"]
settings = ["low"]
parties = 3
threshold = 3
net_faults = "partykill=1@0:999999999999"
"#,
    )
    .expect("config parses");
    let out = fresh("mpc-lost");
    let report = run_campaign(&cfg, &out, false, None).expect("campaign completes");
    let stage = &report.stages[0];
    assert_eq!(stage.quarantined, 1, "quorum loss must quarantine");
    let csv = read(&out.join("dead").join("report.csv"));
    assert!(
        csv.lines().any(|l| l.contains(",fatal,")),
        "the loss must be a fatal row, not a retried transient:\n{csv}"
    );
    let _ = std::fs::remove_dir_all(&out);
}

/// The tentpole: a campaign under a combined simulated-fault and
/// host-I/O fault storm, killed and resumed at three seeded points,
/// converges to artifacts byte-identical to a never-interrupted clean
/// plane run.
#[test]
fn soak_converges_after_three_kill_resume_cycles() {
    let cfg = CampaignConfig::parse(
        r#"
[campaign]
name = "soak"
seed = 42
scale = 4096
profile = "quick"
reps = 2
jobs = 2
retries = 2
breaker_threshold = 3
breaker_cooldown = 1

[[stage]]
name = "join"
modes = ["vanilla"]
settings = ["low"]
workloads = ["HashJoin"]
faults = "syscall=250"
io_faults = "eio=30,torn=15"

[[stage]]
name = "btree"
modes = ["vanilla"]
settings = ["low"]
workloads = ["BTree"]
io_faults = "eio=30"
"#,
    )
    .expect("config parses");
    let out = fresh("soak");
    let outcome = run_soak(&cfg, &out, 3).expect("soak completes");
    assert_eq!(outcome.kills_fired, 3, "every scheduled kill must land");
    assert!(
        outcome.converged,
        "diverged artifacts: {:?}",
        outcome.mismatches
    );
    assert!(outcome.golden_cycles > 0);
    let _ = std::fs::remove_dir_all(&out);
}
