//! Integration: the parallel sweep executor over the *real* workload
//! suite is bit-identical to the sequential reference run.
//!
//! The core crate proves determinism on synthetic workloads; this test
//! proves it holds for the actual suite — multi-threaded workloads,
//! LibOS manifests, file-backed I/O and all.

use sgxgauge::core::{ExecMode, InputSetting, RunnerConfig, SuiteRunner, Workload};
use sgxgauge::workloads::suite_scaled;

fn quick_suite_runner(reps: usize) -> SuiteRunner {
    let mut cfg = RunnerConfig::quick_test();
    cfg.repetitions = reps;
    SuiteRunner::new(cfg).settings(&[InputSetting::Low])
}

/// Parallel and sequential sweeps over the full suite agree cell for
/// cell: same grid order, same runtimes, same counters, same checksums.
#[test]
fn parallel_suite_sweep_matches_sequential() {
    let workloads = suite_scaled(1024);
    let refs: Vec<&dyn Workload> = workloads.iter().map(|w| w.as_ref()).collect();

    let sequential = quick_suite_runner(1).run_sequential(&refs);
    let parallel = quick_suite_runner(1).threads(4).run(&refs);

    assert_eq!(sequential.cells.len(), parallel.cells.len());
    assert!(!sequential.cells.is_empty());
    for (s, p) in sequential.cells.iter().zip(&parallel.cells) {
        assert_eq!(s.cell, p.cell);
        let (sr, pr) = match (&s.result, &p.result) {
            (Ok(sr), Ok(pr)) => (sr, pr),
            other => panic!("{}: non-Ok cell pair {other:?}", s.workload),
        };
        assert_eq!(
            sr.runtime_cycles, pr.runtime_cycles,
            "{} runtime",
            s.workload
        );
        assert_eq!(
            sr.output.checksum, pr.output.checksum,
            "{} checksum",
            s.workload
        );
        assert_eq!(
            sr.counters.fields(),
            pr.counters.fields(),
            "{} counters",
            s.workload
        );
        assert_eq!(
            sr.sgx.fields().collect::<Vec<_>>(),
            pr.sgx.fields().collect::<Vec<_>>(),
            "{} sgx counters",
            s.workload
        );
    }
    assert_eq!(sequential.fingerprint(), parallel.fingerprint());
}

/// Repetitions of a deterministic simulator are themselves identical —
/// and the parallel executor keeps them in grid order.
#[test]
fn repetitions_are_deterministic_and_grid_ordered() {
    let workloads = suite_scaled(2048);
    let refs: Vec<&dyn Workload> = workloads.iter().map(|w| w.as_ref()).collect();
    let sweep = quick_suite_runner(2)
        .modes(&[ExecMode::Vanilla])
        .threads(3)
        .run(&refs);

    let mut expected = 0;
    for (wi, _) in refs.iter().enumerate() {
        for rep in 0..2 {
            let cell = &sweep.cells[expected];
            assert_eq!(cell.cell.workload, wi);
            assert_eq!(cell.cell.rep, rep);
            expected += 1;
        }
    }
    assert_eq!(sweep.cells.len(), expected);

    for pair in sweep.cells.chunks(2) {
        let (a, b) = (&pair[0], &pair[1]);
        let (ra, rb) = match (&a.result, &b.result) {
            (Ok(ra), Ok(rb)) => (ra, rb),
            other => panic!("{}: non-Ok rep pair {other:?}", a.workload),
        };
        assert_eq!(
            ra.runtime_cycles, rb.runtime_cycles,
            "{} reps differ",
            a.workload
        );
        assert_eq!(
            ra.output.checksum, rb.output.checksum,
            "{} reps differ",
            a.workload
        );
    }
}
