/root/repo/target/release/deps/sgx_sim-bb1e2fcb2f3d543d.d: crates/sgx-sim/src/lib.rs crates/sgx-sim/src/attest.rs crates/sgx-sim/src/costs.rs crates/sgx-sim/src/driver.rs crates/sgx-sim/src/enclave.rs crates/sgx-sim/src/epc.rs crates/sgx-sim/src/epcm.rs crates/sgx-sim/src/machine.rs crates/sgx-sim/src/switchless.rs

/root/repo/target/release/deps/libsgx_sim-bb1e2fcb2f3d543d.rlib: crates/sgx-sim/src/lib.rs crates/sgx-sim/src/attest.rs crates/sgx-sim/src/costs.rs crates/sgx-sim/src/driver.rs crates/sgx-sim/src/enclave.rs crates/sgx-sim/src/epc.rs crates/sgx-sim/src/epcm.rs crates/sgx-sim/src/machine.rs crates/sgx-sim/src/switchless.rs

/root/repo/target/release/deps/libsgx_sim-bb1e2fcb2f3d543d.rmeta: crates/sgx-sim/src/lib.rs crates/sgx-sim/src/attest.rs crates/sgx-sim/src/costs.rs crates/sgx-sim/src/driver.rs crates/sgx-sim/src/enclave.rs crates/sgx-sim/src/epc.rs crates/sgx-sim/src/epcm.rs crates/sgx-sim/src/machine.rs crates/sgx-sim/src/switchless.rs

crates/sgx-sim/src/lib.rs:
crates/sgx-sim/src/attest.rs:
crates/sgx-sim/src/costs.rs:
crates/sgx-sim/src/driver.rs:
crates/sgx-sim/src/enclave.rs:
crates/sgx-sim/src/epc.rs:
crates/sgx-sim/src/epcm.rs:
crates/sgx-sim/src/machine.rs:
crates/sgx-sim/src/switchless.rs:
