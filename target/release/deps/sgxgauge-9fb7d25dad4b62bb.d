/root/repo/target/release/deps/sgxgauge-9fb7d25dad4b62bb.d: src/lib.rs

/root/repo/target/release/deps/libsgxgauge-9fb7d25dad4b62bb.rlib: src/lib.rs

/root/repo/target/release/deps/libsgxgauge-9fb7d25dad4b62bb.rmeta: src/lib.rs

src/lib.rs:
