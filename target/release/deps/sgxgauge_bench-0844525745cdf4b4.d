/root/repo/target/release/deps/sgxgauge_bench-0844525745cdf4b4.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsgxgauge_bench-0844525745cdf4b4.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsgxgauge_bench-0844525745cdf4b4.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
