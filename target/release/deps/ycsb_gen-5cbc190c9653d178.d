/root/repo/target/release/deps/ycsb_gen-5cbc190c9653d178.d: crates/ycsb-gen/src/lib.rs crates/ycsb-gen/src/dist.rs crates/ycsb-gen/src/workload.rs

/root/repo/target/release/deps/libycsb_gen-5cbc190c9653d178.rlib: crates/ycsb-gen/src/lib.rs crates/ycsb-gen/src/dist.rs crates/ycsb-gen/src/workload.rs

/root/repo/target/release/deps/libycsb_gen-5cbc190c9653d178.rmeta: crates/ycsb-gen/src/lib.rs crates/ycsb-gen/src/dist.rs crates/ycsb-gen/src/workload.rs

crates/ycsb-gen/src/lib.rs:
crates/ycsb-gen/src/dist.rs:
crates/ycsb-gen/src/workload.rs:
