/root/repo/target/release/deps/fig04_libos_vs_native-ecbe1ceb97dccc27.d: crates/bench/benches/fig04_libos_vs_native.rs

/root/repo/target/release/deps/fig04_libos_vs_native-ecbe1ceb97dccc27: crates/bench/benches/fig04_libos_vs_native.rs

crates/bench/benches/fig04_libos_vs_native.rs:
