/root/repo/target/release/deps/sgxgauge_core-0d59d5f62712b97b.d: crates/core/src/lib.rs crates/core/src/env.rs crates/core/src/modes.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/sweep.rs crates/core/src/workload.rs

/root/repo/target/release/deps/libsgxgauge_core-0d59d5f62712b97b.rlib: crates/core/src/lib.rs crates/core/src/env.rs crates/core/src/modes.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/sweep.rs crates/core/src/workload.rs

/root/repo/target/release/deps/libsgxgauge_core-0d59d5f62712b97b.rmeta: crates/core/src/lib.rs crates/core/src/env.rs crates/core/src/modes.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/sweep.rs crates/core/src/workload.rs

crates/core/src/lib.rs:
crates/core/src/env.rs:
crates/core/src/modes.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
crates/core/src/sweep.rs:
crates/core/src/workload.rs:
