/root/repo/target/release/deps/libos_sim-36911616ece4755f.d: crates/libos-sim/src/lib.rs crates/libos-sim/src/manifest.rs crates/libos-sim/src/process.rs crates/libos-sim/src/shim.rs

/root/repo/target/release/deps/liblibos_sim-36911616ece4755f.rlib: crates/libos-sim/src/lib.rs crates/libos-sim/src/manifest.rs crates/libos-sim/src/process.rs crates/libos-sim/src/shim.rs

/root/repo/target/release/deps/liblibos_sim-36911616ece4755f.rmeta: crates/libos-sim/src/lib.rs crates/libos-sim/src/manifest.rs crates/libos-sim/src/process.rs crates/libos-sim/src/shim.rs

crates/libos-sim/src/lib.rs:
crates/libos-sim/src/manifest.rs:
crates/libos-sim/src/process.rs:
crates/libos-sim/src/shim.rs:
