/root/repo/target/release/deps/sgxgauge-d298d58f5803646c.d: src/main.rs

/root/repo/target/release/deps/sgxgauge-d298d58f5803646c: src/main.rs

src/main.rs:
