/root/repo/target/release/deps/gauge_stats-ca72b73f0e42c504.d: crates/gauge-stats/src/lib.rs crates/gauge-stats/src/chart.rs crates/gauge-stats/src/regression.rs crates/gauge-stats/src/summary.rs

/root/repo/target/release/deps/libgauge_stats-ca72b73f0e42c504.rlib: crates/gauge-stats/src/lib.rs crates/gauge-stats/src/chart.rs crates/gauge-stats/src/regression.rs crates/gauge-stats/src/summary.rs

/root/repo/target/release/deps/libgauge_stats-ca72b73f0e42c504.rmeta: crates/gauge-stats/src/lib.rs crates/gauge-stats/src/chart.rs crates/gauge-stats/src/regression.rs crates/gauge-stats/src/summary.rs

crates/gauge-stats/src/lib.rs:
crates/gauge-stats/src/chart.rs:
crates/gauge-stats/src/regression.rs:
crates/gauge-stats/src/summary.rs:
