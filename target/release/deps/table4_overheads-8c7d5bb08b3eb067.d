/root/repo/target/release/deps/table4_overheads-8c7d5bb08b3eb067.d: crates/bench/benches/table4_overheads.rs

/root/repo/target/release/deps/table4_overheads-8c7d5bb08b3eb067: crates/bench/benches/table4_overheads.rs

crates/bench/benches/table4_overheads.rs:
