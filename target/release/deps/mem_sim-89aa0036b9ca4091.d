/root/repo/target/release/deps/mem_sim-89aa0036b9ca4091.d: crates/mem-sim/src/lib.rs crates/mem-sim/src/cache.rs crates/mem-sim/src/counters.rs crates/mem-sim/src/latency.rs crates/mem-sim/src/machine.rs crates/mem-sim/src/paging.rs crates/mem-sim/src/tlb.rs

/root/repo/target/release/deps/libmem_sim-89aa0036b9ca4091.rlib: crates/mem-sim/src/lib.rs crates/mem-sim/src/cache.rs crates/mem-sim/src/counters.rs crates/mem-sim/src/latency.rs crates/mem-sim/src/machine.rs crates/mem-sim/src/paging.rs crates/mem-sim/src/tlb.rs

/root/repo/target/release/deps/libmem_sim-89aa0036b9ca4091.rmeta: crates/mem-sim/src/lib.rs crates/mem-sim/src/cache.rs crates/mem-sim/src/counters.rs crates/mem-sim/src/latency.rs crates/mem-sim/src/machine.rs crates/mem-sim/src/paging.rs crates/mem-sim/src/tlb.rs

crates/mem-sim/src/lib.rs:
crates/mem-sim/src/cache.rs:
crates/mem-sim/src/counters.rs:
crates/mem-sim/src/latency.rs:
crates/mem-sim/src/machine.rs:
crates/mem-sim/src/paging.rs:
crates/mem-sim/src/tlb.rs:
