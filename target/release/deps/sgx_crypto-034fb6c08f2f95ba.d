/root/repo/target/release/deps/sgx_crypto-034fb6c08f2f95ba.d: crates/sgx-crypto/src/lib.rs crates/sgx-crypto/src/aes.rs crates/sgx-crypto/src/chacha20.rs crates/sgx-crypto/src/hmac.rs crates/sgx-crypto/src/seal.rs crates/sgx-crypto/src/sha256.rs

/root/repo/target/release/deps/libsgx_crypto-034fb6c08f2f95ba.rlib: crates/sgx-crypto/src/lib.rs crates/sgx-crypto/src/aes.rs crates/sgx-crypto/src/chacha20.rs crates/sgx-crypto/src/hmac.rs crates/sgx-crypto/src/seal.rs crates/sgx-crypto/src/sha256.rs

/root/repo/target/release/deps/libsgx_crypto-034fb6c08f2f95ba.rmeta: crates/sgx-crypto/src/lib.rs crates/sgx-crypto/src/aes.rs crates/sgx-crypto/src/chacha20.rs crates/sgx-crypto/src/hmac.rs crates/sgx-crypto/src/seal.rs crates/sgx-crypto/src/sha256.rs

crates/sgx-crypto/src/lib.rs:
crates/sgx-crypto/src/aes.rs:
crates/sgx-crypto/src/chacha20.rs:
crates/sgx-crypto/src/hmac.rs:
crates/sgx-crypto/src/seal.rs:
crates/sgx-crypto/src/sha256.rs:
