/root/repo/target/debug/libycsb_gen.rlib: /root/repo/crates/ycsb-gen/src/dist.rs /root/repo/crates/ycsb-gen/src/lib.rs /root/repo/crates/ycsb-gen/src/workload.rs /root/repo/vendor/rand/src/lib.rs
