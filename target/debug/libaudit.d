/root/repo/target/debug/libaudit.rlib: /root/repo/crates/audit/src/lexer.rs /root/repo/crates/audit/src/lib.rs /root/repo/crates/audit/src/rules.rs
