/root/repo/target/debug/deps/ablation_hugepages-34db2a39b8a9b697.d: crates/bench/benches/ablation_hugepages.rs Cargo.toml

/root/repo/target/debug/deps/libablation_hugepages-34db2a39b8a9b697.rmeta: crates/bench/benches/ablation_hugepages.rs Cargo.toml

crates/bench/benches/ablation_hugepages.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
