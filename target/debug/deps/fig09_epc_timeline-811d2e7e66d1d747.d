/root/repo/target/debug/deps/fig09_epc_timeline-811d2e7e66d1d747.d: crates/bench/benches/fig09_epc_timeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_epc_timeline-811d2e7e66d1d747.rmeta: crates/bench/benches/fig09_epc_timeline.rs Cargo.toml

crates/bench/benches/fig09_epc_timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
