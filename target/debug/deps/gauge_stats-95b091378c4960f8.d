/root/repo/target/debug/deps/gauge_stats-95b091378c4960f8.d: crates/gauge-stats/src/lib.rs crates/gauge-stats/src/chart.rs crates/gauge-stats/src/regression.rs crates/gauge-stats/src/summary.rs

/root/repo/target/debug/deps/libgauge_stats-95b091378c4960f8.rlib: crates/gauge-stats/src/lib.rs crates/gauge-stats/src/chart.rs crates/gauge-stats/src/regression.rs crates/gauge-stats/src/summary.rs

/root/repo/target/debug/deps/libgauge_stats-95b091378c4960f8.rmeta: crates/gauge-stats/src/lib.rs crates/gauge-stats/src/chart.rs crates/gauge-stats/src/regression.rs crates/gauge-stats/src/summary.rs

crates/gauge-stats/src/lib.rs:
crates/gauge-stats/src/chart.rs:
crates/gauge-stats/src/regression.rs:
crates/gauge-stats/src/summary.rs:
