/root/repo/target/debug/deps/audit-5c4f9675c3c60bde.d: crates/audit/src/lib.rs crates/audit/src/lexer.rs crates/audit/src/rules.rs Cargo.toml

/root/repo/target/debug/deps/libaudit-5c4f9675c3c60bde.rmeta: crates/audit/src/lib.rs crates/audit/src/lexer.rs crates/audit/src/rules.rs Cargo.toml

crates/audit/src/lib.rs:
crates/audit/src/lexer.rs:
crates/audit/src/rules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
