/root/repo/target/debug/deps/ycsb_gen-bcc818fac6c0214d.d: crates/ycsb-gen/src/lib.rs crates/ycsb-gen/src/dist.rs crates/ycsb-gen/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libycsb_gen-bcc818fac6c0214d.rmeta: crates/ycsb-gen/src/lib.rs crates/ycsb-gen/src/dist.rs crates/ycsb-gen/src/workload.rs Cargo.toml

crates/ycsb-gen/src/lib.rs:
crates/ycsb-gen/src/dist.rs:
crates/ycsb-gen/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
