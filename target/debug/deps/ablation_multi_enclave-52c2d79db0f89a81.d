/root/repo/target/debug/deps/ablation_multi_enclave-52c2d79db0f89a81.d: crates/bench/benches/ablation_multi_enclave.rs Cargo.toml

/root/repo/target/debug/deps/libablation_multi_enclave-52c2d79db0f89a81.rmeta: crates/bench/benches/ablation_multi_enclave.rs Cargo.toml

crates/bench/benches/ablation_multi_enclave.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
