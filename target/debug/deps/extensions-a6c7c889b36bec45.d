/root/repo/target/debug/deps/extensions-a6c7c889b36bec45.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-a6c7c889b36bec45: tests/extensions.rs

tests/extensions.rs:
