/root/repo/target/debug/deps/fig07_sgx_latencies-a60683f3f79b43b6.d: crates/bench/benches/fig07_sgx_latencies.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_sgx_latencies-a60683f3f79b43b6.rmeta: crates/bench/benches/fig07_sgx_latencies.rs Cargo.toml

crates/bench/benches/fig07_sgx_latencies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
