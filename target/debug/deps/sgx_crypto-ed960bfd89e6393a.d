/root/repo/target/debug/deps/sgx_crypto-ed960bfd89e6393a.d: crates/sgx-crypto/src/lib.rs crates/sgx-crypto/src/aes.rs crates/sgx-crypto/src/chacha20.rs crates/sgx-crypto/src/hmac.rs crates/sgx-crypto/src/seal.rs crates/sgx-crypto/src/sha256.rs

/root/repo/target/debug/deps/sgx_crypto-ed960bfd89e6393a: crates/sgx-crypto/src/lib.rs crates/sgx-crypto/src/aes.rs crates/sgx-crypto/src/chacha20.rs crates/sgx-crypto/src/hmac.rs crates/sgx-crypto/src/seal.rs crates/sgx-crypto/src/sha256.rs

crates/sgx-crypto/src/lib.rs:
crates/sgx-crypto/src/aes.rs:
crates/sgx-crypto/src/chacha20.rs:
crates/sgx-crypto/src/hmac.rs:
crates/sgx-crypto/src/seal.rs:
crates/sgx-crypto/src/sha256.rs:
