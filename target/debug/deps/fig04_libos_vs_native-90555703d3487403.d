/root/repo/target/debug/deps/fig04_libos_vs_native-90555703d3487403.d: crates/bench/benches/fig04_libos_vs_native.rs Cargo.toml

/root/repo/target/debug/deps/libfig04_libos_vs_native-90555703d3487403.rmeta: crates/bench/benches/fig04_libos_vs_native.rs Cargo.toml

crates/bench/benches/fig04_libos_vs_native.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
