/root/repo/target/debug/deps/suite_integration-3015944218011560.d: tests/suite_integration.rs Cargo.toml

/root/repo/target/debug/deps/libsuite_integration-3015944218011560.rmeta: tests/suite_integration.rs Cargo.toml

tests/suite_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
