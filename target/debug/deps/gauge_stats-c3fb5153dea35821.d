/root/repo/target/debug/deps/gauge_stats-c3fb5153dea35821.d: crates/gauge-stats/src/lib.rs crates/gauge-stats/src/chart.rs crates/gauge-stats/src/regression.rs crates/gauge-stats/src/summary.rs

/root/repo/target/debug/deps/gauge_stats-c3fb5153dea35821: crates/gauge-stats/src/lib.rs crates/gauge-stats/src/chart.rs crates/gauge-stats/src/regression.rs crates/gauge-stats/src/summary.rs

crates/gauge-stats/src/lib.rs:
crates/gauge-stats/src/chart.rs:
crates/gauge-stats/src/regression.rs:
crates/gauge-stats/src/summary.rs:
