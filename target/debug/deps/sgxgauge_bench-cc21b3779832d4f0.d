/root/repo/target/debug/deps/sgxgauge_bench-cc21b3779832d4f0.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/sgxgauge_bench-cc21b3779832d4f0: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
