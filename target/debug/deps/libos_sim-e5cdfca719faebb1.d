/root/repo/target/debug/deps/libos_sim-e5cdfca719faebb1.d: crates/libos-sim/src/lib.rs crates/libos-sim/src/manifest.rs crates/libos-sim/src/process.rs crates/libos-sim/src/shim.rs

/root/repo/target/debug/deps/liblibos_sim-e5cdfca719faebb1.rlib: crates/libos-sim/src/lib.rs crates/libos-sim/src/manifest.rs crates/libos-sim/src/process.rs crates/libos-sim/src/shim.rs

/root/repo/target/debug/deps/liblibos_sim-e5cdfca719faebb1.rmeta: crates/libos-sim/src/lib.rs crates/libos-sim/src/manifest.rs crates/libos-sim/src/process.rs crates/libos-sim/src/shim.rs

crates/libos-sim/src/lib.rs:
crates/libos-sim/src/manifest.rs:
crates/libos-sim/src/process.rs:
crates/libos-sim/src/shim.rs:
