/root/repo/target/debug/deps/ablation_sgx2_edmm-cb95d133f603c2d6.d: crates/bench/benches/ablation_sgx2_edmm.rs Cargo.toml

/root/repo/target/debug/deps/libablation_sgx2_edmm-cb95d133f603c2d6.rmeta: crates/bench/benches/ablation_sgx2_edmm.rs Cargo.toml

crates/bench/benches/ablation_sgx2_edmm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
