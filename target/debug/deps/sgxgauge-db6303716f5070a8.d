/root/repo/target/debug/deps/sgxgauge-db6303716f5070a8.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libsgxgauge-db6303716f5070a8.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
