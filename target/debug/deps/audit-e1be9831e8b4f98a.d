/root/repo/target/debug/deps/audit-e1be9831e8b4f98a.d: crates/audit/src/lib.rs crates/audit/src/lexer.rs crates/audit/src/rules.rs

/root/repo/target/debug/deps/libaudit-e1be9831e8b4f98a.rlib: crates/audit/src/lib.rs crates/audit/src/lexer.rs crates/audit/src/rules.rs

/root/repo/target/debug/deps/libaudit-e1be9831e8b4f98a.rmeta: crates/audit/src/lib.rs crates/audit/src/lexer.rs crates/audit/src/rules.rs

crates/audit/src/lib.rs:
crates/audit/src/lexer.rs:
crates/audit/src/rules.rs:
