/root/repo/target/debug/deps/fig10_iozone_pf-b320da5aa7974c9e.d: crates/bench/benches/fig10_iozone_pf.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_iozone_pf-b320da5aa7974c9e.rmeta: crates/bench/benches/fig10_iozone_pf.rs Cargo.toml

crates/bench/benches/fig10_iozone_pf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
