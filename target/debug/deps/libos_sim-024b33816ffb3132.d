/root/repo/target/debug/deps/libos_sim-024b33816ffb3132.d: crates/libos-sim/src/lib.rs crates/libos-sim/src/manifest.rs crates/libos-sim/src/process.rs crates/libos-sim/src/shim.rs Cargo.toml

/root/repo/target/debug/deps/liblibos_sim-024b33816ffb3132.rmeta: crates/libos-sim/src/lib.rs crates/libos-sim/src/manifest.rs crates/libos-sim/src/process.rs crates/libos-sim/src/shim.rs Cargo.toml

crates/libos-sim/src/lib.rs:
crates/libos-sim/src/manifest.rs:
crates/libos-sim/src/process.rs:
crates/libos-sim/src/shim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
