/root/repo/target/debug/deps/fig06bc_libos_mode-b5c86e83c3324044.d: crates/bench/benches/fig06bc_libos_mode.rs Cargo.toml

/root/repo/target/debug/deps/libfig06bc_libos_mode-b5c86e83c3324044.rmeta: crates/bench/benches/fig06bc_libos_mode.rs Cargo.toml

crates/bench/benches/fig06bc_libos_mode.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
