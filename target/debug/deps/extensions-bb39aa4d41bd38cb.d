/root/repo/target/debug/deps/extensions-bb39aa4d41bd38cb.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-bb39aa4d41bd38cb.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
