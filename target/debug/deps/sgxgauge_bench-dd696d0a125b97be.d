/root/repo/target/debug/deps/sgxgauge_bench-dd696d0a125b97be.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsgxgauge_bench-dd696d0a125b97be.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
