/root/repo/target/debug/deps/suite_integration-6a173fe8654a0f1f.d: tests/suite_integration.rs

/root/repo/target/debug/deps/suite_integration-6a173fe8654a0f1f: tests/suite_integration.rs

tests/suite_integration.rs:
