/root/repo/target/debug/deps/properties-5138f9d0db6c9d0c.d: crates/mem-sim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-5138f9d0db6c9d0c.rmeta: crates/mem-sim/tests/properties.rs Cargo.toml

crates/mem-sim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
