/root/repo/target/debug/deps/properties-47a1b7acce4f62cd.d: crates/sgx-crypto/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-47a1b7acce4f62cd.rmeta: crates/sgx-crypto/tests/properties.rs Cargo.toml

crates/sgx-crypto/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
