/root/repo/target/debug/deps/extensions-f335ee1f63e4535e.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-f335ee1f63e4535e: tests/extensions.rs

tests/extensions.rs:
