/root/repo/target/debug/deps/sgx_crypto-e469e48364cd31d2.d: crates/sgx-crypto/src/lib.rs crates/sgx-crypto/src/aes.rs crates/sgx-crypto/src/chacha20.rs crates/sgx-crypto/src/hmac.rs crates/sgx-crypto/src/seal.rs crates/sgx-crypto/src/sha256.rs Cargo.toml

/root/repo/target/debug/deps/libsgx_crypto-e469e48364cd31d2.rmeta: crates/sgx-crypto/src/lib.rs crates/sgx-crypto/src/aes.rs crates/sgx-crypto/src/chacha20.rs crates/sgx-crypto/src/hmac.rs crates/sgx-crypto/src/seal.rs crates/sgx-crypto/src/sha256.rs Cargo.toml

crates/sgx-crypto/src/lib.rs:
crates/sgx-crypto/src/aes.rs:
crates/sgx-crypto/src/chacha20.rs:
crates/sgx-crypto/src/hmac.rs:
crates/sgx-crypto/src/seal.rs:
crates/sgx-crypto/src/sha256.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
