/root/repo/target/debug/deps/fig02_epc_boundary-868489908db36dc5.d: crates/bench/benches/fig02_epc_boundary.rs Cargo.toml

/root/repo/target/debug/deps/libfig02_epc_boundary-868489908db36dc5.rmeta: crates/bench/benches/fig02_epc_boundary.rs Cargo.toml

crates/bench/benches/fig02_epc_boundary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
