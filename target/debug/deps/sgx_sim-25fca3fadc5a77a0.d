/root/repo/target/debug/deps/sgx_sim-25fca3fadc5a77a0.d: crates/sgx-sim/src/lib.rs crates/sgx-sim/src/attest.rs crates/sgx-sim/src/driver.rs crates/sgx-sim/src/enclave.rs crates/sgx-sim/src/epc.rs crates/sgx-sim/src/epcm.rs crates/sgx-sim/src/machine.rs crates/sgx-sim/src/switchless.rs

/root/repo/target/debug/deps/sgx_sim-25fca3fadc5a77a0: crates/sgx-sim/src/lib.rs crates/sgx-sim/src/attest.rs crates/sgx-sim/src/driver.rs crates/sgx-sim/src/enclave.rs crates/sgx-sim/src/epc.rs crates/sgx-sim/src/epcm.rs crates/sgx-sim/src/machine.rs crates/sgx-sim/src/switchless.rs

crates/sgx-sim/src/lib.rs:
crates/sgx-sim/src/attest.rs:
crates/sgx-sim/src/driver.rs:
crates/sgx-sim/src/enclave.rs:
crates/sgx-sim/src/epc.rs:
crates/sgx-sim/src/epcm.rs:
crates/sgx-sim/src/machine.rs:
crates/sgx-sim/src/switchless.rs:
