/root/repo/target/debug/deps/fig04_libos_vs_native-ee686da6dbcd9a80.d: crates/bench/benches/fig04_libos_vs_native.rs

/root/repo/target/debug/deps/fig04_libos_vs_native-ee686da6dbcd9a80: crates/bench/benches/fig04_libos_vs_native.rs

crates/bench/benches/fig04_libos_vs_native.rs:
