/root/repo/target/debug/deps/gauge_audit-8b618b7308ad7c34.d: crates/audit/src/main.rs

/root/repo/target/debug/deps/gauge_audit-8b618b7308ad7c34: crates/audit/src/main.rs

crates/audit/src/main.rs:
