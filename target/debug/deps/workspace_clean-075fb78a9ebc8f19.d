/root/repo/target/debug/deps/workspace_clean-075fb78a9ebc8f19.d: crates/audit/tests/workspace_clean.rs Cargo.toml

/root/repo/target/debug/deps/libworkspace_clean-075fb78a9ebc8f19.rmeta: crates/audit/tests/workspace_clean.rs Cargo.toml

crates/audit/tests/workspace_clean.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/audit
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
