/root/repo/target/debug/deps/fixtures-a625b5a3b8e3b321.d: crates/audit/tests/fixtures.rs Cargo.toml

/root/repo/target/debug/deps/libfixtures-a625b5a3b8e3b321.rmeta: crates/audit/tests/fixtures.rs Cargo.toml

crates/audit/tests/fixtures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
