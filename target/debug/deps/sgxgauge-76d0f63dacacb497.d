/root/repo/target/debug/deps/sgxgauge-76d0f63dacacb497.d: src/lib.rs

/root/repo/target/debug/deps/libsgxgauge-76d0f63dacacb497.rlib: src/lib.rs

/root/repo/target/debug/deps/libsgxgauge-76d0f63dacacb497.rmeta: src/lib.rs

src/lib.rs:
