/root/repo/target/debug/deps/fig07_sgx_latencies-0f077213b019bc3a.d: crates/bench/benches/fig07_sgx_latencies.rs

/root/repo/target/debug/deps/fig07_sgx_latencies-0f077213b019bc3a: crates/bench/benches/fig07_sgx_latencies.rs

crates/bench/benches/fig07_sgx_latencies.rs:
