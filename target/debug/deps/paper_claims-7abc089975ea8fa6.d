/root/repo/target/debug/deps/paper_claims-7abc089975ea8fa6.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-7abc089975ea8fa6: tests/paper_claims.rs

tests/paper_claims.rs:
