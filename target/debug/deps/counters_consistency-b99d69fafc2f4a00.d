/root/repo/target/debug/deps/counters_consistency-b99d69fafc2f4a00.d: tests/counters_consistency.rs

/root/repo/target/debug/deps/counters_consistency-b99d69fafc2f4a00: tests/counters_consistency.rs

tests/counters_consistency.rs:
