/root/repo/target/debug/deps/fig09_epc_timeline-38dd9a029020da74.d: crates/bench/benches/fig09_epc_timeline.rs

/root/repo/target/debug/deps/fig09_epc_timeline-38dd9a029020da74: crates/bench/benches/fig09_epc_timeline.rs

crates/bench/benches/fig09_epc_timeline.rs:
