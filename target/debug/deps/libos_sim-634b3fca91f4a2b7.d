/root/repo/target/debug/deps/libos_sim-634b3fca91f4a2b7.d: crates/libos-sim/src/lib.rs crates/libos-sim/src/manifest.rs crates/libos-sim/src/process.rs crates/libos-sim/src/shim.rs

/root/repo/target/debug/deps/liblibos_sim-634b3fca91f4a2b7.rlib: crates/libos-sim/src/lib.rs crates/libos-sim/src/manifest.rs crates/libos-sim/src/process.rs crates/libos-sim/src/shim.rs

/root/repo/target/debug/deps/liblibos_sim-634b3fca91f4a2b7.rmeta: crates/libos-sim/src/lib.rs crates/libos-sim/src/manifest.rs crates/libos-sim/src/process.rs crates/libos-sim/src/shim.rs

crates/libos-sim/src/lib.rs:
crates/libos-sim/src/manifest.rs:
crates/libos-sim/src/process.rs:
crates/libos-sim/src/shim.rs:
