/root/repo/target/debug/deps/sgxgauge-2528ba95a3f0185b.d: src/main.rs

/root/repo/target/debug/deps/sgxgauge-2528ba95a3f0185b: src/main.rs

src/main.rs:
