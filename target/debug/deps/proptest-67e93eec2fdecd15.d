/root/repo/target/debug/deps/proptest-67e93eec2fdecd15.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-67e93eec2fdecd15.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-67e93eec2fdecd15.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
