/root/repo/target/debug/deps/sweep_executor-ee491ba87a4cf8d3.d: tests/sweep_executor.rs

/root/repo/target/debug/deps/sweep_executor-ee491ba87a4cf8d3: tests/sweep_executor.rs

tests/sweep_executor.rs:
