/root/repo/target/debug/deps/sgxgauge-e3e9dc3b5ca8eeb9.d: src/main.rs

/root/repo/target/debug/deps/sgxgauge-e3e9dc3b5ca8eeb9: src/main.rs

src/main.rs:
