/root/repo/target/debug/deps/ablation_evict_batch-68d788f7870ae70f.d: crates/bench/benches/ablation_evict_batch.rs

/root/repo/target/debug/deps/ablation_evict_batch-68d788f7870ae70f: crates/bench/benches/ablation_evict_batch.rs

crates/bench/benches/ablation_evict_batch.rs:
