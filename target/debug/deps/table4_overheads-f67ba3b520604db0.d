/root/repo/target/debug/deps/table4_overheads-f67ba3b520604db0.d: crates/bench/benches/table4_overheads.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_overheads-f67ba3b520604db0.rmeta: crates/bench/benches/table4_overheads.rs Cargo.toml

crates/bench/benches/table4_overheads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
