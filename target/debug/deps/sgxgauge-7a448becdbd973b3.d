/root/repo/target/debug/deps/sgxgauge-7a448becdbd973b3.d: src/lib.rs

/root/repo/target/debug/deps/sgxgauge-7a448becdbd973b3: src/lib.rs

src/lib.rs:
