/root/repo/target/debug/deps/sweep_executor-82005f6645568b28.d: tests/sweep_executor.rs Cargo.toml

/root/repo/target/debug/deps/libsweep_executor-82005f6645568b28.rmeta: tests/sweep_executor.rs Cargo.toml

tests/sweep_executor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
