/root/repo/target/debug/deps/sgx_sim-c57b551d2e7afaab.d: crates/sgx-sim/src/lib.rs crates/sgx-sim/src/attest.rs crates/sgx-sim/src/costs.rs crates/sgx-sim/src/driver.rs crates/sgx-sim/src/enclave.rs crates/sgx-sim/src/epc.rs crates/sgx-sim/src/epcm.rs crates/sgx-sim/src/machine.rs crates/sgx-sim/src/switchless.rs

/root/repo/target/debug/deps/sgx_sim-c57b551d2e7afaab: crates/sgx-sim/src/lib.rs crates/sgx-sim/src/attest.rs crates/sgx-sim/src/costs.rs crates/sgx-sim/src/driver.rs crates/sgx-sim/src/enclave.rs crates/sgx-sim/src/epc.rs crates/sgx-sim/src/epcm.rs crates/sgx-sim/src/machine.rs crates/sgx-sim/src/switchless.rs

crates/sgx-sim/src/lib.rs:
crates/sgx-sim/src/attest.rs:
crates/sgx-sim/src/costs.rs:
crates/sgx-sim/src/driver.rs:
crates/sgx-sim/src/enclave.rs:
crates/sgx-sim/src/epc.rs:
crates/sgx-sim/src/epcm.rs:
crates/sgx-sim/src/machine.rs:
crates/sgx-sim/src/switchless.rs:
