/root/repo/target/debug/deps/sgx_crypto-6236b0eedc3f67e6.d: crates/sgx-crypto/src/lib.rs crates/sgx-crypto/src/aes.rs crates/sgx-crypto/src/chacha20.rs crates/sgx-crypto/src/hmac.rs crates/sgx-crypto/src/seal.rs crates/sgx-crypto/src/sha256.rs

/root/repo/target/debug/deps/libsgx_crypto-6236b0eedc3f67e6.rlib: crates/sgx-crypto/src/lib.rs crates/sgx-crypto/src/aes.rs crates/sgx-crypto/src/chacha20.rs crates/sgx-crypto/src/hmac.rs crates/sgx-crypto/src/seal.rs crates/sgx-crypto/src/sha256.rs

/root/repo/target/debug/deps/libsgx_crypto-6236b0eedc3f67e6.rmeta: crates/sgx-crypto/src/lib.rs crates/sgx-crypto/src/aes.rs crates/sgx-crypto/src/chacha20.rs crates/sgx-crypto/src/hmac.rs crates/sgx-crypto/src/seal.rs crates/sgx-crypto/src/sha256.rs

crates/sgx-crypto/src/lib.rs:
crates/sgx-crypto/src/aes.rs:
crates/sgx-crypto/src/chacha20.rs:
crates/sgx-crypto/src/hmac.rs:
crates/sgx-crypto/src/seal.rs:
crates/sgx-crypto/src/sha256.rs:
