/root/repo/target/debug/deps/audit-3137ab718ccc4c7e.d: crates/audit/src/lib.rs crates/audit/src/lexer.rs crates/audit/src/rules.rs

/root/repo/target/debug/deps/audit-3137ab718ccc4c7e: crates/audit/src/lib.rs crates/audit/src/lexer.rs crates/audit/src/rules.rs

crates/audit/src/lib.rs:
crates/audit/src/lexer.rs:
crates/audit/src/rules.rs:
