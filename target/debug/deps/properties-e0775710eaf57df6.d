/root/repo/target/debug/deps/properties-e0775710eaf57df6.d: crates/mem-sim/tests/properties.rs

/root/repo/target/debug/deps/properties-e0775710eaf57df6: crates/mem-sim/tests/properties.rs

crates/mem-sim/tests/properties.rs:
