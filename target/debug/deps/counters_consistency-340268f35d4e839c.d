/root/repo/target/debug/deps/counters_consistency-340268f35d4e839c.d: tests/counters_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libcounters_consistency-340268f35d4e839c.rmeta: tests/counters_consistency.rs Cargo.toml

tests/counters_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
