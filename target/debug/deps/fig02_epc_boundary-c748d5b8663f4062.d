/root/repo/target/debug/deps/fig02_epc_boundary-c748d5b8663f4062.d: crates/bench/benches/fig02_epc_boundary.rs

/root/repo/target/debug/deps/fig02_epc_boundary-c748d5b8663f4062: crates/bench/benches/fig02_epc_boundary.rs

crates/bench/benches/fig02_epc_boundary.rs:
