/root/repo/target/debug/deps/sweep_executor-e93670504cd1936f.d: tests/sweep_executor.rs

/root/repo/target/debug/deps/sweep_executor-e93670504cd1936f: tests/sweep_executor.rs

tests/sweep_executor.rs:
