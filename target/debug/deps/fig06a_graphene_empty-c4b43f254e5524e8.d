/root/repo/target/debug/deps/fig06a_graphene_empty-c4b43f254e5524e8.d: crates/bench/benches/fig06a_graphene_empty.rs

/root/repo/target/debug/deps/fig06a_graphene_empty-c4b43f254e5524e8: crates/bench/benches/fig06a_graphene_empty.rs

crates/bench/benches/fig06a_graphene_empty.rs:
