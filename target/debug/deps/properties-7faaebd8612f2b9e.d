/root/repo/target/debug/deps/properties-7faaebd8612f2b9e.d: crates/mem-sim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-7faaebd8612f2b9e.rmeta: crates/mem-sim/tests/properties.rs Cargo.toml

crates/mem-sim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
