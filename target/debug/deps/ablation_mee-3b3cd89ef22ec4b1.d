/root/repo/target/debug/deps/ablation_mee-3b3cd89ef22ec4b1.d: crates/bench/benches/ablation_mee.rs Cargo.toml

/root/repo/target/debug/deps/libablation_mee-3b3cd89ef22ec4b1.rmeta: crates/bench/benches/ablation_mee.rs Cargo.toml

crates/bench/benches/ablation_mee.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
