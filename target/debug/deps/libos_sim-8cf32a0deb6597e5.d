/root/repo/target/debug/deps/libos_sim-8cf32a0deb6597e5.d: crates/libos-sim/src/lib.rs crates/libos-sim/src/manifest.rs crates/libos-sim/src/process.rs crates/libos-sim/src/shim.rs

/root/repo/target/debug/deps/libos_sim-8cf32a0deb6597e5: crates/libos-sim/src/lib.rs crates/libos-sim/src/manifest.rs crates/libos-sim/src/process.rs crates/libos-sim/src/shim.rs

crates/libos-sim/src/lib.rs:
crates/libos-sim/src/manifest.rs:
crates/libos-sim/src/process.rs:
crates/libos-sim/src/shim.rs:
