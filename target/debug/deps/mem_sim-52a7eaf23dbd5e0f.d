/root/repo/target/debug/deps/mem_sim-52a7eaf23dbd5e0f.d: crates/mem-sim/src/lib.rs crates/mem-sim/src/cache.rs crates/mem-sim/src/counters.rs crates/mem-sim/src/latency.rs crates/mem-sim/src/machine.rs crates/mem-sim/src/paging.rs crates/mem-sim/src/tlb.rs Cargo.toml

/root/repo/target/debug/deps/libmem_sim-52a7eaf23dbd5e0f.rmeta: crates/mem-sim/src/lib.rs crates/mem-sim/src/cache.rs crates/mem-sim/src/counters.rs crates/mem-sim/src/latency.rs crates/mem-sim/src/machine.rs crates/mem-sim/src/paging.rs crates/mem-sim/src/tlb.rs Cargo.toml

crates/mem-sim/src/lib.rs:
crates/mem-sim/src/cache.rs:
crates/mem-sim/src/counters.rs:
crates/mem-sim/src/latency.rs:
crates/mem-sim/src/machine.rs:
crates/mem-sim/src/paging.rs:
crates/mem-sim/src/tlb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
