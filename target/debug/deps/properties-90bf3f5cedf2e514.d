/root/repo/target/debug/deps/properties-90bf3f5cedf2e514.d: crates/mem-sim/tests/properties.rs

/root/repo/target/debug/deps/properties-90bf3f5cedf2e514: crates/mem-sim/tests/properties.rs

crates/mem-sim/tests/properties.rs:
