/root/repo/target/debug/deps/sgxgauge-caa0c550e000eb3e.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libsgxgauge-caa0c550e000eb3e.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
