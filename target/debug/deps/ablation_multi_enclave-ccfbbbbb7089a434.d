/root/repo/target/debug/deps/ablation_multi_enclave-ccfbbbbb7089a434.d: crates/bench/benches/ablation_multi_enclave.rs

/root/repo/target/debug/deps/ablation_multi_enclave-ccfbbbbb7089a434: crates/bench/benches/ablation_multi_enclave.rs

crates/bench/benches/ablation_multi_enclave.rs:
