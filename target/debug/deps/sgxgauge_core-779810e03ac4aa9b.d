/root/repo/target/debug/deps/sgxgauge_core-779810e03ac4aa9b.d: crates/core/src/lib.rs crates/core/src/env.rs crates/core/src/modes.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/sweep.rs crates/core/src/workload.rs

/root/repo/target/debug/deps/libsgxgauge_core-779810e03ac4aa9b.rlib: crates/core/src/lib.rs crates/core/src/env.rs crates/core/src/modes.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/sweep.rs crates/core/src/workload.rs

/root/repo/target/debug/deps/libsgxgauge_core-779810e03ac4aa9b.rmeta: crates/core/src/lib.rs crates/core/src/env.rs crates/core/src/modes.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/sweep.rs crates/core/src/workload.rs

crates/core/src/lib.rs:
crates/core/src/env.rs:
crates/core/src/modes.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
crates/core/src/sweep.rs:
crates/core/src/workload.rs:
