/root/repo/target/debug/deps/fig03_lighttpd_threads-70661fdfa9ea4898.d: crates/bench/benches/fig03_lighttpd_threads.rs Cargo.toml

/root/repo/target/debug/deps/libfig03_lighttpd_threads-70661fdfa9ea4898.rmeta: crates/bench/benches/fig03_lighttpd_threads.rs Cargo.toml

crates/bench/benches/fig03_lighttpd_threads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
