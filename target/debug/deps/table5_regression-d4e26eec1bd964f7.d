/root/repo/target/debug/deps/table5_regression-d4e26eec1bd964f7.d: crates/bench/benches/table5_regression.rs

/root/repo/target/debug/deps/table5_regression-d4e26eec1bd964f7: crates/bench/benches/table5_regression.rs

crates/bench/benches/table5_regression.rs:
