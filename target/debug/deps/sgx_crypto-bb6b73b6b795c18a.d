/root/repo/target/debug/deps/sgx_crypto-bb6b73b6b795c18a.d: crates/sgx-crypto/src/lib.rs crates/sgx-crypto/src/aes.rs crates/sgx-crypto/src/chacha20.rs crates/sgx-crypto/src/hmac.rs crates/sgx-crypto/src/seal.rs crates/sgx-crypto/src/sha256.rs Cargo.toml

/root/repo/target/debug/deps/libsgx_crypto-bb6b73b6b795c18a.rmeta: crates/sgx-crypto/src/lib.rs crates/sgx-crypto/src/aes.rs crates/sgx-crypto/src/chacha20.rs crates/sgx-crypto/src/hmac.rs crates/sgx-crypto/src/seal.rs crates/sgx-crypto/src/sha256.rs Cargo.toml

crates/sgx-crypto/src/lib.rs:
crates/sgx-crypto/src/aes.rs:
crates/sgx-crypto/src/chacha20.rs:
crates/sgx-crypto/src/hmac.rs:
crates/sgx-crypto/src/seal.rs:
crates/sgx-crypto/src/sha256.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
