/root/repo/target/debug/deps/fig08_native_heatmap-f32878f86d23760b.d: crates/bench/benches/fig08_native_heatmap.rs

/root/repo/target/debug/deps/fig08_native_heatmap-f32878f86d23760b: crates/bench/benches/fig08_native_heatmap.rs

crates/bench/benches/fig08_native_heatmap.rs:
