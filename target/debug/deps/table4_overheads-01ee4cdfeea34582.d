/root/repo/target/debug/deps/table4_overheads-01ee4cdfeea34582.d: crates/bench/benches/table4_overheads.rs

/root/repo/target/debug/deps/table4_overheads-01ee4cdfeea34582: crates/bench/benches/table4_overheads.rs

crates/bench/benches/table4_overheads.rs:
