/root/repo/target/debug/deps/fig06d_switchless-400ecc53310708a4.d: crates/bench/benches/fig06d_switchless.rs Cargo.toml

/root/repo/target/debug/deps/libfig06d_switchless-400ecc53310708a4.rmeta: crates/bench/benches/fig06d_switchless.rs Cargo.toml

crates/bench/benches/fig06d_switchless.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
