/root/repo/target/debug/deps/proptest-329b847b503c5f2b.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-329b847b503c5f2b: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
