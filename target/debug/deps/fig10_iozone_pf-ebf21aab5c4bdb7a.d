/root/repo/target/debug/deps/fig10_iozone_pf-ebf21aab5c4bdb7a.d: crates/bench/benches/fig10_iozone_pf.rs

/root/repo/target/debug/deps/fig10_iozone_pf-ebf21aab5c4bdb7a: crates/bench/benches/fig10_iozone_pf.rs

crates/bench/benches/fig10_iozone_pf.rs:
