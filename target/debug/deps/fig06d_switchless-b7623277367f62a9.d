/root/repo/target/debug/deps/fig06d_switchless-b7623277367f62a9.d: crates/bench/benches/fig06d_switchless.rs

/root/repo/target/debug/deps/fig06d_switchless-b7623277367f62a9: crates/bench/benches/fig06d_switchless.rs

crates/bench/benches/fig06d_switchless.rs:
