/root/repo/target/debug/deps/suite_integration-ba3c07c8a83d0b09.d: tests/suite_integration.rs

/root/repo/target/debug/deps/suite_integration-ba3c07c8a83d0b09: tests/suite_integration.rs

tests/suite_integration.rs:
