/root/repo/target/debug/deps/properties-c775090ac70234cf.d: crates/sgx-sim/tests/properties.rs

/root/repo/target/debug/deps/properties-c775090ac70234cf: crates/sgx-sim/tests/properties.rs

crates/sgx-sim/tests/properties.rs:
