/root/repo/target/debug/deps/fig05_native_mode-7873e7e582768a6f.d: crates/bench/benches/fig05_native_mode.rs Cargo.toml

/root/repo/target/debug/deps/libfig05_native_mode-7873e7e582768a6f.rmeta: crates/bench/benches/fig05_native_mode.rs Cargo.toml

crates/bench/benches/fig05_native_mode.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
