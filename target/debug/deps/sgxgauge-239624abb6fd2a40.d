/root/repo/target/debug/deps/sgxgauge-239624abb6fd2a40.d: src/main.rs

/root/repo/target/debug/deps/sgxgauge-239624abb6fd2a40: src/main.rs

src/main.rs:
