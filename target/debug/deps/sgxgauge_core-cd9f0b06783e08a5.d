/root/repo/target/debug/deps/sgxgauge_core-cd9f0b06783e08a5.d: crates/core/src/lib.rs crates/core/src/env.rs crates/core/src/modes.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/sweep.rs crates/core/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libsgxgauge_core-cd9f0b06783e08a5.rmeta: crates/core/src/lib.rs crates/core/src/env.rs crates/core/src/modes.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/sweep.rs crates/core/src/workload.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/env.rs:
crates/core/src/modes.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
crates/core/src/sweep.rs:
crates/core/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
