/root/repo/target/debug/deps/properties-833277a3e19f79ac.d: crates/sgx-sim/tests/properties.rs

/root/repo/target/debug/deps/properties-833277a3e19f79ac: crates/sgx-sim/tests/properties.rs

crates/sgx-sim/tests/properties.rs:
