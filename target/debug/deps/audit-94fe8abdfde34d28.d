/root/repo/target/debug/deps/audit-94fe8abdfde34d28.d: crates/audit/src/lib.rs crates/audit/src/lexer.rs crates/audit/src/rules.rs Cargo.toml

/root/repo/target/debug/deps/libaudit-94fe8abdfde34d28.rmeta: crates/audit/src/lib.rs crates/audit/src/lexer.rs crates/audit/src/rules.rs Cargo.toml

crates/audit/src/lib.rs:
crates/audit/src/lexer.rs:
crates/audit/src/rules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
