/root/repo/target/debug/deps/properties-bf436266ffa3da1a.d: crates/workloads/tests/properties.rs

/root/repo/target/debug/deps/properties-bf436266ffa3da1a: crates/workloads/tests/properties.rs

crates/workloads/tests/properties.rs:
