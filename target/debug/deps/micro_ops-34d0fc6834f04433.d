/root/repo/target/debug/deps/micro_ops-34d0fc6834f04433.d: crates/bench/benches/micro_ops.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_ops-34d0fc6834f04433.rmeta: crates/bench/benches/micro_ops.rs Cargo.toml

crates/bench/benches/micro_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
