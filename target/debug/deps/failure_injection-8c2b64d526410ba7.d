/root/repo/target/debug/deps/failure_injection-8c2b64d526410ba7.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-8c2b64d526410ba7: tests/failure_injection.rs

tests/failure_injection.rs:
