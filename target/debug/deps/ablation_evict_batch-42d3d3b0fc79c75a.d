/root/repo/target/debug/deps/ablation_evict_batch-42d3d3b0fc79c75a.d: crates/bench/benches/ablation_evict_batch.rs Cargo.toml

/root/repo/target/debug/deps/libablation_evict_batch-42d3d3b0fc79c75a.rmeta: crates/bench/benches/ablation_evict_batch.rs Cargo.toml

crates/bench/benches/ablation_evict_batch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
