/root/repo/target/debug/deps/ycsb_gen-edc77bbad9025a32.d: crates/ycsb-gen/src/lib.rs crates/ycsb-gen/src/dist.rs crates/ycsb-gen/src/workload.rs

/root/repo/target/debug/deps/libycsb_gen-edc77bbad9025a32.rlib: crates/ycsb-gen/src/lib.rs crates/ycsb-gen/src/dist.rs crates/ycsb-gen/src/workload.rs

/root/repo/target/debug/deps/libycsb_gen-edc77bbad9025a32.rmeta: crates/ycsb-gen/src/lib.rs crates/ycsb-gen/src/dist.rs crates/ycsb-gen/src/workload.rs

crates/ycsb-gen/src/lib.rs:
crates/ycsb-gen/src/dist.rs:
crates/ycsb-gen/src/workload.rs:
