/root/repo/target/debug/deps/fig08_native_heatmap-61a894bad43e3cbb.d: crates/bench/benches/fig08_native_heatmap.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_native_heatmap-61a894bad43e3cbb.rmeta: crates/bench/benches/fig08_native_heatmap.rs Cargo.toml

crates/bench/benches/fig08_native_heatmap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
