/root/repo/target/debug/deps/sgxgauge_workloads-6467fb450a06320c.d: crates/workloads/src/lib.rs crates/workloads/src/bfs.rs crates/workloads/src/blockchain.rs crates/workloads/src/btree.rs crates/workloads/src/hashjoin.rs crates/workloads/src/iozone.rs crates/workloads/src/lighttpd.rs crates/workloads/src/memcached.rs crates/workloads/src/openssl.rs crates/workloads/src/pagerank.rs crates/workloads/src/svm.rs crates/workloads/src/util.rs crates/workloads/src/xsbench.rs Cargo.toml

/root/repo/target/debug/deps/libsgxgauge_workloads-6467fb450a06320c.rmeta: crates/workloads/src/lib.rs crates/workloads/src/bfs.rs crates/workloads/src/blockchain.rs crates/workloads/src/btree.rs crates/workloads/src/hashjoin.rs crates/workloads/src/iozone.rs crates/workloads/src/lighttpd.rs crates/workloads/src/memcached.rs crates/workloads/src/openssl.rs crates/workloads/src/pagerank.rs crates/workloads/src/svm.rs crates/workloads/src/util.rs crates/workloads/src/xsbench.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/bfs.rs:
crates/workloads/src/blockchain.rs:
crates/workloads/src/btree.rs:
crates/workloads/src/hashjoin.rs:
crates/workloads/src/iozone.rs:
crates/workloads/src/lighttpd.rs:
crates/workloads/src/memcached.rs:
crates/workloads/src/openssl.rs:
crates/workloads/src/pagerank.rs:
crates/workloads/src/svm.rs:
crates/workloads/src/util.rs:
crates/workloads/src/xsbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
