/root/repo/target/debug/deps/ablation_sgx2_edmm-bb92ac8431fe7b0f.d: crates/bench/benches/ablation_sgx2_edmm.rs

/root/repo/target/debug/deps/ablation_sgx2_edmm-bb92ac8431fe7b0f: crates/bench/benches/ablation_sgx2_edmm.rs

crates/bench/benches/ablation_sgx2_edmm.rs:
