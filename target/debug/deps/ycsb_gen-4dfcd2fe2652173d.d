/root/repo/target/debug/deps/ycsb_gen-4dfcd2fe2652173d.d: crates/ycsb-gen/src/lib.rs crates/ycsb-gen/src/dist.rs crates/ycsb-gen/src/workload.rs

/root/repo/target/debug/deps/ycsb_gen-4dfcd2fe2652173d: crates/ycsb-gen/src/lib.rs crates/ycsb-gen/src/dist.rs crates/ycsb-gen/src/workload.rs

crates/ycsb-gen/src/lib.rs:
crates/ycsb-gen/src/dist.rs:
crates/ycsb-gen/src/workload.rs:
