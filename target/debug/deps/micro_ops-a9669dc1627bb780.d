/root/repo/target/debug/deps/micro_ops-a9669dc1627bb780.d: crates/bench/benches/micro_ops.rs

/root/repo/target/debug/deps/micro_ops-a9669dc1627bb780: crates/bench/benches/micro_ops.rs

crates/bench/benches/micro_ops.rs:
