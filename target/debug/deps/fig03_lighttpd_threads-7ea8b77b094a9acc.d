/root/repo/target/debug/deps/fig03_lighttpd_threads-7ea8b77b094a9acc.d: crates/bench/benches/fig03_lighttpd_threads.rs

/root/repo/target/debug/deps/fig03_lighttpd_threads-7ea8b77b094a9acc: crates/bench/benches/fig03_lighttpd_threads.rs

crates/bench/benches/fig03_lighttpd_threads.rs:
