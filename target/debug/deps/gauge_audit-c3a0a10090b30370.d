/root/repo/target/debug/deps/gauge_audit-c3a0a10090b30370.d: crates/audit/src/main.rs

/root/repo/target/debug/deps/gauge_audit-c3a0a10090b30370: crates/audit/src/main.rs

crates/audit/src/main.rs:
