/root/repo/target/debug/deps/sgxgauge-62d3115b81e1d9e1.d: src/lib.rs

/root/repo/target/debug/deps/sgxgauge-62d3115b81e1d9e1: src/lib.rs

src/lib.rs:
