/root/repo/target/debug/deps/failure_injection-82d2fa5e426327a4.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-82d2fa5e426327a4: tests/failure_injection.rs

tests/failure_injection.rs:
