/root/repo/target/debug/deps/properties-b59135dd12d6f77b.d: crates/sgx-sim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-b59135dd12d6f77b.rmeta: crates/sgx-sim/tests/properties.rs Cargo.toml

crates/sgx-sim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
