/root/repo/target/debug/deps/properties-8240e00b9111f199.d: crates/sgx-sim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-8240e00b9111f199.rmeta: crates/sgx-sim/tests/properties.rs Cargo.toml

crates/sgx-sim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
