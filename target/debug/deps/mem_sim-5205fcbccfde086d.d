/root/repo/target/debug/deps/mem_sim-5205fcbccfde086d.d: crates/mem-sim/src/lib.rs crates/mem-sim/src/cache.rs crates/mem-sim/src/counters.rs crates/mem-sim/src/latency.rs crates/mem-sim/src/machine.rs crates/mem-sim/src/paging.rs crates/mem-sim/src/tlb.rs

/root/repo/target/debug/deps/mem_sim-5205fcbccfde086d: crates/mem-sim/src/lib.rs crates/mem-sim/src/cache.rs crates/mem-sim/src/counters.rs crates/mem-sim/src/latency.rs crates/mem-sim/src/machine.rs crates/mem-sim/src/paging.rs crates/mem-sim/src/tlb.rs

crates/mem-sim/src/lib.rs:
crates/mem-sim/src/cache.rs:
crates/mem-sim/src/counters.rs:
crates/mem-sim/src/latency.rs:
crates/mem-sim/src/machine.rs:
crates/mem-sim/src/paging.rs:
crates/mem-sim/src/tlb.rs:
