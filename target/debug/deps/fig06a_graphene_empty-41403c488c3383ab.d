/root/repo/target/debug/deps/fig06a_graphene_empty-41403c488c3383ab.d: crates/bench/benches/fig06a_graphene_empty.rs Cargo.toml

/root/repo/target/debug/deps/libfig06a_graphene_empty-41403c488c3383ab.rmeta: crates/bench/benches/fig06a_graphene_empty.rs Cargo.toml

crates/bench/benches/fig06a_graphene_empty.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
