/root/repo/target/debug/deps/ablation_hugepages-31267bac34d16001.d: crates/bench/benches/ablation_hugepages.rs

/root/repo/target/debug/deps/ablation_hugepages-31267bac34d16001: crates/bench/benches/ablation_hugepages.rs

crates/bench/benches/ablation_hugepages.rs:
