/root/repo/target/debug/deps/gauge_stats-4f8ad51dc72fbce0.d: crates/gauge-stats/src/lib.rs crates/gauge-stats/src/chart.rs crates/gauge-stats/src/regression.rs crates/gauge-stats/src/summary.rs Cargo.toml

/root/repo/target/debug/deps/libgauge_stats-4f8ad51dc72fbce0.rmeta: crates/gauge-stats/src/lib.rs crates/gauge-stats/src/chart.rs crates/gauge-stats/src/regression.rs crates/gauge-stats/src/summary.rs Cargo.toml

crates/gauge-stats/src/lib.rs:
crates/gauge-stats/src/chart.rs:
crates/gauge-stats/src/regression.rs:
crates/gauge-stats/src/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
