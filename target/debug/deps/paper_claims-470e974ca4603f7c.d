/root/repo/target/debug/deps/paper_claims-470e974ca4603f7c.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-470e974ca4603f7c: tests/paper_claims.rs

tests/paper_claims.rs:
