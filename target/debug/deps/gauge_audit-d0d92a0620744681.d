/root/repo/target/debug/deps/gauge_audit-d0d92a0620744681.d: crates/audit/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libgauge_audit-d0d92a0620744681.rmeta: crates/audit/src/main.rs Cargo.toml

crates/audit/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
