/root/repo/target/debug/deps/fig06bc_libos_mode-74a15dfe76a92fda.d: crates/bench/benches/fig06bc_libos_mode.rs

/root/repo/target/debug/deps/fig06bc_libos_mode-74a15dfe76a92fda: crates/bench/benches/fig06bc_libos_mode.rs

crates/bench/benches/fig06bc_libos_mode.rs:
