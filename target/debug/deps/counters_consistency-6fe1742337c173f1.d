/root/repo/target/debug/deps/counters_consistency-6fe1742337c173f1.d: tests/counters_consistency.rs

/root/repo/target/debug/deps/counters_consistency-6fe1742337c173f1: tests/counters_consistency.rs

tests/counters_consistency.rs:
