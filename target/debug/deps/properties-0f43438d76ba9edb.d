/root/repo/target/debug/deps/properties-0f43438d76ba9edb.d: crates/sgx-crypto/tests/properties.rs

/root/repo/target/debug/deps/properties-0f43438d76ba9edb: crates/sgx-crypto/tests/properties.rs

crates/sgx-crypto/tests/properties.rs:
