/root/repo/target/debug/deps/sgxgauge-0316571e4633e6f1.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsgxgauge-0316571e4633e6f1.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
