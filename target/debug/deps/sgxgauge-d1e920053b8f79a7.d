/root/repo/target/debug/deps/sgxgauge-d1e920053b8f79a7.d: src/lib.rs

/root/repo/target/debug/deps/libsgxgauge-d1e920053b8f79a7.rlib: src/lib.rs

/root/repo/target/debug/deps/libsgxgauge-d1e920053b8f79a7.rmeta: src/lib.rs

src/lib.rs:
