/root/repo/target/debug/deps/sgx_sim-40ce0d34d5f2e0f3.d: crates/sgx-sim/src/lib.rs crates/sgx-sim/src/attest.rs crates/sgx-sim/src/costs.rs crates/sgx-sim/src/driver.rs crates/sgx-sim/src/enclave.rs crates/sgx-sim/src/epc.rs crates/sgx-sim/src/epcm.rs crates/sgx-sim/src/machine.rs crates/sgx-sim/src/switchless.rs Cargo.toml

/root/repo/target/debug/deps/libsgx_sim-40ce0d34d5f2e0f3.rmeta: crates/sgx-sim/src/lib.rs crates/sgx-sim/src/attest.rs crates/sgx-sim/src/costs.rs crates/sgx-sim/src/driver.rs crates/sgx-sim/src/enclave.rs crates/sgx-sim/src/epc.rs crates/sgx-sim/src/epcm.rs crates/sgx-sim/src/machine.rs crates/sgx-sim/src/switchless.rs Cargo.toml

crates/sgx-sim/src/lib.rs:
crates/sgx-sim/src/attest.rs:
crates/sgx-sim/src/costs.rs:
crates/sgx-sim/src/driver.rs:
crates/sgx-sim/src/enclave.rs:
crates/sgx-sim/src/epc.rs:
crates/sgx-sim/src/epcm.rs:
crates/sgx-sim/src/machine.rs:
crates/sgx-sim/src/switchless.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
