/root/repo/target/debug/deps/fig05_native_mode-9027bb5f67dd4842.d: crates/bench/benches/fig05_native_mode.rs

/root/repo/target/debug/deps/fig05_native_mode-9027bb5f67dd4842: crates/bench/benches/fig05_native_mode.rs

crates/bench/benches/fig05_native_mode.rs:
