/root/repo/target/debug/deps/mem_sim-098dc924d627193b.d: crates/mem-sim/src/lib.rs crates/mem-sim/src/cache.rs crates/mem-sim/src/counters.rs crates/mem-sim/src/latency.rs crates/mem-sim/src/machine.rs crates/mem-sim/src/paging.rs crates/mem-sim/src/tlb.rs

/root/repo/target/debug/deps/libmem_sim-098dc924d627193b.rlib: crates/mem-sim/src/lib.rs crates/mem-sim/src/cache.rs crates/mem-sim/src/counters.rs crates/mem-sim/src/latency.rs crates/mem-sim/src/machine.rs crates/mem-sim/src/paging.rs crates/mem-sim/src/tlb.rs

/root/repo/target/debug/deps/libmem_sim-098dc924d627193b.rmeta: crates/mem-sim/src/lib.rs crates/mem-sim/src/cache.rs crates/mem-sim/src/counters.rs crates/mem-sim/src/latency.rs crates/mem-sim/src/machine.rs crates/mem-sim/src/paging.rs crates/mem-sim/src/tlb.rs

crates/mem-sim/src/lib.rs:
crates/mem-sim/src/cache.rs:
crates/mem-sim/src/counters.rs:
crates/mem-sim/src/latency.rs:
crates/mem-sim/src/machine.rs:
crates/mem-sim/src/paging.rs:
crates/mem-sim/src/tlb.rs:
