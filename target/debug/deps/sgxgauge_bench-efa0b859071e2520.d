/root/repo/target/debug/deps/sgxgauge_bench-efa0b859071e2520.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsgxgauge_bench-efa0b859071e2520.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsgxgauge_bench-efa0b859071e2520.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
