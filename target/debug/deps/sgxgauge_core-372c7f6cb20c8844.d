/root/repo/target/debug/deps/sgxgauge_core-372c7f6cb20c8844.d: crates/core/src/lib.rs crates/core/src/env.rs crates/core/src/modes.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/sweep.rs crates/core/src/workload.rs

/root/repo/target/debug/deps/sgxgauge_core-372c7f6cb20c8844: crates/core/src/lib.rs crates/core/src/env.rs crates/core/src/modes.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/sweep.rs crates/core/src/workload.rs

crates/core/src/lib.rs:
crates/core/src/env.rs:
crates/core/src/modes.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
crates/core/src/sweep.rs:
crates/core/src/workload.rs:
