/root/repo/target/debug/deps/sgxgauge-fc185e7cbb9a8b52.d: src/main.rs

/root/repo/target/debug/deps/sgxgauge-fc185e7cbb9a8b52: src/main.rs

src/main.rs:
