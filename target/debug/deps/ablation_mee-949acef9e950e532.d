/root/repo/target/debug/deps/ablation_mee-949acef9e950e532.d: crates/bench/benches/ablation_mee.rs

/root/repo/target/debug/deps/ablation_mee-949acef9e950e532: crates/bench/benches/ablation_mee.rs

crates/bench/benches/ablation_mee.rs:
