/root/repo/target/debug/deps/fixtures-68e0d2e5743f01f8.d: crates/audit/tests/fixtures.rs

/root/repo/target/debug/deps/fixtures-68e0d2e5743f01f8: crates/audit/tests/fixtures.rs

crates/audit/tests/fixtures.rs:
