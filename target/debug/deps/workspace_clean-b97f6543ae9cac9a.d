/root/repo/target/debug/deps/workspace_clean-b97f6543ae9cac9a.d: crates/audit/tests/workspace_clean.rs

/root/repo/target/debug/deps/workspace_clean-b97f6543ae9cac9a: crates/audit/tests/workspace_clean.rs

crates/audit/tests/workspace_clean.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/audit
