/root/repo/target/debug/deps/sgx_sim-fa354307c0826690.d: crates/sgx-sim/src/lib.rs crates/sgx-sim/src/attest.rs crates/sgx-sim/src/costs.rs crates/sgx-sim/src/driver.rs crates/sgx-sim/src/enclave.rs crates/sgx-sim/src/epc.rs crates/sgx-sim/src/epcm.rs crates/sgx-sim/src/machine.rs crates/sgx-sim/src/switchless.rs Cargo.toml

/root/repo/target/debug/deps/libsgx_sim-fa354307c0826690.rmeta: crates/sgx-sim/src/lib.rs crates/sgx-sim/src/attest.rs crates/sgx-sim/src/costs.rs crates/sgx-sim/src/driver.rs crates/sgx-sim/src/enclave.rs crates/sgx-sim/src/epc.rs crates/sgx-sim/src/epcm.rs crates/sgx-sim/src/machine.rs crates/sgx-sim/src/switchless.rs Cargo.toml

crates/sgx-sim/src/lib.rs:
crates/sgx-sim/src/attest.rs:
crates/sgx-sim/src/costs.rs:
crates/sgx-sim/src/driver.rs:
crates/sgx-sim/src/enclave.rs:
crates/sgx-sim/src/epc.rs:
crates/sgx-sim/src/epcm.rs:
crates/sgx-sim/src/machine.rs:
crates/sgx-sim/src/switchless.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
