/root/repo/target/debug/deps/table5_regression-4dc3896b41e6b714.d: crates/bench/benches/table5_regression.rs Cargo.toml

/root/repo/target/debug/deps/libtable5_regression-4dc3896b41e6b714.rmeta: crates/bench/benches/table5_regression.rs Cargo.toml

crates/bench/benches/table5_regression.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
