/root/repo/target/debug/deps/sgxgauge_workloads-d0fb8902bf95b776.d: crates/workloads/src/lib.rs crates/workloads/src/bfs.rs crates/workloads/src/blockchain.rs crates/workloads/src/btree.rs crates/workloads/src/hashjoin.rs crates/workloads/src/iozone.rs crates/workloads/src/lighttpd.rs crates/workloads/src/memcached.rs crates/workloads/src/openssl.rs crates/workloads/src/pagerank.rs crates/workloads/src/svm.rs crates/workloads/src/util.rs crates/workloads/src/xsbench.rs

/root/repo/target/debug/deps/libsgxgauge_workloads-d0fb8902bf95b776.rlib: crates/workloads/src/lib.rs crates/workloads/src/bfs.rs crates/workloads/src/blockchain.rs crates/workloads/src/btree.rs crates/workloads/src/hashjoin.rs crates/workloads/src/iozone.rs crates/workloads/src/lighttpd.rs crates/workloads/src/memcached.rs crates/workloads/src/openssl.rs crates/workloads/src/pagerank.rs crates/workloads/src/svm.rs crates/workloads/src/util.rs crates/workloads/src/xsbench.rs

/root/repo/target/debug/deps/libsgxgauge_workloads-d0fb8902bf95b776.rmeta: crates/workloads/src/lib.rs crates/workloads/src/bfs.rs crates/workloads/src/blockchain.rs crates/workloads/src/btree.rs crates/workloads/src/hashjoin.rs crates/workloads/src/iozone.rs crates/workloads/src/lighttpd.rs crates/workloads/src/memcached.rs crates/workloads/src/openssl.rs crates/workloads/src/pagerank.rs crates/workloads/src/svm.rs crates/workloads/src/util.rs crates/workloads/src/xsbench.rs

crates/workloads/src/lib.rs:
crates/workloads/src/bfs.rs:
crates/workloads/src/blockchain.rs:
crates/workloads/src/btree.rs:
crates/workloads/src/hashjoin.rs:
crates/workloads/src/iozone.rs:
crates/workloads/src/lighttpd.rs:
crates/workloads/src/memcached.rs:
crates/workloads/src/openssl.rs:
crates/workloads/src/pagerank.rs:
crates/workloads/src/svm.rs:
crates/workloads/src/util.rs:
crates/workloads/src/xsbench.rs:
