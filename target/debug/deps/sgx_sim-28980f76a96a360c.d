/root/repo/target/debug/deps/sgx_sim-28980f76a96a360c.d: crates/sgx-sim/src/lib.rs crates/sgx-sim/src/attest.rs crates/sgx-sim/src/costs.rs crates/sgx-sim/src/driver.rs crates/sgx-sim/src/enclave.rs crates/sgx-sim/src/epc.rs crates/sgx-sim/src/epcm.rs crates/sgx-sim/src/machine.rs crates/sgx-sim/src/switchless.rs

/root/repo/target/debug/deps/libsgx_sim-28980f76a96a360c.rlib: crates/sgx-sim/src/lib.rs crates/sgx-sim/src/attest.rs crates/sgx-sim/src/costs.rs crates/sgx-sim/src/driver.rs crates/sgx-sim/src/enclave.rs crates/sgx-sim/src/epc.rs crates/sgx-sim/src/epcm.rs crates/sgx-sim/src/machine.rs crates/sgx-sim/src/switchless.rs

/root/repo/target/debug/deps/libsgx_sim-28980f76a96a360c.rmeta: crates/sgx-sim/src/lib.rs crates/sgx-sim/src/attest.rs crates/sgx-sim/src/costs.rs crates/sgx-sim/src/driver.rs crates/sgx-sim/src/enclave.rs crates/sgx-sim/src/epc.rs crates/sgx-sim/src/epcm.rs crates/sgx-sim/src/machine.rs crates/sgx-sim/src/switchless.rs

crates/sgx-sim/src/lib.rs:
crates/sgx-sim/src/attest.rs:
crates/sgx-sim/src/costs.rs:
crates/sgx-sim/src/driver.rs:
crates/sgx-sim/src/enclave.rs:
crates/sgx-sim/src/epc.rs:
crates/sgx-sim/src/epcm.rs:
crates/sgx-sim/src/machine.rs:
crates/sgx-sim/src/switchless.rs:
