/root/repo/target/debug/examples/webserver_switchless-061c449f51f87831.d: examples/webserver_switchless.rs

/root/repo/target/debug/examples/webserver_switchless-061c449f51f87831: examples/webserver_switchless.rs

examples/webserver_switchless.rs:
