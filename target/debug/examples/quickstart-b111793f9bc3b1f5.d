/root/repo/target/debug/examples/quickstart-b111793f9bc3b1f5.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-b111793f9bc3b1f5: examples/quickstart.rs

examples/quickstart.rs:
