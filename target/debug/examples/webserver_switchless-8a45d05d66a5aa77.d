/root/repo/target/debug/examples/webserver_switchless-8a45d05d66a5aa77.d: examples/webserver_switchless.rs Cargo.toml

/root/repo/target/debug/examples/libwebserver_switchless-8a45d05d66a5aa77.rmeta: examples/webserver_switchless.rs Cargo.toml

examples/webserver_switchless.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
