/root/repo/target/debug/examples/quickstart-8b9a38c1ef2fa2d0.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-8b9a38c1ef2fa2d0: examples/quickstart.rs

examples/quickstart.rs:
