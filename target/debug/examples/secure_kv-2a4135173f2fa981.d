/root/repo/target/debug/examples/secure_kv-2a4135173f2fa981.d: examples/secure_kv.rs

/root/repo/target/debug/examples/secure_kv-2a4135173f2fa981: examples/secure_kv.rs

examples/secure_kv.rs:
