/root/repo/target/debug/examples/epc_stress-bc7c5cef60748fcf.d: examples/epc_stress.rs

/root/repo/target/debug/examples/epc_stress-bc7c5cef60748fcf: examples/epc_stress.rs

examples/epc_stress.rs:
