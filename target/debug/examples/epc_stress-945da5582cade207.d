/root/repo/target/debug/examples/epc_stress-945da5582cade207.d: examples/epc_stress.rs

/root/repo/target/debug/examples/epc_stress-945da5582cade207: examples/epc_stress.rs

examples/epc_stress.rs:
