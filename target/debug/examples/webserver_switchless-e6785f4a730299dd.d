/root/repo/target/debug/examples/webserver_switchless-e6785f4a730299dd.d: examples/webserver_switchless.rs

/root/repo/target/debug/examples/webserver_switchless-e6785f4a730299dd: examples/webserver_switchless.rs

examples/webserver_switchless.rs:
