/root/repo/target/debug/examples/secure_kv-3a6a4982aea7312f.d: examples/secure_kv.rs

/root/repo/target/debug/examples/secure_kv-3a6a4982aea7312f: examples/secure_kv.rs

examples/secure_kv.rs:
