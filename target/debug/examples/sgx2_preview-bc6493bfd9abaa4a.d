/root/repo/target/debug/examples/sgx2_preview-bc6493bfd9abaa4a.d: examples/sgx2_preview.rs

/root/repo/target/debug/examples/sgx2_preview-bc6493bfd9abaa4a: examples/sgx2_preview.rs

examples/sgx2_preview.rs:
