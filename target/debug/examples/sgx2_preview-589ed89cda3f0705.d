/root/repo/target/debug/examples/sgx2_preview-589ed89cda3f0705.d: examples/sgx2_preview.rs Cargo.toml

/root/repo/target/debug/examples/libsgx2_preview-589ed89cda3f0705.rmeta: examples/sgx2_preview.rs Cargo.toml

examples/sgx2_preview.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
