/root/repo/target/debug/examples/sgx2_preview-23b5e2977b061f43.d: examples/sgx2_preview.rs

/root/repo/target/debug/examples/sgx2_preview-23b5e2977b061f43: examples/sgx2_preview.rs

examples/sgx2_preview.rs:
