/root/repo/target/debug/examples/secure_kv-94f5d56633b6b714.d: examples/secure_kv.rs Cargo.toml

/root/repo/target/debug/examples/libsecure_kv-94f5d56633b6b714.rmeta: examples/secure_kv.rs Cargo.toml

examples/secure_kv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
