/root/repo/target/debug/examples/epc_stress-e3bea0bc1986f468.d: examples/epc_stress.rs Cargo.toml

/root/repo/target/debug/examples/libepc_stress-e3bea0bc1986f468.rmeta: examples/epc_stress.rs Cargo.toml

examples/epc_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
