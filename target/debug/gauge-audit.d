/root/repo/target/debug/gauge-audit: /root/repo/crates/audit/src/lexer.rs /root/repo/crates/audit/src/lib.rs /root/repo/crates/audit/src/main.rs /root/repo/crates/audit/src/rules.rs
