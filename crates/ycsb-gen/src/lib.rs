//! YCSB-style workload generation (Cooper et al., SoCC '10).
//!
//! The paper drives its Memcached workload with YCSB (§4.2.7): a *load*
//! phase populates the store with a record count, then a *run* phase
//! issues a read/write operation mix over keys drawn from a skewed
//! distribution. This crate reproduces the generator: key distributions
//! ([`Zipfian`], [`ScrambledZipfian`], [`Uniform`], [`Latest`]) and the
//! standard workload mixes ([`WorkloadMix`]).
//!
//! # Example
//!
//! ```
//! use ycsb_gen::{Generator, Workload, WorkloadMix, Distribution};
//!
//! let wl = Workload::new(WorkloadMix::A, Distribution::Zipfian, 1_000, 42);
//! let ops: Vec<_> = wl.operations().take(100).collect();
//! assert_eq!(ops.len(), 100);
//! assert!(ops.iter().all(|op| op.key < 1_000));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod dist;
pub mod workload;

pub use dist::{
    Distribution, Exponential, Generator, Hotspot, Latest, ScrambledZipfian, Uniform, Zipfian,
};
pub use workload::{OpKind, Operation, Workload, WorkloadMix};
