//! YCSB core workload mixes and the operation stream.

use crate::dist::{
    Distribution, Exponential, Generator, Hotspot, Latest, ScrambledZipfian, Uniform, Zipfian,
};

/// Kind of a generated store operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Point read of one record.
    Read,
    /// Overwrite of one record's value.
    Update,
    /// Insert of a fresh record.
    Insert,
    /// Short range scan starting at the key.
    Scan,
    /// Read-modify-write of one record.
    ReadModifyWrite,
}

/// One generated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Operation {
    /// What to do.
    pub kind: OpKind,
    /// Target key (for inserts: the new record's key).
    pub key: u64,
    /// Scan length (only meaningful for [`OpKind::Scan`]).
    pub scan_len: u32,
}

/// The standard YCSB core mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadMix {
    /// 50 % read / 50 % update — update heavy.
    A,
    /// 95 % read / 5 % update — read mostly.
    B,
    /// 100 % read.
    C,
    /// 95 % read / 5 % insert, latest distribution — read latest.
    D,
    /// 95 % scan / 5 % insert — short ranges.
    E,
    /// 50 % read / 50 % read-modify-write.
    F,
}

impl WorkloadMix {
    /// `(read, update, insert, scan, rmw)` proportions in percent.
    pub fn proportions(&self) -> (u32, u32, u32, u32, u32) {
        match self {
            WorkloadMix::A => (50, 50, 0, 0, 0),
            WorkloadMix::B => (95, 5, 0, 0, 0),
            WorkloadMix::C => (100, 0, 0, 0, 0),
            WorkloadMix::D => (95, 0, 5, 0, 0),
            WorkloadMix::E => (0, 0, 5, 95, 0),
            WorkloadMix::F => (50, 0, 0, 0, 50),
        }
    }
}

/// A configured YCSB workload: mix + distribution + record count.
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct Workload {
    mix: WorkloadMix,
    dist: Distribution,
    records: u64,
    seed: u64,
}

impl Workload {
    /// Creates a workload over `records` initial records.
    ///
    /// # Panics
    ///
    /// Panics if `records` is zero.
    pub fn new(mix: WorkloadMix, dist: Distribution, records: u64, seed: u64) -> Self {
        assert!(records > 0, "need at least one record");
        Workload {
            mix,
            dist,
            records,
            seed,
        }
    }

    /// Number of records loaded in the load phase.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The configured mix.
    pub fn mix(&self) -> WorkloadMix {
        self.mix
    }

    /// Keys of the load phase, in insertion order.
    pub fn load_keys(&self) -> impl Iterator<Item = u64> {
        0..self.records
    }

    /// Infinite operation stream for the run phase; `take(n)` it.
    pub fn operations(&self) -> OperationStream {
        let gen: Box<dyn Generator> = match self.dist {
            Distribution::Uniform => Box::new(Uniform::new(self.records, self.seed)),
            Distribution::Zipfian => Box::new(Zipfian::new(self.records, self.seed)),
            Distribution::ScrambledZipfian => {
                Box::new(ScrambledZipfian::new(self.records, self.seed))
            }
            Distribution::Latest => Box::new(Latest::new(self.records, self.seed)),
            Distribution::Hotspot => Box::new(Hotspot::new(self.records, self.seed)),
            Distribution::Exponential => Box::new(Exponential::new(self.records, self.seed)),
        };
        OperationStream {
            mix: self.mix,
            gen,
            choice: Uniform::new(100, self.seed ^ 0xdead_beef),
            scan_len: Uniform::new(100, self.seed ^ 0x5ca1_ab1e),
            next_insert: self.records,
        }
    }
}

/// Iterator yielding the run-phase [`Operation`]s.
pub struct OperationStream {
    mix: WorkloadMix,
    gen: Box<dyn Generator>,
    choice: Uniform,
    scan_len: Uniform,
    next_insert: u64,
}

impl std::fmt::Debug for OperationStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OperationStream")
            .field("mix", &self.mix)
            .field("next_insert", &self.next_insert)
            .finish()
    }
}

impl Iterator for OperationStream {
    type Item = Operation;

    fn next(&mut self) -> Option<Operation> {
        let (read, update, insert, scan, _rmw) = self.mix.proportions();
        let roll = self.choice.next_key() as u32;
        let kind = if roll < read {
            OpKind::Read
        } else if roll < read + update {
            OpKind::Update
        } else if roll < read + update + insert {
            OpKind::Insert
        } else if roll < read + update + insert + scan {
            OpKind::Scan
        } else {
            OpKind::ReadModifyWrite
        };
        let op = match kind {
            OpKind::Insert => {
                let key = self.next_insert;
                self.next_insert += 1;
                Operation {
                    kind,
                    key,
                    scan_len: 0,
                }
            }
            OpKind::Scan => Operation {
                kind,
                key: self.gen.next_key(),
                scan_len: 1 + self.scan_len.next_key() as u32,
            },
            _ => Operation {
                kind,
                key: self.gen.next_key(),
                scan_len: 0,
            },
        };
        Some(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_proportions_sum_to_100() {
        for mix in [
            WorkloadMix::A,
            WorkloadMix::B,
            WorkloadMix::C,
            WorkloadMix::D,
            WorkloadMix::E,
            WorkloadMix::F,
        ] {
            let (r, u, i, s, m) = mix.proportions();
            assert_eq!(r + u + i + s + m, 100, "{mix:?}");
        }
    }

    #[test]
    fn workload_a_is_half_writes() {
        let wl = Workload::new(WorkloadMix::A, Distribution::Zipfian, 1_000, 1);
        let ops: Vec<_> = wl.operations().take(10_000).collect();
        let updates = ops.iter().filter(|o| o.kind == OpKind::Update).count();
        assert!((4_500..5_500).contains(&updates), "updates {updates}");
    }

    #[test]
    fn workload_c_is_read_only() {
        let wl = Workload::new(WorkloadMix::C, Distribution::Uniform, 100, 2);
        assert!(wl.operations().take(5_000).all(|o| o.kind == OpKind::Read));
    }

    #[test]
    fn inserts_extend_keyspace_monotonically() {
        let wl = Workload::new(WorkloadMix::D, Distribution::Latest, 100, 3);
        let inserts: Vec<_> = wl
            .operations()
            .take(10_000)
            .filter(|o| o.kind == OpKind::Insert)
            .map(|o| o.key)
            .collect();
        assert!(!inserts.is_empty());
        assert!(inserts.windows(2).all(|w| w[1] == w[0] + 1));
        assert_eq!(inserts[0], 100);
    }

    #[test]
    fn scans_have_positive_length() {
        let wl = Workload::new(WorkloadMix::E, Distribution::Zipfian, 1_000, 4);
        for op in wl.operations().take(2_000) {
            if op.kind == OpKind::Scan {
                assert!((1..=100).contains(&op.scan_len));
            }
        }
    }

    #[test]
    fn load_keys_are_dense() {
        let wl = Workload::new(WorkloadMix::A, Distribution::Uniform, 10, 5);
        let keys: Vec<_> = wl.load_keys().collect();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn stream_is_deterministic() {
        let wl = Workload::new(WorkloadMix::B, Distribution::ScrambledZipfian, 500, 77);
        let a: Vec<_> = wl.operations().take(100).collect();
        let b: Vec<_> = wl.operations().take(100).collect();
        assert_eq!(a, b);
    }
}
