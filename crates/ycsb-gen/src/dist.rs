//! Key distributions used by YCSB.
//!
//! [`Zipfian`] follows the YCSB/Gray et al. incremental formulation with
//! the standard constant θ = 0.99; [`ScrambledZipfian`] hashes the ranks
//! so popular keys spread over the keyspace; [`Latest`] skews toward the
//! most recently inserted records.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A pseudo-random key generator over `0..n`.
pub trait Generator {
    /// Draws the next key.
    fn next_key(&mut self) -> u64;
    /// Size of the keyspace.
    fn keyspace(&self) -> u64;
}

/// Which distribution a [`crate::Workload`] should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Uniformly random keys.
    Uniform,
    /// Zipfian over ranks (key 0 most popular).
    Zipfian,
    /// Zipfian over hashed ranks (popularity spread over the keyspace).
    ScrambledZipfian,
    /// Skewed toward the newest records.
    Latest,
    /// A hot set gets most of the traffic (YCSB `hotspot`).
    Hotspot,
    /// Exponentially decaying popularity (YCSB `exponential`).
    Exponential,
}

/// Uniform keys over `0..n`.
#[derive(Debug, Clone)]
pub struct Uniform {
    n: u64,
    rng: StdRng,
}

impl Uniform {
    /// Creates a uniform generator over `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u64, seed: u64) -> Self {
        assert!(n > 0, "keyspace must be non-empty");
        Uniform {
            n,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Generator for Uniform {
    fn next_key(&mut self) -> u64 {
        self.rng.gen_range(0..self.n)
    }

    fn keyspace(&self) -> u64 {
        self.n
    }
}

/// Zipfian distribution over `0..n` with the YCSB constant θ = 0.99.
///
/// Uses the closed-form inverse from the YCSB `ZipfianGenerator`
/// (derived from Gray et al., "Quickly generating billion-record
/// synthetic databases").
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    rng: StdRng,
}

impl Zipfian {
    /// The YCSB default skew.
    pub const DEFAULT_THETA: f64 = 0.99;

    /// Creates a zipfian generator over `0..n` with θ = 0.99.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u64, seed: u64) -> Self {
        Self::with_theta(n, Self::DEFAULT_THETA, seed)
    }

    /// Creates a zipfian generator with an explicit θ in (0, 1).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or θ is out of range.
    pub fn with_theta(n: u64, theta: f64, seed: u64) -> Self {
        assert!(n > 0, "keyspace must be non-empty");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact for small n, Euler-Maclaurin approximation beyond 10^6 so
        // construction of paper-scale keyspaces stays O(1).
        if n <= 1_000_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=1_000_000u64)
                .map(|i| 1.0 / (i as f64).powf(theta))
                .sum();
            let a = 1_000_000f64;
            let b = n as f64;
            head + (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta)
        }
    }

    /// The skew parameter θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

impl Generator for Zipfian {
    fn next_key(&mut self) -> u64 {
        let u: f64 = self.rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let k = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        k.min(self.n - 1)
    }

    fn keyspace(&self) -> u64 {
        self.n
    }
}

/// FNV-1a 64-bit hash, used for scrambling.
#[inline]
pub fn fnv1a(mut x: u64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for _ in 0..8 {
        h ^= x & 0xff;
        h = h.wrapping_mul(0x100000001b3);
        x >>= 8;
    }
    h
}

/// Zipfian over hashed ranks: item popularity is zipfian but popular keys
/// are spread uniformly over the keyspace (YCSB's default for workloads
/// A–D).
#[derive(Debug, Clone)]
pub struct ScrambledZipfian {
    inner: Zipfian,
}

impl ScrambledZipfian {
    /// Creates a scrambled-zipfian generator over `0..n`.
    pub fn new(n: u64, seed: u64) -> Self {
        ScrambledZipfian {
            inner: Zipfian::new(n, seed),
        }
    }
}

impl Generator for ScrambledZipfian {
    fn next_key(&mut self) -> u64 {
        let rank = self.inner.next_key();
        fnv1a(rank) % self.inner.keyspace()
    }

    fn keyspace(&self) -> u64 {
        self.inner.keyspace()
    }
}

/// "Latest" distribution: zipfian over recency, so the most recently
/// inserted records are the most popular.
#[derive(Debug, Clone)]
pub struct Latest {
    inner: Zipfian,
    max_key: u64,
}

impl Latest {
    /// Creates a latest-skewed generator; `max_key` is the newest record.
    pub fn new(n: u64, seed: u64) -> Self {
        Latest {
            inner: Zipfian::new(n, seed),
            max_key: n - 1,
        }
    }

    /// Informs the generator that a new record was inserted.
    pub fn advance(&mut self, new_max: u64) {
        self.max_key = new_max;
    }
}

impl Generator for Latest {
    fn next_key(&mut self) -> u64 {
        let back = self.inner.next_key();
        self.max_key.saturating_sub(back)
    }

    fn keyspace(&self) -> u64 {
        self.inner.keyspace()
    }
}

/// YCSB's hotspot distribution: `hot_fraction` of the keyspace receives
/// `hot_opn_fraction` of the operations, uniform within each side.
#[derive(Debug, Clone)]
pub struct Hotspot {
    n: u64,
    hot_keys: u64,
    /// Probability (x1e6) that an operation targets the hot set.
    hot_opn_ppm: u64,
    rng: StdRng,
}

impl Hotspot {
    /// YCSB defaults: 20% of keys take 80% of operations.
    pub fn new(n: u64, seed: u64) -> Self {
        Self::with_fractions(n, 0.2, 0.8, seed)
    }

    /// Explicit fractions, both in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or a fraction is out of range.
    pub fn with_fractions(n: u64, hot_fraction: f64, hot_opn_fraction: f64, seed: u64) -> Self {
        assert!(n > 0, "keyspace must be non-empty");
        assert!(
            hot_fraction > 0.0 && hot_fraction <= 1.0,
            "hot fraction out of range"
        );
        assert!(
            hot_opn_fraction > 0.0 && hot_opn_fraction <= 1.0,
            "hot op fraction out of range"
        );
        Hotspot {
            n,
            hot_keys: ((n as f64 * hot_fraction) as u64).max(1),
            hot_opn_ppm: (hot_opn_fraction * 1e6) as u64,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Generator for Hotspot {
    fn next_key(&mut self) -> u64 {
        if self.rng.gen_range(0..1_000_000u64) < self.hot_opn_ppm {
            self.rng.gen_range(0..self.hot_keys)
        } else if self.hot_keys < self.n {
            self.hot_keys + self.rng.gen_range(0..self.n - self.hot_keys)
        } else {
            self.rng.gen_range(0..self.n)
        }
    }

    fn keyspace(&self) -> u64 {
        self.n
    }
}

/// YCSB's exponential distribution: key popularity decays exponentially
/// with rank; by default 90% of operations hit the first 10% of keys.
#[derive(Debug, Clone)]
pub struct Exponential {
    n: u64,
    gamma: f64,
    rng: StdRng,
}

impl Exponential {
    /// YCSB defaults (percentile = 95, frac = 0.8571).
    pub fn new(n: u64, seed: u64) -> Self {
        let frac = 0.8571;
        let percentile = 95.0;
        let gamma = -(1.0f64 - percentile / 100.0).ln() / (n as f64 * frac);
        assert!(n > 0, "keyspace must be non-empty");
        Exponential {
            n,
            gamma,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Generator for Exponential {
    fn next_key(&mut self) -> u64 {
        loop {
            let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
            let k = (-u.ln() / self.gamma) as u64;
            if k < self.n {
                return k;
            }
        }
    }

    fn keyspace(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_stays_in_range_and_covers() {
        let mut g = Uniform::new(100, 7);
        let mut seen = [false; 100];
        for _ in 0..10_000 {
            let k = g.next_key();
            assert!(k < 100);
            seen[k as usize] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() > 95);
    }

    #[test]
    fn zipfian_is_skewed() {
        let mut g = Zipfian::new(10_000, 11);
        let mut head = 0;
        let total = 100_000;
        for _ in 0..total {
            if g.next_key() < 100 {
                head += 1;
            }
        }
        // With theta=0.99, the top 1% of ranks draw well over a third of
        // the mass.
        assert!(
            head as f64 / total as f64 > 0.35,
            "head share {head}/{total}"
        );
    }

    #[test]
    fn zipfian_rank_zero_most_popular() {
        let mut g = Zipfian::new(1_000, 3);
        let mut counts = vec![0u32; 1_000];
        for _ in 0..100_000 {
            counts[g.next_key() as usize] += 1;
        }
        let max = counts.iter().copied().max().unwrap();
        assert_eq!(counts[0], max);
    }

    #[test]
    fn zipfian_stays_in_range() {
        let mut g = Zipfian::new(17, 5);
        for _ in 0..10_000 {
            assert!(g.next_key() < 17);
        }
    }

    #[test]
    fn scrambled_spreads_popularity() {
        let mut g = ScrambledZipfian::new(10_000, 11);
        // The most popular key should NOT be key 0 with overwhelming
        // probability (it's fnv1a(0) % n).
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(g.next_key()).or_insert(0u32) += 1;
        }
        let (&hot, _) = counts.iter().max_by_key(|(_, &c)| c).unwrap();
        assert_eq!(hot, fnv1a(0) % 10_000);
        assert_ne!(hot, 0);
    }

    #[test]
    fn latest_prefers_new_records() {
        let mut g = Latest::new(1_000, 13);
        let mut newish = 0;
        for _ in 0..10_000 {
            if g.next_key() >= 900 {
                newish += 1;
            }
        }
        assert!(newish > 5_000, "latest skew too weak: {newish}");
    }

    #[test]
    fn large_keyspace_constructs_fast() {
        // Euler-Maclaurin path: must not take seconds.
        let mut g = Zipfian::new(1 << 30, 1);
        for _ in 0..100 {
            assert!(g.next_key() < (1 << 30));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut g = Zipfian::new(500, 99);
            (0..50).map(|_| g.next_key()).collect()
        };
        let b: Vec<u64> = {
            let mut g = Zipfian::new(500, 99);
            (0..50).map(|_| g.next_key()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn empty_keyspace_rejected() {
        let _ = Uniform::new(0, 0);
    }

    #[test]
    fn hotspot_hits_hot_set() {
        let mut g = Hotspot::new(1_000, 9);
        let mut hot = 0;
        for _ in 0..10_000 {
            let k = g.next_key();
            assert!(k < 1_000);
            if k < 200 {
                hot += 1;
            }
        }
        // 80% of ops to the hot 20%.
        assert!((7_000..9_000).contains(&hot), "hot hits {hot}");
    }

    #[test]
    fn hotspot_whole_space_reachable() {
        let mut g = Hotspot::new(50, 10);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..20_000 {
            seen.insert(g.next_key());
        }
        assert!(seen.len() > 45, "covered {}", seen.len());
    }

    #[test]
    fn exponential_skews_to_low_keys() {
        let mut g = Exponential::new(10_000, 11);
        let mut head = 0;
        for _ in 0..10_000 {
            let k = g.next_key();
            assert!(k < 10_000);
            if k < 1_000 {
                head += 1;
            }
        }
        assert!(head > 2_500, "head {head}");
    }
}
