//! Property-based tests over the memory-hierarchy model: invariants that
//! must hold for any access stream.

use mem_sim::{AccessAttrs, AccessKind, Machine, MachineConfig, PAGE_SIZE};
use proptest::prelude::*;

fn arb_access() -> impl Strategy<Value = (u64, u64, AccessKind)> {
    (
        0u64..(64 * PAGE_SIZE),
        1u64..512,
        prop_oneof![Just(AccessKind::Read), Just(AccessKind::Write)],
    )
}

proptest! {
    /// Page faults never exceed distinct pages touched, and a replayed
    /// stream faults zero times.
    #[test]
    fn faults_bounded_by_distinct_pages(accesses in prop::collection::vec(arb_access(), 1..200)) {
        let mut m = Machine::new(MachineConfig::default());
        let t = m.add_thread();
        let mut pages = std::collections::HashSet::new();
        for &(addr, len, kind) in &accesses {
            m.access(t, addr, len, kind, &AccessAttrs::PLAIN);
            let first = addr / PAGE_SIZE;
            let last = (addr + len - 1) / PAGE_SIZE;
            for p in first..=last {
                pages.insert(p);
            }
        }
        prop_assert_eq!(m.counters().page_faults as usize, pages.len());

        // Replay: all pages are mapped, so zero faults.
        let before = *m.counters();
        for &(addr, len, kind) in &accesses {
            m.access(t, addr, len, kind, &AccessAttrs::PLAIN);
        }
        prop_assert_eq!(m.counters().page_faults, before.page_faults);
    }

    /// Cycle clocks and counters are monotone under any stream.
    #[test]
    fn clocks_and_counters_monotone(accesses in prop::collection::vec(arb_access(), 1..100)) {
        let mut m = Machine::new(MachineConfig::default());
        let t = m.add_thread();
        let mut last_cycles = 0;
        let mut last_reads = 0;
        for &(addr, len, kind) in &accesses {
            m.access(t, addr, len, kind, &AccessAttrs::PLAIN);
            let c = m.cycles_of(t);
            prop_assert!(c >= last_cycles);
            last_cycles = c;
            prop_assert!(m.counters().mem_reads >= last_reads);
            last_reads = m.counters().mem_reads;
        }
    }

    /// An EPC-attributed run of the same stream is never cheaper than the
    /// plain run (MEE + EPCM only add cost).
    #[test]
    fn epc_attrs_never_cheaper(accesses in prop::collection::vec(arb_access(), 1..100)) {
        let mut plain = Machine::new(MachineConfig::default());
        let tp = plain.add_thread();
        let mut epc = Machine::new(MachineConfig::default());
        let te = epc.add_thread();
        for &(addr, len, kind) in &accesses {
            plain.access(tp, addr, len, kind, &AccessAttrs::PLAIN);
            epc.access(te, addr, len, kind, &AccessAttrs::EPC);
        }
        prop_assert!(epc.cycles_of(te) >= plain.cycles_of(tp));
    }

    /// Flushing the TLB between accesses never decreases dTLB misses and
    /// never causes page faults.
    #[test]
    fn flush_increases_misses_not_faults(pages in prop::collection::vec(0u64..32, 2..50)) {
        let mut m = Machine::new(MachineConfig::default());
        let t = m.add_thread();
        for &p in &pages {
            m.access(t, p * PAGE_SIZE, 8, AccessKind::Read, &AccessAttrs::PLAIN);
        }
        let faults = m.counters().page_faults;
        let misses = m.counters().dtlb_misses;
        for &p in &pages {
            m.flush_tlb(t);
            m.access(t, p * PAGE_SIZE, 8, AccessKind::Read, &AccessAttrs::PLAIN);
        }
        prop_assert_eq!(m.counters().page_faults, faults);
        // Every post-flush access must walk.
        prop_assert_eq!(m.counters().dtlb_misses, misses + pages.len() as u64);
    }

    /// Counter arithmetic: (a + b) - b == a for any pair of snapshots.
    #[test]
    fn counter_arithmetic_roundtrips(vals in prop::collection::vec(0u64..1_000_000, 24)) {
        use mem_sim::Counters;
        let mk = |v: &[u64]| Counters {
            mem_reads: v[0],
            mem_writes: v[1],
            dtlb_misses: v[2],
            stlb_hits: v[3],
            walk_cycles: v[4],
            stall_cycles: v[5],
            llc_accesses: v[6],
            llc_misses: v[7],
            page_faults: v[8],
            compute_cycles: v[9],
            tlb_flushes: v[10],
            mee_cycles: v[11],
        };
        let a = mk(&vals[0..12]);
        let b = mk(&vals[12..24]);
        prop_assert_eq!((a + b) - b, a);
        prop_assert_eq!(a.saturating_sub(&(a + b)), Counters::default());
    }
}
