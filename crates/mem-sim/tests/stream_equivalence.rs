//! Equivalence of the batched hot path with the one-call-per-access path.
//!
//! `Machine::access_stream` exists purely as a throughput optimization:
//! for any decomposition of an access sequence into runs, it must charge
//! the exact cycles and counters that a loop of `Machine::access` calls
//! would. These properties pin that contract, including at the edges the
//! batched path clamps (top-of-address-space runs) and under the `audit`
//! feature's cycle-decomposition identity (which runs inside the stream
//! path itself).

use mem_sim::{AccessAttrs, AccessKind, Machine, MachineConfig, StreamRun, PAGE_SIZE};
use proptest::prelude::*;

fn arb_run() -> impl Strategy<Value = (u64, u64, AccessKind)> {
    (
        0u64..(64 * PAGE_SIZE),
        0u64..512,
        prop_oneof![Just(AccessKind::Read), Just(AccessKind::Write)],
    )
}

/// Top-of-address-space runs, including ones whose naive `vaddr + len`
/// wraps (the clamp regression from the pre-stream hot path).
fn arb_edge_run() -> impl Strategy<Value = (u64, u64, AccessKind)> {
    (
        (u64::MAX - 4 * PAGE_SIZE)..u64::MAX,
        0u64..512,
        prop_oneof![Just(AccessKind::Read), Just(AccessKind::Write)],
    )
}

fn assert_streams_match(runs: &[StreamRun], attrs: &AccessAttrs) {
    let mut batched = Machine::new(MachineConfig::default());
    let tb = batched.add_thread();
    let mut sequential = Machine::new(MachineConfig::default());
    let ts = sequential.add_thread();

    let out = batched.access_stream(tb, runs, attrs);
    let mut cycles = 0u64;
    let mut dtlb_miss = false;
    let mut llc_miss = false;
    let mut minor_fault = false;
    for r in runs {
        let o = sequential.access(ts, r.vaddr, r.len, r.kind, attrs);
        cycles += o.cycles;
        dtlb_miss |= o.dtlb_miss;
        llc_miss |= o.llc_miss;
        minor_fault |= o.minor_fault;
    }
    assert_eq!(out.cycles, cycles, "aggregate cycles diverge");
    assert_eq!(out.dtlb_miss, dtlb_miss, "dTLB-miss flags diverge");
    assert_eq!(out.llc_miss, llc_miss, "LLC-miss flags diverge");
    assert_eq!(out.minor_fault, minor_fault, "fault flags diverge");
    assert_eq!(
        batched.counters(),
        sequential.counters(),
        "counter snapshots diverge"
    );
    assert_eq!(batched.cycles_of(tb), sequential.cycles_of(ts));
}

fn to_runs(tuples: &[(u64, u64, AccessKind)]) -> Vec<StreamRun> {
    tuples
        .iter()
        .map(|&(vaddr, len, kind)| StreamRun::new(vaddr, len, kind))
        .collect()
}

proptest! {
    /// Any decomposition into runs charges exactly what a loop of
    /// single `access` calls charges, for plain memory.
    #[test]
    fn stream_equals_access_loop_plain(tuples in prop::collection::vec(arb_run(), 0..120)) {
        assert_streams_match(&to_runs(&tuples), &AccessAttrs::PLAIN);
    }

    /// Same, with EPC attributes (MEE multiplier + EPCM check cycles on
    /// every walk) so the attribute-dependent arms stay covered.
    #[test]
    fn stream_equals_access_loop_epc(tuples in prop::collection::vec(arb_run(), 0..120)) {
        assert_streams_match(&to_runs(&tuples), &AccessAttrs::EPC);
    }

    /// Runs hugging `u64::MAX` clamp instead of wrapping, and still match
    /// the sequential path byte for byte.
    #[test]
    fn stream_equals_access_loop_at_address_space_top(
        edge in prop::collection::vec(arb_edge_run(), 1..40),
        low in prop::collection::vec(arb_run(), 0..20),
    ) {
        // Interleave edge and low runs so TLB/LLC state is shared.
        let mut tuples = Vec::new();
        let mut lo = low.iter();
        for (i, e) in edge.iter().enumerate() {
            tuples.push(*e);
            if i % 2 == 0 {
                if let Some(l) = lo.next() {
                    tuples.push(*l);
                }
            }
        }
        assert_streams_match(&to_runs(&tuples), &AccessAttrs::PLAIN);
    }
}

#[test]
fn top_of_address_space_run_touches_one_clamped_line() {
    // vaddr + len - 1 would be u64::MAX + 56 without the clamp; the run
    // must resolve to the single last line, not wrap to page zero.
    let mut m = Machine::new(MachineConfig::default());
    let t = m.add_thread();
    let out = m.access(t, u64::MAX - 7, 64, AccessKind::Read, &AccessAttrs::PLAIN);
    assert!(out.cycles > 0);
    assert_eq!(m.counters().mem_reads, 1, "exactly one clamped line");
    assert_eq!(m.counters().page_faults, 1, "top page demand-faults once");
}

#[test]
fn zero_length_runs_charge_nothing() {
    let mut m = Machine::new(MachineConfig::default());
    let t = m.add_thread();
    let runs = [
        StreamRun::new(0, 0, AccessKind::Read),
        StreamRun::new(u64::MAX, 0, AccessKind::Write),
    ];
    let out = m.access_stream(t, &runs, &AccessAttrs::PLAIN);
    assert_eq!(out.cycles, 0);
    assert_eq!(*m.counters(), mem_sim::Counters::default());
}
