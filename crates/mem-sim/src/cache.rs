//! Cache-hierarchy model: per-thread L1 front-ends and a shared,
//! set-associative last-level cache (LLC).
//!
//! Only the LLC is fully timed per the paper's counters ("LLC misses");
//! the L1 exists so that hot lines do not reach the LLC at all, which is
//! what makes LLC-miss counts meaningful for cache-friendly workloads.

use crate::setidx::SetIndex;
use crate::LINE_SHIFT;

/// Outcome of a cache access, naming the level that supplied the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the per-thread L1.
    L1Hit,
    /// Served from the shared LLC.
    LlcHit,
    /// Missed the entire hierarchy; DRAM supplies the line.
    Miss,
}

/// A direct-mapped per-thread L1 data cache (tag array only).
#[derive(Debug, Clone)]
pub struct L1Cache {
    tags: Vec<u64>,
}

impl L1Cache {
    /// Creates an L1 with `lines` cache lines (rounded up to a power of
    /// two).
    pub fn new(lines: usize) -> Self {
        let n = lines.next_power_of_two().max(1);
        L1Cache {
            tags: vec![u64::MAX; n],
        }
    }

    #[inline]
    fn slot(&self, line: u64) -> usize {
        (line as usize) & (self.tags.len() - 1)
    }

    /// Probes and fills in one step; returns `true` on hit.
    #[inline]
    pub fn access(&mut self, line: u64) -> bool {
        let s = self.slot(line);
        if self.tags[s] == line {
            true
        } else {
            self.tags[s] = line;
            false
        }
    }

    /// Invalidates every line (used when modeling cache pollution on
    /// enclave transitions is desired).
    pub fn flush(&mut self) {
        self.tags.fill(u64::MAX);
    }
}

impl Default for L1Cache {
    /// 32 KiB of 64-byte lines (512 lines), the usual L1D size.
    fn default() -> Self {
        L1Cache::new(512)
    }
}

/// The shared set-associative last-level cache.
///
/// Defaults model the 12 MB, 16-way LLC of the paper's Xeon E-2186G
/// (Table 3).
///
/// ```
/// use mem_sim::cache::Llc;
/// let mut llc = Llc::default();
/// assert!(!llc.access(0));  // cold miss
/// assert!(llc.access(0));   // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Llc {
    tags: Vec<u64>,
    /// LRU stamps; u64 so the clock cannot wrap within a run (a u32
    /// clock wraps after 2^32 accesses — the run lengths the batched
    /// access path sustains — making ancient lines look freshly used).
    stamps: Vec<u64>,
    /// Division-free `line -> set` mapping, exact against `%` (the
    /// default 12 MB geometry has 12288 sets, which is not a power of
    /// two, so this is the multiply-high reciprocal path).
    set_index: SetIndex,
    ways: usize,
    clock: u64,
}

impl Llc {
    /// Creates an LLC with capacity `bytes`, associativity `ways` and
    /// 64-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` does not describe at least one full set.
    pub fn new(bytes: usize, ways: usize) -> Self {
        let lines = bytes >> LINE_SHIFT;
        assert!(ways > 0 && lines >= ways, "LLC must hold at least one set");
        let sets = lines / ways;
        Llc {
            tags: vec![u64::MAX; sets * ways],
            stamps: vec![0; sets * ways],
            set_index: SetIndex::new(sets),
            ways,
            clock: 0,
        }
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        self.set_index.index(line)
    }

    /// Probes for `line`, filling it on a miss; returns `true` on hit.
    ///
    /// The hit scan runs first as a bare equality walk — most probes
    /// hit, and keeping victim bookkeeping out of that path lets it
    /// vectorize. The miss path then picks the victim exactly as the
    /// old combined scan did: the *last* invalid way if any exists,
    /// else the smallest stamp.
    #[inline]
    pub fn access(&mut self, line: u64) -> bool {
        let base = self.set_of(line) * self.ways;
        self.clock += 1;
        let clock = self.clock;
        let tags = &mut self.tags[base..base + self.ways];
        if let Some(w) = tags.iter().position(|&t| t == line) {
            self.stamps[base + w] = clock;
            return true;
        }
        let stamps = &mut self.stamps[base..base + self.ways];
        let mut victim = 0;
        let mut victim_stamp = u64::MAX;
        let mut have_invalid = false;
        for w in 0..tags.len() {
            if tags[w] == u64::MAX {
                // Prefer an invalid way over evicting a live line.
                victim = w;
                have_invalid = true;
            } else if !have_invalid && stamps[w] < victim_stamp {
                victim = w;
                victim_stamp = stamps[w];
            }
        }
        tags[victim] = line;
        stamps[victim] = clock;
        false
    }

    /// Reports residency without touching replacement state.
    pub fn contains(&self, line: u64) -> bool {
        let set = self.set_of(line);
        let base = set * self.ways;
        self.tags[base..base + self.ways].contains(&line)
    }

    /// Number of sets (exposed for tests and sizing diagnostics).
    pub fn sets(&self) -> usize {
        self.set_index.sets()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }
}

impl Default for Llc {
    fn default() -> Self {
        Llc::new(12 << 20, 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_direct_mapped_conflicts() {
        let mut l1 = L1Cache::new(2);
        assert!(!l1.access(0));
        assert!(l1.access(0));
        assert!(!l1.access(2)); // same slot as 0
        assert!(!l1.access(0)); // evicted by 2
    }

    #[test]
    fn llc_lru_within_set() {
        // 2 sets x 2 ways, 64B lines => 256 bytes.
        let mut llc = Llc::new(256, 2);
        assert_eq!(llc.sets(), 2);
        // Lines 0,2,4 all land in set 0.
        llc.access(0);
        llc.access(2);
        llc.access(0); // refresh 0
        llc.access(4); // evict 2 (LRU)
        assert!(llc.contains(0));
        assert!(!llc.contains(2));
        assert!(llc.contains(4));
    }

    #[test]
    fn llc_hit_after_fill() {
        let mut llc = Llc::default();
        assert!(!llc.access(1234));
        assert!(llc.access(1234));
    }

    #[test]
    fn default_llc_geometry_matches_xeon() {
        let llc = Llc::default();
        assert_eq!(llc.ways(), 16);
        assert_eq!(llc.sets() * llc.ways() * 64, 12 << 20);
    }

    #[test]
    fn llc_lru_survives_beyond_u32_clock() {
        // Companion to the TLB clock-width fix: stamps crossing the old
        // u32 wrap point must still compare in true age order.
        let mut llc = Llc::new(256, 2);
        llc.clock = u64::from(u32::MAX) - 1;
        llc.access(0);
        llc.access(2);
        llc.access(0); // refresh 0; 2 is LRU with a pre-wrap stamp
        llc.access(4); // must evict 2
        assert!(llc.contains(0));
        assert!(!llc.contains(2));
        assert!(llc.contains(4));
    }

    #[test]
    fn power_of_two_llc_uses_mask_indexing() {
        let llc = Llc::new(1 << 20, 16); // 1024 sets -> mask path
        assert!(llc.set_index.uses_mask());
        for line in (0..10_000u64).chain([u64::MAX - 5, u64::MAX]) {
            assert_eq!(llc.set_of(line), (line % llc.sets() as u64) as usize);
        }
        // Default geometry (12288 sets) takes the reciprocal path and
        // must still agree with division exactly.
        let llc = Llc::default();
        assert!(!llc.set_index.uses_mask());
        for line in (0..100_000u64).chain([u64::MAX - 5, u64::MAX, 1 << 58]) {
            assert_eq!(llc.set_of(line), (line % llc.sets() as u64) as usize);
        }
    }

    #[test]
    fn working_set_larger_than_llc_thrashes() {
        let mut llc = Llc::new(1 << 10, 4); // 1 KiB: 16 lines
        for line in 0..64 {
            llc.access(line);
        }
        // Re-touch the first lines: all must miss again.
        let mut misses = 0;
        for line in 0..16 {
            if !llc.access(line) {
                misses += 1;
            }
        }
        assert_eq!(misses, 16);
    }
}
