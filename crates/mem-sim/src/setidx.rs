//! Exact set-index computation without hardware division.
//!
//! Every set-associative structure in the model (LLC, both TLB levels)
//! maps a line or page number to a set with `n % sets`. The set count is
//! fixed at construction, so the hot path can replace the ~30-cycle
//! 64-bit `div` with either a mask (power-of-two set counts) or a
//! Granlund–Montgomery multiply-high reciprocal plus one conditional
//! correction (~5 cycles) — in both cases computing *exactly* `n % sets`
//! for every `u64`, so replacement behavior is bit-identical to the
//! division it replaces.
//!
//! Reciprocal correctness: let `d >= 2` be a non-power-of-two divisor
//! and `M = floor(2^64 / d)`, so `2^64 = M*d + e` with `0 < e < d`.
//! For any `n < 2^64`,
//!
//! ```text
//! q̂ = floor(n*M / 2^64) = floor(n/d - n*e / (d*2^64))
//! ```
//!
//! and since `n*e / (d*2^64) < n/2^64 < 1`, `q̂` is `floor(n/d)` or one
//! less. Hence `r̂ = n - q̂*d` is the true remainder or the remainder
//! plus `d`, fixed by a single conditional subtraction. The property
//! test below checks the full agreement with `%` over adversarial and
//! random inputs.

/// Precomputed strategy for `n % sets` with a construction-time divisor.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SetIndex {
    /// The divisor (number of sets).
    sets: u64,
    /// `sets - 1` when `sets` is a power of two, else `u64::MAX` as a
    /// "use the reciprocal" sentinel (set counts never get that large).
    mask: u64,
    /// `floor(2^64 / sets)` for the reciprocal path; unused under mask.
    magic: u64,
}

impl SetIndex {
    /// Builds the index function for `sets >= 1` sets.
    pub(crate) fn new(sets: usize) -> Self {
        let d = sets as u64;
        assert!(d >= 1, "at least one set required");
        if d.is_power_of_two() {
            SetIndex {
                sets: d,
                mask: d - 1,
                magic: 0,
            }
        } else {
            SetIndex {
                sets: d,
                mask: u64::MAX,
                magic: ((1u128 << 64) / d as u128) as u64,
            }
        }
    }

    /// Exactly `n % sets`, division-free.
    #[inline]
    pub(crate) fn index(&self, n: u64) -> usize {
        if self.mask != u64::MAX {
            (n & self.mask) as usize
        } else {
            let q = ((n as u128 * self.magic as u128) >> 64) as u64;
            let r = n - q * self.sets;
            let r = if r >= self.sets { r - self.sets } else { r };
            r as usize
        }
    }

    /// The divisor this index reduces by.
    #[inline]
    pub(crate) fn sets(&self) -> usize {
        self.sets as usize
    }

    /// Whether the power-of-two mask path is active (for tests).
    #[cfg(test)]
    pub(crate) fn uses_mask(&self) -> bool {
        self.mask != u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(sets: usize, n: u64) {
        let idx = SetIndex::new(sets);
        assert_eq!(
            idx.index(n),
            (n % sets as u64) as usize,
            "sets={sets} n={n}"
        );
    }

    #[test]
    fn agrees_with_division_on_edge_values() {
        for sets in [1usize, 2, 3, 5, 6, 7, 12, 16, 1024, 12288, 999_983] {
            for n in [
                0u64,
                1,
                2,
                sets as u64 - 1,
                sets as u64,
                sets as u64 + 1,
                u64::MAX - 1,
                u64::MAX,
                1 << 63,
                (1 << 63) - 1,
            ] {
                check(sets, n);
            }
        }
    }

    #[test]
    fn agrees_with_division_on_lcg_sweep() {
        let mut state = 0x1234_5678_9abc_def0u64;
        for sets in [3usize, 12288, 100, 48, 65_535] {
            for _ in 0..10_000 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                check(sets, state);
            }
        }
    }

    #[test]
    fn default_geometries_pick_expected_paths() {
        assert!(SetIndex::new(16).uses_mask()); // L1 dTLB
        assert!(SetIndex::new(128).uses_mask()); // STLB
        assert!(!SetIndex::new(12288).uses_mask()); // 12 MB / 16-way LLC
        assert_eq!(SetIndex::new(12288).sets(), 12288);
    }
}
