//! Two-level data-TLB model.
//!
//! Mirrors the translation hardware of the evaluated CPU: a small,
//! fully-timed L1 dTLB backed by a larger second-level TLB (STLB). Both are
//! set-associative with LRU replacement. SGX enclave transitions flush the
//! whole structure ([`Tlb::flush`]), which is the mechanism behind the
//! paper's dTLB-miss explosions (§2.3, Appendix B).

use crate::setidx::SetIndex;

/// Result of a TLB lookup, telling the machine which structure satisfied
/// the translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbOutcome {
    /// Hit in the first-level dTLB: translation is free.
    L1Hit,
    /// Missed the L1 dTLB but hit the second-level TLB.
    StlbHit,
    /// Missed both levels: a page walk is required.
    Miss,
}

/// One set-associative TLB level.
///
/// Flushes are O(1): validity is carried by the LRU stamps themselves.
/// An entry is live iff its stamp is at least the level's `era`, and a
/// flush just advances `era` past the current clock, staling every entry
/// at once. This matters because SGX flushes the TLB on *every* enclave
/// transition and ECALL-heavy workloads perform millions of them.
///
/// Three hot-path properties the rest of the simulator relies on:
///
/// * the LRU clock and stamps are `u64`. They used to be `u32`, which
///   wraps after 2^32 lookups — exactly the run lengths the batched
///   access-stream API sustains — making ancient entries look freshly
///   used and silently corrupting replacement order. A u64 clock at one
///   tick per lookup cannot wrap within any feasible run.
/// * the set index is division-free: a mask when the set count is a
///   power of two (every Table 3 geometry is), else an exact
///   multiply-high reciprocal ([`SetIndex`]).
/// * validity needs no third per-entry array (the old scheme kept an
///   install-epoch word per way) and no reserved tag value: the hit
///   predicate is two loads, `tag == page && stamp >= era`, and the
///   miss victim is simply the globally smallest stamp in the set —
///   every stale stamp predates `era`, so stale ways are always
///   consumed before a live way is evicted, exactly as the epoch
///   scheme's "first invalid way wins" rule did. Which *particular*
///   stale way is overwritten can differ from the old scheme, but stale
///   entries can never hit, so the live contents of the set — the only
///   observable state — evolve identically.
#[derive(Debug, Clone)]
struct TlbLevel {
    /// `sets x ways` page-number tags. No value is reserved: a tag is
    /// meaningful only when its stamp says the way is live.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`; doubles as the validity bit
    /// (live iff `stamp >= era`).
    stamps: Vec<u64>,
    /// Division-free `page -> set` mapping, exact against `%`.
    set_index: SetIndex,
    ways: usize,
    clock: u64,
    /// Stamps below this are stale. Starts at 1 so the zero-initialized
    /// stamps mark every way invalid.
    era: u64,
}

impl TlbLevel {
    fn new(entries: usize, ways: usize) -> Self {
        assert!(ways > 0 && entries >= ways && entries.is_multiple_of(ways));
        let sets = entries / ways;
        TlbLevel {
            tags: vec![u64::MAX; entries],
            stamps: vec![0; entries],
            set_index: SetIndex::new(sets),
            ways,
            clock: 0,
            era: 1,
        }
    }

    #[inline]
    fn set_of(&self, page: u64) -> usize {
        self.set_index.index(page)
    }

    /// Single-pass probe: looks up `page`, refreshing LRU and returning
    /// `true` on a hit; on a miss installs `page` over the victim way
    /// (a stale way if one exists, else the LRU way) chosen during the
    /// same scan.
    ///
    /// This replaces the old `lookup` + `insert` pair, which scanned the
    /// set twice on every miss. The hit scan is the entire common case:
    /// two loads and two compares per way, no validity side-array.
    #[inline]
    fn probe_install(&mut self, page: u64) -> bool {
        let base = self.set_of(page) * self.ways;
        self.clock += 1;
        let clock = self.clock;
        let era = self.era;
        let tags = &mut self.tags[base..base + self.ways];
        let stamps = &mut self.stamps[base..base + self.ways];
        // The hit scan visits every way instead of exiting at the match:
        // at most one live way can hold `page` (installs only happen on
        // misses), so accumulating the match index is equivalent — and a
        // fixed-trip-count loop compiles to straight-line compares with a
        // single well-predicted branch at the end, where the early-exit
        // version mispredicts on the (data-dependent) hit way.
        let mut hit = usize::MAX;
        for w in 0..tags.len() {
            if tags[w] == page && stamps[w] >= era {
                hit = w;
            }
        }
        if hit != usize::MAX {
            stamps[hit] = clock;
            return true;
        }
        // Miss: the smallest stamp is the victim. Stale stamps all
        // predate `era` and every live stamp is >= `era`, so this
        // reuses stale ways before evicting any live one; among live
        // ways it is exactly LRU. Zero-filled stamps make a cold set
        // fill left to right, matching the old first-invalid-way rule.
        let mut victim = 0;
        for w in 1..stamps.len() {
            if stamps[w] < stamps[victim] {
                victim = w;
            }
        }
        tags[victim] = page;
        stamps[victim] = clock;
        false
    }

    fn flush(&mut self) {
        // Anything stamped from here on (stamps start at clock + 1) is
        // live; everything already present is stale.
        self.era = self.clock + 1;
    }

    fn resident(&self, page: u64) -> bool {
        let set = self.set_of(page);
        let base = set * self.ways;
        (0..self.ways).any(|w| self.tags[base + w] == page && self.stamps[base + w] >= self.era)
    }
}

/// A per-hardware-thread two-level data TLB.
///
/// Defaults model the paper's Xeon E-2186G: a 64-entry 4-way L1 dTLB and a
/// 1536-entry 12-way STLB.
///
/// ```
/// use mem_sim::tlb::{Tlb, TlbOutcome};
/// let mut tlb = Tlb::default();
/// assert_eq!(tlb.translate(7), TlbOutcome::Miss);
/// assert_eq!(tlb.translate(7), TlbOutcome::L1Hit);
/// tlb.flush();
/// assert_eq!(tlb.translate(7), TlbOutcome::Miss);
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    l1: TlbLevel,
    stlb: TlbLevel,
}

impl Tlb {
    /// Creates a TLB with explicit sizing. Entry counts must be multiples
    /// of their way counts.
    ///
    /// # Panics
    ///
    /// Panics if a level's entry count is zero, smaller than its
    /// associativity, or not divisible by it.
    pub fn new(l1_entries: usize, l1_ways: usize, stlb_entries: usize, stlb_ways: usize) -> Self {
        Tlb {
            l1: TlbLevel::new(l1_entries, l1_ways),
            stlb: TlbLevel::new(stlb_entries, stlb_ways),
        }
    }

    /// Translates `page`, updating replacement state and filling the
    /// missing levels (the fill models the hardware installing the PTE
    /// after a successful walk).
    pub fn translate(&mut self, page: u64) -> TlbOutcome {
        // Each level is probed and filled in one set scan; an L1 miss
        // installs into the L1 unconditionally (the hardware fill), and
        // the STLB is only written when it missed too.
        if self.l1.probe_install(page) {
            return TlbOutcome::L1Hit;
        }
        if self.stlb.probe_install(page) {
            return TlbOutcome::StlbHit;
        }
        TlbOutcome::Miss
    }

    /// Drops every translation, as the hardware does on an enclave
    /// transition (EENTER/EEXIT/AEX).
    pub fn flush(&mut self) {
        self.l1.flush();
        self.stlb.flush();
    }

    /// Reports whether `page` is currently resident in either level
    /// without perturbing replacement state.
    pub fn contains(&self, page: u64) -> bool {
        self.l1.resident(page) || self.stlb.resident(page)
    }
}

impl Default for Tlb {
    fn default() -> Self {
        Tlb::new(64, 4, 1536, 12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_lookup_hits_l1() {
        let mut t = Tlb::default();
        assert_eq!(t.translate(42), TlbOutcome::Miss);
        assert_eq!(t.translate(42), TlbOutcome::L1Hit);
    }

    #[test]
    fn l1_eviction_falls_back_to_stlb() {
        // A tiny 2-entry direct-ish L1 with a big STLB: filling the L1 set
        // evicts, but the STLB still holds the page.
        let mut t = Tlb::new(2, 1, 64, 4);
        // Pages 0 and 2 map to set 0; page 1 maps to set 1 (2 sets).
        assert_eq!(t.translate(0), TlbOutcome::Miss);
        assert_eq!(t.translate(2), TlbOutcome::Miss); // evicts 0 from L1
        assert_eq!(t.translate(0), TlbOutcome::StlbHit);
    }

    #[test]
    fn flush_clears_everything() {
        let mut t = Tlb::default();
        for p in 0..100 {
            t.translate(p);
        }
        t.flush();
        for p in 0..100 {
            assert!(!t.contains(p));
        }
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut t = Tlb::new(2, 2, 4, 2); // one L1 set of 2 ways... sets=1
        t.translate(10);
        t.translate(20);
        t.translate(10); // refresh 10; 20 is now LRU in L1
        t.translate(30); // evicts 20 from L1
        assert!(t.l1.resident(10));
        assert!(!t.l1.resident(20));
        assert!(t.l1.resident(30));
    }

    #[test]
    fn capacity_miss_after_wraparound_working_set() {
        let mut t = Tlb::new(4, 2, 8, 2);
        for p in 0..64 {
            t.translate(p);
        }
        // Early pages must have been displaced from both levels.
        assert_eq!(t.translate(0), TlbOutcome::Miss);
    }

    #[test]
    #[should_panic]
    fn zero_ways_rejected() {
        let _ = Tlb::new(4, 0, 8, 2);
    }

    #[test]
    fn lru_order_survives_beyond_u32_clock() {
        // Regression for the old u32 LRU clock: after 2^32 lookups the
        // clock wrapped and ancient entries looked freshly used. Start
        // the (now u64) clock just under the old wrap point and check
        // that replacement order stays exact as stamps cross it.
        let mut t = Tlb::new(2, 2, 4, 2);
        t.l1.clock = u64::from(u32::MAX) - 1;
        t.stlb.clock = u64::from(u32::MAX) - 1;
        t.translate(10);
        t.translate(20);
        t.translate(10); // refresh 10; 20 is LRU with a pre-wrap stamp
        t.translate(30); // must evict 20, not 10
        assert!(t.l1.resident(10));
        assert!(!t.l1.resident(20));
        assert!(t.l1.resident(30));
        assert!(t.l1.clock > u64::from(u32::MAX));
    }

    #[test]
    fn non_power_of_two_set_count_uses_division_fallback() {
        // 6 entries / 2 ways = 3 sets: exercises the reciprocal path
        // behind the mask. Pages 0 and 3 collide in set 0; page 1 does
        // not.
        let mut t = Tlb::new(6, 2, 12, 2);
        assert!(!t.l1.set_index.uses_mask());
        assert_eq!(t.l1.set_of(0), t.l1.set_of(3));
        assert_ne!(t.l1.set_of(0), t.l1.set_of(1));
        for p in [0u64, 3, 6, 9] {
            t.translate(p);
        }
        // Set 0 holds the two most recent colliding pages.
        assert!(!t.l1.resident(0));
        assert!(t.l1.resident(6));
        assert!(t.l1.resident(9));
    }

    #[test]
    fn mask_and_division_agree_for_power_of_two_sets() {
        let masked = TlbLevel::new(64, 4); // 16 sets -> mask path
        assert!(masked.set_index.uses_mask());
        for page in (0..10_000u64).chain([u64::MAX - 7, u64::MAX]) {
            assert_eq!(
                masked.set_of(page),
                (page % masked.set_index.sets() as u64) as usize
            );
        }
        let odd = TlbLevel::new(6, 2); // 3 sets -> reciprocal path
        for page in (0..10_000u64).chain([u64::MAX - 7, u64::MAX]) {
            assert_eq!(odd.set_of(page), (page % 3) as usize);
        }
    }

    #[test]
    fn probe_install_prefers_invalid_ways_over_eviction() {
        // After a flush every way is stale; refills must reuse stale ways
        // rather than evicting each other out of a half-empty set.
        let mut t = Tlb::new(4, 4, 8, 2); // one L1 set, 4 ways
        for p in 0..4 {
            t.translate(p);
        }
        t.flush();
        for p in 10..13 {
            t.translate(p); // 3 installs into a 4-way set
        }
        for p in 10..13 {
            assert!(t.l1.resident(p));
        }
    }
}
