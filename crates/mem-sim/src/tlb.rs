//! Two-level data-TLB model.
//!
//! Mirrors the translation hardware of the evaluated CPU: a small,
//! fully-timed L1 dTLB backed by a larger second-level TLB (STLB). Both are
//! set-associative with LRU replacement. SGX enclave transitions flush the
//! whole structure ([`Tlb::flush`]), which is the mechanism behind the
//! paper's dTLB-miss explosions (§2.3, Appendix B).

/// Result of a TLB lookup, telling the machine which structure satisfied
/// the translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbOutcome {
    /// Hit in the first-level dTLB: translation is free.
    L1Hit,
    /// Missed the L1 dTLB but hit the second-level TLB.
    StlbHit,
    /// Missed both levels: a page walk is required.
    Miss,
}

/// One set-associative TLB level.
///
/// Flushes are O(1): every entry carries the epoch it was installed in,
/// and a flush just bumps the level's epoch. This matters because SGX
/// flushes the TLB on *every* enclave transition and ECALL-heavy
/// workloads perform millions of them.
#[derive(Debug, Clone)]
struct TlbLevel {
    /// `sets x ways` page-number tags; `u64::MAX` marks an empty way.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u32>,
    /// Install epoch parallel to `tags`; stale epoch == invalid.
    epochs: Vec<u64>,
    sets: usize,
    ways: usize,
    clock: u32,
    epoch: u64,
}

impl TlbLevel {
    fn new(entries: usize, ways: usize) -> Self {
        assert!(ways > 0 && entries >= ways && entries.is_multiple_of(ways));
        let sets = entries / ways;
        TlbLevel {
            tags: vec![u64::MAX; entries],
            stamps: vec![0; entries],
            epochs: vec![0; entries],
            sets,
            ways,
            clock: 0,
            epoch: 1,
        }
    }

    #[inline]
    fn set_of(&self, page: u64) -> usize {
        (page as usize) % self.sets
    }

    #[inline]
    fn valid(&self, idx: usize) -> bool {
        self.epochs[idx] == self.epoch && self.tags[idx] != u64::MAX
    }

    /// Looks up `page`; on hit refreshes LRU and returns `true`.
    fn lookup(&mut self, page: u64) -> bool {
        let set = self.set_of(page);
        let base = set * self.ways;
        self.clock = self.clock.wrapping_add(1);
        for w in 0..self.ways {
            if self.valid(base + w) && self.tags[base + w] == page {
                self.stamps[base + w] = self.clock;
                return true;
            }
        }
        false
    }

    /// Installs `page`, evicting the LRU way of its set if needed.
    fn insert(&mut self, page: u64) {
        let set = self.set_of(page);
        let base = set * self.ways;
        self.clock = self.clock.wrapping_add(1);
        let mut victim = 0;
        let mut oldest_age = 0;
        for w in 0..self.ways {
            if !self.valid(base + w) {
                victim = w;
                break;
            }
            // Age relative to the current clock handles stamp wraparound.
            let age = self.clock.wrapping_sub(self.stamps[base + w]);
            if age >= oldest_age {
                victim = w;
                oldest_age = age;
            }
        }
        self.tags[base + victim] = page;
        self.stamps[base + victim] = self.clock;
        self.epochs[base + victim] = self.epoch;
    }

    fn flush(&mut self) {
        self.epoch += 1;
    }

    fn resident(&self, page: u64) -> bool {
        let set = self.set_of(page);
        let base = set * self.ways;
        (0..self.ways).any(|w| self.valid(base + w) && self.tags[base + w] == page)
    }
}

/// A per-hardware-thread two-level data TLB.
///
/// Defaults model the paper's Xeon E-2186G: a 64-entry 4-way L1 dTLB and a
/// 1536-entry 12-way STLB.
///
/// ```
/// use mem_sim::tlb::{Tlb, TlbOutcome};
/// let mut tlb = Tlb::default();
/// assert_eq!(tlb.translate(7), TlbOutcome::Miss);
/// assert_eq!(tlb.translate(7), TlbOutcome::L1Hit);
/// tlb.flush();
/// assert_eq!(tlb.translate(7), TlbOutcome::Miss);
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    l1: TlbLevel,
    stlb: TlbLevel,
}

impl Tlb {
    /// Creates a TLB with explicit sizing. Entry counts must be multiples
    /// of their way counts.
    ///
    /// # Panics
    ///
    /// Panics if a level's entry count is zero, smaller than its
    /// associativity, or not divisible by it.
    pub fn new(l1_entries: usize, l1_ways: usize, stlb_entries: usize, stlb_ways: usize) -> Self {
        Tlb {
            l1: TlbLevel::new(l1_entries, l1_ways),
            stlb: TlbLevel::new(stlb_entries, stlb_ways),
        }
    }

    /// Translates `page`, updating replacement state and filling the
    /// missing levels (the fill models the hardware installing the PTE
    /// after a successful walk).
    pub fn translate(&mut self, page: u64) -> TlbOutcome {
        if self.l1.lookup(page) {
            return TlbOutcome::L1Hit;
        }
        if self.stlb.lookup(page) {
            self.l1.insert(page);
            return TlbOutcome::StlbHit;
        }
        self.stlb.insert(page);
        self.l1.insert(page);
        TlbOutcome::Miss
    }

    /// Drops every translation, as the hardware does on an enclave
    /// transition (EENTER/EEXIT/AEX).
    pub fn flush(&mut self) {
        self.l1.flush();
        self.stlb.flush();
    }

    /// Reports whether `page` is currently resident in either level
    /// without perturbing replacement state.
    pub fn contains(&self, page: u64) -> bool {
        self.l1.resident(page) || self.stlb.resident(page)
    }
}

impl Default for Tlb {
    fn default() -> Self {
        Tlb::new(64, 4, 1536, 12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_lookup_hits_l1() {
        let mut t = Tlb::default();
        assert_eq!(t.translate(42), TlbOutcome::Miss);
        assert_eq!(t.translate(42), TlbOutcome::L1Hit);
    }

    #[test]
    fn l1_eviction_falls_back_to_stlb() {
        // A tiny 2-entry direct-ish L1 with a big STLB: filling the L1 set
        // evicts, but the STLB still holds the page.
        let mut t = Tlb::new(2, 1, 64, 4);
        // Pages 0 and 2 map to set 0; page 1 maps to set 1 (2 sets).
        assert_eq!(t.translate(0), TlbOutcome::Miss);
        assert_eq!(t.translate(2), TlbOutcome::Miss); // evicts 0 from L1
        assert_eq!(t.translate(0), TlbOutcome::StlbHit);
    }

    #[test]
    fn flush_clears_everything() {
        let mut t = Tlb::default();
        for p in 0..100 {
            t.translate(p);
        }
        t.flush();
        for p in 0..100 {
            assert!(!t.contains(p));
        }
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut t = Tlb::new(2, 2, 4, 2); // one L1 set of 2 ways... sets=1
        t.translate(10);
        t.translate(20);
        t.translate(10); // refresh 10; 20 is now LRU in L1
        t.translate(30); // evicts 20 from L1
        assert!(t.l1.resident(10));
        assert!(!t.l1.resident(20));
        assert!(t.l1.resident(30));
    }

    #[test]
    fn capacity_miss_after_wraparound_working_set() {
        let mut t = Tlb::new(4, 2, 8, 2);
        for p in 0..64 {
            t.translate(p);
        }
        // Early pages must have been displaced from both levels.
        assert_eq!(t.translate(0), TlbOutcome::Miss);
    }

    #[test]
    #[should_panic]
    fn zero_ways_rejected() {
        let _ = Tlb::new(4, 0, 8, 2);
    }
}
