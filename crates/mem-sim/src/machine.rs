//! The machine model: per-thread translation and L1 state, shared LLC and
//! page table, cycle clocks, and the single hot access path.

use crate::cache::{L1Cache, Llc};
use crate::counters::Counters;
use crate::latency::{LatencyError, LatencyModel};
use crate::paging::{PageStatus, PageTable, WalkCache};
use crate::tlb::{Tlb, TlbOutcome};
use crate::{LINE_SHIFT, PAGE_SHIFT};

/// Identifier of a simulated hardware thread, handed out by
/// [`Machine::add_thread`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub usize);

/// Whether an access reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// Cross-layer attributes of an access, set by the SGX layer.
///
/// `mem-sim` knows nothing about enclaves; the SGX model communicates the
/// cost consequences of an access targeting the Processor Reserved Memory
/// through this struct.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessAttrs {
    /// Charge an EPCM-verification cost on every TLB fill (paper §2.3).
    pub epcm_check: bool,
    /// The backing DRAM is inside the PRM: LLC misses pay the MEE
    /// multiplier.
    pub encrypted_dram: bool,
}

impl AccessAttrs {
    /// Attributes of an ordinary, non-enclave access.
    pub const PLAIN: AccessAttrs = AccessAttrs {
        epcm_check: false,
        encrypted_dram: false,
    };

    /// Attributes of an access to an EPC-resident enclave page.
    pub const EPC: AccessAttrs = AccessAttrs {
        epcm_check: true,
        encrypted_dram: true,
    };
}

/// One pre-decomposed run of a batched access stream: `len` contiguous
/// bytes at `vaddr`, read or written.
///
/// Workload inner loops that issue many accesses back to back describe
/// them as a slice of runs and hand the whole slice to
/// [`Machine::access_stream`], amortizing per-call dispatch (bounds
/// checks, latency-model loads, counter flushes) over the batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamRun {
    /// Starting virtual address of the run.
    pub vaddr: u64,
    /// Length in bytes; zero-length runs are skipped.
    pub len: u64,
    /// Whether the run loads or stores.
    pub kind: AccessKind,
}

impl StreamRun {
    /// Convenience constructor.
    #[inline]
    pub fn new(vaddr: u64, len: u64, kind: AccessKind) -> Self {
        StreamRun { vaddr, len, kind }
    }
}

/// What happened during one [`Machine::access`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Cycles charged to the issuing thread.
    pub cycles: u64,
    /// At least one line required a page walk.
    pub dtlb_miss: bool,
    /// At least one line missed the LLC.
    pub llc_miss: bool,
    /// At least one page was touched for the first time (OS minor fault).
    pub minor_fault: bool,
}

/// Sizing of the modeled machine; defaults follow Table 3 of the paper.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// L1 dTLB entries / associativity.
    pub l1_tlb_entries: usize,
    /// L1 dTLB associativity.
    pub l1_tlb_ways: usize,
    /// Second-level TLB entries.
    pub stlb_entries: usize,
    /// Second-level TLB associativity.
    pub stlb_ways: usize,
    /// Per-thread L1 data-cache lines.
    pub l1_cache_lines: usize,
    /// Shared LLC capacity in bytes.
    pub llc_bytes: usize,
    /// Shared LLC associativity.
    pub llc_ways: usize,
    /// Core clock frequency in Hz, for converting cycle counts to
    /// wall-clock time (Table 3: Xeon E-2186G @ 3.8 GHz).
    pub clock_hz: u64,
    /// Latency constants.
    pub latency: LatencyModel,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            l1_tlb_entries: 64,
            l1_tlb_ways: 4,
            stlb_entries: 1536,
            stlb_ways: 12,
            l1_cache_lines: 512,
            llc_bytes: 12 << 20,
            llc_ways: 16,
            clock_hz: 3_800_000_000,
            latency: LatencyModel::default(),
        }
    }
}

/// Extra cycles of a translation that misses the L1 dTLB but hits the
/// second-level TLB (Table 3 class platform; small and fixed, so not part
/// of the tunable [`LatencyModel`]).
const STLB_HIT_CYCLES: u64 = 7;

/// Per-thread microarchitectural state.
#[derive(Debug, Clone)]
struct ThreadCtx {
    tlb: Tlb,
    l1: L1Cache,
    walk_cache: WalkCache,
    cycles: u64,
}

/// The simulated machine.
///
/// Owns all shared structures and the per-thread contexts; see the crate
/// docs for an end-to-end example.
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    threads: Vec<ThreadCtx>,
    llc: Llc,
    page_table: PageTable,
    counters: Counters,
    /// The trace plane, when armed. Boxed so the disabled case is one
    /// null-pointer check; the per-line access loop never touches it.
    sink: Option<Box<trace::TraceSink>>,
    /// Conservative lower bound on the sink's next periodic-sample
    /// instant (`u64::MAX` when disarmed or sampling is off). The
    /// sink's schedule only moves forward, so `trace_sample_due` can
    /// answer "not yet" with a single integer compare — no pointer
    /// chase into the boxed sink — which is what keeps sampling off
    /// the batched hot path.
    sample_cache: u64,
}

impl Machine {
    /// Creates a machine with no threads; call [`Machine::add_thread`]
    /// before issuing accesses.
    ///
    /// # Panics
    ///
    /// Panics if the latency model is non-monotone (see
    /// [`LatencyModel::validate`]); use [`Machine::try_new`] to handle
    /// the error instead.
    pub fn new(cfg: MachineConfig) -> Self {
        match Machine::try_new(cfg) {
            Ok(m) => m,
            Err(e) => panic!("invalid MachineConfig: {e}"),
        }
    }

    /// Fallible constructor: rejects latency models whose orderings
    /// would underflow the stall/MEE decompositions in the access path.
    ///
    /// # Errors
    ///
    /// Returns the first violated latency ordering.
    pub fn try_new(cfg: MachineConfig) -> Result<Self, LatencyError> {
        cfg.latency.validate()?;
        let llc = Llc::new(cfg.llc_bytes, cfg.llc_ways);
        Ok(Machine {
            cfg,
            threads: Vec::new(),
            llc,
            page_table: PageTable::new(),
            counters: Counters::new(),
            sink: None,
            sample_cache: u64::MAX,
        })
    }

    /// Adds a hardware thread and returns its id. Thread ids are dense,
    /// starting at zero.
    pub fn add_thread(&mut self) -> ThreadId {
        let ctx = ThreadCtx {
            tlb: Tlb::new(
                self.cfg.l1_tlb_entries,
                self.cfg.l1_tlb_ways,
                self.cfg.stlb_entries,
                self.cfg.stlb_ways,
            ),
            l1: L1Cache::new(self.cfg.l1_cache_lines),
            walk_cache: WalkCache::default(),
            cycles: 0,
        };
        self.threads.push(ctx);
        ThreadId(self.threads.len() - 1)
    }

    /// Number of threads created so far.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Issues a memory access of `len` bytes at `vaddr` on thread `tid`.
    ///
    /// The access is decomposed into 64-byte lines; each line is
    /// translated (per page), charged through the cache hierarchy, and
    /// accumulated into the thread clock and the global counters.
    /// Equivalent to [`Machine::access_stream`] with a single run.
    ///
    /// Accesses with `len == 0` are no-ops. Accesses extending past the
    /// top of the address space are clamped to its last byte.
    ///
    /// # Panics
    ///
    /// Panics if `tid` was not returned by [`Machine::add_thread`].
    #[inline]
    pub fn access(
        &mut self,
        tid: ThreadId,
        vaddr: u64,
        len: u64,
        kind: AccessKind,
        attrs: &AccessAttrs,
    ) -> AccessOutcome {
        self.access_stream(tid, &[StreamRun { vaddr, len, kind }], attrs)
    }

    /// Issues a batch of accesses on thread `tid` and returns the
    /// aggregate outcome: `cycles` summed over the batch, the boolean
    /// flags OR-ed across it.
    ///
    /// This is the hot path. Processing runs in a batch lets the machine
    /// load the latency model once, keep every counter in a register
    /// across the whole slice, and flush the totals a single time —
    /// per-access bookkeeping that dominated the old call-per-access
    /// profile. Each run is decomposed and charged exactly as
    /// [`Machine::access`] would, in order, so a stream of N runs is
    /// observably identical (outcome totals and counter snapshots) to N
    /// sequential `access` calls.
    ///
    /// # Panics
    ///
    /// Panics if `tid` was not returned by [`Machine::add_thread`].
    pub fn access_stream(
        &mut self,
        tid: ThreadId,
        runs: &[StreamRun],
        attrs: &AccessAttrs,
    ) -> AccessOutcome {
        let mut out = AccessOutcome::default();
        let lat = self.cfg.latency;
        #[cfg(feature = "audit")]
        let c0 = self.counters;
        let Machine {
            threads,
            llc,
            page_table,
            counters,
            ..
        } = self;
        let t = &mut threads[tid.0];
        // Batch-local accumulators: counters stay in registers across the
        // whole slice and are flushed to `self.counters` exactly once.
        let mut stlb_hits = 0u64;
        let mut dtlb_misses = 0u64;
        let mut page_faults = 0u64;
        let mut walk_cycles = 0u64;
        let mut mem_reads = 0u64;
        let mut mem_writes = 0u64;
        let mut llc_accesses = 0u64;
        let mut llc_misses = 0u64;
        let mut mee_cycles = 0u64;
        let mut stall_cycles = 0u64;
        let mut cycles = 0u64;
        for run in runs {
            if run.len == 0 {
                continue;
            }
            let first_line = run.vaddr >> LINE_SHIFT;
            // The last byte is computed with checked arithmetic: a run
            // reaching past the top of the address space clamps to its
            // final byte instead of wrapping (silent in release, panic in
            // debug) to line 0.
            let last_byte = run.vaddr.saturating_add(run.len - 1);
            let last_line = last_byte >> LINE_SHIFT;
            // As 0/1 so read/write counting is branchless: the kind of
            // successive runs is data-dependent, and a conditional here
            // mispredicts on every mixed stream.
            let is_read = matches!(run.kind, AccessKind::Read) as u64;
            // Translate once per page crossed.
            macro_rules! translate {
                ($page:expr) => {
                    match t.tlb.translate($page) {
                        TlbOutcome::L1Hit => {}
                        TlbOutcome::StlbHit => {
                            stlb_hits += 1;
                            cycles += STLB_HIT_CYCLES;
                        }
                        TlbOutcome::Miss => {
                            dtlb_misses += 1;
                            out.dtlb_miss = true;
                            // Demand paging: is this the first touch?
                            if page_table.touch($page) == PageStatus::MinorFault {
                                page_faults += 1;
                                out.minor_fault = true;
                                cycles += lat.minor_fault;
                                t.walk_cache.flush(); // the fault handler ran
                            }
                            let fast = t.walk_cache.walk($page);
                            let mut walk = if fast { lat.walk_fast } else { lat.walk_slow };
                            if attrs.epcm_check {
                                walk += lat.epcm_check;
                            }
                            walk_cycles += walk;
                            cycles += walk;
                        }
                    }
                };
            }
            // Charge one line through the cache hierarchy.
            macro_rules! touch_line {
                ($line:expr) => {
                    mem_reads += is_read;
                    mem_writes += 1 - is_read;
                    let mem_cycles = if t.l1.access($line) {
                        lat.l1_hit
                    } else {
                        llc_accesses += 1;
                        if llc.access($line) {
                            lat.llc_hit
                        } else {
                            llc_misses += 1;
                            out.llc_miss = true;
                            if attrs.encrypted_dram {
                                let enc = lat.dram_encrypted();
                                mee_cycles += enc - lat.dram.min(enc);
                                enc
                            } else {
                                lat.dram
                            }
                        }
                    };
                    // Safe subtraction: `Machine::try_new` rejected any
                    // model with `llc_hit < l1_hit` or `dram < llc_hit`.
                    stall_cycles += mem_cycles - lat.l1_hit;
                    cycles += mem_cycles;
                };
            }
            // The first line always translates its page, so the running
            // page needs no `None`/sentinel state (a sentinel value would
            // collide with the genuine top page of the address space);
            // single-line runs — the bulk of pointer-chase streams — take
            // exactly this prologue and skip the loop below entirely.
            let mut cur_page = first_line >> (PAGE_SHIFT - LINE_SHIFT);
            translate!(cur_page);
            touch_line!(first_line);
            for line in first_line + 1..=last_line {
                let page = line >> (PAGE_SHIFT - LINE_SHIFT);
                if page != cur_page {
                    cur_page = page;
                    translate!(page);
                }
                touch_line!(line);
            }
        }
        t.cycles += cycles;
        out.cycles = cycles;
        counters.stlb_hits += stlb_hits;
        counters.dtlb_misses += dtlb_misses;
        counters.page_faults += page_faults;
        counters.walk_cycles += walk_cycles;
        counters.mem_reads += mem_reads;
        counters.mem_writes += mem_writes;
        counters.llc_accesses += llc_accesses;
        counters.llc_misses += llc_misses;
        counters.mee_cycles += mee_cycles;
        counters.stall_cycles += stall_cycles;
        // Every cycle this batch charged must be accounted to exactly one
        // counter bucket: STLB-hit penalties, OS fault handling, page
        // walks, hierarchy stalls, or the L1 baseline per line. A drift
        // here means the perf-counter decomposition the reports print no
        // longer sums to the cycles the workloads observe.
        #[cfg(feature = "audit")]
        {
            let d = *counters - c0;
            assert_eq!(
                out.cycles,
                STLB_HIT_CYCLES * d.stlb_hits
                    + lat.minor_fault * d.page_faults
                    + d.walk_cycles
                    + d.stall_cycles
                    + lat.l1_hit * (d.mem_reads + d.mem_writes),
                "access cycles must decompose exactly into counter buckets"
            );
        }
        out
    }

    /// Charges `cycles` of pure computation to thread `tid`.
    pub fn compute(&mut self, tid: ThreadId, cycles: u64) {
        self.threads[tid.0].cycles += cycles;
        self.counters.compute_cycles += cycles;
    }

    /// Charges `cycles` of overhead (transition, fault handling, syscall)
    /// to thread `tid` without classifying them as computation.
    pub fn charge(&mut self, tid: ThreadId, cycles: u64) {
        self.threads[tid.0].cycles += cycles;
    }

    /// Flushes thread `tid`'s TLB (and walk cache), as happens on every
    /// enclave transition.
    pub fn flush_tlb(&mut self, tid: ThreadId) {
        let t = &mut self.threads[tid.0];
        t.tlb.flush();
        t.walk_cache.flush();
        self.counters.tlb_flushes += 1;
    }

    /// Current cycle clock of thread `tid`.
    pub fn cycles_of(&self, tid: ThreadId) -> u64 {
        self.threads[tid.0].cycles
    }

    /// Advances thread `tid`'s clock to at least `cycles` (synchronization
    /// point: a thread waiting on another simply observes the later time).
    pub fn sync_to(&mut self, tid: ThreadId, cycles: u64) {
        let t = &mut self.threads[tid.0];
        if t.cycles < cycles {
            t.cycles = cycles;
        }
    }

    /// Maximum clock across all threads: the elapsed wall-clock of the
    /// parallel execution so far.
    pub fn elapsed_cycles(&self) -> u64 {
        self.threads.iter().map(|t| t.cycles).max().unwrap_or(0)
    }

    /// Read-only view of the counter totals.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Mutable access to the counters, for layers (SGX, LibOS) that need
    /// to account events of their own into the same snapshot stream.
    pub fn counters_mut(&mut self) -> &mut Counters {
        &mut self.counters
    }

    /// Resets counters and clocks but keeps cache/TLB/page-table state.
    /// Used to exclude warm-up or LibOS start-up from measurements.
    pub fn reset_measurement(&mut self) {
        self.counters = Counters::new();
        for t in &mut self.threads {
            t.cycles = 0;
        }
    }

    /// The OS page table (resident-set queries, unmap).
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Mutable OS page table (pre-population by loaders).
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.page_table
    }

    /// The machine configuration this instance was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    // --- trace plane -----------------------------------------------------
    //
    // The sink lives here because every simulation layer (SGX, LibOS, the
    // harness) already holds the machine; they emit through it without a
    // side channel. Tracing never charges simulated cycles: when disabled
    // every helper below is a single `Option` check, and the per-line
    // loop in `access` does not consult the sink at all.

    /// Arms the trace plane. Replaces (and discards) any previous sink;
    /// surviving [`Machine::reset_measurement`] is intentional so the
    /// harness can arm right after resetting.
    pub fn set_trace_sink(&mut self, sink: trace::TraceSink) {
        self.sample_cache = sink.next_sample_at();
        self.sink = Some(Box::new(sink));
    }

    /// Disarms the trace plane, returning the sink and its records.
    pub fn take_trace_sink(&mut self) -> Option<trace::TraceSink> {
        self.sample_cache = u64::MAX;
        self.sink.take().map(|b| *b)
    }

    /// Read-only view of the armed sink, if any.
    pub fn trace_sink(&self) -> Option<&trace::TraceSink> {
        self.sink.as_deref()
    }

    /// Mutable view of the armed sink, if any.
    pub fn trace_sink_mut(&mut self) -> Option<&mut trace::TraceSink> {
        self.sink.as_deref_mut()
    }

    /// Whether tracing is armed.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits `event` stamped with thread `tid`'s current clock. No-op
    /// (one pointer check) when tracing is disabled.
    #[inline]
    pub fn trace_emit(&mut self, tid: ThreadId, event: trace::TraceEvent) {
        if let Some(sink) = self.sink.as_deref_mut() {
            let now = self.threads[tid.0].cycles;
            sink.emit(now, tid.0 as u32, event);
            // Recording a sample re-arms the sink's schedule; advance the
            // fast-path bound so polling goes back to one compare.
            self.sample_cache = sink.next_sample_at();
        }
    }

    /// Whether a periodic counter sample is due at thread `tid`'s clock.
    /// The SGX layer polls this and emits [`trace::TraceEvent::Sample`]
    /// with a snapshot it assembles.
    ///
    /// The common "not yet" answer is a single integer compare against a
    /// cached lower bound of the sink's schedule; the sink itself (which
    /// may have re-armed later via direct [`Machine::trace_sink_mut`]
    /// emission) is only consulted once that bound is reached.
    #[inline]
    pub fn trace_sample_due(&self, tid: ThreadId) -> bool {
        let now = self.threads[tid.0].cycles;
        if now < self.sample_cache {
            return false;
        }
        match self.sink.as_deref() {
            Some(sink) => sink.sample_due(now),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> (Machine, ThreadId) {
        let mut m = Machine::new(MachineConfig::default());
        let t = m.add_thread();
        (m, t)
    }

    #[test]
    fn first_access_faults_and_misses() {
        let (mut m, t) = machine();
        let out = m.access(t, 0x4000, 8, AccessKind::Read, &AccessAttrs::PLAIN);
        assert!(out.dtlb_miss);
        assert!(out.llc_miss);
        assert!(out.minor_fault);
        assert_eq!(m.counters().page_faults, 1);
        assert_eq!(m.counters().dtlb_misses, 1);
    }

    #[test]
    fn repeat_access_is_cheap() {
        let (mut m, t) = machine();
        m.access(t, 0x4000, 8, AccessKind::Read, &AccessAttrs::PLAIN);
        let before = m.cycles_of(t);
        let out = m.access(t, 0x4000, 8, AccessKind::Read, &AccessAttrs::PLAIN);
        assert_eq!(out.cycles, m.config().latency.l1_hit);
        assert_eq!(m.cycles_of(t) - before, out.cycles);
        assert!(!out.dtlb_miss && !out.llc_miss && !out.minor_fault);
    }

    #[test]
    fn zero_len_is_noop() {
        let (mut m, t) = machine();
        let out = m.access(t, 0x4000, 0, AccessKind::Write, &AccessAttrs::PLAIN);
        assert_eq!(out, AccessOutcome::default());
        assert_eq!(m.counters().mem_writes, 0);
    }

    #[test]
    fn multi_line_access_counts_lines() {
        let (mut m, t) = machine();
        // 256 bytes starting line-aligned: 4 lines.
        m.access(t, 0x8000, 256, AccessKind::Read, &AccessAttrs::PLAIN);
        assert_eq!(m.counters().mem_reads, 4);
    }

    #[test]
    fn page_spanning_access_translates_twice() {
        let (mut m, t) = machine();
        m.access(t, 0x5000 - 32, 64, AccessKind::Read, &AccessAttrs::PLAIN);
        assert_eq!(m.counters().dtlb_misses, 2);
        assert_eq!(m.counters().page_faults, 2);
    }

    #[test]
    fn tlb_flush_forces_rewalk_without_fault() {
        let (mut m, t) = machine();
        m.access(t, 0x4000, 8, AccessKind::Read, &AccessAttrs::PLAIN);
        m.flush_tlb(t);
        let before = m.counters().page_faults;
        let out = m.access(t, 0x4000, 8, AccessKind::Read, &AccessAttrs::PLAIN);
        assert!(out.dtlb_miss);
        assert!(!out.minor_fault);
        assert_eq!(m.counters().page_faults, before);
        assert_eq!(m.counters().tlb_flushes, 1);
    }

    #[test]
    fn encrypted_dram_costs_more() {
        let (mut m, _) = machine();
        let t1 = m.add_thread();
        let t2 = m.add_thread();
        let plain = m.access(t1, 0x10_0000, 8, AccessKind::Read, &AccessAttrs::PLAIN);
        let epc = m.access(t2, 0x20_0000, 8, AccessKind::Read, &AccessAttrs::EPC);
        assert!(epc.cycles > plain.cycles);
    }

    #[test]
    fn threads_have_independent_clocks() {
        let mut m = Machine::new(MachineConfig::default());
        let a = m.add_thread();
        let b = m.add_thread();
        m.compute(a, 100);
        assert_eq!(m.cycles_of(a), 100);
        assert_eq!(m.cycles_of(b), 0);
        assert_eq!(m.elapsed_cycles(), 100);
        m.sync_to(b, 100);
        assert_eq!(m.cycles_of(b), 100);
    }

    #[test]
    fn reset_measurement_keeps_microarch_state() {
        let (mut m, t) = machine();
        m.access(t, 0x4000, 8, AccessKind::Read, &AccessAttrs::PLAIN);
        m.reset_measurement();
        assert_eq!(m.counters().dtlb_misses, 0);
        assert_eq!(m.cycles_of(t), 0);
        // The page is still mapped and cached: no fault, cheap access.
        let out = m.access(t, 0x4000, 8, AccessKind::Read, &AccessAttrs::PLAIN);
        assert!(!out.minor_fault);
    }

    #[test]
    fn stall_cycles_track_hierarchy_latency() {
        let (mut m, t) = machine();
        m.access(t, 0x4000, 8, AccessKind::Read, &AccessAttrs::PLAIN);
        let stalls = m.counters().stall_cycles;
        assert!(stalls >= m.config().latency.dram - m.config().latency.l1_hit);
    }

    #[test]
    fn access_at_top_of_address_space_clamps_instead_of_overflowing() {
        // Regression: `(vaddr + len - 1)` used to overflow (debug panic,
        // silent wrap to line 0 in release) for accesses reaching the top
        // of the address space. The run now clamps to the final byte.
        let (mut m, t) = machine();
        let out = m.access(t, u64::MAX - 7, 64, AccessKind::Read, &AccessAttrs::PLAIN);
        // Clamped run covers bytes [MAX-7, MAX]: exactly one line.
        assert_eq!(m.counters().mem_reads, 1);
        assert!(out.cycles > 0);
    }

    #[test]
    fn top_page_is_translated_not_skipped() {
        // Regression: a `cur_page = u64::MAX` sentinel would collide with
        // the genuine top page number and skip its translation entirely.
        let (mut m, t) = machine();
        let out = m.access(t, u64::MAX - 63, 64, AccessKind::Read, &AccessAttrs::PLAIN);
        assert!(out.dtlb_miss);
        assert_eq!(m.counters().dtlb_misses, 1);
        assert_eq!(m.counters().page_faults, 1);
    }

    #[test]
    fn non_monotone_latency_rejected_at_construction() {
        let cfg = MachineConfig {
            latency: LatencyModel {
                l1_hit: 50,
                llc_hit: 10,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(matches!(
            Machine::try_new(cfg),
            Err(LatencyError::LlcFasterThanL1 { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "invalid MachineConfig")]
    fn new_panics_on_non_monotone_latency() {
        let cfg = MachineConfig {
            latency: LatencyModel {
                mee_mult_x100: 10,
                ..Default::default()
            },
            ..Default::default()
        };
        let _ = Machine::new(cfg);
    }

    #[test]
    fn stream_matches_sequential_access_calls() {
        let runs: Vec<StreamRun> = (0..64)
            .map(|i| StreamRun::new(0x4000 + i * 192, 128, AccessKind::Read))
            .chain((0..64).map(|i| StreamRun::new(0x9_0000 + i * 64, 8, AccessKind::Write)))
            .collect();
        let (mut a, ta) = machine();
        let (mut b, tb) = machine();
        let batched = a.access_stream(ta, &runs, &AccessAttrs::EPC);
        let mut seq = AccessOutcome::default();
        for r in &runs {
            let o = b.access(tb, r.vaddr, r.len, r.kind, &AccessAttrs::EPC);
            seq.cycles += o.cycles;
            seq.dtlb_miss |= o.dtlb_miss;
            seq.llc_miss |= o.llc_miss;
            seq.minor_fault |= o.minor_fault;
        }
        assert_eq!(batched, seq);
        assert_eq!(a.counters(), b.counters());
        assert_eq!(a.cycles_of(ta), b.cycles_of(tb));
    }

    #[test]
    fn empty_stream_and_zero_runs_are_noops() {
        let (mut m, t) = machine();
        let out = m.access_stream(t, &[], &AccessAttrs::PLAIN);
        assert_eq!(out, AccessOutcome::default());
        let out = m.access_stream(
            t,
            &[StreamRun::new(0x4000, 0, AccessKind::Write)],
            &AccessAttrs::PLAIN,
        );
        assert_eq!(out, AccessOutcome::default());
        assert_eq!(m.counters().mem_writes, 0);
    }
}
