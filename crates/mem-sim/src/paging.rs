//! Demand paging and page-walk cost model.
//!
//! [`PageTable`] tracks which virtual pages the OS has populated; the
//! first touch of a page is a minor fault (the dominant fault class for
//! the anonymous memory the workloads allocate). [`WalkCache`] models the
//! hardware page-walk caches (PML4/PDPT/PD entries) that make most walks
//! cheap: a walk whose 2 MiB region was walked recently costs
//! `walk_fast`, a cold walk costs `walk_slow`.

use crate::fxhash::FxBuildHasher;
use std::collections::HashMap;

/// Result of touching a page through the OS paging layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageStatus {
    /// The page was already populated.
    Mapped,
    /// First touch: the OS serviced a minor fault.
    MinorFault,
}

/// Pages per arena chunk: 512 pages = one 2 MiB PD region, so chunk
/// granularity matches the walk-cache granule and real allocator
/// behavior (whole regions populate together).
const CHUNK_PAGES: u64 = 512;

/// One presence bit per page of a 2 MiB region.
type Bitmap = [u64; 8];

/// Sentinel for "memo empty": region numbers are `page >> 9 <= 2^43`,
/// so `u64::MAX` is never a real region.
const NO_REGION: u64 = u64::MAX;

/// The simulated OS page table: a sparse set of populated pages.
///
/// Layout is a chunked arena rather than a per-page hash map: a small
/// region index (fast `FxHasher`, one probe per 2 MiB region) points at
/// 512-page presence bitmaps, and a one-entry memo skips even that
/// lookup while successive touches stay inside the same region — the
/// common case for the sequential and strided sweeps every workload
/// performs. The previous `HashMap<u64, PageInfo>` paid a full SipHash
/// per touched page and dominated the hot-path profile.
///
/// ```
/// use mem_sim::paging::{PageTable, PageStatus};
/// let mut pt = PageTable::new();
/// assert_eq!(pt.touch(5), PageStatus::MinorFault);
/// assert_eq!(pt.touch(5), PageStatus::Mapped);
/// assert_eq!(pt.mapped_pages(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    /// Region number (`page >> 9`) to chunk index.
    index: HashMap<u64, u32, FxBuildHasher>,
    /// Presence bitmaps, one per region ever touched.
    chunks: Vec<Bitmap>,
    /// Last region resolved, or [`NO_REGION`].
    memo_region: u64,
    /// Chunk index for `memo_region`.
    memo_chunk: u32,
    /// Populated page count (kept incrementally; bitmaps are not
    /// rescanned).
    mapped: usize,
}

impl Default for PageTable {
    fn default() -> Self {
        PageTable {
            index: HashMap::default(),
            chunks: Vec::new(),
            memo_region: NO_REGION,
            memo_chunk: 0,
            mapped: 0,
        }
    }
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves (creating on demand) the chunk holding `page`, via the
    /// one-entry memo when possible.
    #[inline]
    fn chunk_of(&mut self, page: u64) -> usize {
        let region = page / CHUNK_PAGES;
        if region == self.memo_region {
            return self.memo_chunk as usize;
        }
        let ci = match self.index.get(&region) {
            Some(&i) => i as usize,
            None => {
                let i = self.chunks.len();
                assert!(i < u32::MAX as usize, "page-table chunk index overflow");
                self.index.insert(region, i as u32);
                self.chunks.push([0; 8]);
                i
            }
        };
        self.memo_region = region;
        self.memo_chunk = ci as u32;
        ci
    }

    /// Splits `page` into (word, bit-mask) within its chunk's bitmap.
    #[inline]
    fn bit_of(page: u64) -> (usize, u64) {
        let offset = page % CHUNK_PAGES;
        ((offset >> 6) as usize, 1u64 << (offset & 63))
    }

    /// Touches `page`, populating it on first access.
    #[inline]
    pub fn touch(&mut self, page: u64) -> PageStatus {
        let ci = self.chunk_of(page);
        let (word, mask) = Self::bit_of(page);
        let w = &mut self.chunks[ci][word];
        if *w & mask != 0 {
            PageStatus::Mapped
        } else {
            *w |= mask;
            self.mapped += 1;
            PageStatus::MinorFault
        }
    }

    /// Whether `page` has been populated.
    pub fn is_mapped(&self, page: u64) -> bool {
        let region = page / CHUNK_PAGES;
        match self.index.get(&region) {
            Some(&ci) => {
                let (word, mask) = Self::bit_of(page);
                self.chunks[ci as usize][word] & mask != 0
            }
            None => false,
        }
    }

    /// Removes `page` from the table, so the next touch faults again
    /// (models `munmap`/`madvise(DONTNEED)`).
    pub fn unmap(&mut self, page: u64) -> bool {
        let region = page / CHUNK_PAGES;
        match self.index.get(&region) {
            Some(&ci) => {
                let (word, mask) = Self::bit_of(page);
                let w = &mut self.chunks[ci as usize][word];
                if *w & mask != 0 {
                    *w &= !mask;
                    self.mapped -= 1;
                    true
                } else {
                    false
                }
            }
            None => false,
        }
    }

    /// Number of populated pages (the resident-set size in pages).
    pub fn mapped_pages(&self) -> usize {
        self.mapped
    }

    /// Pre-populates a page without counting a fault (models `mmap` with
    /// `MAP_POPULATE` or pages loaded by the enclave loader).
    pub fn populate(&mut self, page: u64) {
        let _ = self.touch(page);
    }
}

/// Hardware page-walk cache: remembers recently-walked 2 MiB regions so
/// that repeat walks only fetch the leaf PTE.
#[derive(Debug, Clone)]
pub struct WalkCache {
    /// Direct-mapped tags over `page >> 9` (the PD-entry granule).
    tags: Vec<u64>,
    /// Install epochs parallel to `tags` (O(1) flush; see `tlb`).
    epochs: Vec<u64>,
    epoch: u64,
}

impl WalkCache {
    /// Creates a walk cache with `entries` slots (rounded to a power of
    /// two).
    pub fn new(entries: usize) -> Self {
        let n = entries.next_power_of_two().max(1);
        WalkCache {
            tags: vec![u64::MAX; n],
            epochs: vec![0; n],
            epoch: 1,
        }
    }

    /// Records a walk of `page`; returns `true` when the upper levels were
    /// cached (fast walk).
    #[inline]
    pub fn walk(&mut self, page: u64) -> bool {
        let region = page >> 9; // 512 pages = one 2 MiB PD entry
        let slot = (region as usize) & (self.tags.len() - 1);
        if self.epochs[slot] == self.epoch && self.tags[slot] == region {
            true
        } else {
            self.tags[slot] = region;
            self.epochs[slot] = self.epoch;
            false
        }
    }

    /// Forgets everything (e.g. on address-space switch).
    pub fn flush(&mut self) {
        self.epoch += 1;
    }
}

impl Default for WalkCache {
    /// 32 cached PD entries, covering 64 MiB of recently-walked memory.
    fn default() -> Self {
        WalkCache::new(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_faults_once() {
        let mut pt = PageTable::new();
        assert_eq!(pt.touch(1), PageStatus::MinorFault);
        assert_eq!(pt.touch(1), PageStatus::Mapped);
        assert_eq!(pt.touch(2), PageStatus::MinorFault);
        assert_eq!(pt.mapped_pages(), 2);
    }

    #[test]
    fn unmap_faults_again() {
        let mut pt = PageTable::new();
        pt.touch(9);
        assert!(pt.unmap(9));
        assert!(!pt.unmap(9));
        assert_eq!(pt.touch(9), PageStatus::MinorFault);
    }

    #[test]
    fn populate_skips_fault() {
        let mut pt = PageTable::new();
        pt.populate(4);
        assert_eq!(pt.touch(4), PageStatus::Mapped);
    }

    #[test]
    fn walk_cache_fast_within_region() {
        let mut wc = WalkCache::new(4);
        assert!(!wc.walk(0)); // cold
        assert!(wc.walk(1)); // same 2 MiB region
        assert!(wc.walk(511));
        assert!(!wc.walk(512)); // next region
    }

    #[test]
    fn walk_cache_flush() {
        let mut wc = WalkCache::default();
        wc.walk(0);
        wc.flush();
        assert!(!wc.walk(0));
    }

    #[test]
    fn touch_counts_accumulate() {
        let mut pt = PageTable::new();
        for _ in 0..5 {
            pt.touch(3);
        }
        assert!(pt.is_mapped(3));
    }

    #[test]
    fn cross_region_touches_keep_exact_counts() {
        // Alternate between distant 2 MiB regions so every touch misses
        // the memo; counts and membership must stay exact.
        let mut pt = PageTable::new();
        let pages = [0u64, 512, 1 << 20, 513, 1, (1 << 20) + 511];
        for &p in &pages {
            assert_eq!(pt.touch(p), PageStatus::MinorFault);
        }
        for &p in &pages {
            assert_eq!(pt.touch(p), PageStatus::Mapped);
        }
        assert_eq!(pt.mapped_pages(), pages.len());
        assert!(!pt.is_mapped(2));
        assert!(!pt.is_mapped(514));
    }

    #[test]
    fn top_of_address_space_page_is_representable() {
        // The highest page number a 64-bit vaddr can produce; the memo
        // sentinel must not collide with its region.
        let top = u64::MAX >> 12;
        let mut pt = PageTable::new();
        assert_eq!(pt.touch(top), PageStatus::MinorFault);
        assert_eq!(pt.touch(top), PageStatus::Mapped);
        assert!(pt.is_mapped(top));
        assert!(pt.unmap(top));
        assert_eq!(pt.touch(top), PageStatus::MinorFault);
    }

    #[test]
    fn unmap_within_memoized_region_stays_consistent() {
        let mut pt = PageTable::new();
        pt.touch(100);
        pt.touch(101); // memo now points at region 0
        assert!(pt.unmap(100));
        assert_eq!(pt.mapped_pages(), 1);
        // The memoized chunk must see the cleared bit on the next touch.
        assert_eq!(pt.touch(100), PageStatus::MinorFault);
        assert_eq!(pt.mapped_pages(), 2);
    }
}
