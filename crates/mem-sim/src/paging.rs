//! Demand paging and page-walk cost model.
//!
//! [`PageTable`] tracks which virtual pages the OS has populated; the
//! first touch of a page is a minor fault (the dominant fault class for
//! the anonymous memory the workloads allocate). [`WalkCache`] models the
//! hardware page-walk caches (PML4/PDPT/PD entries) that make most walks
//! cheap: a walk whose 2 MiB region was walked recently costs
//! `walk_fast`, a cold walk costs `walk_slow`.

use std::collections::HashMap;

/// Result of touching a page through the OS paging layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageStatus {
    /// The page was already populated.
    Mapped,
    /// First touch: the OS serviced a minor fault.
    MinorFault,
}

/// Per-page metadata kept by the simulated OS.
#[derive(Debug, Clone, Copy, Default)]
pub struct PageInfo {
    /// Number of times the page has been touched (diagnostics only).
    pub touches: u64,
}

/// The simulated OS page table: a sparse map of populated pages.
///
/// ```
/// use mem_sim::paging::{PageTable, PageStatus};
/// let mut pt = PageTable::new();
/// assert_eq!(pt.touch(5), PageStatus::MinorFault);
/// assert_eq!(pt.touch(5), PageStatus::Mapped);
/// assert_eq!(pt.mapped_pages(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    pages: HashMap<u64, PageInfo>,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Touches `page`, populating it on first access.
    pub fn touch(&mut self, page: u64) -> PageStatus {
        let entry = self.pages.entry(page);
        match entry {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().touches += 1;
                PageStatus::Mapped
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(PageInfo { touches: 1 });
                PageStatus::MinorFault
            }
        }
    }

    /// Whether `page` has been populated.
    pub fn is_mapped(&self, page: u64) -> bool {
        self.pages.contains_key(&page)
    }

    /// Removes `page` from the table, so the next touch faults again
    /// (models `munmap`/`madvise(DONTNEED)`).
    pub fn unmap(&mut self, page: u64) -> bool {
        self.pages.remove(&page).is_some()
    }

    /// Number of populated pages (the resident-set size in pages).
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }

    /// Pre-populates a page without counting a fault (models `mmap` with
    /// `MAP_POPULATE` or pages loaded by the enclave loader).
    pub fn populate(&mut self, page: u64) {
        self.pages.entry(page).or_default();
    }
}

/// Hardware page-walk cache: remembers recently-walked 2 MiB regions so
/// that repeat walks only fetch the leaf PTE.
#[derive(Debug, Clone)]
pub struct WalkCache {
    /// Direct-mapped tags over `page >> 9` (the PD-entry granule).
    tags: Vec<u64>,
    /// Install epochs parallel to `tags` (O(1) flush; see `tlb`).
    epochs: Vec<u64>,
    epoch: u64,
}

impl WalkCache {
    /// Creates a walk cache with `entries` slots (rounded to a power of
    /// two).
    pub fn new(entries: usize) -> Self {
        let n = entries.next_power_of_two().max(1);
        WalkCache {
            tags: vec![u64::MAX; n],
            epochs: vec![0; n],
            epoch: 1,
        }
    }

    /// Records a walk of `page`; returns `true` when the upper levels were
    /// cached (fast walk).
    #[inline]
    pub fn walk(&mut self, page: u64) -> bool {
        let region = page >> 9; // 512 pages = one 2 MiB PD entry
        let slot = (region as usize) & (self.tags.len() - 1);
        if self.epochs[slot] == self.epoch && self.tags[slot] == region {
            true
        } else {
            self.tags[slot] = region;
            self.epochs[slot] = self.epoch;
            false
        }
    }

    /// Forgets everything (e.g. on address-space switch).
    pub fn flush(&mut self) {
        self.epoch += 1;
    }
}

impl Default for WalkCache {
    /// 32 cached PD entries, covering 64 MiB of recently-walked memory.
    fn default() -> Self {
        WalkCache::new(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_faults_once() {
        let mut pt = PageTable::new();
        assert_eq!(pt.touch(1), PageStatus::MinorFault);
        assert_eq!(pt.touch(1), PageStatus::Mapped);
        assert_eq!(pt.touch(2), PageStatus::MinorFault);
        assert_eq!(pt.mapped_pages(), 2);
    }

    #[test]
    fn unmap_faults_again() {
        let mut pt = PageTable::new();
        pt.touch(9);
        assert!(pt.unmap(9));
        assert!(!pt.unmap(9));
        assert_eq!(pt.touch(9), PageStatus::MinorFault);
    }

    #[test]
    fn populate_skips_fault() {
        let mut pt = PageTable::new();
        pt.populate(4);
        assert_eq!(pt.touch(4), PageStatus::Mapped);
    }

    #[test]
    fn walk_cache_fast_within_region() {
        let mut wc = WalkCache::new(4);
        assert!(!wc.walk(0)); // cold
        assert!(wc.walk(1)); // same 2 MiB region
        assert!(wc.walk(511));
        assert!(!wc.walk(512)); // next region
    }

    #[test]
    fn walk_cache_flush() {
        let mut wc = WalkCache::default();
        wc.walk(0);
        wc.flush();
        assert!(!wc.walk(0));
    }

    #[test]
    fn touch_counts_accumulate() {
        let mut pt = PageTable::new();
        for _ in 0..5 {
            pt.touch(3);
        }
        assert!(pt.is_mapped(3));
    }
}
