//! Structural performance model of a memory hierarchy.
//!
//! `mem-sim` is the bottom substrate of the SGXGauge reproduction. It models
//! the parts of the machine that the paper's measurements are sensitive to:
//!
//! * a two-level data TLB per hardware thread ([`tlb::Tlb`]),
//! * a 4-level page-walk cost model with a page-walk cache ([`paging`]),
//! * demand paging with minor-fault costs ([`paging::PageTable`]),
//! * a set-associative shared last-level cache ([`cache::Llc`]) with small
//!   per-thread L1 front-ends,
//! * per-thread cycle clocks and a global [`Counters`] snapshot.
//!
//! The central entry point is [`Machine::access`]: every simulated memory
//! access of every workload funnels through it, producing the performance
//! counters (dTLB misses, page-walk cycles, stall cycles, LLC misses, page
//! faults) that the SGXGauge paper reports. The SGX layer (`sgx-sim`) wraps
//! accesses with [`AccessAttrs`] to charge EPCM checks and MEE-encrypted
//! DRAM latency without `mem-sim` knowing anything about enclaves.
//!
//! # Example
//!
//! ```
//! use mem_sim::{Machine, MachineConfig, AccessKind, AccessAttrs};
//!
//! let mut m = Machine::new(MachineConfig::default());
//! let t = m.add_thread();
//! let out = m.access(t, 0x10_0000, 8, AccessKind::Read, &AccessAttrs::default());
//! assert!(out.cycles > 0);
//! assert_eq!(m.counters().mem_reads, 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod counters;
mod fxhash;
pub mod latency;
pub mod machine;
pub mod paging;
mod setidx;
pub mod tlb;

pub use cache::Llc;
pub use counters::Counters;
pub use latency::{LatencyError, LatencyModel};
pub use machine::{
    AccessAttrs, AccessKind, AccessOutcome, Machine, MachineConfig, StreamRun, ThreadId,
};
pub use paging::PageTable;
pub use tlb::Tlb;

/// Size of a (small) memory page in bytes. Matches the 4 KiB pages that the
/// SGX EPC manages.
pub const PAGE_SIZE: u64 = 4096;

/// Base-2 logarithm of [`PAGE_SIZE`], used to convert addresses to page
/// numbers with a shift.
pub const PAGE_SHIFT: u32 = 12;

/// Size of a cache line in bytes.
pub const LINE_SIZE: u64 = 64;

/// Base-2 logarithm of [`LINE_SIZE`].
pub const LINE_SHIFT: u32 = 6;

/// Converts a virtual address to its virtual page number.
#[inline]
pub fn page_of(vaddr: u64) -> u64 {
    vaddr >> PAGE_SHIFT
}

/// Converts a virtual address to its cache-line number.
#[inline]
pub fn line_of(vaddr: u64) -> u64 {
    vaddr >> LINE_SHIFT
}
