//! Minimal multiply-rotate hasher for hot-path integer keys.
//!
//! The standard library's default `SipHash` is deliberately
//! collision-resistant and correspondingly slow: hashing a single `u64`
//! costs tens of cycles, which dominated `PageTable::touch` profiles.
//! Keys hashed here are simulated page/region numbers — attacker-
//! controlled input is not a concern — so a one-multiply mix in the
//! style of rustc's `FxHasher` is the right trade.

use std::hash::{BuildHasher, Hasher};

/// Multiplicative constant from rustc's `FxHasher` (a close relative of
/// the Fibonacci hashing constant `2^64 / phi`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for integer keys.
#[derive(Debug, Clone, Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s; plugs into `HashMap`.
#[derive(Debug, Clone, Default)]
pub(crate) struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn distinct_keys_distinct_hashes() {
        let b = FxBuildHasher;
        let mut seen = std::collections::HashSet::new();
        for k in 0..10_000u64 {
            let mut h = b.build_hasher();
            h.write_u64(k);
            seen.insert(h.finish());
        }
        // Not a formal guarantee, but sequential integers must not
        // collapse onto a handful of buckets.
        assert!(seen.len() > 9_900);
    }

    #[test]
    fn works_as_hashmap_hasher() {
        let mut m: HashMap<u64, u32, FxBuildHasher> = HashMap::default();
        for k in 0..100 {
            m.insert(k, k as u32 * 2);
        }
        assert_eq!(m.get(&40), Some(&80));
        assert_eq!(m.len(), 100);
    }
}
