//! Latency constants of the modeled machine.
//!
//! The defaults are calibrated to the system the paper evaluates on
//! (Table 3: Xeon E-2186G @ 3.8 GHz, 12 MB LLC, DDR4). All values are in
//! CPU cycles. They are deliberately public and adjustable so that
//! sensitivity studies (e.g. a slower MEE) can be expressed as data.

use std::error::Error;
use std::fmt;

/// A rejected latency configuration: the hierarchy must be monotone
/// (`l1_hit <= llc_hit <= dram`, `walk_fast <= walk_slow`) and the MEE
/// multiplier must not discount DRAM (`mee_mult_x100 >= 100`).
///
/// The hot access path charges `mem_cycles - l1_hit` to the stall
/// counter and `dram_encrypted() - dram` to the MEE counter; a
/// non-monotone model would underflow those subtractions, so
/// [`LatencyModel::validate`] rejects it up front (invoked by
/// `Machine::new`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyError {
    /// `llc_hit < l1_hit`: an LLC hit may not be cheaper than an L1 hit.
    LlcFasterThanL1 {
        /// The offending `l1_hit`.
        l1_hit: u64,
        /// The offending `llc_hit`.
        llc_hit: u64,
    },
    /// `dram < llc_hit`: DRAM may not be cheaper than an LLC hit.
    DramFasterThanLlc {
        /// The offending `llc_hit`.
        llc_hit: u64,
        /// The offending `dram`.
        dram: u64,
    },
    /// `walk_slow < walk_fast`: a cold walk may not beat a cached walk.
    SlowWalkFasterThanFast {
        /// The offending `walk_fast`.
        walk_fast: u64,
        /// The offending `walk_slow`.
        walk_slow: u64,
    },
    /// `mee_mult_x100 < 100`: encryption may not make DRAM cheaper.
    MeeDiscountsDram {
        /// The offending multiplier.
        mee_mult_x100: u64,
    },
}

impl fmt::Display for LatencyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatencyError::LlcFasterThanL1 { l1_hit, llc_hit } => write!(
                f,
                "llc_hit ({llc_hit}) must be >= l1_hit ({l1_hit}): the stall \
                 decomposition charges mem_cycles - l1_hit per line"
            ),
            LatencyError::DramFasterThanLlc { llc_hit, dram } => {
                write!(f, "dram ({dram}) must be >= llc_hit ({llc_hit})")
            }
            LatencyError::SlowWalkFasterThanFast {
                walk_fast,
                walk_slow,
            } => write!(
                f,
                "walk_slow ({walk_slow}) must be >= walk_fast ({walk_fast})"
            ),
            LatencyError::MeeDiscountsDram { mee_mult_x100 } => write!(
                f,
                "mee_mult_x100 ({mee_mult_x100}) must be >= 100: the MEE \
                 premium dram_encrypted() - dram may not be negative"
            ),
        }
    }
}

impl Error for LatencyError {}

/// Cycle latencies for every event class the simulator charges.
///
/// Construct via [`LatencyModel::default`] and override individual fields:
///
/// ```
/// let lat = mem_sim::LatencyModel { dram: 250, ..Default::default() };
/// assert_eq!(lat.dram, 250);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// L1 data-cache hit latency. Every access costs at least this much.
    pub l1_hit: u64,
    /// Shared last-level-cache hit latency.
    pub llc_hit: u64,
    /// DRAM access latency on an LLC miss (unencrypted memory).
    pub dram: u64,
    /// Page-walk cost when the page-walk cache holds the upper levels
    /// (only the leaf PTE is fetched).
    pub walk_fast: u64,
    /// Page-walk cost when the walk misses the page-walk cache and all
    /// four levels are fetched from the cache hierarchy.
    pub walk_slow: u64,
    /// Extra cycles the hardware spends validating an EPCM entry while
    /// filling a TLB entry that maps an EPC page (paper §2.3).
    pub epcm_check: u64,
    /// Operating-system minor page fault (first touch of a mapped page)
    /// outside an enclave.
    pub minor_fault: u64,
    /// Percentage multiplier (x100) applied to [`LatencyModel::dram`] when
    /// the line lives in the Processor Reserved Memory and must pass
    /// through the Memory Encryption Engine. `300` means 3x.
    pub mee_mult_x100: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self {
            l1_hit: 4,
            llc_hit: 42,
            dram: 200,
            walk_fast: 24,
            walk_slow: 150,
            epcm_check: 40,
            minor_fault: 1_800,
            mee_mult_x100: 300,
        }
    }
}

impl LatencyModel {
    /// DRAM latency for a line in encrypted (PRM) memory: `dram` scaled by
    /// the MEE multiplier.
    #[inline]
    pub fn dram_encrypted(&self) -> u64 {
        self.dram * self.mee_mult_x100 / 100
    }

    /// Checks the monotonicity invariants the hot access path relies on.
    ///
    /// The per-line stall charge is `mem_cycles - l1_hit` and the MEE
    /// premium is `dram_encrypted() - dram`; both underflow (debug panic,
    /// silent wrap in release) for a non-monotone model, so `Machine::new`
    /// rejects one before any access can be issued.
    ///
    /// # Errors
    ///
    /// Returns the first violated ordering as a typed [`LatencyError`].
    pub fn validate(&self) -> Result<(), LatencyError> {
        if self.llc_hit < self.l1_hit {
            return Err(LatencyError::LlcFasterThanL1 {
                l1_hit: self.l1_hit,
                llc_hit: self.llc_hit,
            });
        }
        if self.dram < self.llc_hit {
            return Err(LatencyError::DramFasterThanLlc {
                llc_hit: self.llc_hit,
                dram: self.dram,
            });
        }
        if self.walk_slow < self.walk_fast {
            return Err(LatencyError::SlowWalkFasterThanFast {
                walk_fast: self.walk_fast,
                walk_slow: self.walk_slow,
            });
        }
        if self.mee_mult_x100 < 100 {
            return Err(LatencyError::MeeDiscountsDram {
                mee_mult_x100: self.mee_mult_x100,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_ordered() {
        let l = LatencyModel::default();
        assert!(l.l1_hit < l.llc_hit);
        assert!(l.llc_hit < l.dram);
        assert!(l.walk_fast < l.walk_slow);
        assert!(l.dram < l.dram_encrypted());
    }

    #[test]
    fn mee_multiplier_scales_dram() {
        let l = LatencyModel {
            dram: 100,
            mee_mult_x100: 250,
            ..Default::default()
        };
        assert_eq!(l.dram_encrypted(), 250);
    }

    #[test]
    fn identity_multiplier_is_noop() {
        let l = LatencyModel {
            mee_mult_x100: 100,
            ..Default::default()
        };
        assert_eq!(l.dram_encrypted(), l.dram);
    }

    #[test]
    fn default_model_validates() {
        assert_eq!(LatencyModel::default().validate(), Ok(()));
    }

    #[test]
    fn non_monotone_models_rejected_with_typed_errors() {
        let llc_under_l1 = LatencyModel {
            l1_hit: 50,
            llc_hit: 10,
            ..Default::default()
        };
        assert!(matches!(
            llc_under_l1.validate(),
            Err(LatencyError::LlcFasterThanL1 {
                l1_hit: 50,
                llc_hit: 10
            })
        ));
        let dram_under_llc = LatencyModel {
            dram: 10,
            ..Default::default()
        };
        assert!(matches!(
            dram_under_llc.validate(),
            Err(LatencyError::DramFasterThanLlc { .. })
        ));
        let walk_inverted = LatencyModel {
            walk_fast: 200,
            walk_slow: 100,
            ..Default::default()
        };
        assert!(matches!(
            walk_inverted.validate(),
            Err(LatencyError::SlowWalkFasterThanFast { .. })
        ));
        let mee_discount = LatencyModel {
            mee_mult_x100: 99,
            ..Default::default()
        };
        assert!(matches!(
            mee_discount.validate(),
            Err(LatencyError::MeeDiscountsDram { mee_mult_x100: 99 })
        ));
        // Errors render a human-readable reason.
        let msg = mee_discount.validate().unwrap_err().to_string();
        assert!(msg.contains("mee_mult_x100"));
    }

    #[test]
    fn boundary_equalities_are_valid() {
        // Equal latencies are monotone: the stall charge is exactly zero.
        let flat = LatencyModel {
            l1_hit: 10,
            llc_hit: 10,
            dram: 10,
            walk_fast: 24,
            walk_slow: 24,
            mee_mult_x100: 100,
            ..Default::default()
        };
        assert_eq!(flat.validate(), Ok(()));
    }
}
