//! Latency constants of the modeled machine.
//!
//! The defaults are calibrated to the system the paper evaluates on
//! (Table 3: Xeon E-2186G @ 3.8 GHz, 12 MB LLC, DDR4). All values are in
//! CPU cycles. They are deliberately public and adjustable so that
//! sensitivity studies (e.g. a slower MEE) can be expressed as data.

/// Cycle latencies for every event class the simulator charges.
///
/// Construct via [`LatencyModel::default`] and override individual fields:
///
/// ```
/// let lat = mem_sim::LatencyModel { dram: 250, ..Default::default() };
/// assert_eq!(lat.dram, 250);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyModel {
    /// L1 data-cache hit latency. Every access costs at least this much.
    pub l1_hit: u64,
    /// Shared last-level-cache hit latency.
    pub llc_hit: u64,
    /// DRAM access latency on an LLC miss (unencrypted memory).
    pub dram: u64,
    /// Page-walk cost when the page-walk cache holds the upper levels
    /// (only the leaf PTE is fetched).
    pub walk_fast: u64,
    /// Page-walk cost when the walk misses the page-walk cache and all
    /// four levels are fetched from the cache hierarchy.
    pub walk_slow: u64,
    /// Extra cycles the hardware spends validating an EPCM entry while
    /// filling a TLB entry that maps an EPC page (paper §2.3).
    pub epcm_check: u64,
    /// Operating-system minor page fault (first touch of a mapped page)
    /// outside an enclave.
    pub minor_fault: u64,
    /// Percentage multiplier (x100) applied to [`LatencyModel::dram`] when
    /// the line lives in the Processor Reserved Memory and must pass
    /// through the Memory Encryption Engine. `300` means 3x.
    pub mee_mult_x100: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self {
            l1_hit: 4,
            llc_hit: 42,
            dram: 200,
            walk_fast: 24,
            walk_slow: 150,
            epcm_check: 40,
            minor_fault: 1_800,
            mee_mult_x100: 300,
        }
    }
}

impl LatencyModel {
    /// DRAM latency for a line in encrypted (PRM) memory: `dram` scaled by
    /// the MEE multiplier.
    #[inline]
    pub fn dram_encrypted(&self) -> u64 {
        self.dram * self.mee_mult_x100 / 100
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_ordered() {
        let l = LatencyModel::default();
        assert!(l.l1_hit < l.llc_hit);
        assert!(l.llc_hit < l.dram);
        assert!(l.walk_fast < l.walk_slow);
        assert!(l.dram < l.dram_encrypted());
    }

    #[test]
    fn mee_multiplier_scales_dram() {
        let l = LatencyModel {
            dram: 100,
            mee_mult_x100: 250,
            ..Default::default()
        };
        assert_eq!(l.dram_encrypted(), 250);
    }

    #[test]
    fn identity_multiplier_is_noop() {
        let l = LatencyModel {
            mee_mult_x100: 100,
            ..Default::default()
        };
        assert_eq!(l.dram_encrypted(), l.dram);
    }
}
