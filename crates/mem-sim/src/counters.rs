//! Hardware-performance-counter model.
//!
//! [`Counters`] is the simulated analogue of the `perf` counter set the
//! paper samples: dTLB misses, page-walk cycles, stall cycles, LLC misses
//! and page faults, plus bookkeeping totals used by the reports.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

macro_rules! define_counters {
    ($(#[$meta:meta])* pub struct $name:ident { $($(#[$fmeta:meta])* pub $field:ident: u64,)+ }) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct $name {
            $($(#[$fmeta])* pub $field: u64,)+
        }

        impl $name {
            /// Returns a zeroed counter set; identical to `default()`.
            pub fn new() -> Self {
                Self::default()
            }

            /// Returns `(name, value)` pairs for every counter, in
            /// declaration order. Useful for CSV emission and generic
            /// reports.
            pub fn fields(&self) -> Vec<(&'static str, u64)> {
                vec![$((stringify!($field), self.$field)),+]
            }

            /// Saturating per-field subtraction; convenient when intervals
            /// may be measured across a counter reset.
            pub fn saturating_sub(&self, rhs: &$name) -> $name {
                $name { $($field: self.$field.saturating_sub(rhs.$field)),+ }
            }

            /// Sets the counter named `name`, returning false when no
            /// such counter exists. The by-name inverse of
            /// [`fields`](Self::fields), used by checkpoint restore.
            pub fn set_field(&mut self, name: &str, value: u64) -> bool {
                match name {
                    $(stringify!($field) => { self.$field = value; true })+
                    _ => false,
                }
            }
        }

        impl Add for $name {
            type Output = $name;

            fn add(self, rhs: $name) -> $name {
                $name { $($field: self.$field + rhs.$field),+ }
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                *self = *self + rhs;
            }
        }

        impl Sub for $name {
            type Output = $name;

            /// Interval between two snapshots.
            ///
            /// # Panics
            ///
            /// Panics in debug builds if any field of `rhs` exceeds the
            /// matching field of `self` (i.e. the snapshots are swapped);
            /// use `saturating_sub` when that may legitimately happen.
            fn sub(self, rhs: $name) -> $name {
                $name { $($field: self.$field - rhs.$field),+ }
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let mut first = true;
                for (name, v) in self.fields() {
                    if !first {
                        write!(f, " ")?;
                    }
                    write!(f, "{name}={v}")?;
                    first = false;
                }
                Ok(())
            }
        }
    };
}

define_counters! {
    /// A snapshot of the simulated hardware performance counters.
    ///
    /// All fields are monotonically increasing event counts or cycle
    /// totals. Two snapshots can be subtracted to obtain the counters of
    /// an interval, exactly like reading `perf` counters before and after
    /// a region of interest:
    ///
    /// ```
    /// use mem_sim::Counters;
    /// let before = Counters::default();
    /// let mut after = Counters::default();
    /// after.dtlb_misses = 10;
    /// let delta = after - before;
    /// assert_eq!(delta.dtlb_misses, 10);
    /// ```
    pub struct Counters {
        /// Retired simulated load operations.
        pub mem_reads: u64,
        /// Retired simulated store operations.
        pub mem_writes: u64,
        /// Data-TLB misses that required a page walk (missed both TLB levels).
        pub dtlb_misses: u64,
        /// Hits in the second-level TLB (missed the L1 dTLB only).
        pub stlb_hits: u64,
        /// Cycles spent in hardware page walks (including EPCM checks).
        pub walk_cycles: u64,
        /// Cycles the pipeline stalled waiting on the memory hierarchy
        /// beyond an L1 hit.
        pub stall_cycles: u64,
        /// Accesses that reached the shared last-level cache.
        pub llc_accesses: u64,
        /// Accesses that missed the shared last-level cache.
        pub llc_misses: u64,
        /// Operating-system page faults (minor, demand paging).
        pub page_faults: u64,
        /// Cycles of pure computation charged by workloads.
        pub compute_cycles: u64,
        /// Full TLB flushes (enclave transitions cause these).
        pub tlb_flushes: u64,
        /// Extra DRAM stall cycles paid to the Memory Encryption Engine:
        /// the encrypted-DRAM premium over plain DRAM on LLC misses into
        /// the PRM. A subset of `stall_cycles`, broken out so timelines
        /// can attribute MEE cost separately.
        pub mee_cycles: u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sub_roundtrip() {
        let a = Counters {
            dtlb_misses: 5,
            walk_cycles: 100,
            ..Default::default()
        };
        let b = Counters {
            dtlb_misses: 2,
            walk_cycles: 40,
            ..Default::default()
        };
        let sum = a + b;
        assert_eq!(sum.dtlb_misses, 7);
        assert_eq!(sum - b, a);
    }

    #[test]
    fn fields_cover_all_counters() {
        let c = Counters {
            mem_reads: 1,
            tlb_flushes: 2,
            ..Default::default()
        };
        let f = c.fields();
        assert_eq!(f.len(), 12);
        assert_eq!(f[0], ("mem_reads", 1));
        assert_eq!(f[10], ("tlb_flushes", 2));
        assert_eq!(f[11], ("mee_cycles", 0));
    }

    #[test]
    fn saturating_sub_never_underflows() {
        let a = Counters::default();
        let b = Counters {
            llc_misses: 9,
            ..Default::default()
        };
        assert_eq!(a.saturating_sub(&b).llc_misses, 0);
    }

    #[test]
    fn display_is_nonempty() {
        let c = Counters::default();
        assert!(format!("{c}").contains("mem_reads=0"));
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = Counters::default();
        let b = Counters {
            stall_cycles: 3,
            ..Default::default()
        };
        a += b;
        a += b;
        assert_eq!(a.stall_cycles, 6);
    }
}
