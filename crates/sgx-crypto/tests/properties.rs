//! Property tests for the crypto substrate.

use proptest::prelude::*;
use sgx_crypto::{hmac_sha256, ChaCha20, SealingKey, Sha256};

proptest! {
    /// Streaming SHA-256 equals one-shot for any chunking.
    #[test]
    fn sha256_streaming_equals_oneshot(data in prop::collection::vec(any::<u8>(), 0..2048),
                                       cut in 0usize..2048) {
        let cut = cut.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    /// ChaCha20 is an involution when applied twice with the same params.
    #[test]
    fn chacha_roundtrip(key in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(),
                        mut data in prop::collection::vec(any::<u8>(), 0..1024),
                        ctr in any::<u32>()) {
        let original = data.clone();
        let c = ChaCha20::new(&key, &nonce);
        c.apply(&mut data, ctr);
        c.apply(&mut data, ctr);
        prop_assert_eq!(data, original);
    }

    /// Seal/unseal round-trips for any payload and key material.
    #[test]
    fn seal_roundtrip(secret in prop::collection::vec(any::<u8>(), 1..64),
                      policy in prop::collection::vec(any::<u8>(), 0..64),
                      payload in prop::collection::vec(any::<u8>(), 0..512),
                      nonce in any::<[u8; 12]>()) {
        let k = SealingKey::derive(&secret, &policy);
        let blob = k.seal(&payload, nonce);
        prop_assert_eq!(k.unseal(&blob).unwrap(), payload);
    }

    /// Any single-bit flip in a sealed blob's ciphertext or tag is caught.
    #[test]
    fn seal_tamper_detected(payload in prop::collection::vec(any::<u8>(), 1..128),
                            bit in 0usize..8, idx_seed in any::<u64>()) {
        let k = SealingKey::derive(b"s", b"p");
        let mut blob = k.seal(&payload, [9; 12]);
        let idx = (idx_seed as usize) % blob.ciphertext.len();
        blob.ciphertext[idx] ^= 1 << bit;
        prop_assert!(k.unseal(&blob).is_err());
    }

    /// HMAC differs when key or message differs (no trivial collisions in
    /// random sampling).
    #[test]
    fn hmac_distinguishes(k1 in prop::collection::vec(any::<u8>(), 1..32),
                          m in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut k2 = k1.clone();
        k2[0] ^= 1;
        prop_assert_ne!(hmac_sha256(&k1, &m), hmac_sha256(&k2, &m));
    }
}
