//! ChaCha20 stream cipher (RFC 7539).
//!
//! Stands in for the AES-based primitives of Intel's stack (the MEE's
//! AES-CTR-like mode, SGX-SSL's application crypto): same structure —
//! a keyed keystream XORed over data — with a spec we can test against.

/// ChaCha20 cipher instance bound to a key and nonce.
///
/// Encryption and decryption are the same operation:
///
/// ```
/// use sgx_crypto::ChaCha20;
/// let key = [7u8; 32];
/// let nonce = [9u8; 12];
/// let mut data = b"attack at dawn".to_vec();
/// ChaCha20::new(&key, &nonce).apply(&mut data, 0);
/// ChaCha20::new(&key, &nonce).apply(&mut data, 0);
/// assert_eq!(&data, b"attack at dawn");
/// ```
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
}

impl ChaCha20 {
    /// Creates a cipher from a 256-bit key and 96-bit nonce.
    pub fn new(key: &[u8; 32], nonce: &[u8; 12]) -> Self {
        let mut k = [0u32; 8];
        for i in 0..8 {
            k[i] = u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        let mut n = [0u32; 3];
        for i in 0..3 {
            n[i] = u32::from_le_bytes([
                nonce[4 * i],
                nonce[4 * i + 1],
                nonce[4 * i + 2],
                nonce[4 * i + 3],
            ]);
        }
        ChaCha20 { key: k, nonce: n }
    }

    /// Generates the 64-byte keystream block for block counter `counter`.
    pub fn block(&self, counter: u32) -> [u8; 64] {
        // "expand 32-byte k"
        let mut state = [
            0x61707865u32,
            0x3320646e,
            0x79622d32,
            0x6b206574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            counter,
            self.nonce[0],
            self.nonce[1],
            self.nonce[2],
        ];
        let initial = state;
        for _ in 0..10 {
            // Column rounds.
            quarter(&mut state, 0, 4, 8, 12);
            quarter(&mut state, 1, 5, 9, 13);
            quarter(&mut state, 2, 6, 10, 14);
            quarter(&mut state, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter(&mut state, 0, 5, 10, 15);
            quarter(&mut state, 1, 6, 11, 12);
            quarter(&mut state, 2, 7, 8, 13);
            quarter(&mut state, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = state[i].wrapping_add(initial[i]);
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// XORs the keystream over `data` in place, starting at block
    /// `start_counter` (RFC 7539 uses 1 for the first data block when
    /// combined with Poly1305; plain streaming starts at 0).
    pub fn apply(&self, data: &mut [u8], start_counter: u32) {
        let mut counter = start_counter;
        for chunk in data.chunks_mut(64) {
            let ks = self.block(counter);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            counter = counter.wrapping_add(1);
        }
    }
}

#[inline]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    #[test]
    fn rfc7539_keystream_block() {
        // RFC 7539 §2.3.2 test vector.
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = ChaCha20::new(&key, &nonce).block(1);
        assert_eq!(to_hex(&block[..16]), "10f1e7e4d13b5915500fdd1fa32071c4");
        assert_eq!(to_hex(&block[48..64]), "b5129cd1de164eb9cbd083e8a2503c4e");
    }

    #[test]
    fn rfc7539_encryption() {
        // RFC 7539 §2.4.2.
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.".to_vec();
        ChaCha20::new(&key, &nonce).apply(&mut data, 1);
        assert_eq!(to_hex(&data[..16]), "6e2e359a2568f98041ba0728dd0d6981");
        assert_eq!(to_hex(&data[data.len() - 8..]), "8eedf2785e42874d");
    }

    #[test]
    fn roundtrip_various_sizes() {
        let key = [0x42u8; 32];
        let nonce = [0x24u8; 12];
        for n in [0usize, 1, 63, 64, 65, 128, 1000] {
            let original: Vec<u8> = (0..n).map(|i| (i * 7) as u8).collect();
            let mut data = original.clone();
            ChaCha20::new(&key, &nonce).apply(&mut data, 0);
            if n > 0 {
                assert_ne!(data, original, "ciphertext equals plaintext at n={n}");
            }
            ChaCha20::new(&key, &nonce).apply(&mut data, 0);
            assert_eq!(data, original, "roundtrip failed at n={n}");
        }
    }

    #[test]
    fn different_nonces_differ() {
        let key = [1u8; 32];
        let a = ChaCha20::new(&key, &[0u8; 12]).block(0);
        let b = ChaCha20::new(&key, &[1u8; 12]).block(0);
        assert_ne!(a, b);
    }

    #[test]
    fn different_counters_differ() {
        let c = ChaCha20::new(&[1u8; 32], &[2u8; 12]);
        assert_ne!(c.block(0), c.block(1));
    }
}
