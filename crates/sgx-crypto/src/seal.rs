//! SGX-style sealed storage (paper, Appendix E).
//!
//! Intel SGX "seals" data with a platform-bound key derived inside the
//! sealing enclave; sealed blobs can only be unsealed on the same platform
//! (and, optionally, by the same enclave). We model the same construction
//! as encrypt-then-MAC: ChaCha20 under a key derived from the platform key
//! and the sealing policy, with an HMAC-SHA-256 tag over the ciphertext.

use crate::chacha20::ChaCha20;
use crate::hmac::{hmac_sha256, verify_tag};
use crate::sha256::Sha256;
use std::error::Error;
use std::fmt;

/// Sealing failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SealError {
    /// The MAC over the ciphertext did not verify: the blob was tampered
    /// with or sealed under a different key/policy.
    BadMac,
    /// The blob is structurally invalid (too short to contain a header).
    Malformed,
}

impl fmt::Display for SealError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SealError::BadMac => write!(f, "sealed blob failed integrity verification"),
            SealError::Malformed => write!(f, "sealed blob is malformed"),
        }
    }
}

impl Error for SealError {}

/// A platform sealing key, as derived by the hardware from the fused
/// platform secret plus the sealing policy (enclave identity or signer
/// identity).
#[derive(Debug, Clone)]
pub struct SealingKey {
    enc_key: [u8; 32],
    mac_key: [u8; 32],
}

impl SealingKey {
    /// Derives a sealing key from a platform secret and a policy label
    /// (e.g. the enclave measurement for MRENCLAVE policy).
    pub fn derive(platform_secret: &[u8], policy: &[u8]) -> Self {
        let mut h = Sha256::new();
        h.update(platform_secret);
        h.update(b"|enc|");
        h.update(policy);
        let enc_key = h.finalize();
        let mut h = Sha256::new();
        h.update(platform_secret);
        h.update(b"|mac|");
        h.update(policy);
        let mac_key = h.finalize();
        SealingKey { enc_key, mac_key }
    }

    /// Seals `plaintext` with a caller-supplied unique `nonce`.
    pub fn seal(&self, plaintext: &[u8], nonce: [u8; 12]) -> SealedBlob {
        let mut ct = plaintext.to_vec();
        ChaCha20::new(&self.enc_key, &nonce).apply(&mut ct, 0);
        let mut mac_input = nonce.to_vec();
        mac_input.extend_from_slice(&ct);
        let tag = hmac_sha256(&self.mac_key, &mac_input);
        SealedBlob {
            nonce,
            ciphertext: ct,
            tag,
        }
    }

    /// Unseals a blob, verifying its MAC first.
    ///
    /// # Errors
    ///
    /// Returns [`SealError::BadMac`] when the tag does not verify under
    /// this key (wrong platform, wrong policy, or tampering).
    pub fn unseal(&self, blob: &SealedBlob) -> Result<Vec<u8>, SealError> {
        let mut mac_input = blob.nonce.to_vec();
        mac_input.extend_from_slice(&blob.ciphertext);
        let tag = hmac_sha256(&self.mac_key, &mac_input);
        if !verify_tag(&tag, &blob.tag) {
            return Err(SealError::BadMac);
        }
        let mut pt = blob.ciphertext.clone();
        ChaCha20::new(&self.enc_key, &blob.nonce).apply(&mut pt, 0);
        Ok(pt)
    }
}

/// A sealed data blob: nonce, ciphertext, integrity tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBlob {
    /// Unique nonce the blob was sealed with.
    pub nonce: [u8; 12],
    /// Encrypted payload.
    pub ciphertext: Vec<u8>,
    /// HMAC-SHA-256 over nonce and ciphertext.
    pub tag: [u8; 32],
}

impl SealedBlob {
    /// Serializes to bytes (nonce || tag || ciphertext).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + 32 + self.ciphertext.len());
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&self.tag);
        out.extend_from_slice(&self.ciphertext);
        out
    }

    /// Parses the [`SealedBlob::to_bytes`] format.
    ///
    /// # Errors
    ///
    /// Returns [`SealError::Malformed`] if `bytes` is shorter than the
    /// fixed header.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SealError> {
        if bytes.len() < 44 {
            return Err(SealError::Malformed);
        }
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&bytes[..12]);
        let mut tag = [0u8; 32];
        tag.copy_from_slice(&bytes[12..44]);
        Ok(SealedBlob {
            nonce,
            tag,
            ciphertext: bytes[44..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> SealingKey {
        SealingKey::derive(b"platform-fuse-secret", b"mrenclave-of-test")
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let k = key();
        let blob = k.seal(b"secret payload", [1; 12]);
        assert_eq!(k.unseal(&blob).unwrap(), b"secret payload");
    }

    #[test]
    fn tampering_detected() {
        let k = key();
        let mut blob = k.seal(b"secret payload", [1; 12]);
        blob.ciphertext[3] ^= 0x80;
        assert_eq!(k.unseal(&blob), Err(SealError::BadMac));
    }

    #[test]
    fn wrong_platform_rejected() {
        let k = key();
        let other = SealingKey::derive(b"different-platform", b"mrenclave-of-test");
        let blob = k.seal(b"data", [2; 12]);
        assert_eq!(other.unseal(&blob), Err(SealError::BadMac));
    }

    #[test]
    fn wrong_policy_rejected() {
        let k = key();
        let other = SealingKey::derive(b"platform-fuse-secret", b"other-enclave");
        let blob = k.seal(b"data", [2; 12]);
        assert_eq!(other.unseal(&blob), Err(SealError::BadMac));
    }

    #[test]
    fn bytes_roundtrip() {
        let k = key();
        let blob = k.seal(b"abcdef", [3; 12]);
        let parsed = SealedBlob::from_bytes(&blob.to_bytes()).unwrap();
        assert_eq!(parsed, blob);
        assert_eq!(k.unseal(&parsed).unwrap(), b"abcdef");
    }

    #[test]
    fn short_blob_malformed() {
        assert_eq!(
            SealedBlob::from_bytes(&[0u8; 43]),
            Err(SealError::Malformed)
        );
    }

    #[test]
    fn empty_payload_allowed() {
        let k = key();
        let blob = k.seal(b"", [4; 12]);
        assert_eq!(k.unseal(&blob).unwrap(), Vec::<u8>::new());
    }
}
