//! From-scratch cryptographic primitives for the SGXGauge reproduction.
//!
//! Intel SGX leans on cryptography everywhere the paper measures it: the
//! MEE encrypts and MACs every EPC page that is evicted (EWB) and verifies
//! it on load-back (ELDU), the enclave loader hashes every page at build
//! time (EADD/EEXTEND), sealed storage encrypts data with a platform key,
//! and two of the workloads (Blockchain, OpenSSL) are crypto kernels.
//!
//! This crate implements the needed primitives with no dependencies:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 (tested against NIST vectors),
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104, tested against RFC 4231),
//! * [`aes`] — AES-128 + CTR mode (FIPS 197 / SP 800-38A vectors),
//! * [`chacha20`] — the RFC 7539 ChaCha20 stream cipher,
//! * [`seal`] — an SGX-style sealing API (encrypt-then-MAC with a
//!   platform-bound key).
//!
//! # Example
//!
//! ```
//! use sgx_crypto::sha256::Sha256;
//! let digest = Sha256::digest(b"abc");
//! assert_eq!(digest[0], 0xba);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod aes;
pub mod chacha20;
pub mod hmac;
pub mod seal;
pub mod sha256;

pub use aes::Aes128;
pub use chacha20::ChaCha20;
pub use hmac::hmac_sha256;
pub use seal::{SealError, SealedBlob, SealingKey};
pub use sha256::Sha256;
