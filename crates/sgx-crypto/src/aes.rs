//! AES-128 (FIPS 197) with a CTR mode, implemented in software.
//!
//! Intel SGX's memory encryption and its SDK crypto are AES-based; the
//! ChaCha20 in this crate stands in where speed matters, but a real AES
//! belongs in the substrate: the OpenSSL workload's paper counterpart is
//! Intel SGX-SSL, i.e. AES, and tests should be able to exercise the
//! genuine algorithm. This implementation is a straightforward table-free
//! byte-oriented AES (S-box only), tested against the FIPS 197 and NIST
//! SP 800-38A vectors.

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

/// An AES-128 key schedule.
///
/// ```
/// use sgx_crypto::aes::Aes128;
/// // FIPS 197 Appendix B.
/// let key = [0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
///            0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c];
/// let block = [0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
///              0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34];
/// let ct = Aes128::new(&key).encrypt_block(&block);
/// assert_eq!(ct[0], 0x39);
/// assert_eq!(ct[15], 0x32);
/// ```
#[derive(Debug, Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl Aes128 {
    /// Expands `key` into the 11 round keys.
    pub fn new(key: &[u8; 16]) -> Self {
        let mut rk = [[0u8; 16]; 11];
        rk[0] = *key;
        for r in 1..11 {
            let prev = rk[r - 1];
            let mut temp = [prev[12], prev[13], prev[14], prev[15]];
            // RotWord + SubWord + Rcon.
            temp.rotate_left(1);
            for t in temp.iter_mut() {
                *t = SBOX[*t as usize];
            }
            temp[0] ^= RCON[r - 1];
            for i in 0..4 {
                rk[r][i] = prev[i] ^ temp[i];
            }
            for i in 4..16 {
                rk[r][i] = prev[i] ^ rk[r][i - 4];
            }
        }
        Aes128 { round_keys: rk }
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut s = *block;
        add_round_key(&mut s, &self.round_keys[0]);
        for r in 1..10 {
            sub_bytes(&mut s);
            shift_rows(&mut s);
            mix_columns(&mut s);
            add_round_key(&mut s, &self.round_keys[r]);
        }
        sub_bytes(&mut s);
        shift_rows(&mut s);
        add_round_key(&mut s, &self.round_keys[10]);
        s
    }

    /// CTR-mode keystream XOR over `data`, starting from `nonce` and
    /// 32-bit big-endian block counter `ctr0` (NIST SP 800-38A style,
    /// with the counter in the last 4 bytes). Encryption and decryption
    /// are identical.
    pub fn ctr_apply(&self, nonce: &[u8; 12], ctr0: u32, data: &mut [u8]) {
        let mut counter_block = [0u8; 16];
        counter_block[..12].copy_from_slice(nonce);
        let mut ctr = ctr0;
        for chunk in data.chunks_mut(16) {
            counter_block[12..].copy_from_slice(&ctr.to_be_bytes());
            let ks = self.encrypt_block(&counter_block);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            ctr = ctr.wrapping_add(1);
        }
    }
}

#[inline]
fn add_round_key(s: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        s[i] ^= rk[i];
    }
}

#[inline]
fn sub_bytes(s: &mut [u8; 16]) {
    for b in s.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

/// State is column-major: byte `s[r + 4c]` is row `r`, column `c`.
#[inline]
fn shift_rows(s: &mut [u8; 16]) {
    // Row 1: rotate left by 1.
    let t = s[1];
    s[1] = s[5];
    s[5] = s[9];
    s[9] = s[13];
    s[13] = t;
    // Row 2: rotate left by 2.
    s.swap(2, 10);
    s.swap(6, 14);
    // Row 3: rotate left by 3 (= right by 1).
    let t = s[15];
    s[15] = s[11];
    s[11] = s[7];
    s[7] = s[3];
    s[3] = t;
}

#[inline]
fn mix_columns(s: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
        let t = col[0] ^ col[1] ^ col[2] ^ col[3];
        s[4 * c] = col[0] ^ t ^ xtime(col[0] ^ col[1]);
        s[4 * c + 1] = col[1] ^ t ^ xtime(col[1] ^ col[2]);
        s[4 * c + 2] = col[2] ^ t ^ xtime(col[2] ^ col[3]);
        s[4 * c + 3] = col[3] ^ t ^ xtime(col[3] ^ col[0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    #[test]
    fn fips197_appendix_b() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let ct = Aes128::new(&key).encrypt_block(&pt);
        assert_eq!(to_hex(&ct), "3925841d02dc09fbdc118597196a0b32");
    }

    #[test]
    fn fips197_appendix_c1() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let pt: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        let ct = Aes128::new(&key).encrypt_block(&pt);
        assert_eq!(to_hex(&ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
    }

    #[test]
    fn sp800_38a_ctr_vector() {
        // NIST SP 800-38A F.5.1 CTR-AES128.Encrypt, first block.
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        // Initial counter block f0f1...fcfdfeff: nonce = first 12 bytes,
        // ctr0 = last 4 bytes big-endian.
        let nonce: [u8; 12] = [
            0xf0, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa, 0xfb,
        ];
        let ctr0 = u32::from_be_bytes([0xfc, 0xfd, 0xfe, 0xff]);
        let mut data = [
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a,
        ];
        Aes128::new(&key).ctr_apply(&nonce, ctr0, &mut data);
        assert_eq!(to_hex(&data), "874d6191b620e3261bef6864990db6ce");
    }

    #[test]
    fn ctr_roundtrip_odd_lengths() {
        let key = [7u8; 16];
        let nonce = [9u8; 12];
        for n in [0usize, 1, 15, 16, 17, 100, 1000] {
            let original: Vec<u8> = (0..n).map(|i| (i * 13) as u8).collect();
            let mut data = original.clone();
            let aes = Aes128::new(&key);
            aes.ctr_apply(&nonce, 0, &mut data);
            if n > 0 {
                assert_ne!(data, original);
            }
            aes.ctr_apply(&nonce, 0, &mut data);
            assert_eq!(data, original, "n={n}");
        }
    }

    #[test]
    fn key_schedule_first_round_key() {
        // FIPS 197 A.1: w4..w7 for the Appendix-A key.
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let aes = Aes128::new(&key);
        assert_eq!(
            to_hex(&aes.round_keys[1]),
            "a0fafe1788542cb123a339392a6c7605"
        );
        assert_eq!(
            to_hex(&aes.round_keys[10]),
            "d014f9a8c9ee2589e13f0cc8b6630ca6"
        );
    }

    #[test]
    fn different_keys_differ() {
        let pt = [0u8; 16];
        let a = Aes128::new(&[1u8; 16]).encrypt_block(&pt);
        let b = Aes128::new(&[2u8; 16]).encrypt_block(&pt);
        assert_ne!(a, b);
    }
}
