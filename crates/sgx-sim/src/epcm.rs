//! The Enclave Page Cache Map (EPCM).
//!
//! SGX keeps one EPCM entry per EPC frame recording the owning enclave,
//! the virtual address the frame was allocated for, and its permissions.
//! The hardware consults the entry whenever a TLB entry for an EPC page is
//! installed (paper §2.3, Fig 1); a mismatch aborts the access. We model
//! the structure functionally — the cycle cost of the check is charged by
//! the machine as part of the page walk.

use crate::enclave::EnclaveId;
use crate::epc::PageKey;
use std::collections::HashMap;

/// Page permissions recorded in an EPCM entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagePerms {
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
    /// Executable.
    pub execute: bool,
}

impl PagePerms {
    /// Read-write data page (the common case for heap pages).
    pub const RW: PagePerms = PagePerms {
        read: true,
        write: true,
        execute: false,
    };
    /// Read-execute code page.
    pub const RX: PagePerms = PagePerms {
        read: true,
        write: false,
        execute: true,
    };
}

/// One EPCM entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpcmEntry {
    /// Enclave the frame belongs to.
    pub owner: EnclaveId,
    /// Virtual page the frame was EADDed for.
    pub vpage: u64,
    /// Access permissions.
    pub perms: PagePerms,
}

/// Result of an EPCM verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpcmCheck {
    /// Entry matches the access.
    Ok,
    /// No entry exists for the page (not an EPC page of this enclave).
    NoEntry,
    /// The page belongs to a different enclave.
    WrongOwner,
    /// The recorded virtual address does not match.
    WrongAddress,
    /// Permissions deny the access.
    Denied,
}

/// The EPCM table.
///
/// ```
/// use sgx_sim::epcm::{Epcm, PagePerms, EpcmCheck};
/// use sgx_sim::enclave::EnclaveId;
///
/// let mut epcm = Epcm::new();
/// let e = EnclaveId(3);
/// epcm.record(e, 100, PagePerms::RW);
/// assert_eq!(epcm.verify(e, 100, false), EpcmCheck::Ok);
/// assert_eq!(epcm.verify(EnclaveId(4), 100, false), EpcmCheck::WrongOwner);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Epcm {
    entries: HashMap<u64, EpcmEntry>,
}

impl Epcm {
    /// Creates an empty EPCM.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records (or updates) the entry for virtual page `vpage`.
    pub fn record(&mut self, owner: EnclaveId, vpage: u64, perms: PagePerms) {
        self.entries.insert(
            vpage,
            EpcmEntry {
                owner,
                vpage,
                perms,
            },
        );
    }

    /// Removes the entry for `vpage` (EREMOVE).
    pub fn remove(&mut self, vpage: u64) -> Option<EpcmEntry> {
        self.entries.remove(&vpage)
    }

    /// Removes every entry owned by `enclave`; returns the count.
    pub fn remove_enclave(&mut self, enclave: EnclaveId) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.owner != enclave);
        before - self.entries.len()
    }

    /// Verifies that `enclave` may access `vpage` (`write` selects the
    /// store path). This is the check the hardware performs while filling
    /// a TLB entry for an EPC page.
    pub fn verify(&self, enclave: EnclaveId, vpage: u64, write: bool) -> EpcmCheck {
        match self.entries.get(&vpage) {
            None => EpcmCheck::NoEntry,
            Some(e) if e.owner != enclave => EpcmCheck::WrongOwner,
            Some(e) if e.vpage != vpage => EpcmCheck::WrongAddress,
            Some(e) => {
                let allowed = if write { e.perms.write } else { e.perms.read };
                if allowed {
                    EpcmCheck::Ok
                } else {
                    EpcmCheck::Denied
                }
            }
        }
    }

    /// Looks up the entry for `vpage`.
    pub fn entry(&self, vpage: u64) -> Option<&EpcmEntry> {
        self.entries.get(&vpage)
    }

    /// Iterates over all live entries (arbitrary order), for invariant
    /// audits that cross-check the EPCM against EPC residency.
    pub fn entries(&self) -> impl Iterator<Item = &EpcmEntry> {
        self.entries.values()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Convenience: records an entry from a [`PageKey`].
    pub fn record_key(&mut self, key: PageKey, perms: PagePerms) {
        self.record(key.enclave, key.page, perms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_matches_owner_and_perms() {
        let mut epcm = Epcm::new();
        epcm.record(EnclaveId(1), 7, PagePerms::RW);
        assert_eq!(epcm.verify(EnclaveId(1), 7, true), EpcmCheck::Ok);
        assert_eq!(epcm.verify(EnclaveId(1), 7, false), EpcmCheck::Ok);
        assert_eq!(epcm.verify(EnclaveId(2), 7, false), EpcmCheck::WrongOwner);
        assert_eq!(epcm.verify(EnclaveId(1), 8, false), EpcmCheck::NoEntry);
    }

    #[test]
    fn execute_only_page_denies_write() {
        let mut epcm = Epcm::new();
        epcm.record(EnclaveId(1), 9, PagePerms::RX);
        assert_eq!(epcm.verify(EnclaveId(1), 9, true), EpcmCheck::Denied);
        assert_eq!(epcm.verify(EnclaveId(1), 9, false), EpcmCheck::Ok);
    }

    #[test]
    fn remove_enclave_clears_only_its_pages() {
        let mut epcm = Epcm::new();
        epcm.record(EnclaveId(1), 1, PagePerms::RW);
        epcm.record(EnclaveId(1), 2, PagePerms::RW);
        epcm.record(EnclaveId(2), 3, PagePerms::RW);
        assert_eq!(epcm.remove_enclave(EnclaveId(1)), 2);
        assert_eq!(epcm.len(), 1);
        assert_eq!(epcm.verify(EnclaveId(2), 3, false), EpcmCheck::Ok);
    }

    #[test]
    fn remove_single_entry() {
        let mut epcm = Epcm::new();
        epcm.record(EnclaveId(1), 4, PagePerms::RW);
        assert!(epcm.remove(4).is_some());
        assert!(epcm.remove(4).is_none());
        assert!(epcm.is_empty());
    }
}
