//! Canonical cycle-cost constants of the SGX model.
//!
//! Every cycle cost the paper cites lives **here and only here**; the
//! `gauge-audit` static linter (rule `cost-literals`, see `crates/audit`)
//! fails the build when one of these values appears as an integer literal
//! anywhere else in the workspace. Duplicated cost constants are how
//! enclave benchmark suites silently drift (Stress-SGX, Vaucher et al.):
//! a harness hard-codes "12 000 cycles per EWB", the simulator is later
//! recalibrated, and every figure derived from the stale copy is wrong
//! without a single test failing.
//!
//! [`crate::SgxConfig::default`] is built from these constants, so
//! experiments that need a *different* platform override the config —
//! they never restate the numbers.

/// Cycles to evict one page — MAC + encrypt + write back (EWB).
///
/// Paper §2.2: "evicting a page costs ≈12,000 cycles"; Fig 7 plots the
/// measured driver latency distribution around this mean.
pub const EWB_CYCLES: u64 = 12_000;

/// Cycles to load one evicted page back — decrypt + verify (ELDU).
///
/// Appendix A: EWB is "16 % more than loading back", so ELDU is
/// [`EWB_CYCLES`] / 1.16 rounded to the paper's quoted figure.
pub const ELDU_CYCLES: u64 = 10_345;

/// Cycles for `sgx_alloc_page` to hand out a free EPC frame
/// (Appendix A, instrumented-driver measurement).
pub const ALLOC_PAGE_CYCLES: u64 = 5_300;

/// Fixed driver overhead of `sgx_do_fault` on top of the paging
/// operations it dispatches (Appendix A).
pub const FAULT_BASE_CYCLES: u64 = 2_800;

/// Cycles for one full ECALL round trip — EENTER + EEXIT.
///
/// Paper §2.3, citing Weisse et al.: "an enclave transition costs
/// ≈17,000 cycles".
pub const ECALL_ROUND_TRIP_CYCLES: u64 = 17_000;

/// Cycles for EENTER (half of the [`ECALL_ROUND_TRIP_CYCLES`]).
pub const EENTER_CYCLES: u64 = ECALL_ROUND_TRIP_CYCLES / 2;

/// Cycles for EEXIT (the other half of the round trip).
pub const EEXIT_CYCLES: u64 = ECALL_ROUND_TRIP_CYCLES / 2;

/// Cycles for an asynchronous exit (AEX) on an EPC fault (§2.3 —
/// cheaper than a synchronous transition: no argument marshalling).
pub const AEX_CYCLES: u64 = 7_000;

/// Cycles for ERESUME after a handled fault (§2.3).
pub const ERESUME_CYCLES: u64 = 3_200;

/// Cycles to EADD + EEXTEND (measure) one page at enclave build time
/// (§3.2.1, Appendix D start-up anatomy).
pub const EADD_CYCLES: u64 = 1_400;

/// Extra cycles for the in-enclave EACCEPT of an EAUGed page under
/// SGX2/EDMM (Appendix D, SGX v1 vs v2 heap discussion).
pub const EACCEPT_CYCLES: u64 = 1_900;

/// Shared-memory channel overhead per switchless OCALL (§5.6 — the
/// proxy-thread handoff that replaces the 17 k-cycle transition).
pub const SWITCHLESS_CHANNEL_CYCLES: u64 = 600;

/// Cycles of a host syscall issued outside any enclave (Table 3
/// platform; the baseline an OCALL's untrusted work is charged at).
pub const HOST_SYSCALL_CYCLES: u64 = 1_800;

/// Pages evicted per EWB batch — the SGX driver always writes back 16
/// victims per fault (Appendix A).
pub const EVICT_BATCH_PAGES: usize = 16;

/// Base simulated-cycle delay before the first retry of a cell that
/// failed transiently; doubles per attempt. Sized to a couple of ECALL
/// round trips so a retried cell's accounted backoff is visible next to
/// the transition costs it models, yet never dominates a run.
pub const RETRY_BACKOFF_BASE_CYCLES: u64 = 25_000;

/// One-way latency of a cross-enclave relay hop: the sender's
/// untrusted-side marshalling, the host relay copy, and the receiver's
/// delivery staging. Sized between a host syscall and an EENTER — the
/// hop itself never crosses an enclave boundary; the boundary crossings
/// are charged separately by the ops that produce and consume the
/// message.
pub const RELAY_LINK_CYCLES: u64 = 4_700;

/// Base send timeout of the relay's protocol-resilience layer: a party
/// that has not received an expected message after this many simulated
/// cycles issues its first re-request. Doubles per attempt. Sized just
/// above the default scheduling wave so one quiet wave never triggers a
/// spurious retry.
pub const RELAY_SEND_TIMEOUT_CYCLES: u64 = 65_000;

/// Cycles the failure detector waits after last hearing from a party
/// before raising `party_suspected` — four base send timeouts, so a
/// party survives a full doubling-backoff retry burst before being
/// declared suspect.
pub const RELAY_SUSPECT_CYCLES: u64 = RELAY_SEND_TIMEOUT_CYCLES * 4;

/// Watchdog budget for one threshold-signing round: a round that has
/// not completed within this many cycles of its start is declared
/// timed out (never hung). Sized far above the worst-case bounded
/// retry schedule.
pub const RELAY_ROUND_BUDGET_CYCLES: u64 = RELAY_SEND_TIMEOUT_CYCLES * 64;

/// In-enclave compute to produce one threshold-signing share
/// (commitment + MtA response in the DKLs23-style flow the relay
/// workload models) — deliberately below one ECALL round trip so
/// transition amplification, not raw compute, dominates the round.
pub const SIGN_SHARE_CYCLES: u64 = 9_300;

/// In-enclave compute to verify and absorb one received share.
pub const SIGN_VERIFY_CYCLES: u64 = 3_700;

// The derived transition halves must reassemble the cited round trip
// exactly; a drifted edit here would corrupt Fig 7 and Table 4 at once.
const _: () = assert!(EENTER_CYCLES + EEXIT_CYCLES == ECALL_ROUND_TRIP_CYCLES);
// ELDU must stay "16 % cheaper" than EWB within integer rounding of the
// paper's quoted values (12_000 / 1.16 = 10_344.8…): the ratio in
// rounded per-mille must be 1160.
const _: () = assert!((EWB_CYCLES * 1000 + ELDU_CYCLES / 2) / ELDU_CYCLES == 1160);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewb_is_16_percent_costlier_than_eldu() {
        let ratio = EWB_CYCLES as f64 / ELDU_CYCLES as f64;
        assert!((ratio - 1.16).abs() < 0.001, "ratio {ratio}");
    }

    #[test]
    fn transition_halves_sum_to_round_trip() {
        assert_eq!(EENTER_CYCLES + EEXIT_CYCLES, ECALL_ROUND_TRIP_CYCLES);
    }
}
