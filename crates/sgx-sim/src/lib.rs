//! Performance model of Intel SGX.
//!
//! This crate layers the SGX mechanisms the paper characterizes on top of
//! the [`mem_sim`] machine model:
//!
//! * the **Enclave Page Cache** ([`epc::Epc`]): 92 MB of 4 KiB frames
//!   inside the 128 MB PRM, with clock eviction in 16-page EWB batches and
//!   ELDU load-backs (paper §2.2, Appendix A),
//! * the **EPCM** ([`epcm::Epcm`]): per-frame ownership records verified
//!   on TLB fills for enclave pages (§2.3, Fig 1),
//! * the **MEE**: modeled as a DRAM-latency multiplier on PRM traffic
//!   (via [`mem_sim::AccessAttrs`]),
//! * **enclave lifecycle** ([`enclave`], [`machine::SgxMachine`]):
//!   ECREATE / EADD+EEXTEND measurement / EINIT, ECALL/OCALL transitions
//!   at ≈17 k cycles with TLB flushes, AEX on faults (§2.3),
//! * **switchless OCALLs** ([`switchless::SwitchlessPool`]): proxy threads
//!   on dedicated cores serving exit-less calls (§5.6),
//! * **driver instrumentation** ([`driver::DriverStats`]): latency samples
//!   of `sgx_alloc_page`, `sgx_ewb`, `sgx_eldu`, `sgx_do_fault`, matching
//!   the instrumented-driver methodology of Appendix A.
//!
//! The entry point is [`SgxMachine`]: create enclaves, enter them, issue
//! accesses, and read back [`SgxCounters`] + [`mem_sim::Counters`].
//!
//! # Example
//!
//! ```
//! use sgx_sim::{SgxMachine, SgxConfig};
//! use mem_sim::AccessKind;
//!
//! let mut m = SgxMachine::new(SgxConfig::default());
//! let t = m.add_thread();
//! let e = m.create_enclave(64 << 20, 16 << 20).expect("enclave fits PRM rules");
//! m.ecall_enter(t, e);
//! let base = m.enclave(e).heap_base();
//! m.access(t, base, 4096, AccessKind::Write);
//! m.ecall_exit(t, e);
//! assert_eq!(m.sgx_counters().ecalls, 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod attest;
pub mod costs;
pub mod driver;
pub mod enclave;
pub mod epc;
pub mod epcm;
pub mod host;
pub mod machine;
mod pagedir;
pub mod switchless;

pub use attest::{ereport, verify_report, Report};
pub use driver::{DriverOp, DriverStats};
pub use enclave::{Enclave, EnclaveId};
pub use epc::{Epc, EpcEnclaveStats, EpcFaultKind, PageKey};
pub use epcm::{Epcm, EpcmEntry};
pub use host::{Host, HostBuilder, HostError, TenantId, TenantOp, TenantReport, TenantSpec};
pub use machine::{CounterField, InitStats, SgxConfig, SgxCounters, SgxError, SgxMachine};
pub use switchless::SwitchlessPool;
