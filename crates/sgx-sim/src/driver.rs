//! Instrumented-driver statistics (paper §5.1.1 and Appendix A).
//!
//! The paper instruments the Intel SGX kernel driver — which runs outside
//! the enclave and is therefore traceable — to time `sgx_alloc_page`,
//! `sgx_ewb`, `sgx_eldu` and `sgx_do_fault`. [`DriverStats`] plays that
//! role here: the machine records a latency sample every time it executes
//! one of those operations, and the Fig 7 bench reads back the means.

use std::fmt;

/// The four instrumented driver operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DriverOp {
    /// `sgx_alloc_page`: hand a free EPC frame to an enclave.
    AllocPage,
    /// `sgx_ewb`: encrypt + MAC + write back one EPC page.
    Ewb,
    /// `sgx_eldu`: decrypt + verify + load back one EPC page.
    Eldu,
    /// `sgx_do_fault`: the driver's EPC page-fault handler.
    DoFault,
}

impl DriverOp {
    /// All operations, in display order.
    pub const ALL: [DriverOp; 4] = [
        DriverOp::AllocPage,
        DriverOp::Ewb,
        DriverOp::Eldu,
        DriverOp::DoFault,
    ];

    /// The driver-source function name, as the paper reports it.
    pub fn function_name(&self) -> &'static str {
        match self {
            DriverOp::AllocPage => "sgx_alloc_page()",
            DriverOp::Ewb => "sgx_ewb()",
            DriverOp::Eldu => "sgx_eldu()",
            DriverOp::DoFault => "sgx_do_fault()",
        }
    }
}

impl fmt::Display for DriverOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.function_name())
    }
}

/// Accumulated latency statistics for one operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Number of recorded executions.
    pub count: u64,
    /// Sum of latencies in cycles.
    pub total_cycles: u64,
    /// Smallest observed latency.
    pub min_cycles: u64,
    /// Largest observed latency.
    pub max_cycles: u64,
}

impl OpStats {
    /// Mean latency in cycles (zero when no samples).
    pub fn mean_cycles(&self) -> u64 {
        self.total_cycles.checked_div(self.count).unwrap_or(0)
    }

    /// Mean latency in microseconds at the given core frequency.
    pub fn mean_micros(&self, ghz: f64) -> f64 {
        self.mean_cycles() as f64 / (ghz * 1000.0)
    }
}

/// Latency recorder for the instrumented driver functions.
///
/// ```
/// use sgx_sim::driver::{DriverStats, DriverOp};
/// let mut d = DriverStats::new();
/// d.record(DriverOp::Ewb, 12_000);
/// d.record(DriverOp::Ewb, 12_400);
/// assert_eq!(d.stats(DriverOp::Ewb).mean_cycles(), 12_200);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DriverStats {
    alloc: OpStats,
    ewb: OpStats,
    eldu: OpStats,
    fault: OpStats,
}

impl DriverStats {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(&mut self, op: DriverOp) -> &mut OpStats {
        match op {
            DriverOp::AllocPage => &mut self.alloc,
            DriverOp::Ewb => &mut self.ewb,
            DriverOp::Eldu => &mut self.eldu,
            DriverOp::DoFault => &mut self.fault,
        }
    }

    /// Records one execution of `op` taking `cycles`.
    pub fn record(&mut self, op: DriverOp, cycles: u64) {
        let s = self.slot(op);
        if s.count == 0 {
            s.min_cycles = cycles;
            s.max_cycles = cycles;
        } else {
            s.min_cycles = s.min_cycles.min(cycles);
            s.max_cycles = s.max_cycles.max(cycles);
        }
        s.count += 1;
        s.total_cycles += cycles;
    }

    /// Statistics for `op`.
    pub fn stats(&self, op: DriverOp) -> OpStats {
        match op {
            DriverOp::AllocPage => self.alloc,
            DriverOp::Ewb => self.ewb,
            DriverOp::Eldu => self.eldu,
            DriverOp::DoFault => self.fault,
        }
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Merges another recorder's samples into this one.
    pub fn merge(&mut self, other: &DriverStats) {
        for op in DriverOp::ALL {
            let o = other.stats(op);
            if o.count == 0 {
                continue;
            }
            let s = self.slot(op);
            if s.count == 0 {
                *s = o;
            } else {
                s.count += o.count;
                s.total_cycles += o.total_cycles;
                s.min_cycles = s.min_cycles.min(o.min_cycles);
                s.max_cycles = s.max_cycles.max(o.max_cycles);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_min_max() {
        let mut d = DriverStats::new();
        d.record(DriverOp::Eldu, 100);
        d.record(DriverOp::Eldu, 300);
        let s = d.stats(DriverOp::Eldu);
        assert_eq!(s.count, 2);
        assert_eq!(s.mean_cycles(), 200);
        assert_eq!(s.min_cycles, 100);
        assert_eq!(s.max_cycles, 300);
    }

    #[test]
    fn empty_stats_are_zero() {
        let d = DriverStats::new();
        assert_eq!(d.stats(DriverOp::DoFault).mean_cycles(), 0);
    }

    #[test]
    fn micros_conversion() {
        let mut d = DriverStats::new();
        d.record(DriverOp::Ewb, 3_800);
        // 3800 cycles at 3.8 GHz = 1 us.
        assert!((d.stats(DriverOp::Ewb).mean_micros(3.8) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_combines() {
        let mut a = DriverStats::new();
        a.record(DriverOp::AllocPage, 10);
        let mut b = DriverStats::new();
        b.record(DriverOp::AllocPage, 30);
        b.record(DriverOp::DoFault, 5);
        a.merge(&b);
        assert_eq!(a.stats(DriverOp::AllocPage).count, 2);
        assert_eq!(a.stats(DriverOp::AllocPage).mean_cycles(), 20);
        assert_eq!(a.stats(DriverOp::DoFault).count, 1);
    }

    #[test]
    fn ops_have_names() {
        for op in DriverOp::ALL {
            assert!(op.function_name().starts_with("sgx_"));
        }
    }
}
