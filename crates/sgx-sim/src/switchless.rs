//! Switchless (exit-less) OCALLs (paper §5.6).
//!
//! Instead of an EEXIT/EENTER round trip — which flushes the TLB — the
//! enclave writes the call parameters to an untrusted shared-memory
//! channel and a *proxy thread* on another core executes the call. The
//! enclave spins/waits for the response. We model the proxy pool as a set
//! of worker timelines: a request is served by the earliest-free worker,
//! so contention appears naturally when callers outnumber proxies.

/// A pool of proxy threads serving switchless OCALLs.
///
/// ```
/// use sgx_sim::SwitchlessPool;
/// let mut pool = SwitchlessPool::new(2, 600);
/// // Two concurrent requests at t=0 run in parallel; a third waits.
/// let f1 = pool.submit(0, 1_000);
/// let f2 = pool.submit(0, 1_000);
/// let f3 = pool.submit(0, 1_000);
/// assert_eq!(f1, f2);
/// assert!(f3 > f2);
/// ```
#[derive(Debug, Clone)]
pub struct SwitchlessPool {
    /// Completion time of each worker's last request.
    busy_until: Vec<u64>,
    /// Fixed shared-memory channel overhead per call (request write +
    /// response read + wake-up), in cycles.
    channel_cycles: u64,
    /// Number of calls served.
    served: u64,
}

impl SwitchlessPool {
    /// Creates a pool of `workers` proxy threads with the given per-call
    /// channel overhead.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize, channel_cycles: u64) -> Self {
        assert!(
            workers > 0,
            "switchless pool needs at least one proxy thread"
        );
        SwitchlessPool {
            busy_until: vec![0; workers],
            channel_cycles,
            served: 0,
        }
    }

    /// Number of proxy threads.
    pub fn workers(&self) -> usize {
        self.busy_until.len()
    }

    /// Total calls served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Submits a request issued at time `now` whose untrusted work takes
    /// `work_cycles`; returns the completion time at which the enclave
    /// thread observes the response.
    pub fn submit(&mut self, now: u64, work_cycles: u64) -> u64 {
        self.served += 1;
        // Earliest-free worker.
        let (idx, &free_at) = self
            .busy_until
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .expect("pool is non-empty");
        let start = now.saturating_add(self.channel_cycles / 2).max(free_at);
        let done = start + work_cycles;
        self.busy_until[idx] = done;
        done + self.channel_cycles / 2
    }

    /// Resets all worker timelines (e.g. between measurement runs).
    pub fn reset(&mut self) {
        self.busy_until.fill(0);
        self.served = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_until_saturated() {
        let mut p = SwitchlessPool::new(2, 0);
        let a = p.submit(0, 100);
        let b = p.submit(0, 100);
        let c = p.submit(0, 100);
        assert_eq!(a, 100);
        assert_eq!(b, 100);
        assert_eq!(c, 200); // queued behind a worker
    }

    #[test]
    fn channel_overhead_charged_both_ways() {
        let mut p = SwitchlessPool::new(1, 600);
        let done = p.submit(1_000, 100);
        assert_eq!(done, 1_000 + 300 + 100 + 300);
    }

    #[test]
    fn later_requests_start_later() {
        let mut p = SwitchlessPool::new(1, 0);
        let a = p.submit(0, 50);
        let b = p.submit(1_000, 50);
        assert_eq!(a, 50);
        assert_eq!(b, 1_050); // worker idle, starts at now
    }

    #[test]
    fn served_counts() {
        let mut p = SwitchlessPool::new(4, 10);
        for i in 0..10 {
            p.submit(i, 5);
        }
        assert_eq!(p.served(), 10);
        p.reset();
        assert_eq!(p.served(), 0);
    }

    #[test]
    #[should_panic]
    fn zero_workers_rejected() {
        let _ = SwitchlessPool::new(0, 0);
    }
}
