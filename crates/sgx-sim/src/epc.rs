//! The Enclave Page Cache (EPC).
//!
//! The EPC is the scarce resource the whole paper revolves around: 92 MB
//! of protected frames shared by every enclave on the platform. When an
//! enclave's working set exceeds it, the SGX driver transparently evicts
//! pages (EWB: encrypt + MAC) to untrusted memory and loads them back on
//! demand (ELDU: decrypt + verify), in batches of 16 victims per fault
//! (paper §2.2, Appendix A).
//!
//! This module models residency, eviction policy (clock / second chance)
//! and the event stream; cycle charging lives in
//! [`crate::machine::SgxMachine`].

use crate::enclave::EnclaveId;
use crate::pagedir::{FrameIndex, PageSet};

/// Identity of one enclave page: which enclave, which virtual page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageKey {
    /// Owning enclave.
    pub enclave: EnclaveId,
    /// Virtual page number within the address space.
    pub page: u64,
}

/// How [`Epc::ensure_resident`] satisfied a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpcFaultKind {
    /// The page was already in the EPC; no fault.
    Resident,
    /// First use of the page: a free (or freed-by-eviction) frame was
    /// allocated (`sgx_alloc_page`).
    Alloc,
    /// The page had been evicted earlier and was loaded back (ELDU).
    LoadBack,
}

/// Outcome of one residency request: the fault kind plus every page that
/// was evicted (EWB) to make room.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpcEvent {
    /// How the requested page was obtained.
    pub kind: EpcFaultKind,
    /// Pages written back by EWB during this request (empty when no
    /// eviction was necessary).
    pub evicted: Vec<PageKey>,
}

#[derive(Debug, Clone)]
struct FrameMeta {
    key: PageKey,
    referenced: bool,
    /// Transient mark used by [`Epc::evict_batch`] so a clock sweep can
    /// skip already-selected victims in O(1) instead of scanning the
    /// victim list. Always false outside `evict_batch` (victims are
    /// removed before it returns).
    victim: bool,
}

/// Per-enclave EPC attribution counters, maintained incrementally on the
/// residency and eviction paths so a co-tenant host can attribute
/// shared-pool behaviour to individual tenants without sweeping the frame
/// vector. Cumulative fields survive [`Epc::remove_enclave`] (teardown
/// ends residency, not history); only `resident_frames` is zeroed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpcEnclaveStats {
    /// Frames of this enclave currently resident.
    pub resident_frames: u64,
    /// First-touch frame allocations (`sgx_alloc_page`) for this enclave.
    pub allocs: u64,
    /// Pages of this enclave loaded back after eviction (ELDU).
    pub loadbacks: u64,
    /// Frames of this enclave chosen as clock-hand victims (EWB),
    /// regardless of which tenant's fault forced the sweep — the
    /// "noisy neighbour" signal.
    pub victimizations: u64,
}

/// The EPC frame pool with a clock (second-chance) replacement policy.
///
/// ```
/// use sgx_sim::epc::{Epc, PageKey, EpcFaultKind};
/// use sgx_sim::enclave::EnclaveId;
///
/// let mut epc = Epc::new(2, 1); // 2 frames, 1-page eviction batches
/// let e = EnclaveId(0);
/// let k = |p| PageKey { enclave: e, page: p };
/// assert_eq!(epc.ensure_resident(k(0)).kind, EpcFaultKind::Alloc);
/// assert_eq!(epc.ensure_resident(k(1)).kind, EpcFaultKind::Alloc);
/// let ev = epc.ensure_resident(k(2)); // evicts one of the others
/// assert_eq!(ev.kind, EpcFaultKind::Alloc);
/// assert_eq!(ev.evicted.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Epc {
    capacity: usize,
    /// Frames withdrawn from use by an injected EPC pressure spike (as if
    /// a co-tenant enclave pinned them). Always < `capacity`.
    reserved: usize,
    batch: usize,
    frames: Vec<FrameMeta>,
    /// Map from page to its index in `frames`. A dense per-enclave
    /// directory ([`crate::pagedir`]), not a hash map: [`Epc::touch`] is
    /// the hottest probe in the simulator and must not pay a hash per
    /// access.
    resident: FrameIndex,
    /// Pages currently swapped out to untrusted memory (encrypted).
    evicted_set: PageSet,
    clock_hand: usize,
    /// Lookups into the residency map, for asserting probe budgets in
    /// tests (the resident fast path must cost exactly one).
    probes: u64,
    /// Per-enclave attribution counters, indexed by [`EnclaveId`] (dense
    /// from zero per machine). Grows once per enclave, never per access.
    stats: Vec<EpcEnclaveStats>,
}

impl Epc {
    /// Creates an EPC with `capacity` frames, evicting `batch` pages per
    /// replacement (the driver uses 16).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `batch` is zero, or if `capacity` does
    /// not fit the `u32` frame indices of the residency directory (real
    /// EPCs are tens of thousands of frames).
    pub fn new(capacity: usize, batch: usize) -> Self {
        assert!(capacity > 0, "EPC needs at least one frame");
        assert!(batch > 0, "eviction batch must be positive");
        assert!(
            capacity < u32::MAX as usize,
            "EPC capacity must fit u32 frame indices"
        );
        Epc {
            capacity,
            reserved: 0,
            batch,
            frames: Vec::with_capacity(capacity),
            resident: FrameIndex::default(),
            evicted_set: PageSet::default(),
            clock_hand: 0,
            probes: 0,
            stats: Vec::new(),
        }
    }

    /// Per-enclave attribution counters for `enclave` (zeros when the
    /// enclave never touched the EPC).
    pub fn enclave_stats(&self, enclave: EnclaveId) -> EpcEnclaveStats {
        self.stats.get(enclave.0).copied().unwrap_or_default()
    }

    /// Mutable attribution slot for `enclave`, growing the dense index on
    /// first sight. The growth is O(max enclave id), once per enclave —
    /// an enclave-lifecycle cost, not a per-access one.
    fn stat_mut(&mut self, enclave: EnclaveId) -> &mut EpcEnclaveStats {
        if enclave.0 >= self.stats.len() {
            self.stats.resize(enclave.0 + 1, EpcEnclaveStats::default());
        }
        &mut self.stats[enclave.0]
    }

    /// EPC size in frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Frames currently withdrawn by [`Epc::set_reserved`].
    pub fn reserved(&self) -> usize {
        self.reserved
    }

    /// Frames actually usable right now (`capacity - reserved`).
    pub fn effective_capacity(&self) -> usize {
        self.capacity - self.reserved
    }

    /// Reserves `frames` frames for a simulated co-tenant (an injected
    /// EPC pressure spike), evicting resident pages if the pool no longer
    /// fits, and returns the victims in eviction order so the caller can
    /// charge their EWBs. Clamped so at least one usable frame remains;
    /// `set_reserved(0)` releases the pressure.
    pub fn set_reserved(&mut self, frames: usize) -> Vec<PageKey> {
        self.reserved = frames.min(self.capacity - 1);
        let mut victims = Vec::new();
        while self.frames.len() > self.effective_capacity() {
            victims.extend(self.evict_batch());
        }
        self.audit();
        victims
    }

    /// Number of frames currently holding pages.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// Number of pages currently swapped out.
    pub fn evicted_count(&self) -> usize {
        self.evicted_set.len()
    }

    /// Whether `key` is resident (diagnostic query; not probe-counted).
    pub fn is_resident(&self, key: PageKey) -> bool {
        self.resident.get(key).is_some()
    }

    /// Single-probe resident fast path: if `key` is resident, refreshes
    /// its clock reference bit and returns true; otherwise returns false
    /// without changing any state. Exactly one residency-map lookup
    /// either way — the common-case replacement for the
    /// `is_resident` + `ensure_resident` double probe.
    pub fn touch(&mut self, key: PageKey) -> bool {
        self.probes += 1;
        if let Some(idx) = self.resident.get(key) {
            self.frames[idx as usize].referenced = true;
            true
        } else {
            false
        }
    }

    /// Cumulative residency-map lookups (see [`Epc::touch`]); a test
    /// hook, never reset.
    pub fn probe_count(&self) -> u64 {
        self.probes
    }

    /// Whether `key` has been evicted (encrypted in untrusted DRAM).
    pub fn is_evicted(&self, key: PageKey) -> bool {
        self.evicted_set.contains(key)
    }

    /// Iterates the keys of every resident page, in frame order.
    /// Diagnostic view used by the cross-structure audit in
    /// [`crate::SgxMachine`] and by property tests.
    pub fn resident_keys(&self) -> impl Iterator<Item = PageKey> + '_ {
        self.frames.iter().map(|f| f.key)
    }

    /// Verifies the EPC's structural invariants, returning a description
    /// of the first violation found:
    ///
    /// * **capacity** — never more frames than the EPC currently makes
    ///   usable (total capacity minus any reserved frames),
    /// * **bijection** — the residency map and the frame vector index
    ///   each other exactly (every frame's key maps back to its index),
    /// * **disjointness** — no page is both resident and evicted,
    /// * **victim hygiene** — the transient eviction mark never leaks
    ///   out of [`Epc::evict_batch`],
    /// * **clock-hand conservation** — the hand always points at a live
    ///   frame (or zero when the EPC is empty).
    ///
    /// Always compiled; the `audit` cargo feature additionally calls it
    /// after every mutation and panics on violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.frames.len() > self.effective_capacity() {
            return Err(format!(
                "{} frames exceed effective capacity {} ({} reserved of {})",
                self.frames.len(),
                self.effective_capacity(),
                self.reserved,
                self.capacity
            ));
        }
        if self.resident.len() != self.frames.len() {
            return Err(format!(
                "residency map has {} entries for {} frames",
                self.resident.len(),
                self.frames.len()
            ));
        }
        for (i, f) in self.frames.iter().enumerate() {
            match self.resident.get(f.key) {
                Some(idx) if idx as usize == i => {}
                Some(idx) => {
                    return Err(format!(
                        "frame {i} holds {:?} but the map points at frame {idx}",
                        f.key
                    ))
                }
                None => return Err(format!("frame {i} holds unmapped page {:?}", f.key)),
            }
            if f.victim {
                return Err(format!("victim mark leaked on resident frame {i}"));
            }
            if self.evicted_set.contains(f.key) {
                return Err(format!("page {:?} is both resident and evicted", f.key));
            }
        }
        if self.frames.is_empty() {
            if self.clock_hand != 0 {
                return Err(format!("clock hand {} on empty EPC", self.clock_hand));
            }
        } else if self.clock_hand >= self.frames.len() {
            return Err(format!(
                "clock hand {} out of range for {} frames",
                self.clock_hand,
                self.frames.len()
            ));
        }
        // Attribution consistency: the incremental per-enclave live-frame
        // counters must agree with a sweep of the frame vector.
        let mut owned = vec![0u64; self.stats.len()];
        for f in &self.frames {
            if f.key.enclave.0 >= owned.len() {
                return Err(format!(
                    "frame owner {:?} has no attribution slot",
                    f.key.enclave
                ));
            }
            owned[f.key.enclave.0] += 1;
        }
        for (id, (stat, actual)) in self.stats.iter().zip(owned.iter()).enumerate() {
            if stat.resident_frames != *actual {
                return Err(format!(
                    "enclave {id} attribution says {} resident frames, found {actual}",
                    stat.resident_frames
                ));
            }
        }
        Ok(())
    }

    /// Panics on the first violated invariant (audit builds only).
    #[cfg(feature = "audit")]
    fn audit(&self) {
        if let Err(e) = self.check_invariants() {
            panic!("EPC audit: {e}");
        }
    }

    /// No-op twin of the audit hook in non-audit builds.
    #[cfg(not(feature = "audit"))]
    #[inline(always)]
    fn audit(&self) {}

    /// Makes `key` resident, evicting a batch if the EPC is full, and
    /// reports what happened. Touching a resident page refreshes its
    /// clock reference bit.
    pub fn ensure_resident(&mut self, key: PageKey) -> EpcEvent {
        self.probes += 1;
        if let Some(idx) = self.resident.get(key) {
            self.frames[idx as usize].referenced = true;
            return EpcEvent {
                kind: EpcFaultKind::Resident,
                evicted: Vec::new(),
            };
        }
        let mut evicted = Vec::new();
        if self.frames.len() >= self.effective_capacity() {
            #[cfg(feature = "audit")]
            let expected = self.batch.min(self.frames.len());
            evicted = self.evict_batch();
            // The driver always writes back a full batch (16 victims per
            // fault, Appendix A); a short batch would skew Fig 7's EWB
            // sample counts and the eviction totals of Fig 6/9.
            #[cfg(feature = "audit")]
            assert_eq!(
                evicted.len(),
                expected,
                "EWB batch must be exactly min(batch, frames)"
            );
        }
        let kind = if self.evicted_set.remove(key) {
            EpcFaultKind::LoadBack
        } else {
            EpcFaultKind::Alloc
        };
        let stat = self.stat_mut(key.enclave);
        stat.resident_frames += 1;
        match kind {
            EpcFaultKind::LoadBack => stat.loadbacks += 1,
            _ => stat.allocs += 1,
        }
        let meta = FrameMeta {
            key,
            referenced: true,
            victim: false,
        };
        // Reuse a hole left by eviction if one exists, else push.
        if self.frames.len() < self.effective_capacity() {
            self.frames.push(meta);
            self.resident.insert(key, (self.frames.len() - 1) as u32);
        } else {
            unreachable!("evict_batch guarantees free space");
        }
        self.audit();
        EpcEvent { kind, evicted }
    }

    /// Marks a non-resident page as having an encrypted swapped-out copy,
    /// so its next touch is a [`EpcFaultKind::LoadBack`] (ELDU). Used by
    /// the enclave loader for measured content pages whose EWB'd image
    /// survives the post-measurement EPC release.
    pub fn mark_evicted(&mut self, key: PageKey) {
        if self.resident.get(key).is_none() {
            self.evicted_set.insert(key);
        }
        self.audit();
    }

    /// Removes every page owned by `enclave` (EREMOVE at teardown),
    /// returning how many frames were freed.
    ///
    /// Frames of *other* enclaves are untouched: when `enclave` owns no
    /// frames this is a no-op, and otherwise the clock hand keeps its
    /// position relative to the surviving frames, so tearing one enclave
    /// down does not perturb the replacement order of its neighbours.
    pub fn remove_enclave(&mut self, enclave: EnclaveId) -> usize {
        self.evicted_set.remove_enclave(enclave);
        // Teardown ends residency, not history: cumulative attribution
        // counters survive so a co-tenant report can still name the
        // departed tenant's evictions; only the live-frame count resets.
        if let Some(stat) = self.stats.get_mut(enclave.0) {
            stat.resident_frames = 0;
        }
        if !self.frames.iter().any(|f| f.key.enclave == enclave) {
            self.audit();
            return 0;
        }
        // The hand should next sweep the same surviving frame it would
        // have swept before: count survivors strictly before it.
        let hand = self.clock_hand % self.frames.len();
        let new_hand = self.frames[..hand]
            .iter()
            .filter(|f| f.key.enclave != enclave)
            .count();
        let before = self.frames.len();
        self.frames.retain(|f| f.key.enclave != enclave);
        self.resident.remove_enclave(enclave);
        for (i, f) in self.frames.iter().enumerate() {
            self.resident.insert(f.key, i as u32);
        }
        self.clock_hand = if self.frames.is_empty() {
            0
        } else {
            new_hand % self.frames.len()
        };
        self.audit();
        before - self.frames.len()
    }

    /// Evicts up to `batch` victims chosen by the clock hand and returns
    /// them. Referenced frames get a second chance.
    fn evict_batch(&mut self) -> Vec<PageKey> {
        let n = self.batch.min(self.frames.len());
        let mut victims = Vec::with_capacity(n);
        let mut victim_idxs = Vec::with_capacity(n);
        let len = self.frames.len();
        let mut scanned = 0;
        while victims.len() < n && scanned < 3 * len {
            let idx = self.clock_hand % len;
            self.clock_hand = (self.clock_hand + 1) % len;
            scanned += 1;
            let frame = &mut self.frames[idx];
            if frame.victim {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
            } else {
                frame.victim = true;
                victims.push(frame.key);
                victim_idxs.push(idx);
            }
        }
        // Degenerate case: everything referenced for 3 sweeps; take the
        // frames under the hand anyway.
        let mut fallback = self.clock_hand;
        while victims.len() < n {
            let idx = fallback % len;
            fallback += 1;
            let frame = &mut self.frames[idx];
            if !frame.victim {
                frame.victim = true;
                victims.push(frame.key);
                victim_idxs.push(idx);
            }
        }
        // Remove victims (highest index first to keep indices valid).
        victim_idxs.sort_unstable_by(|a, b| b.cmp(a));
        for idx in victim_idxs {
            let meta = self.frames.swap_remove(idx);
            self.resident.remove(meta.key);
            self.evicted_set.insert(meta.key);
            let stat = self.stat_mut(meta.key.enclave);
            stat.resident_frames = stat.resident_frames.saturating_sub(1);
            stat.victimizations += 1;
            // swap_remove moved the tail frame into `idx`.
            if idx < self.frames.len() {
                let moved = self.frames[idx].key;
                self.resident.insert(moved, idx as u32);
            }
        }
        if !self.frames.is_empty() {
            self.clock_hand %= self.frames.len();
        } else {
            self.clock_hand = 0;
        }
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(p: u64) -> PageKey {
        PageKey {
            enclave: EnclaveId(0),
            page: p,
        }
    }

    #[test]
    fn alloc_until_full_no_eviction() {
        let mut epc = Epc::new(4, 2);
        for p in 0..4 {
            let ev = epc.ensure_resident(k(p));
            assert_eq!(ev.kind, EpcFaultKind::Alloc);
            assert!(ev.evicted.is_empty());
        }
        assert_eq!(epc.resident_count(), 4);
    }

    #[test]
    fn full_epc_evicts_batch() {
        let mut epc = Epc::new(4, 2);
        for p in 0..4 {
            epc.ensure_resident(k(p));
        }
        let ev = epc.ensure_resident(k(4));
        assert_eq!(ev.kind, EpcFaultKind::Alloc);
        assert_eq!(ev.evicted.len(), 2);
        assert_eq!(epc.resident_count(), 3); // 4 - 2 evicted + 1 new
        assert_eq!(epc.evicted_count(), 2);
    }

    #[test]
    fn evicted_page_loads_back() {
        let mut epc = Epc::new(2, 2);
        epc.ensure_resident(k(0));
        epc.ensure_resident(k(1));
        let ev = epc.ensure_resident(k(2)); // evicts both (batch 2)
        assert_eq!(ev.evicted.len(), 2);
        let victim = ev.evicted[0];
        let back = epc.ensure_resident(victim);
        assert_eq!(back.kind, EpcFaultKind::LoadBack);
        assert!(epc.is_resident(victim));
        assert!(!epc.is_evicted(victim));
    }

    #[test]
    fn resident_touch_is_free() {
        let mut epc = Epc::new(2, 1);
        epc.ensure_resident(k(0));
        let ev = epc.ensure_resident(k(0));
        assert_eq!(ev.kind, EpcFaultKind::Resident);
        assert!(ev.evicted.is_empty());
    }

    #[test]
    fn clock_gives_second_chance_to_referenced_pages() {
        let mut epc = Epc::new(3, 1);
        epc.ensure_resident(k(0));
        epc.ensure_resident(k(1));
        epc.ensure_resident(k(2));
        // First eviction sweep clears every reference bit and evicts one
        // page under the hand.
        let first = epc.ensure_resident(k(3));
        assert_eq!(first.evicted.len(), 1);
        // Re-reference page 1: it must survive the next sweep, which
        // evicts some *other*, unreferenced page instead.
        epc.ensure_resident(k(1));
        let second = epc.ensure_resident(k(4));
        assert_eq!(second.evicted.len(), 1);
        assert_ne!(second.evicted[0], k(1));
        assert!(epc.is_resident(k(1)));
    }

    #[test]
    fn thrash_pattern_evicts_every_round() {
        // Working set of 8 pages through a 4-frame EPC: sequential sweep
        // faults on every access after warm-up.
        let mut epc = Epc::new(4, 2);
        let mut loadbacks = 0;
        for round in 0..4 {
            for p in 0..8 {
                let ev = epc.ensure_resident(k(p));
                if round > 0 && ev.kind == EpcFaultKind::LoadBack {
                    loadbacks += 1;
                }
            }
        }
        assert!(
            loadbacks > 0,
            "sweeping a 2x working set must load back pages"
        );
    }

    #[test]
    fn residency_and_eviction_disjoint() {
        let mut epc = Epc::new(4, 2);
        for p in 0..32 {
            epc.ensure_resident(k(p));
            for q in 0..=p {
                assert!(
                    !(epc.is_resident(k(q)) && epc.is_evicted(k(q))),
                    "page {q} both resident and evicted"
                );
            }
        }
        assert!(epc.resident_count() <= 4);
    }

    #[test]
    fn remove_enclave_frees_frames() {
        let mut epc = Epc::new(4, 2);
        epc.ensure_resident(k(0));
        epc.ensure_resident(PageKey {
            enclave: EnclaveId(1),
            page: 0,
        });
        let freed = epc.remove_enclave(EnclaveId(0));
        assert_eq!(freed, 1);
        assert!(!epc.is_resident(k(0)));
        assert!(epc.is_resident(PageKey {
            enclave: EnclaveId(1),
            page: 0
        }));
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = Epc::new(0, 1);
    }

    #[test]
    fn touch_is_single_probe_and_refreshes_reference_bit() {
        let mut epc = Epc::new(3, 1);
        epc.ensure_resident(k(0));
        epc.ensure_resident(k(1));
        epc.ensure_resident(k(2));
        epc.ensure_resident(k(3)); // clears all ref bits, evicts page 0
        assert!(epc.is_resident(k(1)));
        let before = epc.probe_count();
        assert!(epc.touch(k(1)));
        assert_eq!(epc.probe_count(), before + 1, "touch costs one probe");
        assert!(!epc.touch(k(0)), "evicted page is a miss");
        assert_eq!(epc.probe_count(), before + 2);
        // The touch refreshed page 1's reference bit: the next eviction
        // must give it a second chance and take unreferenced page 2.
        epc.ensure_resident(k(4));
        assert!(epc.is_resident(k(1)), "touched page survives the sweep");
        assert!(!epc.is_resident(k(2)));
    }

    #[test]
    fn reserving_frames_shrinks_and_restores_the_pool() {
        let mut epc = Epc::new(4, 1);
        for p in 0..4 {
            epc.ensure_resident(k(p));
        }
        let victims = epc.set_reserved(2);
        assert_eq!(victims.len(), 2, "shrinking to 2 frames evicts 2 pages");
        assert_eq!(epc.effective_capacity(), 2);
        assert_eq!(epc.resident_count(), 2);
        for v in &victims {
            assert!(epc.is_evicted(*v));
        }
        // Under pressure the pool churns within the reduced capacity.
        epc.ensure_resident(k(5));
        assert!(epc.resident_count() <= 2);
        assert!(epc.check_invariants().is_ok());
        // Release: full capacity is usable again — the two free frames
        // absorb new pages without any eviction.
        assert!(epc.set_reserved(0).is_empty());
        assert_eq!(epc.effective_capacity(), 4);
        let free = epc.effective_capacity() - epc.resident_count();
        assert_eq!(free, 2);
        for p in 0..free as u64 {
            assert!(epc.ensure_resident(k(10 + p)).evicted.is_empty());
        }
    }

    #[test]
    fn reservation_is_clamped_to_leave_one_frame() {
        let mut epc = Epc::new(3, 1);
        for p in 0..3 {
            epc.ensure_resident(k(p));
        }
        epc.set_reserved(1000);
        assert_eq!(epc.effective_capacity(), 1);
        assert_eq!(epc.resident_count(), 1);
        assert!(epc.check_invariants().is_ok());
    }

    #[test]
    fn remove_enclave_without_frames_is_noop() {
        let mut epc = Epc::new(4, 1);
        for p in 0..5 {
            epc.ensure_resident(k(p)); // last insert moves the clock hand
        }
        let control = epc.clone();
        assert_eq!(epc.remove_enclave(EnclaveId(9)), 0);
        // Replacement decisions must be unchanged by the no-op removal.
        let mut epc2 = control;
        for p in 5..12 {
            let a = epc.ensure_resident(k(p));
            let b = epc2.ensure_resident(k(p));
            assert_eq!(a.evicted, b.evicted, "page {p}");
        }
    }

    #[test]
    fn remove_enclave_preserves_clock_hand_position() {
        let e1 = EnclaveId(1);
        let mut epc = Epc::new(4, 1);
        epc.ensure_resident(k(0));
        epc.ensure_resident(k(1));
        epc.ensure_resident(PageKey {
            enclave: e1,
            page: 0,
        });
        epc.ensure_resident(k(2));
        // Evicts page 0 and leaves the hand one past it.
        epc.ensure_resident(k(3));
        // Refresh the survivors so every frame is referenced again.
        epc.ensure_resident(k(2));
        epc.ensure_resident(k(1));
        assert_eq!(epc.remove_enclave(e1), 1);
        epc.ensure_resident(k(4)); // refills the freed frame, no eviction
                                   // All frames referenced: the sweep clears bits starting at the
                                   // preserved hand, so the victim is the frame *under* the hand —
                                   // page 1, not page 2 (which a hand reset to 0 would have taken).
        let ev = epc.ensure_resident(k(5));
        assert_eq!(ev.evicted, vec![k(1)]);
        assert!(epc.is_resident(k(2)));
    }

    /// Multi-tenant extension of the hand-preservation guarantee: three
    /// tenants interleaved in the frame vector, one torn down while the
    /// clock hand is mid-rotation (pointing at one of its frames). The
    /// hand must advance to the same surviving frame it would have swept
    /// next, and the departed tenant's swapped-out pages must leave the
    /// evicted set.
    #[test]
    fn remove_enclave_preserves_hand_with_interleaved_tenants() {
        let key = |e: usize, p: u64| PageKey {
            enclave: EnclaveId(e),
            page: p,
        };
        let mut epc = Epc::new(6, 1);
        // Interleave three tenants: [e0p0, e1p0, e2p0, e0p1, e1p1, e2p1].
        for p in 0..2 {
            for e in 0..3 {
                assert_eq!(epc.ensure_resident(key(e, p)).kind, EpcFaultKind::Alloc);
            }
        }
        // Force one eviction so the hand is mid-rotation. All frames are
        // referenced, so the sweep clears every bit and takes the frame
        // under the hand (e0p0); the hand lands on e1p0.
        let ev = epc.ensure_resident(key(0, 2));
        assert_eq!(ev.evicted, vec![key(0, 0)]);
        // Give the departed tenant a swapped-out page too.
        epc.mark_evicted(key(1, 9));
        assert!(epc.is_evicted(key(1, 9)));
        // Tear down tenant 1 mid-rotation (the hand points at e1p0).
        assert_eq!(epc.remove_enclave(EnclaveId(1)), 2);
        assert!(epc.check_invariants().is_ok());
        assert!(!epc.is_evicted(key(1, 9)), "evicted set must be purged");
        assert_eq!(epc.enclave_stats(EnclaveId(1)).resident_frames, 0);
        // Refill the freed frames without evicting, then overflow: the
        // next victim must be the surviving frame the hand was about to
        // consider after the torn-down tenant's (e2p0), not the frame a
        // reset-to-zero hand would have taken.
        assert!(epc.ensure_resident(key(0, 3)).evicted.is_empty());
        assert!(epc.ensure_resident(key(0, 4)).evicted.is_empty());
        let ev = epc.ensure_resident(key(0, 5));
        assert_eq!(ev.evicted, vec![key(2, 0)]);
        assert!(epc.check_invariants().is_ok());
    }

    /// Per-enclave attribution: allocations, load-backs and clock-hand
    /// victimizations land on the owning tenant, survive teardown as
    /// history, and only the live-frame count resets.
    #[test]
    fn enclave_stats_attribute_allocs_loadbacks_and_victims() {
        let ka = |p| PageKey {
            enclave: EnclaveId(0),
            page: p,
        };
        let kb = |p| PageKey {
            enclave: EnclaveId(1),
            page: p,
        };
        let mut epc = Epc::new(4, 2);
        epc.ensure_resident(ka(0));
        epc.ensure_resident(ka(1));
        epc.ensure_resident(kb(0));
        epc.ensure_resident(kb(1));
        let sa = epc.enclave_stats(EnclaveId(0));
        assert_eq!(sa.resident_frames, 2);
        assert_eq!(sa.allocs, 2);
        assert_eq!(sa.victimizations, 0);
        // The antagonist overflows the pool; the sweep starts at tenant
        // 0's frames, so both victims are charged to tenant 0 even though
        // tenant 1 caused the fault — the noisy-neighbour signal.
        let ev = epc.ensure_resident(kb(2));
        assert_eq!(ev.evicted, vec![ka(0), ka(1)]);
        let sa = epc.enclave_stats(EnclaveId(0));
        assert_eq!(sa.resident_frames, 0);
        assert_eq!(sa.victimizations, 2);
        // The victim tenant pulls one page back in: an ELDU on its ledger.
        let back = epc.ensure_resident(ka(0));
        assert_eq!(back.kind, EpcFaultKind::LoadBack);
        let sa = epc.enclave_stats(EnclaveId(0));
        assert_eq!(sa.resident_frames, 1);
        assert_eq!(sa.loadbacks, 1);
        let sb = epc.enclave_stats(EnclaveId(1));
        assert_eq!(sb.resident_frames, 3);
        assert_eq!(sb.allocs, 3);
        assert_eq!(sb.loadbacks, 0);
        assert!(epc.check_invariants().is_ok());
        // Teardown zeroes residency but keeps the cumulative history.
        epc.remove_enclave(EnclaveId(0));
        let sa = epc.enclave_stats(EnclaveId(0));
        assert_eq!(sa.resident_frames, 0);
        assert_eq!(sa.allocs, 2);
        assert_eq!(sa.loadbacks, 1);
        assert_eq!(sa.victimizations, 2);
        // An enclave that never touched the EPC reads as all zeros.
        assert_eq!(epc.enclave_stats(EnclaveId(7)), EpcEnclaveStats::default());
    }
}
