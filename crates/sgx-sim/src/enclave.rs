//! Enclave objects: identity, address range, measurement, heap.
//!
//! An enclave occupies a contiguous virtual range (the ELRANGE). Before
//! EINIT the loader EADDs each content page and extends the measurement
//! (EEXTEND); the hardware then compares the result with the author's
//! signed value (paper §2.1). The enclave-size property — not the content
//! size — determines how many pages stream through the EPC at build time,
//! which is what makes GrapheneSGX's 4 GB enclaves cost ≈1 M evictions at
//! startup (Appendix D).

use mem_sim::{PAGE_SHIFT, PAGE_SIZE};
use sgx_crypto::Sha256;

/// Identifier of an enclave, dense from zero per [`crate::SgxMachine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EnclaveId(pub usize);

/// Lifecycle state of an enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnclaveState {
    /// Created (ECREATE) but not yet initialized.
    Building,
    /// Measurement complete and EINIT executed; ECALLs are allowed.
    Initialized,
    /// Torn down; its EPC pages have been EREMOVEd.
    Destroyed,
}

/// A loaded enclave.
#[derive(Debug, Clone)]
pub struct Enclave {
    id: EnclaveId,
    base: u64,
    size: u64,
    content_bytes: u64,
    state: EnclaveState,
    measurement: [u8; 32],
    heap_next: u64,
}

impl Enclave {
    /// Creates the enclave object (ECREATE). `base` and `size` define the
    /// ELRANGE; `content_bytes` is the measured binary image (code +
    /// initial data), the rest of the range is heap/stack.
    ///
    /// # Panics
    ///
    /// Panics if `content_bytes > size` or the range is not page-aligned.
    pub fn create(id: EnclaveId, base: u64, size: u64, content_bytes: u64) -> Self {
        assert!(
            base.is_multiple_of(PAGE_SIZE) && size.is_multiple_of(PAGE_SIZE),
            "ELRANGE must be page aligned"
        );
        assert!(
            content_bytes <= size,
            "content cannot exceed the enclave size"
        );
        // MRENCLAVE starts from the ECREATE attributes (size, SSA layout,
        // ...); seed it with the geometry so differently-built enclaves
        // measure differently while identical binaries measure alike.
        let mut h = Sha256::new();
        h.update(b"ECREATE");
        h.update(&size.to_le_bytes());
        h.update(&content_bytes.to_le_bytes());
        Enclave {
            id,
            base,
            size,
            content_bytes,
            state: EnclaveState::Building,
            measurement: h.finalize(),
            heap_next: base + content_bytes.next_multiple_of(PAGE_SIZE),
        }
    }

    /// The enclave id.
    pub fn id(&self) -> EnclaveId {
        self.id
    }

    /// Base virtual address of the ELRANGE.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size of the ELRANGE in bytes (the "enclave size" property).
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Bytes of measured content (binary image).
    pub fn content_bytes(&self) -> u64 {
        self.content_bytes
    }

    /// Total pages in the ELRANGE.
    pub fn total_pages(&self) -> u64 {
        self.size >> PAGE_SHIFT
    }

    /// First virtual page number of the ELRANGE.
    pub fn first_page(&self) -> u64 {
        self.base >> PAGE_SHIFT
    }

    /// Whether `vaddr` falls inside the ELRANGE.
    pub fn contains(&self, vaddr: u64) -> bool {
        vaddr >= self.base && vaddr < self.base + self.size
    }

    /// Current lifecycle state.
    pub fn state(&self) -> EnclaveState {
        self.state
    }

    /// The measurement accumulated so far (MRENCLAVE analogue).
    pub fn measurement(&self) -> [u8; 32] {
        self.measurement
    }

    /// Start of the heap region (just after the measured content).
    pub fn heap_base(&self) -> u64 {
        self.base + self.content_bytes.next_multiple_of(PAGE_SIZE)
    }

    /// Bump-allocates `bytes` of enclave heap, page-aligned, returning the
    /// base address.
    ///
    /// # Errors
    ///
    /// Returns `None` when the ELRANGE has no room left — the situation
    /// SGX v1 forbade and that forces Graphene to pick 4 GB enclaves.
    pub fn alloc_heap(&mut self, bytes: u64) -> Option<u64> {
        let aligned = bytes.next_multiple_of(PAGE_SIZE);
        if self.heap_next + aligned > self.base + self.size {
            return None;
        }
        let addr = self.heap_next;
        self.heap_next += aligned;
        Some(addr)
    }

    /// Remaining heap bytes.
    pub fn heap_remaining(&self) -> u64 {
        self.base + self.size - self.heap_next
    }

    /// Extends the measurement with one page's contents (EEXTEND); the
    /// loader calls this for every measured page during the build phase.
    pub(crate) fn extend_measurement(&mut self, page_index: u64) {
        let mut h = Sha256::new();
        h.update(&self.measurement);
        h.update(&page_index.to_le_bytes());
        self.measurement = h.finalize();
    }

    /// Marks the enclave initialized (EINIT).
    ///
    /// # Panics
    ///
    /// Panics if the enclave is not in the building state.
    pub(crate) fn initialize(&mut self) {
        assert_eq!(
            self.state,
            EnclaveState::Building,
            "EINIT on non-building enclave"
        );
        self.state = EnclaveState::Initialized;
    }

    /// Marks the enclave destroyed.
    pub(crate) fn destroy(&mut self) {
        self.state = EnclaveState::Destroyed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let e = Enclave::create(EnclaveId(0), 0x1000_0000, 64 * PAGE_SIZE, 16 * PAGE_SIZE);
        assert_eq!(e.total_pages(), 64);
        assert_eq!(e.first_page(), 0x1000_0000 >> PAGE_SHIFT);
        assert!(e.contains(0x1000_0000));
        assert!(e.contains(0x1000_0000 + 64 * PAGE_SIZE - 1));
        assert!(!e.contains(0x1000_0000 + 64 * PAGE_SIZE));
        assert_eq!(e.heap_base(), 0x1000_0000 + 16 * PAGE_SIZE);
    }

    #[test]
    fn heap_allocation_bumps_and_exhausts() {
        let mut e = Enclave::create(EnclaveId(0), 0, 8 * PAGE_SIZE, 2 * PAGE_SIZE);
        let a = e.alloc_heap(PAGE_SIZE).unwrap();
        let b = e.alloc_heap(1).unwrap(); // rounds to a page
        assert_eq!(a, 2 * PAGE_SIZE);
        assert_eq!(b, 3 * PAGE_SIZE);
        assert_eq!(e.heap_remaining(), 4 * PAGE_SIZE);
        assert!(e.alloc_heap(5 * PAGE_SIZE).is_none());
        assert!(e.alloc_heap(4 * PAGE_SIZE).is_some());
        assert_eq!(e.heap_remaining(), 0);
    }

    #[test]
    fn measurement_changes_per_page() {
        let mut e = Enclave::create(EnclaveId(0), 0, 4 * PAGE_SIZE, 4 * PAGE_SIZE);
        let m0 = e.measurement();
        e.extend_measurement(0);
        let m1 = e.measurement();
        e.extend_measurement(1);
        let m2 = e.measurement();
        assert_ne!(m0, m1);
        assert_ne!(m1, m2);
    }

    #[test]
    fn measurement_is_order_sensitive() {
        let mut a = Enclave::create(EnclaveId(0), 0, 4 * PAGE_SIZE, 4 * PAGE_SIZE);
        let mut b = Enclave::create(EnclaveId(1), 0, 4 * PAGE_SIZE, 4 * PAGE_SIZE);
        a.extend_measurement(0);
        a.extend_measurement(1);
        b.extend_measurement(1);
        b.extend_measurement(0);
        assert_ne!(a.measurement(), b.measurement());
    }

    #[test]
    #[should_panic]
    fn misaligned_base_rejected() {
        let _ = Enclave::create(EnclaveId(0), 123, PAGE_SIZE, 0);
    }

    #[test]
    #[should_panic]
    fn oversized_content_rejected() {
        let _ = Enclave::create(EnclaveId(0), 0, PAGE_SIZE, 2 * PAGE_SIZE);
    }
}
