//! Local attestation (EREPORT / report verification).
//!
//! Before an enclave trusts another — e.g. before Graphene hands secrets
//! to an application enclave, or before a quoting enclave signs for a
//! remote verifier — it checks an EREPORT: a structure carrying the
//! reporting enclave's measurement and 64 bytes of user data, MACed with
//! a key only the *target* enclave (and the hardware) can derive
//! (EGETKEY). This module models that flow faithfully: real HMAC-SHA-256
//! over the report body under a platform-bound report key, plus the
//! cycle costs of the two instructions.

use crate::enclave::EnclaveId;
use crate::machine::{SgxError, SgxMachine};
use mem_sim::ThreadId;
use sgx_crypto::hmac::{hmac_sha256, verify_tag};

/// Cycles for executing EREPORT.
const EREPORT_CYCLES: u64 = 3_800;

/// Cycles for EGETKEY + MAC verification inside the target.
const VERIFY_CYCLES: u64 = 4_600;

/// The platform's fused attestation secret (simulated).
const PLATFORM_ATTESTATION_SECRET: &[u8] = b"sgxgauge-simulated-platform-attestation-fuse";

/// An EREPORT structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Measurement (MRENCLAVE) of the reporting enclave.
    pub measurement: [u8; 32],
    /// User-supplied report data (e.g. a public key hash).
    pub report_data: [u8; 64],
    /// Measurement of the target enclave the report is addressed to.
    pub target: [u8; 32],
    /// MAC over the above, under the target's report key.
    pub mac: [u8; 32],
}

fn report_key(target_measurement: &[u8; 32]) -> [u8; 32] {
    hmac_sha256(PLATFORM_ATTESTATION_SECRET, target_measurement)
}

fn report_mac(
    key: &[u8; 32],
    measurement: &[u8; 32],
    report_data: &[u8; 64],
    target: &[u8; 32],
) -> [u8; 32] {
    let mut body = Vec::with_capacity(128);
    body.extend_from_slice(measurement);
    body.extend_from_slice(report_data);
    body.extend_from_slice(target);
    hmac_sha256(key, &body)
}

/// Executes EREPORT on `machine`: the thread must currently run inside
/// `reporting`; the produced report is addressed to (verifiable only by)
/// `target`.
///
/// # Errors
///
/// [`SgxError::NotInEnclave`] when `tid` is not inside `reporting`.
pub fn ereport(
    machine: &mut SgxMachine,
    tid: ThreadId,
    reporting: EnclaveId,
    target: EnclaveId,
    report_data: [u8; 64],
) -> Result<Report, SgxError> {
    if machine.current_enclave(tid) != Some(reporting) {
        return Err(SgxError::NotInEnclave);
    }
    machine.compute(tid, EREPORT_CYCLES);
    let measurement = machine.enclave(reporting).measurement();
    let target_m = machine.enclave(target).measurement();
    let key = report_key(&target_m);
    let mac = report_mac(&key, &measurement, &report_data, &target_m);
    Ok(Report {
        measurement,
        report_data,
        target: target_m,
        mac,
    })
}

/// Verifies a report inside its target enclave (EGETKEY + MAC check).
/// Returns `true` when the report is genuine and addressed to the
/// calling enclave.
///
/// # Errors
///
/// [`SgxError::NotInEnclave`] when `tid` is not inside `verifier`.
pub fn verify_report(
    machine: &mut SgxMachine,
    tid: ThreadId,
    verifier: EnclaveId,
    report: &Report,
) -> Result<bool, SgxError> {
    if machine.current_enclave(tid) != Some(verifier) {
        return Err(SgxError::NotInEnclave);
    }
    machine.compute(tid, VERIFY_CYCLES);
    let my_measurement = machine.enclave(verifier).measurement();
    if my_measurement != report.target {
        return Ok(false); // addressed to someone else: wrong report key
    }
    let key = report_key(&my_measurement);
    let expect = report_mac(
        &key,
        &report.measurement,
        &report.report_data,
        &report.target,
    );
    Ok(verify_tag(&expect, &report.mac))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::SgxConfig;
    use mem_sim::PAGE_SIZE;

    fn platform() -> (SgxMachine, ThreadId, EnclaveId, EnclaveId) {
        let mut m = SgxMachine::new(SgxConfig::with_tiny_epc(1024, 16));
        let t = m.add_thread();
        let a = m.create_enclave(64 * PAGE_SIZE, 8 * PAGE_SIZE).unwrap();
        let b = m.create_enclave(64 * PAGE_SIZE, 16 * PAGE_SIZE).unwrap();
        (m, t, a, b)
    }

    #[test]
    fn report_roundtrip() {
        let (mut m, t, a, b) = platform();
        let mut data = [0u8; 64];
        data[..5].copy_from_slice(b"hello");
        m.ecall_enter(t, a).unwrap();
        let report = ereport(&mut m, t, a, b, data).unwrap();
        m.ecall_exit(t, a).unwrap();

        m.ecall_enter(t, b).unwrap();
        assert!(verify_report(&mut m, t, b, &report).unwrap());
        m.ecall_exit(t, b).unwrap();
        assert_eq!(report.measurement, m.enclave(a).measurement());
    }

    #[test]
    fn tampered_report_rejected() {
        let (mut m, t, a, b) = platform();
        m.ecall_enter(t, a).unwrap();
        let mut report = ereport(&mut m, t, a, b, [7u8; 64]).unwrap();
        m.ecall_exit(t, a).unwrap();
        report.report_data[0] ^= 1;
        m.ecall_enter(t, b).unwrap();
        assert!(!verify_report(&mut m, t, b, &report).unwrap());
    }

    #[test]
    fn report_for_other_target_rejected() {
        let (mut m, t, a, b) = platform();
        // Report addressed to `a` cannot be verified by `b`.
        m.ecall_enter(t, a).unwrap();
        let report = ereport(&mut m, t, a, a, [0u8; 64]).unwrap();
        m.ecall_exit(t, a).unwrap();
        m.ecall_enter(t, b).unwrap();
        assert!(!verify_report(&mut m, t, b, &report).unwrap());
    }

    #[test]
    fn ereport_requires_being_inside() {
        let (mut m, t, a, b) = platform();
        assert_eq!(
            ereport(&mut m, t, a, b, [0u8; 64]),
            Err(SgxError::NotInEnclave)
        );
        m.ecall_enter(t, b).unwrap();
        // Inside b, cannot report as a.
        assert_eq!(
            ereport(&mut m, t, a, b, [0u8; 64]),
            Err(SgxError::NotInEnclave)
        );
    }

    #[test]
    fn forged_measurement_fails_mac() {
        let (mut m, t, a, b) = platform();
        m.ecall_enter(t, a).unwrap();
        let mut report = ereport(&mut m, t, a, b, [0u8; 64]).unwrap();
        m.ecall_exit(t, a).unwrap();
        // Claim to be some other enclave.
        report.measurement = [0xAA; 32];
        m.ecall_enter(t, b).unwrap();
        assert!(!verify_report(&mut m, t, b, &report).unwrap());
    }
}
