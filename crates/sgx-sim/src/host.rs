//! Co-tenant host: N enclaves sharing one EPC, EPCM and eviction clock.
//!
//! SGXGauge measures every workload in a single enclave, but production
//! SGX hosts pack many tenants onto one ~92 MB EPC. This module models
//! that regime without duplicating any machine state: a [`Host`] owns a
//! single [`crate::SgxMachine`] (one shared [`crate::Epc`], one
//! [`crate::Epcm`], one clock hand) and schedules the queued op streams
//! of N tenant enclaves with a deterministic cycle-fair interleaver.
//!
//! # Scheduling
//!
//! Tenants are serviced round-robin in registration order. On its turn a
//! tenant runs queued ops until its thread clock has advanced by at least
//! the host's *wave width* ([`HostBuilder::wave_cycles`]) — a fixed
//! configuration value, so an interleaving is a pure function of the
//! tenant specs, the op streams and the config, independent of wall
//! clock, thread count, or a sweep harness's `--jobs` setting.
//!
//! # Attribution
//!
//! Two complementary ledgers:
//!
//! * **charged** — the [`SgxCounters`] delta around each wave: what the
//!   tenant's own execution charged (its faults, its transitions, its
//!   evictions-forced-by-its-faults).
//! * **EPC stats** — [`EpcEnclaveStats`], maintained by the EPC itself on
//!   the owner of each frame: whose pages were victimized, regardless of
//!   which tenant's fault forced the sweep. The difference between the
//!   two views is exactly the noisy-neighbour signal.
//!
//! # Equivalence
//!
//! A one-tenant host is cycle- and counter-identical to driving a legacy
//! [`SgxMachine`] directly: the builder makes the same machine calls in
//! the same order (so the jitter stream matches), and wave boundaries
//! only read counters and open/close trace phases (no-ops without a
//! sink). A property test in this module pins that guarantee.

use std::collections::VecDeque;

use crate::enclave::EnclaveId;
use crate::epc::EpcEnclaveStats;
use crate::machine::{CounterField, SgxConfig, SgxCounters, SgxError, SgxMachine};
use mem_sim::{AccessKind, ThreadId};

/// Default wave width in cycles: a few transition costs' worth of work
/// per turn, small enough to interleave contending working sets tightly.
pub const DEFAULT_WAVE_CYCLES: u64 = 50_000;

/// Dense index of a tenant on a [`Host`], in registration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub usize);

/// Declarative description of one tenant enclave.
///
/// The fields are explicit (rather than derived from a working-set hint)
/// so an equivalence harness can replicate the exact build sequence on a
/// legacy machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Tenant name: the trace phase label and report key.
    pub name: String,
    /// ELRANGE size in bytes.
    pub enclave_bytes: u64,
    /// Measured content bytes (streamed at build, ELDU'd on first touch).
    pub content_bytes: u64,
    /// Heap bytes allocated at build time — the tenant's working span
    /// that [`TenantOp::Access`] offsets index into.
    pub heap_bytes: u64,
}

impl TenantSpec {
    /// A tenant sized for a `heap_bytes` working span: the ELRANGE holds
    /// the heap plus a 16 MiB runtime image, of which 1 MiB is measured
    /// content (the shape the multi-enclave ablation bench uses).
    pub fn sized(name: &str, heap_bytes: u64) -> Self {
        TenantSpec {
            name: name.to_string(),
            enclave_bytes: heap_bytes + (16 << 20),
            content_bytes: 1 << 20,
            heap_bytes,
        }
    }
}

/// One schedulable unit of tenant work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantOp {
    /// Touch `len` bytes at `offset` into the tenant heap. Out-of-span
    /// values are wrapped/clamped into the heap (see [`TenantOp::apply`]).
    Access {
        /// Byte offset into the tenant heap.
        offset: u64,
        /// Bytes touched (clamped to the heap span remaining).
        len: u64,
        /// Write (true) or read (false).
        write: bool,
    },
    /// Pure in-enclave compute for `cycles` cycles.
    Compute {
        /// Compute cycles charged to the tenant thread.
        cycles: u64,
    },
    /// An OCALL whose untrusted work takes `work` cycles.
    Ocall {
        /// Untrusted work cycles.
        work: u64,
    },
}

impl TenantOp {
    /// Applies the op to `machine` on thread `tid`, resolving heap
    /// offsets against `heap_base`/`heap_bytes`. Shared by the host
    /// scheduler and by equivalence harnesses replaying the same ops on
    /// a legacy machine, so both sides resolve identically: offsets wrap
    /// modulo the span and lengths clamp to the span remaining.
    ///
    /// # Errors
    ///
    /// Propagates [`SgxError`] from the OCALL path (the thread must be
    /// inside an enclave).
    pub fn apply(
        self,
        machine: &mut SgxMachine,
        tid: ThreadId,
        heap_base: u64,
        heap_bytes: u64,
    ) -> Result<(), SgxError> {
        match self {
            TenantOp::Access { offset, len, write } => {
                if heap_bytes == 0 {
                    return Ok(());
                }
                let off = offset % heap_bytes;
                let len = len.clamp(1, heap_bytes - off);
                let kind = if write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                machine.access(tid, heap_base + off, len, kind);
            }
            TenantOp::Compute { cycles } => machine.compute(tid, cycles),
            TenantOp::Ocall { work } => machine.ocall(tid, work)?,
        }
        Ok(())
    }
}

/// Error from host scheduling: an SGX-level failure or a trace-plane
/// span violation surfaced while closing a wave phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostError {
    /// An SGX mechanism failed (e.g. an OCALL outside an enclave).
    Sgx(SgxError),
    /// The trace sink rejected a phase span.
    Trace(trace::TraceError),
}

impl std::fmt::Display for HostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HostError::Sgx(e) => write!(f, "host: {e}"),
            HostError::Trace(e) => write!(f, "host trace: {e}"),
        }
    }
}

impl std::error::Error for HostError {}

impl From<SgxError> for HostError {
    fn from(e: SgxError) -> Self {
        HostError::Sgx(e)
    }
}

impl From<trace::TraceError> for HostError {
    fn from(e: trace::TraceError) -> Self {
        HostError::Trace(e)
    }
}

/// Builder for a [`Host`] — the constructor surface that replaces
/// positional `SgxMachine` construction (see CHANGELOG).
///
/// ```
/// use sgx_sim::host::{Host, TenantSpec};
/// use sgx_sim::SgxConfig;
///
/// let host = Host::builder()
///     .sgx(SgxConfig::with_tiny_epc(1024, 16))
///     .tenant(TenantSpec::sized("victim", 1 << 20))
///     .tenant(TenantSpec::sized("antagonist", 8 << 20))
///     .build()
///     .expect("two small tenants fit");
/// assert_eq!(host.tenant_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct HostBuilder {
    cfg: SgxConfig,
    wave_cycles: u64,
    tenants: Vec<TenantSpec>,
}

impl Default for HostBuilder {
    fn default() -> Self {
        HostBuilder {
            cfg: SgxConfig::default(),
            wave_cycles: DEFAULT_WAVE_CYCLES,
            tenants: Vec::new(),
        }
    }
}

impl HostBuilder {
    /// Sets the platform configuration (default: [`SgxConfig::default`]).
    pub fn sgx(mut self, cfg: SgxConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the scheduler wave width in cycles (default
    /// [`DEFAULT_WAVE_CYCLES`]); values below 1 are clamped to 1 so every
    /// wave makes progress.
    pub fn wave_cycles(mut self, cycles: u64) -> Self {
        self.wave_cycles = cycles.max(1);
        self
    }

    /// Registers a tenant. Tenants are built, scheduled and reported in
    /// registration order.
    pub fn tenant(mut self, spec: TenantSpec) -> Self {
        self.tenants.push(spec);
        self
    }

    /// Builds the host: one shared machine, then per tenant — in
    /// registration order — a hardware thread, the enclave build
    /// (measurement pass included), an EENTER, and the heap allocation.
    /// This is exactly the legacy single-enclave call sequence repeated
    /// per tenant, so a one-tenant host draws the same jitter stream as
    /// a hand-driven [`SgxMachine`].
    ///
    /// # Errors
    ///
    /// Propagates the first [`SgxError`] from enclave construction
    /// (content larger than the ELRANGE, heap exhaustion, TCS limits).
    pub fn build(self) -> Result<Host, SgxError> {
        let mut machine = SgxMachine::from_config(self.cfg);
        let mut tenants = Vec::with_capacity(self.tenants.len());
        for spec in self.tenants {
            let tid = machine.add_thread();
            let enclave = machine.create_enclave(spec.enclave_bytes, spec.content_bytes)?;
            machine.ecall_enter(tid, enclave)?;
            let heap_base = machine.alloc_enclave_heap(enclave, spec.heap_bytes)?;
            tenants.push(Tenant {
                spec,
                tid,
                enclave,
                heap_base,
                cycle_base: 0,
                queue: VecDeque::new(),
                charged: SgxCounters::default(),
                waves: 0,
            });
        }
        // Build costs (measurement streams, EENTERs) were charged during
        // construction; tenant report clocks start now.
        for t in &mut tenants {
            t.cycle_base = machine.mem().cycles_of(t.tid);
        }
        Ok(Host {
            machine,
            wave_cycles: self.wave_cycles,
            tenants,
        })
    }

    /// The zero-tenant path: builds the bare shared machine, for callers
    /// that drive enclaves by hand. [`SgxMachine::new`] is a shim over
    /// this. Registered tenants are ignored (debug builds assert none).
    pub fn build_machine(self) -> SgxMachine {
        debug_assert!(
            self.tenants.is_empty(),
            "build_machine() ignores registered tenants; use build()"
        );
        SgxMachine::from_config(self.cfg)
    }
}

/// Per-tenant scheduling state.
#[derive(Debug, Clone)]
struct Tenant {
    spec: TenantSpec,
    tid: ThreadId,
    enclave: EnclaveId,
    heap_base: u64,
    /// Thread cycles at the end of build; report clocks are relative.
    cycle_base: u64,
    queue: VecDeque<TenantOp>,
    /// Accumulated [`SgxCounters`] deltas over this tenant's waves.
    charged: SgxCounters,
    waves: u64,
}

/// Attribution snapshot for one tenant (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantReport {
    /// Tenant name from its [`TenantSpec`].
    pub name: String,
    /// The tenant's dense index.
    pub tenant: TenantId,
    /// Cycles consumed by the tenant's thread since build.
    pub cycles: u64,
    /// Scheduler waves granted.
    pub waves: u64,
    /// Counter deltas charged by the tenant's own execution.
    pub charged: SgxCounters,
    /// The EPC's owner-attributed view (residency, allocs, load-backs,
    /// clock-hand victimizations) for the tenant's enclave.
    pub epc: EpcEnclaveStats,
}

/// A co-tenant SGX host: N tenant enclaves over one shared machine,
/// scheduled by a deterministic cycle-fair round-robin interleaver.
///
/// Build with [`Host::builder`], queue work with [`Host::push_ops`], run
/// the interleaver with [`Host::run`], read back [`Host::tenant_report`].
#[derive(Debug)]
pub struct Host {
    machine: SgxMachine,
    wave_cycles: u64,
    tenants: Vec<Tenant>,
}

impl Host {
    /// Starts a [`HostBuilder`] with default config and wave width.
    pub fn builder() -> HostBuilder {
        HostBuilder::default()
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The configured scheduler wave width in cycles.
    pub fn wave_cycles(&self) -> u64 {
        self.wave_cycles
    }

    /// The shared machine (counters, EPC, trace plane).
    pub fn machine(&self) -> &SgxMachine {
        &self.machine
    }

    /// Mutable shared machine — e.g. to attach a trace sink before
    /// running, or to inject faults between waves.
    pub fn machine_mut(&mut self) -> &mut SgxMachine {
        &mut self.machine
    }

    /// The enclave backing tenant `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn tenant_enclave(&self, id: TenantId) -> EnclaveId {
        self.tenants[id.0].enclave
    }

    /// The hardware thread driving tenant `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn tenant_thread(&self, id: TenantId) -> ThreadId {
        self.tenants[id.0].tid
    }

    /// The spec tenant `id` was registered with.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn tenant_spec(&self, id: TenantId) -> &TenantSpec {
        &self.tenants[id.0].spec
    }

    /// Queues ops on tenant `id`'s stream, behind any already queued.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn push_ops<I: IntoIterator<Item = TenantOp>>(&mut self, id: TenantId, ops: I) {
        self.tenants[id.0].queue.extend(ops);
    }

    /// Total ops queued across all tenants.
    pub fn pending_ops(&self) -> usize {
        self.tenants.iter().map(|t| t.queue.len()).sum()
    }

    /// Runs the interleaver until every tenant's queue drains: tenants
    /// take turns in registration order, each turn executing ops until
    /// the tenant's thread clock advances by the wave width (at least
    /// one op per turn, so progress is guaranteed).
    ///
    /// Each wave is wrapped in a trace phase named after the tenant, so
    /// with a sink attached the JSONL timeline carries per-tenant spans;
    /// without one the phase hooks are no-ops.
    ///
    /// # Errors
    ///
    /// Propagates the first [`HostError`] from an op or a phase close;
    /// unexecuted ops stay queued.
    pub fn run(&mut self) -> Result<(), HostError> {
        loop {
            let mut progressed = false;
            for i in 0..self.tenants.len() {
                if self.tenants[i].queue.is_empty() {
                    continue;
                }
                progressed = true;
                self.run_wave(i)?;
            }
            if !progressed {
                return Ok(());
            }
        }
    }

    /// Runs one scheduler wave for tenant `id` alone, returning whether
    /// any work ran (`false` when the tenant's queue was empty).
    ///
    /// This is the interleaving point for drivers that multiplex the
    /// wave scheduler with another event source — the cross-enclave
    /// relay alternates `run_wave_for` turns with message deliveries so
    /// a delivery can enqueue ops *between* waves at a deterministic
    /// cycle boundary. The wave is identical to one [`Host::run`] turn:
    /// same trace phase, same charged-ledger fold.
    ///
    /// # Errors
    ///
    /// Propagates the first [`HostError`] from an op or a phase close.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn run_wave_for(&mut self, id: TenantId) -> Result<bool, HostError> {
        if self.tenants[id.0].queue.is_empty() {
            return Ok(false);
        }
        self.run_wave(id.0)?;
        Ok(true)
    }

    /// The absolute simulated thread clock of tenant `id` — the time
    /// base relay deliveries are scheduled against. (Unlike
    /// [`TenantReport::cycles`] this is *not* rebased to the end of the
    /// enclave build.)
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn tenant_cycles(&self, id: TenantId) -> u64 {
        self.machine.mem().cycles_of(self.tenants[id.0].tid)
    }

    /// Ops currently queued on tenant `id`'s stream.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn tenant_queue_len(&self, id: TenantId) -> usize {
        self.tenants[id.0].queue.len()
    }

    /// Runs one wave of tenant `i`: ops until the wave width elapses on
    /// the tenant's thread clock or its queue drains, with the counter
    /// delta folded into the tenant's `charged` ledger.
    fn run_wave(&mut self, i: usize) -> Result<(), HostError> {
        let tid = self.tenants[i].tid;
        let heap_base = self.tenants[i].heap_base;
        let heap_bytes = self.tenants[i].spec.heap_bytes;
        let start = self.machine.mem().cycles_of(tid);
        let before = *self.machine.sgx_counters();
        self.machine
            .trace_phase_begin(tid, &self.tenants[i].spec.name);
        while let Some(op) = self.tenants[i].queue.pop_front() {
            op.apply(&mut self.machine, tid, heap_base, heap_bytes)?;
            if self.machine.mem().cycles_of(tid).saturating_sub(start) >= self.wave_cycles {
                break;
            }
        }
        self.machine
            .trace_phase_end(tid, &self.tenants[i].spec.name)?;
        let after = *self.machine.sgx_counters();
        let t = &mut self.tenants[i];
        for f in CounterField::ALL {
            let delta = after.get(f).saturating_sub(before.get(f));
            t.charged.set(f, t.charged.get(f) + delta);
        }
        t.waves += 1;
        Ok(())
    }

    /// Attribution snapshot for tenant `id` (see module docs for the
    /// charged-vs-EPC distinction).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn tenant_report(&self, id: TenantId) -> TenantReport {
        let t = &self.tenants[id.0];
        TenantReport {
            name: t.spec.name.clone(),
            tenant: id,
            cycles: self
                .machine
                .mem()
                .cycles_of(t.tid)
                .saturating_sub(t.cycle_base),
            waves: t.waves,
            charged: t.charged,
            epc: self.machine.epc().enclave_stats(t.enclave),
        }
    }

    /// Reports for every tenant, in registration order.
    pub fn tenant_reports(&self) -> Vec<TenantReport> {
        (0..self.tenants.len())
            .map(|i| self.tenant_report(TenantId(i)))
            .collect()
    }

    /// Tears down tenant `id`'s enclave mid-run (EREMOVE): its queued
    /// ops are dropped and the shared EPC frees its frames with the
    /// clock-hand position preserved for the survivors. The tenant's
    /// report remains readable (cumulative history survives teardown).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn evict_tenant(&mut self, id: TenantId) {
        let enclave = self.tenants[id.0].enclave;
        self.tenants[id.0].queue.clear();
        self.machine.destroy_enclave(enclave);
    }
}
