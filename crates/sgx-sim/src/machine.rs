//! The SGX machine: enclaves + EPC + transitions layered on the memory
//! model.
//!
//! All cycle costs are charged to the issuing thread's clock in the
//! underlying [`mem_sim::Machine`]; all SGX events land in
//! [`SgxCounters`]; all driver-visible paging operations are also sampled
//! into [`DriverStats`] the way the paper's instrumented driver does.

use crate::costs;
use crate::driver::{DriverOp, DriverStats};
use crate::enclave::{Enclave, EnclaveId, EnclaveState};
use crate::epc::{Epc, EpcFaultKind, PageKey};
use crate::epcm::{Epcm, PagePerms};
use crate::switchless::SwitchlessPool;
use mem_sim::{
    AccessAttrs, AccessKind, AccessOutcome, Machine, MachineConfig, StreamRun, ThreadId,
    PAGE_SHIFT, PAGE_SIZE,
};
use std::error::Error;
use std::fmt;

/// Errors reported by [`SgxMachine`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SgxError {
    /// Enclave content is larger than the configured enclave size.
    ContentTooLarge,
    /// ECALL into an enclave that is not initialized (or destroyed).
    NotInitialized,
    /// The thread is already executing inside an enclave.
    AlreadyInEnclave,
    /// The operation requires the thread to be inside an enclave.
    NotInEnclave,
    /// All TCS slots of the enclave are in use (too many concurrent
    /// ECALLs; the paper's Graphene manifests configure 16).
    OutOfTcs,
    /// The enclave's ELRANGE cannot hold the requested heap allocation.
    OutOfEnclaveMemory,
}

impl fmt::Display for SgxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgxError::ContentTooLarge => write!(f, "enclave content exceeds enclave size"),
            SgxError::NotInitialized => write!(f, "enclave is not initialized"),
            SgxError::AlreadyInEnclave => write!(f, "thread is already inside an enclave"),
            SgxError::NotInEnclave => write!(f, "thread is not inside an enclave"),
            SgxError::OutOfTcs => write!(f, "no free TCS slot for another concurrent ECALL"),
            SgxError::OutOfEnclaveMemory => write!(f, "enclave heap exhausted"),
        }
    }
}

impl Error for SgxError {}

/// Configuration of the SGX platform model. Defaults reproduce the
/// paper's platform (Table 3) and its cited costs (§2.2, §2.3, App. A).
#[derive(Debug, Clone)]
pub struct SgxConfig {
    /// The underlying machine model.
    pub mem: MachineConfig,
    /// Usable EPC bytes (92 MB on the paper's platform).
    pub epc_bytes: u64,
    /// EPC bytes lost to SGX structures and resident runtime pages:
    /// SECS/TCS/SSA frames, version-array pages for evicted content, and
    /// the measured binary's hot pages. Application data contends for
    /// `epc_bytes - epc_reserved_bytes` frames, which is why footprints
    /// "approximately at" the EPC size already page (paper §5.3).
    pub epc_reserved_bytes: u64,
    /// Pages evicted per EWB batch (the driver uses 16).
    pub evict_batch: usize,
    /// Cycles to evict one page: MAC + encrypt + write back (≈12 000).
    pub ewb_cycles: u64,
    /// Cycles to load one page back: decrypt + verify (EWB is "16 % more
    /// than loading back", Appendix A).
    pub eldu_cycles: u64,
    /// Cycles for `sgx_alloc_page` to hand out a free frame.
    pub alloc_page_cycles: u64,
    /// Fixed driver overhead of `sgx_do_fault` on top of the paging ops.
    pub fault_base_cycles: u64,
    /// Cycles for EENTER (half of the ≈17 k round trip of an ECALL).
    pub eenter_cycles: u64,
    /// Cycles for EEXIT.
    pub eexit_cycles: u64,
    /// Cycles for an asynchronous exit (AEX) on a fault.
    pub aex_cycles: u64,
    /// Cycles for ERESUME after a handled fault.
    pub eresume_cycles: u64,
    /// Cycles to EADD + EEXTEND (measure) one page at build time.
    pub eadd_cycles: u64,
    /// Concurrent TCS slots per enclave.
    pub tcs_per_enclave: usize,
    /// Proxy threads for switchless OCALLs; zero disables the feature.
    pub switchless_workers: usize,
    /// Shared-memory channel overhead per switchless call.
    pub switchless_channel_cycles: u64,
    /// SGX2 dynamic memory (EDMM): when true, only *content* pages are
    /// measured at build time; heap pages are EAUGed on first touch
    /// instead of streaming the whole ELRANGE through the EPC. This is
    /// the platform improvement that eliminates Graphene's ≈1 M start-up
    /// evictions (Appendix D discusses SGX v1 vs v2 heaps).
    pub sgx2_edmm: bool,
    /// Extra cycles for the in-enclave EACCEPT of an EAUGed page.
    pub eaccept_cycles: u64,
}

impl Default for SgxConfig {
    fn default() -> Self {
        SgxConfig {
            mem: MachineConfig::default(),
            epc_bytes: 92 << 20,
            epc_reserved_bytes: 8 << 20,
            evict_batch: costs::EVICT_BATCH_PAGES,
            ewb_cycles: costs::EWB_CYCLES,
            eldu_cycles: costs::ELDU_CYCLES,
            alloc_page_cycles: costs::ALLOC_PAGE_CYCLES,
            fault_base_cycles: costs::FAULT_BASE_CYCLES,
            eenter_cycles: costs::EENTER_CYCLES,
            eexit_cycles: costs::EEXIT_CYCLES,
            aex_cycles: costs::AEX_CYCLES,
            eresume_cycles: costs::ERESUME_CYCLES,
            eadd_cycles: costs::EADD_CYCLES,
            tcs_per_enclave: 16,
            switchless_workers: 0,
            switchless_channel_cycles: costs::SWITCHLESS_CHANNEL_CYCLES,
            sgx2_edmm: false,
            eaccept_cycles: costs::EACCEPT_CYCLES,
        }
    }
}

impl SgxConfig {
    /// A configuration with a tiny EPC, handy for tests that want to
    /// exercise eviction without touching megabytes.
    pub fn with_tiny_epc(epc_pages: usize, batch: usize) -> Self {
        SgxConfig {
            epc_bytes: (epc_pages as u64) * PAGE_SIZE,
            epc_reserved_bytes: 0,
            evict_batch: batch,
            ..Default::default()
        }
    }
}

/// SGX-specific event counters, complementing [`mem_sim::Counters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SgxCounters {
    /// ECALLs (enclave entries through EENTER).
    pub ecalls: u64,
    /// OCALLs taking the classic exit path (EEXIT + EENTER).
    pub ocalls: u64,
    /// OCALLs served switchlessly by proxy threads.
    pub switchless_ocalls: u64,
    /// Asynchronous enclave exits (faults, signals).
    pub aex_exits: u64,
    /// The subset of `aex_exits` injected by the fault plane
    /// ([`SgxMachine::inject_aex`]) rather than caused by EPC faults.
    pub injected_aex: u64,
    /// EPC frames allocated (`sgx_alloc_page`).
    pub epc_allocs: u64,
    /// EPC pages evicted (EWB).
    pub epc_evictions: u64,
    /// EPC pages loaded back (ELDU).
    pub epc_loadbacks: u64,
    /// EPC faults handled (`sgx_do_fault` invocations).
    pub epc_faults: u64,
    /// Pages measured at enclave build (EADD + EEXTEND).
    pub pages_measured: u64,
    /// Cycles spent in enclave transitions (EENTER/EEXIT/OCALL paths,
    /// including switchless waits).
    pub transition_cycles: u64,
    /// Cycles spent handling EPC faults (AEX + driver + EWB/ELDU +
    /// ERESUME).
    pub fault_cycles: u64,
}

/// Typed key for one [`SgxCounters`] field.
///
/// This replaces the old stringly `set_field(&str, u64)` accessor: report
/// and checkpoint code address counters through the enum, and a typo in a
/// counter name is now a compile error (or a `None` from
/// [`CounterField::parse`] on the deserialization path) instead of a
/// silently ignored write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CounterField {
    /// [`SgxCounters::ecalls`].
    Ecalls,
    /// [`SgxCounters::ocalls`].
    Ocalls,
    /// [`SgxCounters::switchless_ocalls`].
    SwitchlessOcalls,
    /// [`SgxCounters::aex_exits`].
    AexExits,
    /// [`SgxCounters::injected_aex`].
    InjectedAex,
    /// [`SgxCounters::epc_allocs`].
    EpcAllocs,
    /// [`SgxCounters::epc_evictions`].
    EpcEvictions,
    /// [`SgxCounters::epc_loadbacks`].
    EpcLoadbacks,
    /// [`SgxCounters::epc_faults`].
    EpcFaults,
    /// [`SgxCounters::pages_measured`].
    PagesMeasured,
    /// [`SgxCounters::transition_cycles`].
    TransitionCycles,
    /// [`SgxCounters::fault_cycles`].
    FaultCycles,
}

impl CounterField {
    /// Every field, in [`SgxCounters`] declaration order.
    pub const ALL: [CounterField; 12] = [
        CounterField::Ecalls,
        CounterField::Ocalls,
        CounterField::SwitchlessOcalls,
        CounterField::AexExits,
        CounterField::InjectedAex,
        CounterField::EpcAllocs,
        CounterField::EpcEvictions,
        CounterField::EpcLoadbacks,
        CounterField::EpcFaults,
        CounterField::PagesMeasured,
        CounterField::TransitionCycles,
        CounterField::FaultCycles,
    ];

    /// The snake_case field name, as reports and checkpoints spell it.
    pub fn name(self) -> &'static str {
        match self {
            CounterField::Ecalls => "ecalls",
            CounterField::Ocalls => "ocalls",
            CounterField::SwitchlessOcalls => "switchless_ocalls",
            CounterField::AexExits => "aex_exits",
            CounterField::InjectedAex => "injected_aex",
            CounterField::EpcAllocs => "epc_allocs",
            CounterField::EpcEvictions => "epc_evictions",
            CounterField::EpcLoadbacks => "epc_loadbacks",
            CounterField::EpcFaults => "epc_faults",
            CounterField::PagesMeasured => "pages_measured",
            CounterField::TransitionCycles => "transition_cycles",
            CounterField::FaultCycles => "fault_cycles",
        }
    }

    /// Inverse of [`CounterField::name`]; `None` for unknown names.
    pub fn parse(name: &str) -> Option<CounterField> {
        CounterField::ALL.into_iter().find(|f| f.name() == name)
    }
}

impl SgxCounters {
    /// Reads the counter addressed by `field`.
    pub fn get(&self, field: CounterField) -> u64 {
        match field {
            CounterField::Ecalls => self.ecalls,
            CounterField::Ocalls => self.ocalls,
            CounterField::SwitchlessOcalls => self.switchless_ocalls,
            CounterField::AexExits => self.aex_exits,
            CounterField::InjectedAex => self.injected_aex,
            CounterField::EpcAllocs => self.epc_allocs,
            CounterField::EpcEvictions => self.epc_evictions,
            CounterField::EpcLoadbacks => self.epc_loadbacks,
            CounterField::EpcFaults => self.epc_faults,
            CounterField::PagesMeasured => self.pages_measured,
            CounterField::TransitionCycles => self.transition_cycles,
            CounterField::FaultCycles => self.fault_cycles,
        }
    }

    /// Writes the counter addressed by `field`.
    pub fn set(&mut self, field: CounterField, value: u64) {
        let slot = match field {
            CounterField::Ecalls => &mut self.ecalls,
            CounterField::Ocalls => &mut self.ocalls,
            CounterField::SwitchlessOcalls => &mut self.switchless_ocalls,
            CounterField::AexExits => &mut self.aex_exits,
            CounterField::InjectedAex => &mut self.injected_aex,
            CounterField::EpcAllocs => &mut self.epc_allocs,
            CounterField::EpcEvictions => &mut self.epc_evictions,
            CounterField::EpcLoadbacks => &mut self.epc_loadbacks,
            CounterField::EpcFaults => &mut self.epc_faults,
            CounterField::PagesMeasured => &mut self.pages_measured,
            CounterField::TransitionCycles => &mut self.transition_cycles,
            CounterField::FaultCycles => &mut self.fault_cycles,
        };
        *slot = value;
    }

    /// `(name, value)` pairs in declaration order — a thin iterator over
    /// [`CounterField::ALL`], kept for report code.
    pub fn fields(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        CounterField::ALL
            .into_iter()
            .map(|f| (f.name(), self.get(f)))
    }
}

/// Statistics of one enclave build (ECREATE..EINIT), kept for the
/// start-up analyses (Fig 6a, Fig 9, Appendix D).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InitStats {
    /// Pages streamed through the EPC for measurement.
    pub pages_measured: u64,
    /// EPC evictions caused by the measurement pass.
    pub evictions: u64,
    /// Cycles the build took.
    pub cycles: u64,
}

/// Base of the untrusted heap in the simulated address space.
const UNTRUSTED_BASE: u64 = 0x0000_1000_0000;
/// Base of the first ELRANGE.
const ENCLAVE_BASE: u64 = 0x7000_0000_0000;

/// The SGX platform model. See the crate docs for an example.
#[derive(Debug)]
pub struct SgxMachine {
    cfg: SgxConfig,
    mem: Machine,
    epc: Epc,
    epcm: Epcm,
    enclaves: Vec<Enclave>,
    active_tcs: Vec<usize>,
    in_enclave: Vec<Option<EnclaveId>>,
    counters: SgxCounters,
    driver: DriverStats,
    switchless: Option<SwitchlessPool>,
    untrusted_next: u64,
    enclave_next: u64,
    init_stats: Vec<InitStats>,
    jitter: u64,
    /// Memo of the last enclave page confirmed resident by
    /// [`SgxMachine::access`], so streaming accesses within one page skip
    /// the residency map entirely. Invariant: when set, the page is
    /// resident with its reference bit set and no eviction sweep has run
    /// since — every event that could break that (an EPC fault, an
    /// enclave build or teardown) clears or overwrites the memo.
    last_touched: Option<(EnclaveId, u64)>,
    /// Scratch queue reused across [`SgxMachine::access_stream`] calls so
    /// the batched path never allocates in steady state (its capacity
    /// ratchets up to the largest batch seen).
    stream_buf: Vec<StreamRun>,
}

impl SgxMachine {
    /// Builds the platform from a configuration.
    ///
    /// Kept as a thin shim over the co-tenant host's zero-tenant path
    /// (`Host::builder().sgx(cfg).build_machine()`), which is the
    /// preferred spelling going forward — see CHANGELOG. Both routes run
    /// the same constructor and produce bit-identical machines.
    pub fn new(cfg: SgxConfig) -> Self {
        crate::host::Host::builder().sgx(cfg).build_machine()
    }

    /// The one real constructor, shared by [`SgxMachine::new`] and the
    /// [`crate::host::HostBuilder`].
    pub(crate) fn from_config(cfg: SgxConfig) -> Self {
        let frames = (cfg.epc_bytes.saturating_sub(cfg.epc_reserved_bytes) >> PAGE_SHIFT) as usize;
        let epc = Epc::new(frames.max(1), cfg.evict_batch.max(1));
        let switchless = if cfg.switchless_workers > 0 {
            Some(SwitchlessPool::new(
                cfg.switchless_workers,
                cfg.switchless_channel_cycles,
            ))
        } else {
            None
        };
        let mem = Machine::new(cfg.mem.clone());
        SgxMachine {
            cfg,
            mem,
            epc,
            epcm: Epcm::new(),
            enclaves: Vec::new(),
            active_tcs: Vec::new(),
            in_enclave: Vec::new(),
            counters: SgxCounters::default(),
            driver: DriverStats::new(),
            switchless,
            untrusted_next: UNTRUSTED_BASE,
            enclave_next: ENCLAVE_BASE,
            init_stats: Vec::new(),
            jitter: 0x9e3779b97f4a7c15,
            last_touched: None,
            stream_buf: Vec::new(),
        }
    }

    /// Adds a hardware thread.
    pub fn add_thread(&mut self) -> ThreadId {
        self.in_enclave.push(None);
        self.mem.add_thread()
    }

    /// Assembles the flat counter snapshot the trace plane records at
    /// sample instants and phase boundaries: this layer is the only one
    /// that sees the memory counters, the SGX event counters and the EPC
    /// occupancy together.
    pub fn trace_snapshot(&self) -> trace::CounterSnapshot {
        let m = self.mem.counters();
        trace::CounterSnapshot {
            resident_pages: self.epc.resident_count() as u64,
            epc_faults: self.counters.epc_faults,
            epc_allocs: self.counters.epc_allocs,
            epc_evictions: self.counters.epc_evictions,
            epc_loadbacks: self.counters.epc_loadbacks,
            ecalls: self.counters.ecalls,
            ocalls: self.counters.ocalls + self.counters.switchless_ocalls,
            aex_exits: self.counters.aex_exits,
            dtlb_misses: m.dtlb_misses,
            llc_misses: m.llc_misses,
            page_faults: m.page_faults,
            compute_cycles: m.compute_cycles,
            stall_cycles: m.stall_cycles,
            walk_cycles: m.walk_cycles,
            mee_cycles: m.mee_cycles,
            transition_cycles: self.counters.transition_cycles,
            fault_cycles: self.counters.fault_cycles,
        }
    }

    /// Emits a periodic counter sample when one is due on `tid`'s clock.
    /// One `Option` check when tracing is disabled.
    #[inline]
    fn trace_tick(&mut self, tid: ThreadId) {
        if self.mem.trace_sample_due(tid) {
            let snap = self.trace_snapshot();
            self.mem.trace_emit(tid, trace::TraceEvent::Sample { snap });
        }
    }

    /// Opens a workload-declared phase span, recording the boundary
    /// counter snapshot. No-op when tracing is disabled.
    pub fn trace_phase_begin(&mut self, tid: ThreadId, name: &str) {
        if self.mem.tracing() {
            let snap = self.trace_snapshot();
            let now = self.mem.cycles_of(tid);
            if let Some(sink) = self.mem.trace_sink_mut() {
                sink.begin_phase(name, now, tid.0 as u32, snap);
            }
        }
    }

    /// Closes the innermost phase span, which must be named `name`.
    ///
    /// # Errors
    ///
    /// Propagates the sink's typed [`trace::TraceError`] on span misuse;
    /// always `Ok` when tracing is disabled.
    pub fn trace_phase_end(&mut self, tid: ThreadId, name: &str) -> Result<(), trace::TraceError> {
        if self.mem.tracing() {
            let snap = self.trace_snapshot();
            let now = self.mem.cycles_of(tid);
            if let Some(sink) = self.mem.trace_sink_mut() {
                sink.end_phase(name, now, tid.0 as u32, snap)?;
            }
        }
        Ok(())
    }

    /// Small deterministic jitter so driver latency samples have a
    /// realistic spread (xorshift over ±6 % of `base`).
    fn jittered(&mut self, base: u64) -> u64 {
        let mut x = self.jitter;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter = x;
        let span = base / 16; // +-6.25 %
        if span == 0 {
            return base;
        }
        base - span + (x % (2 * span))
    }

    /// Allocates `bytes` of untrusted memory and returns its base
    /// address. The memory is demand-paged like ordinary anonymous mmap.
    pub fn alloc_untrusted(&mut self, bytes: u64) -> u64 {
        let base = self.untrusted_next;
        self.untrusted_next += bytes.next_multiple_of(PAGE_SIZE) + PAGE_SIZE; // guard gap
        base
    }

    /// Creates, measures (EADD/EEXTEND over the *whole* enclave size, as
    /// the paper observes in §3.2.1 and Appendix D) and initializes an
    /// enclave, charging the build to thread 0's clock if it exists.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::ContentTooLarge`] when `content_bytes`
    /// exceeds `size_bytes`.
    pub fn create_enclave(
        &mut self,
        size_bytes: u64,
        content_bytes: u64,
    ) -> Result<EnclaveId, SgxError> {
        if content_bytes > size_bytes {
            return Err(SgxError::ContentTooLarge);
        }
        let id = EnclaveId(self.enclaves.len());
        let size = size_bytes.next_multiple_of(PAGE_SIZE);
        let base = self.enclave_next;
        self.enclave_next += size + (1 << 30); // 1 GiB guard between ELRANGEs
        let mut enclave =
            Enclave::create(id, base, size, content_bytes.next_multiple_of(PAGE_SIZE));
        let mut init = InitStats::default();

        // Measurement pass: stream every page of the ELRANGE through the
        // EPC. This is what blows up Graphene's 4 GB enclaves. Under
        // SGX2/EDMM only the measured content streams; the heap is
        // EAUGed on demand.
        let first = enclave.first_page();
        let total = if self.cfg.sgx2_edmm {
            enclave.content_bytes() >> PAGE_SHIFT
        } else {
            enclave.total_pages()
        };
        for i in 0..total {
            let key = PageKey {
                enclave: id,
                page: first + i,
            };
            let ev = self.epc.ensure_resident(key);
            debug_assert!(ev.kind != EpcFaultKind::LoadBack, "build pages are fresh");
            init.pages_measured += 1;
            init.evictions += ev.evicted.len() as u64;
            self.counters.pages_measured += 1;
            self.counters.epc_allocs += 1;
            self.counters.epc_evictions += ev.evicted.len() as u64;
            let mut cycles = self.cfg.eadd_cycles + self.cfg.alloc_page_cycles;
            for _ in &ev.evicted {
                let c = self.jittered(self.cfg.ewb_cycles);
                self.driver.record(DriverOp::Ewb, c);
                cycles += c;
            }
            let ac = self.jittered(self.cfg.alloc_page_cycles);
            self.driver.record(DriverOp::AllocPage, ac);
            enclave.extend_measurement(i);
            init.cycles += cycles;
            self.epcm.record(id, first + i, PagePerms::RW);
        }
        // After verification the streamed pages are released; real
        // allocations happen on demand ("EPC pages are allocated after
        // the verification is done", Appendix D). Content pages keep
        // their EWB'd encrypted copies, so touching them later is an
        // ELDU load-back — which is why the paper sees only ≈700 pages
        // of the ≈1M evicted at Graphene start-up come back (Fig 6a).
        self.epc.remove_enclave(id);
        let content_pages = enclave.content_bytes() >> PAGE_SHIFT;
        for i in 0..content_pages {
            self.epc.mark_evicted(PageKey {
                enclave: id,
                page: first + i,
            });
        }
        if self.mem.thread_count() > 0 {
            self.mem.charge(ThreadId(0), init.cycles);
        }
        enclave.initialize();
        self.enclaves.push(enclave);
        self.active_tcs.push(0);
        self.init_stats.push(init);
        // The measurement pass churned the EPC behind secure_access's
        // back; the memoized page may have been evicted.
        self.last_touched = None;
        self.audit();
        Ok(id)
    }

    /// Tears down an enclave, EREMOVing its pages.
    ///
    /// Threads still executing inside `id` are forced out (the
    /// asynchronous analogue of EREMOVE'ing a live TCS): their in-enclave
    /// state clears and their TLBs flush, since stale ELRANGE mappings
    /// must not survive the enclave. The enclave's TCS accounting resets
    /// with them, so a mid-rotation co-tenant teardown cannot leak slots
    /// or leave a neighbour's thread pinned to a destroyed enclave.
    pub fn destroy_enclave(&mut self, id: EnclaveId) {
        for tid in 0..self.in_enclave.len() {
            if self.in_enclave[tid] == Some(id) {
                self.in_enclave[tid] = None;
                self.mem.flush_tlb(ThreadId(tid));
            }
        }
        self.active_tcs[id.0] = 0;
        self.epc.remove_enclave(id);
        self.epcm.remove_enclave(id);
        self.enclaves[id.0].destroy();
        self.last_touched = None;
        self.audit();
    }

    /// Immutable view of an enclave.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn enclave(&self, id: EnclaveId) -> &Enclave {
        &self.enclaves[id.0]
    }

    /// Build statistics for `id` (Appendix D analyses).
    pub fn init_stats(&self, id: EnclaveId) -> InitStats {
        self.init_stats[id.0]
    }

    /// Allocates enclave heap memory.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::OutOfEnclaveMemory`] when the ELRANGE is
    /// exhausted (the SGX v1 condition that forces generous enclave
    /// sizes).
    pub fn alloc_enclave_heap(&mut self, id: EnclaveId, bytes: u64) -> Result<u64, SgxError> {
        self.enclaves[id.0]
            .alloc_heap(bytes)
            .ok_or(SgxError::OutOfEnclaveMemory)
    }

    /// Performs an ECALL: EENTER plus the mandatory TLB flush.
    ///
    /// # Errors
    ///
    /// Fails when the enclave is not initialized, the thread is already
    /// inside an enclave, or no TCS slot is free.
    pub fn ecall_enter(&mut self, tid: ThreadId, id: EnclaveId) -> Result<(), SgxError> {
        if self.enclaves[id.0].state() != EnclaveState::Initialized {
            return Err(SgxError::NotInitialized);
        }
        if self.in_enclave[tid.0].is_some() {
            return Err(SgxError::AlreadyInEnclave);
        }
        if self.active_tcs[id.0] >= self.cfg.tcs_per_enclave {
            return Err(SgxError::OutOfTcs);
        }
        self.active_tcs[id.0] += 1;
        self.in_enclave[tid.0] = Some(id);
        self.counters.ecalls += 1;
        self.counters.transition_cycles += self.cfg.eenter_cycles;
        self.mem.charge(tid, self.cfg.eenter_cycles);
        #[cfg(feature = "audit")]
        let flushes = self.mem.counters().tlb_flushes;
        self.mem.flush_tlb(tid);
        #[cfg(feature = "audit")]
        assert_eq!(
            self.mem.counters().tlb_flushes,
            flushes + 1,
            "EENTER flushes the TLB exactly once (§2.3)"
        );
        self.mem.trace_emit(tid, trace::TraceEvent::EcallEnter);
        self.trace_tick(tid);
        Ok(())
    }

    /// Performs the EEXIT ending an ECALL.
    ///
    /// # Errors
    ///
    /// Fails when the thread is not inside `id`.
    pub fn ecall_exit(&mut self, tid: ThreadId, id: EnclaveId) -> Result<(), SgxError> {
        if self.in_enclave[tid.0] != Some(id) {
            return Err(SgxError::NotInEnclave);
        }
        self.in_enclave[tid.0] = None;
        self.active_tcs[id.0] -= 1;
        self.counters.transition_cycles += self.cfg.eexit_cycles;
        self.mem.charge(tid, self.cfg.eexit_cycles);
        #[cfg(feature = "audit")]
        let flushes = self.mem.counters().tlb_flushes;
        self.mem.flush_tlb(tid);
        #[cfg(feature = "audit")]
        assert_eq!(
            self.mem.counters().tlb_flushes,
            flushes + 1,
            "EEXIT flushes the TLB exactly once (§2.3)"
        );
        self.mem.trace_emit(tid, trace::TraceEvent::EcallExit);
        self.trace_tick(tid);
        Ok(())
    }

    /// Performs an OCALL whose untrusted work takes `work_cycles`.
    ///
    /// With switchless mode enabled the call is delegated to a proxy
    /// thread (no transition, no TLB flush); otherwise the thread pays
    /// EEXIT + work + EENTER with two TLB flushes (§2.3, §5.6).
    ///
    /// # Errors
    ///
    /// Fails when the thread is not inside an enclave.
    pub fn ocall(&mut self, tid: ThreadId, work_cycles: u64) -> Result<(), SgxError> {
        if self.in_enclave[tid.0].is_none() {
            return Err(SgxError::NotInEnclave);
        }
        #[cfg(feature = "audit")]
        let flushes = self.mem.counters().tlb_flushes;
        if let Some(pool) = self.switchless.as_mut() {
            let now = self.mem.cycles_of(tid);
            let done = pool.submit(now, work_cycles);
            self.counters.transition_cycles += done.saturating_sub(now).saturating_sub(work_cycles);
            self.mem.sync_to(tid, done);
            self.counters.switchless_ocalls += 1;
            #[cfg(feature = "audit")]
            assert_eq!(
                self.mem.counters().tlb_flushes,
                flushes,
                "switchless OCALLs are exit-less: no TLB flush (§5.6)"
            );
            self.mem
                .trace_emit(tid, trace::TraceEvent::Ocall { switchless: true });
            self.trace_tick(tid);
            return Ok(());
        }
        self.counters.ocalls += 1;
        self.counters.transition_cycles += self.cfg.eexit_cycles + self.cfg.eenter_cycles;
        self.mem.charge(tid, self.cfg.eexit_cycles);
        self.mem.flush_tlb(tid);
        self.mem.charge(tid, work_cycles);
        self.mem.charge(tid, self.cfg.eenter_cycles);
        self.mem.flush_tlb(tid);
        #[cfg(feature = "audit")]
        assert_eq!(
            self.mem.counters().tlb_flushes,
            flushes + 2,
            "a classic OCALL flushes on both EEXIT and EENTER (§2.3)"
        );
        self.mem
            .trace_emit(tid, trace::TraceEvent::Ocall { switchless: false });
        self.trace_tick(tid);
        Ok(())
    }

    /// Whether `tid` currently executes inside an enclave.
    pub fn current_enclave(&self, tid: ThreadId) -> Option<EnclaveId> {
        self.in_enclave[tid.0]
    }

    /// Issues a memory access, routing it through the EPC when the thread
    /// executes inside an enclave and targets its ELRANGE.
    ///
    /// # Panics
    ///
    /// Panics if a thread *outside* any enclave touches an ELRANGE — the
    /// hardware would return abort-page semantics; in the simulator this
    /// is always a harness bug worth failing loudly on.
    pub fn access(
        &mut self,
        tid: ThreadId,
        vaddr: u64,
        len: u64,
        kind: AccessKind,
    ) -> AccessOutcome {
        if len == 0 {
            return AccessOutcome::default();
        }
        match self.in_enclave[tid.0] {
            Some(eid) if self.enclaves[eid.0].contains(vaddr) => {
                self.secure_access(tid, eid, vaddr, len, kind)
            }
            _ => {
                debug_assert!(
                    !self
                        .enclaves
                        .iter()
                        .any(|e| e.state() == EnclaveState::Initialized
                            && e.contains(vaddr)
                            && self.in_enclave[tid.0].is_none_or(|c| c != e.id())),
                    "untrusted access to ELRANGE at {vaddr:#x}"
                );
                let out = self.mem.access(tid, vaddr, len, kind, &AccessAttrs::PLAIN);
                self.trace_tick(tid);
                out
            }
        }
    }

    /// Batched counterpart of [`SgxMachine::access`]: issues `runs` in
    /// order and returns the aggregate outcome (cycles summed, flags
    /// OR-ed across the batch).
    ///
    /// Consecutive runs sharing a routing class (plain vs. ELRANGE) are
    /// forwarded to [`mem_sim::Machine::access_stream`] as one batch.
    /// EPC residency is still established page by page and in order, and
    /// any batched memory work queued before an EPC fault is drained
    /// *before* the fault is serviced (the fault's AEX flushes the TLB),
    /// so counter totals and cycle charges are identical to issuing the
    /// runs one at a time. Only the trace sampling poll — which is
    /// simulated-time-triggered either way — runs once per batch rather
    /// than once per run.
    ///
    /// # Panics
    ///
    /// As for [`SgxMachine::access`], if a thread outside any enclave
    /// touches an ELRANGE (debug builds).
    pub fn access_stream(&mut self, tid: ThreadId, runs: &[StreamRun]) -> AccessOutcome {
        fn merge(agg: &mut AccessOutcome, out: AccessOutcome) {
            agg.cycles += out.cycles;
            agg.dtlb_miss |= out.dtlb_miss;
            agg.llc_miss |= out.llc_miss;
            agg.minor_fault |= out.minor_fault;
        }
        let mut agg = AccessOutcome::default();
        let mut extra = 0u64;
        // Steady-state zero-alloc: the queue is taken from (and returned
        // to) the machine so repeated batches reuse one ratcheting buffer.
        let mut pending: Vec<StreamRun> = std::mem::take(&mut self.stream_buf);
        pending.clear();
        pending.reserve(runs.len());
        let mut pending_epc = false;
        #[cfg(feature = "audit")]
        let mut faulted = false;
        for run in runs {
            if run.len == 0 {
                continue;
            }
            let enclave = match self.in_enclave[tid.0] {
                Some(eid) if self.enclaves[eid.0].contains(run.vaddr) => Some(eid),
                _ => None,
            };
            if (enclave.is_some()) != pending_epc && !pending.is_empty() {
                let attrs = if pending_epc {
                    AccessAttrs::EPC
                } else {
                    AccessAttrs::PLAIN
                };
                merge(&mut agg, self.mem.access_stream(tid, &pending, &attrs));
                pending.clear();
            }
            pending_epc = enclave.is_some();
            match enclave {
                None => {
                    debug_assert!(
                        !self
                            .enclaves
                            .iter()
                            .any(|e| e.state() == EnclaveState::Initialized
                                && e.contains(run.vaddr)
                                && self.in_enclave[tid.0].is_none_or(|c| c != e.id())),
                        "untrusted access to ELRANGE at {:#x}",
                        run.vaddr
                    );
                }
                Some(eid) => {
                    // Establish residency before queueing the run. A fault
                    // flushes the TLB, so memory work queued *before* the
                    // faulting page must be issued first to keep the
                    // sequential TLB-state ordering. Resident touches only
                    // mutate EPC replacement state, which batched memory
                    // accesses never observe, so reordering those across
                    // the queue is invisible.
                    let first_page = run.vaddr >> PAGE_SHIFT;
                    let last_byte = run.vaddr.saturating_add(run.len - 1);
                    let last_page = last_byte >> PAGE_SHIFT;
                    for page in first_page..=last_page {
                        if self.last_touched == Some((eid, page)) {
                            continue;
                        }
                        let key = PageKey { enclave: eid, page };
                        if self.epc.touch(key) {
                            self.last_touched = Some((eid, page));
                            continue;
                        }
                        if !pending.is_empty() {
                            merge(
                                &mut agg,
                                self.mem.access_stream(tid, &pending, &AccessAttrs::EPC),
                            );
                            pending.clear();
                        }
                        #[cfg(feature = "audit")]
                        {
                            faulted = true;
                        }
                        extra += self.epc_page_fault(tid, eid, page);
                    }
                }
            }
            pending.push(*run);
        }
        if !pending.is_empty() {
            let attrs = if pending_epc {
                AccessAttrs::EPC
            } else {
                AccessAttrs::PLAIN
            };
            merge(&mut agg, self.mem.access_stream(tid, &pending, &attrs));
        }
        self.stream_buf = pending;
        agg.cycles += extra;
        self.trace_tick(tid);
        #[cfg(feature = "audit")]
        if faulted {
            self.audit();
        }
        agg
    }

    fn secure_access(
        &mut self,
        tid: ThreadId,
        eid: EnclaveId,
        vaddr: u64,
        len: u64,
        kind: AccessKind,
    ) -> AccessOutcome {
        let mut extra = 0u64;
        // A resident hit mutates only reference bits and the streaming
        // memo; the full structural sweep is only due after a fault, and
        // charging it per access would make audit builds O(EPC) per touch.
        #[cfg(feature = "audit")]
        let mut faulted = false;
        self.epc_phase(
            tid,
            eid,
            vaddr,
            len,
            &mut extra,
            #[cfg(feature = "audit")]
            &mut faulted,
        );
        let mut out = self.mem.access(tid, vaddr, len, kind, &AccessAttrs::EPC);
        out.cycles += extra;
        self.trace_tick(tid);
        #[cfg(feature = "audit")]
        if faulted {
            self.audit();
        }
        out
    }

    /// Establishes EPC residency for every page of `len` bytes at
    /// `vaddr`, servicing faults (AEX + driver + ERESUME) as needed.
    /// Fault cycles are charged to `tid` and accumulated into `extra`.
    fn epc_phase(
        &mut self,
        tid: ThreadId,
        eid: EnclaveId,
        vaddr: u64,
        len: u64,
        extra: &mut u64,
        #[cfg(feature = "audit")] faulted: &mut bool,
    ) {
        let first_page = vaddr >> PAGE_SHIFT;
        // Checked: a run reaching the top of the address space clamps to
        // its last byte instead of wrapping to page 0.
        let last_byte = vaddr.saturating_add(len - 1);
        let last_page = last_byte >> PAGE_SHIFT;
        for page in first_page..=last_page {
            // Streaming fast path: repeated touches of the memoized page
            // skip the residency map entirely (its reference bit is
            // already set and no sweep has cleared it since).
            if self.last_touched == Some((eid, page)) {
                continue;
            }
            let key = PageKey { enclave: eid, page };
            if self.epc.touch(key) {
                // Resident path: exactly one residency-map probe, which
                // also refreshed the clock reference bit.
                self.last_touched = Some((eid, page));
                continue;
            }
            #[cfg(feature = "audit")]
            {
                *faulted = true;
            }
            *extra += self.epc_page_fault(tid, eid, page);
        }
    }

    /// Services one EPC fault for (`eid`, `page`): AEX exit, driver
    /// alloc/load-back with EWB evictions, ERESUME. Returns the cycles
    /// charged to `tid`.
    fn epc_page_fault(&mut self, tid: ThreadId, eid: EnclaveId, page: u64) -> u64 {
        let key = PageKey { enclave: eid, page };
        // EPC fault: AEX out, driver handles it, ERESUME back.
        #[cfg(feature = "audit")]
        let (c0, flushes0) = (self.counters, self.mem.counters().tlb_flushes);
        self.counters.epc_faults += 1;
        self.counters.aex_exits += 1;
        let resident_at_fault = self.epc.resident_count() as u64;
        self.mem.flush_tlb(tid);
        let mut fault_cycles = self.cfg.aex_cycles + self.cfg.fault_base_cycles;
        let ev = self.epc.ensure_resident(key);
        for _ in &ev.evicted {
            let c = self.jittered(self.cfg.ewb_cycles);
            self.driver.record(DriverOp::Ewb, c);
            self.counters.epc_evictions += 1;
            fault_cycles += c;
        }
        match ev.kind {
            EpcFaultKind::Alloc => {
                let mut c = self.jittered(self.cfg.alloc_page_cycles);
                if self.cfg.sgx2_edmm {
                    // EAUG by the driver + EACCEPT inside the enclave.
                    c += self.cfg.eaccept_cycles;
                }
                self.driver.record(DriverOp::AllocPage, c);
                self.counters.epc_allocs += 1;
                self.epcm.record(eid, page, PagePerms::RW);
                fault_cycles += c;
            }
            EpcFaultKind::LoadBack => {
                let c = self.jittered(self.cfg.eldu_cycles);
                self.driver.record(DriverOp::Eldu, c);
                self.counters.epc_loadbacks += 1;
                fault_cycles += c;
            }
            EpcFaultKind::Resident => unreachable!("page checked non-resident above"),
        }
        self.driver.record(
            DriverOp::DoFault,
            self.cfg.fault_base_cycles + fault_cycles / 4,
        );
        fault_cycles += self.cfg.eresume_cycles;
        self.counters.fault_cycles += fault_cycles;
        self.mem.charge(tid, fault_cycles);
        // The faulted page is now the only one known resident with a
        // fresh reference bit (the eviction sweep may have cleared
        // or evicted anything else, including the old memo).
        self.last_touched = Some((eid, page));
        // Eventwise conservation: one fault exits (AEX) and flushes
        // exactly once, is resolved by exactly one alloc or load-back,
        // and counts one eviction per EWB victim (§2.2/§2.3).
        #[cfg(feature = "audit")]
        {
            let c1 = &self.counters;
            assert_eq!(c1.epc_faults - c0.epc_faults, 1);
            assert_eq!(c1.aex_exits - c0.aex_exits, 1, "one AEX per fault");
            assert_eq!(
                (c1.epc_allocs + c1.epc_loadbacks) - (c0.epc_allocs + c0.epc_loadbacks),
                1,
                "a fault resolves via exactly one alloc or load-back"
            );
            assert_eq!(
                c1.epc_evictions - c0.epc_evictions,
                ev.evicted.len() as u64,
                "one eviction counted per EWB victim"
            );
            assert_eq!(
                self.mem.counters().tlb_flushes - flushes0,
                1,
                "the AEX flushes the TLB exactly once"
            );
        }
        // Trace only *paging* faults (the `sgx_do_fault`→EWB/ELDU
        // activity the paper instruments); demand-zero allocations
        // below the watermark are not paging and stay out of the
        // stream, which is what makes the EPC boundary cliff visible
        // as "fault events appear only past the watermark".
        if ev.kind == EpcFaultKind::LoadBack || !ev.evicted.is_empty() {
            self.mem.trace_emit(
                tid,
                trace::TraceEvent::EpcFault {
                    loadback: ev.kind == EpcFaultKind::LoadBack,
                    evicted: ev.evicted.len() as u32,
                    resident_pages: resident_at_fault,
                },
            );
        }
        fault_cycles
    }

    /// Charges pure computation to `tid`.
    pub fn compute(&mut self, tid: ThreadId, cycles: u64) {
        self.mem.compute(tid, cycles);
        self.trace_tick(tid);
    }

    /// Injects one asynchronous enclave exit on `tid` (the fault plane's
    /// AEX storm): AEX out with the mandatory TLB flush, ERESUME back,
    /// both charged from the canonical costs. Returns false (and does
    /// nothing) when the thread is not inside an enclave — real AEX only
    /// interrupts enclave execution.
    pub fn inject_aex(&mut self, tid: ThreadId) -> bool {
        if self.in_enclave[tid.0].is_none() {
            return false;
        }
        #[cfg(feature = "audit")]
        let flushes0 = self.mem.counters().tlb_flushes;
        self.counters.aex_exits += 1;
        self.counters.injected_aex += 1;
        self.mem.flush_tlb(tid);
        let cycles = self.cfg.aex_cycles + self.cfg.eresume_cycles;
        self.counters.fault_cycles += cycles;
        self.mem.charge(tid, cycles);
        #[cfg(feature = "audit")]
        assert_eq!(
            self.mem.counters().tlb_flushes - flushes0,
            1,
            "an injected AEX flushes the TLB exactly once"
        );
        self.mem
            .trace_emit(tid, trace::TraceEvent::Aex { injected: true });
        self.trace_tick(tid);
        self.audit();
        true
    }

    /// Applies an injected EPC pressure spike: reserves `frames` frames
    /// for a simulated co-tenant, writing back (EWB) whatever no longer
    /// fits and charging the write-backs to `tid`. Returns the number of
    /// pages evicted. Undo with [`SgxMachine::release_epc_pressure`].
    pub fn set_epc_pressure(&mut self, tid: ThreadId, frames: usize) -> usize {
        let victims = self.epc.set_reserved(frames);
        if !victims.is_empty() {
            // The shrink sweep may have evicted the memoized page.
            self.last_touched = None;
            let mut cycles = 0;
            for _ in &victims {
                let c = self.jittered(self.cfg.ewb_cycles);
                self.driver.record(DriverOp::Ewb, c);
                self.counters.epc_evictions += 1;
                cycles += c;
            }
            self.counters.fault_cycles += cycles;
            self.mem.charge(tid, cycles);
        }
        self.audit();
        victims.len()
    }

    /// Ends an injected EPC pressure spike: every reserved frame becomes
    /// usable again. Releasing evicts nothing, so it is free.
    pub fn release_epc_pressure(&mut self) {
        let victims = self.epc.set_reserved(0);
        debug_assert!(victims.is_empty(), "growing the pool cannot evict");
        self.audit();
    }

    /// The underlying machine (clocks, counters, page table).
    pub fn mem(&self) -> &Machine {
        &self.mem
    }

    /// Mutable access to the underlying machine (e.g. `sync_to`).
    pub fn mem_mut(&mut self) -> &mut Machine {
        &mut self.mem
    }

    /// SGX event counters.
    pub fn sgx_counters(&self) -> &SgxCounters {
        &self.counters
    }

    /// Driver latency statistics.
    pub fn driver_stats(&self) -> &DriverStats {
        &self.driver
    }

    /// EPC occupancy diagnostics.
    pub fn epc(&self) -> &Epc {
        &self.epc
    }

    /// EPCM diagnostics.
    pub fn epcm(&self) -> &Epcm {
        &self.epcm
    }

    /// The configuration this machine was built with.
    pub fn config(&self) -> &SgxConfig {
        &self.cfg
    }

    /// Verifies the cross-structure SGX invariants, returning a
    /// description of the first violation found:
    ///
    /// * the EPC's own structural invariants
    ///   ([`Epc::check_invariants`]),
    /// * **EPCM coverage** — every resident page has an EPCM entry whose
    ///   owner and virtual page match (the §2.3 ownership check could not
    ///   pass otherwise),
    /// * **memo residency** — the streaming fast-path memo only ever
    ///   names a resident page,
    /// * **AEX accounting** — every EPC fault exits the enclave exactly
    ///   once, and the only other exits are injected by the fault plane,
    ///   so `aex_exits == epc_faults + injected_aex` (§2.3),
    /// * **fault resolution** — each fault was resolved by an alloc or a
    ///   load-back, so `epc_allocs + epc_loadbacks >= epc_faults` (build
    ///   passes allocate without faulting, hence `>=` rather than `==`;
    ///   the per-fault `==` is asserted eventwise in audit builds).
    ///
    /// Always compiled; the `audit` cargo feature additionally calls it
    /// after every enclave build, teardown, and secure access, and
    /// panics on violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.epc.check_invariants()?;
        for key in self.epc.resident_keys() {
            match self.epcm.entry(key.page) {
                None => return Err(format!("resident page {key:?} has no EPCM entry")),
                Some(e) if e.owner != key.enclave => {
                    return Err(format!(
                        "resident page {key:?} recorded as owned by {:?}",
                        e.owner
                    ))
                }
                Some(e) if e.vpage != key.page => {
                    return Err(format!("EPCM entry for {key:?} records vpage {}", e.vpage))
                }
                Some(_) => {}
            }
        }
        if let Some((eid, page)) = self.last_touched {
            let key = PageKey { enclave: eid, page };
            if !self.epc.is_resident(key) {
                return Err(format!("fast-path memo names non-resident page {key:?}"));
            }
        }
        let c = &self.counters;
        if c.aex_exits != c.epc_faults + c.injected_aex {
            return Err(format!(
                "{} AEX exits for {} EPC faults + {} injected",
                c.aex_exits, c.epc_faults, c.injected_aex
            ));
        }
        if c.epc_allocs + c.epc_loadbacks < c.epc_faults {
            return Err(format!(
                "{} faults but only {} allocs + {} load-backs",
                c.epc_faults, c.epc_allocs, c.epc_loadbacks
            ));
        }
        Ok(())
    }

    /// Panics on the first violated invariant (audit builds only).
    #[cfg(feature = "audit")]
    fn audit(&self) {
        if let Err(e) = self.check_invariants() {
            panic!("SGX machine audit: {e}");
        }
    }

    /// No-op twin of the audit hook in non-audit builds.
    #[cfg(not(feature = "audit"))]
    #[inline(always)]
    fn audit(&self) {}

    /// Resets measurement state (memory counters, SGX counters, driver
    /// samples, thread clocks) while keeping all architectural state —
    /// the analogue of re-arming `perf` after start-up.
    pub fn reset_measurement(&mut self) {
        self.mem.reset_measurement();
        self.counters = SgxCounters::default();
        self.driver.reset();
        if let Some(p) = self.switchless.as_mut() {
            p.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_machine(epc_pages: usize) -> (SgxMachine, ThreadId) {
        let mut cfg = SgxConfig::with_tiny_epc(epc_pages, 2);
        cfg.mem = MachineConfig::default();
        let mut m = SgxMachine::new(cfg);
        let t = m.add_thread();
        (m, t)
    }

    #[test]
    fn ecall_flushes_tlb_and_counts() {
        let (mut m, t) = small_machine(64);
        let e = m.create_enclave(32 * PAGE_SIZE, 4 * PAGE_SIZE).unwrap();
        m.ecall_enter(t, e).unwrap();
        assert_eq!(m.sgx_counters().ecalls, 1);
        assert_eq!(m.current_enclave(t), Some(e));
        m.ecall_exit(t, e).unwrap();
        assert!(m.mem().counters().tlb_flushes >= 2);
        assert_eq!(m.current_enclave(t), None);
    }

    #[test]
    fn double_enter_rejected() {
        let (mut m, t) = small_machine(64);
        let e = m.create_enclave(32 * PAGE_SIZE, 4 * PAGE_SIZE).unwrap();
        m.ecall_enter(t, e).unwrap();
        assert_eq!(m.ecall_enter(t, e), Err(SgxError::AlreadyInEnclave));
    }

    #[test]
    fn tcs_limit_enforced() {
        let mut cfg = SgxConfig::with_tiny_epc(64, 2);
        cfg.tcs_per_enclave = 2;
        let mut m = SgxMachine::new(cfg);
        let t0 = m.add_thread();
        let t1 = m.add_thread();
        let t2 = m.add_thread();
        let e = m.create_enclave(32 * PAGE_SIZE, 4 * PAGE_SIZE).unwrap();
        m.ecall_enter(t0, e).unwrap();
        m.ecall_enter(t1, e).unwrap();
        assert_eq!(m.ecall_enter(t2, e), Err(SgxError::OutOfTcs));
        m.ecall_exit(t0, e).unwrap();
        m.ecall_enter(t2, e).unwrap();
    }

    #[test]
    fn enclave_access_allocates_epc() {
        let (mut m, t) = small_machine(64);
        let e = m.create_enclave(32 * PAGE_SIZE, 4 * PAGE_SIZE).unwrap();
        m.ecall_enter(t, e).unwrap();
        let heap = m.alloc_enclave_heap(e, 2 * PAGE_SIZE).unwrap();
        m.access(t, heap, 2 * PAGE_SIZE, AccessKind::Write);
        assert_eq!(m.sgx_counters().epc_allocs as usize, 32 + 2); // build + demand
        assert_eq!(m.sgx_counters().epc_faults, 2);
        assert_eq!(m.sgx_counters().aex_exits, 2);
    }

    #[test]
    fn stream_matches_sequential_accesses_under_epc_pressure() {
        // A small EPC forces faults and EWB evictions mid-stream; the
        // batched path must still charge identical cycles and counters.
        let build = |_| {
            let (mut m, t) = small_machine(24);
            let e = m.create_enclave(32 * PAGE_SIZE, 8 * PAGE_SIZE).unwrap();
            m.ecall_enter(t, e).unwrap();
            let heap = m.alloc_enclave_heap(e, 16 * PAGE_SIZE).unwrap();
            (m, t, heap)
        };
        let (mut a, ta, heap_a) = build(());
        let (mut b, tb, heap_b) = build(());
        assert_eq!(heap_a, heap_b);
        // Mix of enclave-heap runs (two sweeps so pages fault, evict and
        // load back) and untrusted runs (class switches mid-batch).
        let mut runs = Vec::new();
        for sweep in 0..2 {
            for p in 0..16u64 {
                runs.push(StreamRun::new(heap_a + p * PAGE_SIZE, 96, AccessKind::Read));
                if p % 5 == sweep {
                    runs.push(StreamRun::new(0x2000 + p * 64, 64, AccessKind::Write));
                }
            }
        }
        let batched = a.access_stream(ta, &runs);
        let mut seq_cycles = 0u64;
        for r in &runs {
            seq_cycles += b.access(tb, r.vaddr, r.len, r.kind).cycles;
        }
        assert!(
            a.sgx_counters().epc_evictions > 0,
            "the scenario must exercise eviction"
        );
        assert_eq!(batched.cycles, seq_cycles);
        assert_eq!(a.sgx_counters(), b.sgx_counters());
        assert_eq!(a.mem().counters(), b.mem().counters());
    }

    #[test]
    fn resident_access_probes_residency_map_once_per_page() {
        let (mut m, t) = small_machine(64);
        let e = m.create_enclave(32 * PAGE_SIZE, 4 * PAGE_SIZE).unwrap();
        m.ecall_enter(t, e).unwrap();
        let heap = m.alloc_enclave_heap(e, 2 * PAGE_SIZE).unwrap();
        // Warm both pages (faults; several probes each is fine).
        m.access(t, heap, 8, AccessKind::Write);
        m.access(t, heap + PAGE_SIZE, 8, AccessKind::Write);
        // Streaming within the memoized page: zero map probes.
        let p0 = m.epc().probe_count();
        for i in 0..16 {
            m.access(t, heap + PAGE_SIZE + i * 8, 8, AccessKind::Read);
        }
        assert_eq!(
            m.epc().probe_count(),
            p0,
            "same-page stream must skip the map"
        );
        // Alternating between warm pages defeats the memo: exactly one
        // probe per page touched, not two.
        let p1 = m.epc().probe_count();
        for i in 0..8u64 {
            m.access(t, heap + (i % 2) * PAGE_SIZE, 8, AccessKind::Read);
        }
        assert_eq!(
            m.epc().probe_count(),
            p1 + 8,
            "resident path is single-probe"
        );
        assert_eq!(m.sgx_counters().epc_faults, 2, "no spurious faults");
    }

    #[test]
    fn working_set_beyond_epc_thrashes() {
        let (mut m, t) = small_machine(8); // 8-frame EPC
        let e = m.create_enclave(64 * PAGE_SIZE, 0).unwrap();
        m.ecall_enter(t, e).unwrap();
        let heap = m.alloc_enclave_heap(e, 32 * PAGE_SIZE).unwrap();
        // Two sequential sweeps over 4x the EPC.
        for _ in 0..2 {
            for p in 0..32u64 {
                m.access(t, heap + p * PAGE_SIZE, 8, AccessKind::Read);
            }
        }
        let c = m.sgx_counters();
        assert!(c.epc_evictions > 32, "sweeps must evict: {c:?}");
        assert!(c.epc_loadbacks > 0, "second sweep must load back: {c:?}");
        assert!(m.epc().resident_count() <= 8);
    }

    #[test]
    fn fits_in_epc_no_faults_after_warmup() {
        let (mut m, t) = small_machine(64);
        let e = m.create_enclave(32 * PAGE_SIZE, 0).unwrap();
        m.ecall_enter(t, e).unwrap();
        let heap = m.alloc_enclave_heap(e, 16 * PAGE_SIZE).unwrap();
        for p in 0..16u64 {
            m.access(t, heap + p * PAGE_SIZE, 8, AccessKind::Write);
        }
        let faults = m.sgx_counters().epc_faults;
        for p in 0..16u64 {
            m.access(t, heap + p * PAGE_SIZE, 8, AccessKind::Read);
        }
        assert_eq!(m.sgx_counters().epc_faults, faults);
        assert_eq!(m.sgx_counters().epc_evictions, 0);
    }

    #[test]
    fn build_of_large_enclave_streams_through_epc() {
        let (mut m, _) = small_machine(16);
        let e = m.create_enclave(64 * PAGE_SIZE, 0).unwrap();
        let init = m.init_stats(e);
        assert_eq!(init.pages_measured, 64);
        // 64 pages through a 16-frame EPC must evict roughly 48.
        assert!(init.evictions >= 40, "init evictions {init:?}");
        // After build the EPC is released.
        assert_eq!(m.epc().resident_count(), 0);
    }

    #[test]
    fn ocall_costs_and_flushes() {
        let (mut m, t) = small_machine(64);
        let e = m.create_enclave(32 * PAGE_SIZE, 0).unwrap();
        m.ecall_enter(t, e).unwrap();
        let flushes = m.mem().counters().tlb_flushes;
        m.ocall(t, 1_000).unwrap();
        assert_eq!(m.sgx_counters().ocalls, 1);
        assert_eq!(m.mem().counters().tlb_flushes, flushes + 2);
    }

    #[test]
    fn switchless_ocall_avoids_flush() {
        let mut cfg = SgxConfig::with_tiny_epc(64, 2);
        cfg.switchless_workers = 4;
        let mut m = SgxMachine::new(cfg);
        let t = m.add_thread();
        let e = m.create_enclave(32 * PAGE_SIZE, 0).unwrap();
        m.ecall_enter(t, e).unwrap();
        let flushes = m.mem().counters().tlb_flushes;
        m.ocall(t, 1_000).unwrap();
        assert_eq!(m.sgx_counters().switchless_ocalls, 1);
        assert_eq!(m.sgx_counters().ocalls, 0);
        assert_eq!(m.mem().counters().tlb_flushes, flushes);
    }

    #[test]
    fn ocall_outside_enclave_rejected() {
        let (mut m, t) = small_machine(64);
        assert_eq!(m.ocall(t, 10), Err(SgxError::NotInEnclave));
    }

    #[test]
    fn untrusted_access_from_enclave_is_plain() {
        let (mut m, t) = small_machine(64);
        let e = m.create_enclave(32 * PAGE_SIZE, 0).unwrap();
        let buf = m.alloc_untrusted(PAGE_SIZE);
        m.ecall_enter(t, e).unwrap();
        let faults = m.sgx_counters().epc_faults;
        m.access(t, buf, 64, AccessKind::Read);
        assert_eq!(
            m.sgx_counters().epc_faults,
            faults,
            "untrusted access must not touch EPC"
        );
    }

    #[test]
    fn driver_records_paging_ops() {
        let (mut m, t) = small_machine(8);
        let e = m.create_enclave(64 * PAGE_SIZE, 0).unwrap();
        m.ecall_enter(t, e).unwrap();
        let heap = m.alloc_enclave_heap(e, 32 * PAGE_SIZE).unwrap();
        for _ in 0..3 {
            for p in 0..32u64 {
                m.access(t, heap + p * PAGE_SIZE, 8, AccessKind::Read);
            }
        }
        let d = m.driver_stats();
        assert!(d.stats(DriverOp::Ewb).count > 0);
        assert!(d.stats(DriverOp::Eldu).count > 0);
        assert!(d.stats(DriverOp::AllocPage).count > 0);
        assert!(d.stats(DriverOp::DoFault).count > 0);
        // EWB mean must exceed ELDU mean (paper: +16 %).
        assert!(d.stats(DriverOp::Ewb).mean_cycles() > d.stats(DriverOp::Eldu).mean_cycles());
    }

    #[test]
    fn ecall_into_destroyed_enclave_fails() {
        let (mut m, t) = small_machine(64);
        let e = m.create_enclave(32 * PAGE_SIZE, 0).unwrap();
        m.destroy_enclave(e);
        assert_eq!(m.ecall_enter(t, e), Err(SgxError::NotInitialized));
    }

    #[test]
    fn content_too_large_rejected() {
        let (mut m, _) = small_machine(64);
        assert_eq!(
            m.create_enclave(PAGE_SIZE, 2 * PAGE_SIZE).err(),
            Some(SgxError::ContentTooLarge)
        );
    }

    #[test]
    fn reset_measurement_keeps_epc_state() {
        let (mut m, t) = small_machine(64);
        let e = m.create_enclave(32 * PAGE_SIZE, 0).unwrap();
        m.ecall_enter(t, e).unwrap();
        let heap = m.alloc_enclave_heap(e, 4 * PAGE_SIZE).unwrap();
        m.access(t, heap, 4 * PAGE_SIZE, AccessKind::Write);
        m.reset_measurement();
        assert_eq!(m.sgx_counters().epc_faults, 0);
        let before = m.sgx_counters().epc_faults;
        m.access(t, heap, 8, AccessKind::Read);
        assert_eq!(
            m.sgx_counters().epc_faults,
            before,
            "page stayed resident across reset"
        );
    }

    #[test]
    fn sgx2_edmm_skips_heap_measurement() {
        let mut cfg = SgxConfig::with_tiny_epc(16, 2);
        cfg.sgx2_edmm = true;
        let mut m = SgxMachine::new(cfg);
        let t = m.add_thread();
        // 64-page enclave, 4 pages of content: only the content streams.
        let e = m.create_enclave(64 * PAGE_SIZE, 4 * PAGE_SIZE).unwrap();
        let init = m.init_stats(e);
        assert_eq!(init.pages_measured, 4);
        assert_eq!(init.evictions, 0, "content fits the EPC");
        // Heap pages still fault in on demand (EAUG + EACCEPT).
        m.ecall_enter(t, e).unwrap();
        let heap = m.alloc_enclave_heap(e, 4 * PAGE_SIZE).unwrap();
        m.access(t, heap, 8, AccessKind::Write);
        assert_eq!(m.sgx_counters().epc_allocs, 4 + 1);
    }

    #[test]
    fn sgx1_vs_sgx2_startup_evictions() {
        let build = |edmm: bool| {
            let mut cfg = SgxConfig::with_tiny_epc(64, 4);
            cfg.sgx2_edmm = edmm;
            let mut m = SgxMachine::new(cfg);
            m.add_thread();
            let e = m.create_enclave(1024 * PAGE_SIZE, 8 * PAGE_SIZE).unwrap();
            m.init_stats(e).evictions
        };
        let sgx1 = build(false);
        let sgx2 = build(true);
        assert!(sgx1 > 900, "SGX1 streams the whole ELRANGE: {sgx1}");
        assert_eq!(sgx2, 0, "SGX2 measures only content");
    }

    #[test]
    fn injected_aex_counts_flushes_and_charges() {
        let (mut m, t) = small_machine(8);
        let e = m.create_enclave(4 * PAGE_SIZE, 0).unwrap();
        assert!(!m.inject_aex(t), "no AEX outside an enclave");
        m.ecall_enter(t, e).unwrap();
        let flushes0 = m.mem().counters().tlb_flushes;
        let cycles0 = m.mem().cycles_of(t);
        assert!(m.inject_aex(t));
        assert!(m.inject_aex(t));
        let c = m.sgx_counters();
        assert_eq!(c.injected_aex, 2);
        assert_eq!(c.aex_exits, 2);
        assert_eq!(c.epc_faults, 0, "injection is not a page fault");
        assert_eq!(m.mem().counters().tlb_flushes - flushes0, 2);
        assert!(m.mem().cycles_of(t) > cycles0, "AEX + ERESUME are charged");
        assert!(m.check_invariants().is_ok());
    }

    #[test]
    fn epc_pressure_spike_evicts_and_releases() {
        let (mut m, t) = small_machine(8);
        let e = m.create_enclave(64 * PAGE_SIZE, 0).unwrap();
        m.ecall_enter(t, e).unwrap();
        let heap = m.alloc_enclave_heap(e, 8 * PAGE_SIZE).unwrap();
        for p in 0..8u64 {
            m.access(t, heap + p * PAGE_SIZE, 8, AccessKind::Write);
        }
        let resident0 = m.epc().resident_count();
        let evictions0 = m.sgx_counters().epc_evictions;
        let evicted = m.set_epc_pressure(t, 6);
        assert!(evicted > 0, "shrinking a warm EPC must write back");
        assert_eq!(
            m.sgx_counters().epc_evictions - evictions0,
            evicted as u64,
            "one eviction counted per EWB victim"
        );
        assert!(m.epc().resident_count() <= m.epc().effective_capacity());
        assert!(m.check_invariants().is_ok());
        m.release_epc_pressure();
        assert_eq!(m.epc().effective_capacity(), m.epc().capacity());
        // Touching the victims again loads them back within full capacity.
        for p in 0..8u64 {
            m.access(t, heap + p * PAGE_SIZE, 8, AccessKind::Read);
        }
        assert!(m.epc().resident_count() >= resident0.min(8));
        assert!(m.check_invariants().is_ok());
    }

    #[test]
    fn trace_sink_records_paging_faults_past_the_watermark() {
        let (mut m, t) = small_machine(8);
        let e = m.create_enclave(64 * PAGE_SIZE, 0).unwrap();
        m.ecall_enter(t, e).unwrap();
        let heap = m.alloc_enclave_heap(e, 16 * PAGE_SIZE).unwrap();
        m.mem_mut()
            .set_trace_sink(trace::TraceSink::with_config(1024, 0));
        for p in 0..16u64 {
            m.access(t, heap + p * PAGE_SIZE, 8, AccessKind::Write);
        }
        let sink = m.mem_mut().take_trace_sink().expect("sink was armed");
        assert_eq!(sink.dropped(), 0);
        let faults: Vec<_> = sink
            .records()
            .filter_map(|r| match r.event {
                trace::TraceEvent::EpcFault { resident_pages, .. } => {
                    Some((r.cycles, resident_pages))
                }
                _ => None,
            })
            .collect();
        // The first 8 allocations are demand-zero and below the
        // watermark: no paging, no events. Every traced fault happens at
        // full residency (the 8-frame watermark).
        assert!(!faults.is_empty());
        assert!(faults.len() < 16, "below-watermark allocs are not traced");
        assert!(faults.iter().all(|&(_, resident)| resident == 8));
        assert!(faults.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(m.sgx_counters().epc_faults, 16);
    }

    #[test]
    fn counter_field_round_trips_and_matches_fields() {
        let mut c = SgxCounters::default();
        for (i, f) in CounterField::ALL.into_iter().enumerate() {
            assert_eq!(CounterField::parse(f.name()), Some(f));
            c.set(f, i as u64 + 1);
            assert_eq!(c.get(f), i as u64 + 1);
        }
        assert_eq!(CounterField::parse("nope"), None);
        let listed: Vec<_> = c.fields().collect();
        assert_eq!(listed.len(), CounterField::ALL.len());
        assert_eq!(listed[0], ("ecalls", 1));
        assert_eq!(listed[11], ("fault_cycles", 12));
    }

    #[test]
    fn disabled_sink_changes_no_cycles() {
        let run = |traced: bool| {
            let (mut m, t) = small_machine(8);
            let e = m.create_enclave(64 * PAGE_SIZE, 0).unwrap();
            m.ecall_enter(t, e).unwrap();
            let heap = m.alloc_enclave_heap(e, 16 * PAGE_SIZE).unwrap();
            if traced {
                m.mem_mut().set_trace_sink(trace::TraceSink::new(256));
            }
            for p in 0..32u64 {
                m.access(t, heap + (p % 16) * PAGE_SIZE, 8, AccessKind::Write);
            }
            m.mem().cycles_of(t)
        };
        assert_eq!(run(false), run(true), "tracing never charges cycles");
    }
}
