//! Dense per-enclave page directories for the EPC hot path.
//!
//! [`crate::Epc`] used to key its residency map and evicted-page set on
//! [`crate::PageKey`] through `std` hash maps, paying a full SipHash per
//! [`crate::Epc::touch`] — once per simulated enclave access, the hottest
//! probe in the whole simulator. Enclave page numbers are anything but
//! adversarial: each enclave's pages cluster densely above its base
//! address, and enclave ids are dense small integers. Both structures
//! here exploit that shape: an enclave id indexes a vector of
//! directories, and a directory is a contiguous run of 512-page chunks
//! (2 MiB regions, the same granule the walk cache and OS page table
//! use), so a lookup is two bounds-checked array indexes and zero
//! hashing.
//!
//! Directories grow at either end on demand; pages far from the
//! enclave's cluster cost one `None` chunk slot per intervening 2 MiB
//! region, which is negligible for the bounded working sets the suite
//! simulates.

use crate::enclave::EnclaveId;
use crate::epc::PageKey;

/// Pages per directory chunk (one 2 MiB region).
const CHUNK_PAGES: u64 = 512;

/// Sentinel marking an empty slot in a [`FrameIndex`] chunk.
const EMPTY: u32 = u32::MAX;

/// One enclave's page-to-value run: chunks `base..base + chunks.len()`.
#[derive(Debug, Clone)]
struct Dir<C> {
    /// First chunk number covered by `chunks[0]`.
    base: u64,
    /// Lazily-allocated chunks; `None` = nothing in that 2 MiB region.
    chunks: Vec<Option<C>>,
    /// Live entries owned by this enclave.
    used: usize,
}

impl<C> Dir<C> {
    fn new(base: u64) -> Self {
        Dir {
            base,
            chunks: Vec::new(),
            used: 0,
        }
    }

    /// Index of `chunk` within `chunks`, growing the run to cover it.
    fn slot_for(&mut self, chunk: u64) -> usize {
        if self.chunks.is_empty() {
            self.base = chunk;
        } else if chunk < self.base {
            let grow = (self.base - chunk) as usize;
            self.chunks
                .splice(0..0, std::iter::repeat_with(|| None).take(grow));
            self.base = chunk;
        }
        let ci = (chunk - self.base) as usize;
        if ci >= self.chunks.len() {
            self.chunks.resize_with(ci + 1, || None);
        }
        ci
    }

    /// Index of `chunk` if the run covers it.
    #[inline]
    fn slot_of(&self, chunk: u64) -> Option<usize> {
        if chunk < self.base {
            return None;
        }
        let ci = (chunk - self.base) as usize;
        if ci < self.chunks.len() {
            Some(ci)
        } else {
            None
        }
    }
}

/// Helper: vector of per-enclave directories, grown on demand.
fn dir_mut<C>(dirs: &mut Vec<Option<Dir<C>>>, enclave: EnclaveId) -> &mut Dir<C> {
    let e = enclave.0;
    if e >= dirs.len() {
        dirs.resize_with(e + 1, || None);
    }
    dirs[e].get_or_insert_with(|| Dir::new(0))
}

/// A `PageKey -> u32` map (page to EPC frame index) with no hashing.
///
/// Replaces the old `HashMap<PageKey, usize>` residency map; the frame
/// index fits `u32` because EPC capacities are tens of thousands of
/// frames ([`crate::Epc::new`] asserts it).
#[derive(Debug, Clone, Default)]
pub(crate) struct FrameIndex {
    dirs: Vec<Option<Dir<Box<[u32; 512]>>>>,
    len: usize,
}

impl FrameIndex {
    /// Value stored for `key`, if any.
    #[inline]
    pub(crate) fn get(&self, key: PageKey) -> Option<u32> {
        let dir = match self.dirs.get(key.enclave.0) {
            Some(Some(d)) => d,
            _ => return None,
        };
        let ci = dir.slot_of(key.page / CHUNK_PAGES)?;
        let chunk = dir.chunks[ci].as_ref()?;
        let v = chunk[(key.page % CHUNK_PAGES) as usize];
        if v == EMPTY {
            None
        } else {
            Some(v)
        }
    }

    /// Inserts or overwrites `key -> value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is `u32::MAX` (reserved as the empty sentinel).
    pub(crate) fn insert(&mut self, key: PageKey, value: u32) {
        assert!(value != EMPTY, "u32::MAX is reserved");
        let dir = dir_mut(&mut self.dirs, key.enclave);
        let ci = dir.slot_for(key.page / CHUNK_PAGES);
        let chunk = dir.chunks[ci].get_or_insert_with(|| Box::new([EMPTY; 512]));
        let slot = &mut chunk[(key.page % CHUNK_PAGES) as usize];
        if *slot == EMPTY {
            dir.used += 1;
            self.len += 1;
        }
        *slot = value;
    }

    /// Removes `key`, returning its value if it was present.
    pub(crate) fn remove(&mut self, key: PageKey) -> Option<u32> {
        let dir = match self.dirs.get_mut(key.enclave.0) {
            Some(Some(d)) => d,
            _ => return None,
        };
        let ci = dir.slot_of(key.page / CHUNK_PAGES)?;
        let chunk = dir.chunks[ci].as_mut()?;
        let slot = &mut chunk[(key.page % CHUNK_PAGES) as usize];
        if *slot == EMPTY {
            None
        } else {
            let v = *slot;
            *slot = EMPTY;
            dir.used -= 1;
            self.len -= 1;
            Some(v)
        }
    }

    /// Number of live entries.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Drops every entry owned by `enclave`.
    pub(crate) fn remove_enclave(&mut self, enclave: EnclaveId) {
        if let Some(slot) = self.dirs.get_mut(enclave.0) {
            if let Some(dir) = slot.take() {
                self.len -= dir.used;
            }
        }
    }
}

/// A `PageKey` set (one presence bit per page) with no hashing.
///
/// Replaces the old `HashMap<PageKey, ()>` evicted-page set.
#[derive(Debug, Clone, Default)]
pub(crate) struct PageSet {
    dirs: Vec<Option<Dir<Box<[u64; 8]>>>>,
    len: usize,
}

impl PageSet {
    #[inline]
    fn bit_of(page: u64) -> (usize, u64) {
        let offset = page % CHUNK_PAGES;
        ((offset >> 6) as usize, 1u64 << (offset & 63))
    }

    /// Whether `key` is in the set.
    #[inline]
    pub(crate) fn contains(&self, key: PageKey) -> bool {
        let dir = match self.dirs.get(key.enclave.0) {
            Some(Some(d)) => d,
            _ => return false,
        };
        match dir.slot_of(key.page / CHUNK_PAGES) {
            Some(ci) => match dir.chunks[ci].as_ref() {
                Some(chunk) => {
                    let (word, mask) = Self::bit_of(key.page);
                    chunk[word] & mask != 0
                }
                None => false,
            },
            None => false,
        }
    }

    /// Adds `key`; returns `true` if it was newly inserted.
    pub(crate) fn insert(&mut self, key: PageKey) -> bool {
        let dir = dir_mut(&mut self.dirs, key.enclave);
        let ci = dir.slot_for(key.page / CHUNK_PAGES);
        let chunk = dir.chunks[ci].get_or_insert_with(|| Box::new([0; 8]));
        let (word, mask) = Self::bit_of(key.page);
        if chunk[word] & mask != 0 {
            false
        } else {
            chunk[word] |= mask;
            dir.used += 1;
            self.len += 1;
            true
        }
    }

    /// Removes `key`; returns `true` if it was present.
    pub(crate) fn remove(&mut self, key: PageKey) -> bool {
        let dir = match self.dirs.get_mut(key.enclave.0) {
            Some(Some(d)) => d,
            _ => return false,
        };
        let ci = match dir.slot_of(key.page / CHUNK_PAGES) {
            Some(ci) => ci,
            None => return false,
        };
        let chunk = match dir.chunks[ci].as_mut() {
            Some(c) => c,
            None => return false,
        };
        let (word, mask) = Self::bit_of(key.page);
        if chunk[word] & mask != 0 {
            chunk[word] &= !mask;
            dir.used -= 1;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Number of pages in the set.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Drops every page owned by `enclave`.
    pub(crate) fn remove_enclave(&mut self, enclave: EnclaveId) {
        if let Some(slot) = self.dirs.get_mut(enclave.0) {
            if let Some(dir) = slot.take() {
                self.len -= dir.used;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(e: usize, p: u64) -> PageKey {
        PageKey {
            enclave: EnclaveId(e),
            page: p,
        }
    }

    #[test]
    fn frame_index_roundtrip() {
        let mut fi = FrameIndex::default();
        // Pages clustered near the enclave base plus a distant straggler,
        // across two enclaves.
        let base = 0x7000_0000_0000u64 >> 12;
        let pages = [base, base + 1, base + 511, base + 512, base - 3, 7];
        for (i, &p) in pages.iter().enumerate() {
            fi.insert(key(0, p), i as u32);
            fi.insert(key(1, p), (100 + i) as u32);
        }
        assert_eq!(fi.len(), pages.len() * 2);
        for (i, &p) in pages.iter().enumerate() {
            assert_eq!(fi.get(key(0, p)), Some(i as u32));
            assert_eq!(fi.get(key(1, p)), Some((100 + i) as u32));
        }
        assert_eq!(fi.get(key(0, base + 2)), None);
        assert_eq!(fi.get(key(2, base)), None);
        // Overwrite does not double-count.
        fi.insert(key(0, base), 42);
        assert_eq!(fi.get(key(0, base)), Some(42));
        assert_eq!(fi.len(), pages.len() * 2);
        // Remove.
        assert_eq!(fi.remove(key(0, base)), Some(42));
        assert_eq!(fi.remove(key(0, base)), None);
        assert_eq!(fi.get(key(0, base)), None);
        assert_eq!(fi.len(), pages.len() * 2 - 1);
    }

    #[test]
    fn frame_index_remove_enclave_only_hits_that_enclave() {
        let mut fi = FrameIndex::default();
        fi.insert(key(0, 10), 1);
        fi.insert(key(1, 10), 2);
        fi.remove_enclave(EnclaveId(0));
        assert_eq!(fi.get(key(0, 10)), None);
        assert_eq!(fi.get(key(1, 10)), Some(2));
        assert_eq!(fi.len(), 1);
        // Removing an enclave that never had pages is a no-op.
        fi.remove_enclave(EnclaveId(9));
        assert_eq!(fi.len(), 1);
    }

    #[test]
    fn page_set_roundtrip() {
        let mut ps = PageSet::default();
        let base = 0x7000_0000_0000u64 >> 12;
        assert!(ps.insert(key(0, base)));
        assert!(!ps.insert(key(0, base)), "double insert reports false");
        assert!(ps.insert(key(0, base + 513)));
        assert!(ps.insert(key(3, base)));
        assert_eq!(ps.len(), 3);
        assert!(ps.contains(key(0, base)));
        assert!(!ps.contains(key(0, base + 1)));
        assert!(ps.remove(key(0, base)));
        assert!(!ps.remove(key(0, base)));
        assert_eq!(ps.len(), 2);
        ps.remove_enclave(EnclaveId(0));
        assert_eq!(ps.len(), 1);
        assert!(ps.contains(key(3, base)));
    }

    #[test]
    fn dir_grows_downward_without_losing_entries() {
        let mut fi = FrameIndex::default();
        fi.insert(key(0, 5_000), 1);
        fi.insert(key(0, 100), 2); // forces a front splice
        fi.insert(key(0, 2_500), 3);
        assert_eq!(fi.get(key(0, 5_000)), Some(1));
        assert_eq!(fi.get(key(0, 100)), Some(2));
        assert_eq!(fi.get(key(0, 2_500)), Some(3));
        assert_eq!(fi.len(), 3);
    }
}
