//! Property tests for the SGX model: EPC residency invariants and
//! transition accounting under arbitrary access streams.

use mem_sim::{AccessKind, PAGE_SIZE};
use proptest::prelude::*;
use sgx_sim::epc::{Epc, EpcFaultKind, PageKey};
use sgx_sim::{EnclaveId, SgxConfig, SgxMachine};

fn key(p: u64) -> PageKey {
    PageKey {
        enclave: EnclaveId(0),
        page: p,
    }
}

proptest! {
    /// A page is never both resident and evicted; residency never exceeds
    /// capacity; counters match set sizes.
    #[test]
    fn epc_residency_invariants(pages in prop::collection::vec(0u64..64, 1..300),
                                cap in 1usize..32, batch in 1usize..8) {
        let mut epc = Epc::new(cap, batch);
        for &p in &pages {
            epc.ensure_resident(key(p));
            prop_assert!(epc.resident_count() <= cap);
            prop_assert!(!(epc.is_resident(key(p)) && epc.is_evicted(key(p))));
        }
        // Every distinct page is exactly one of: resident, evicted.
        let distinct: std::collections::HashSet<_> = pages.iter().copied().collect();
        for &p in &distinct {
            prop_assert!(epc.is_resident(key(p)) ^ epc.is_evicted(key(p)),
                "page {p} must be exactly one of resident/evicted");
        }
        prop_assert_eq!(epc.resident_count() + epc.evicted_count(), distinct.len());
    }

    /// The second touch of a page without interleaving evictions is
    /// always `Resident`.
    #[test]
    fn immediate_retouch_is_resident(p in 0u64..1000, cap in 2usize..64) {
        let mut epc = Epc::new(cap, 1);
        epc.ensure_resident(key(p));
        let ev = epc.ensure_resident(key(p));
        prop_assert_eq!(ev.kind, EpcFaultKind::Resident);
        prop_assert!(ev.evicted.is_empty());
    }

    /// A working set within EPC capacity never evicts, no matter the
    /// access order.
    #[test]
    fn small_working_set_never_evicts(order in prop::collection::vec(0u64..16, 1..500),
                                      cap in 16usize..64) {
        let mut epc = Epc::new(cap, 4);
        for &p in &order {
            let ev = epc.ensure_resident(key(p));
            prop_assert!(ev.evicted.is_empty());
        }
    }

    /// SGX counters are consistent: loadbacks never exceed evictions, and
    /// every fault is an alloc or a loadback.
    #[test]
    fn machine_counter_consistency(pages in prop::collection::vec(0u64..48, 1..200)) {
        let mut m = SgxMachine::new(SgxConfig::with_tiny_epc(16, 4));
        let t = m.add_thread();
        let e = m.create_enclave(64 * PAGE_SIZE, 0).unwrap();
        m.ecall_enter(t, e).unwrap();
        let heap = m.alloc_enclave_heap(e, 48 * PAGE_SIZE).unwrap();
        m.reset_measurement();
        for &p in &pages {
            m.access(t, heap + p * PAGE_SIZE, 8, AccessKind::Read);
        }
        let c = *m.sgx_counters();
        prop_assert!(c.epc_loadbacks <= c.epc_evictions,
            "loadbacks {} > evictions {}", c.epc_loadbacks, c.epc_evictions);
        prop_assert_eq!(c.epc_faults, c.epc_allocs + c.epc_loadbacks);
        prop_assert_eq!(c.aex_exits, c.epc_faults);
    }

    /// Transition bookkeeping: enters and exits pair up and each flushes
    /// the TLB exactly once.
    #[test]
    fn transitions_balance(n in 1usize..50) {
        let mut m = SgxMachine::new(SgxConfig::with_tiny_epc(64, 4));
        let t = m.add_thread();
        let e = m.create_enclave(32 * PAGE_SIZE, 0).unwrap();
        m.reset_measurement();
        for _ in 0..n {
            m.ecall_enter(t, e).unwrap();
            m.ecall_exit(t, e).unwrap();
        }
        prop_assert_eq!(m.sgx_counters().ecalls, n as u64);
        prop_assert_eq!(m.mem().counters().tlb_flushes, 2 * n as u64);
    }
}
