//! Property tests for the SGX model: EPC residency invariants and
//! transition accounting under arbitrary access streams.

use mem_sim::{AccessKind, PAGE_SIZE};
use proptest::prelude::*;
use sgx_sim::epc::{Epc, EpcFaultKind, PageKey};
use sgx_sim::epcm::{Epcm, PagePerms};
use sgx_sim::{EnclaveId, SgxConfig, SgxMachine};

fn key(p: u64) -> PageKey {
    PageKey {
        enclave: EnclaveId(0),
        page: p,
    }
}

proptest! {
    /// A page is never both resident and evicted; residency never exceeds
    /// capacity; counters match set sizes.
    #[test]
    fn epc_residency_invariants(pages in prop::collection::vec(0u64..64, 1..300),
                                cap in 1usize..32, batch in 1usize..8) {
        let mut epc = Epc::new(cap, batch);
        for &p in &pages {
            epc.ensure_resident(key(p));
            prop_assert!(epc.resident_count() <= cap);
            prop_assert!(!(epc.is_resident(key(p)) && epc.is_evicted(key(p))));
        }
        // Every distinct page is exactly one of: resident, evicted.
        let distinct: std::collections::HashSet<_> = pages.iter().copied().collect();
        for &p in &distinct {
            prop_assert!(epc.is_resident(key(p)) ^ epc.is_evicted(key(p)),
                "page {p} must be exactly one of resident/evicted");
        }
        prop_assert_eq!(epc.resident_count() + epc.evicted_count(), distinct.len());
    }

    /// The second touch of a page without interleaving evictions is
    /// always `Resident`.
    #[test]
    fn immediate_retouch_is_resident(p in 0u64..1000, cap in 2usize..64) {
        let mut epc = Epc::new(cap, 1);
        epc.ensure_resident(key(p));
        let ev = epc.ensure_resident(key(p));
        prop_assert_eq!(ev.kind, EpcFaultKind::Resident);
        prop_assert!(ev.evicted.is_empty());
    }

    /// A working set within EPC capacity never evicts, no matter the
    /// access order.
    #[test]
    fn small_working_set_never_evicts(order in prop::collection::vec(0u64..16, 1..500),
                                      cap in 16usize..64) {
        let mut epc = Epc::new(cap, 4);
        for &p in &order {
            let ev = epc.ensure_resident(key(p));
            prop_assert!(ev.evicted.is_empty());
        }
    }

    /// SGX counters are consistent: loadbacks never exceed evictions, and
    /// every fault is an alloc or a loadback.
    #[test]
    fn machine_counter_consistency(pages in prop::collection::vec(0u64..48, 1..200)) {
        let mut m = SgxMachine::new(SgxConfig::with_tiny_epc(16, 4));
        let t = m.add_thread();
        let e = m.create_enclave(64 * PAGE_SIZE, 0).unwrap();
        m.ecall_enter(t, e).unwrap();
        let heap = m.alloc_enclave_heap(e, 48 * PAGE_SIZE).unwrap();
        m.reset_measurement();
        for &p in &pages {
            m.access(t, heap + p * PAGE_SIZE, 8, AccessKind::Read);
        }
        let c = *m.sgx_counters();
        prop_assert!(c.epc_loadbacks <= c.epc_evictions,
            "loadbacks {} > evictions {}", c.epc_loadbacks, c.epc_evictions);
        prop_assert_eq!(c.epc_faults, c.epc_allocs + c.epc_loadbacks);
        prop_assert_eq!(c.aex_exits, c.epc_faults);
    }

    /// Random alloc / evict / load-back / remove_enclave sequences
    /// preserve the EPC's structural invariants and the EPC↔EPCM
    /// ownership bijection: every resident frame has an EPCM entry whose
    /// owner and virtual page match, exactly as the §2.3 TLB-fill check
    /// requires. Ops are driven over three enclaves with disjoint page
    /// ranges (as disjoint ELRANGEs guarantee in the machine).
    #[test]
    fn epcm_ownership_bijection_under_random_ops(
        ops in prop::collection::vec((0u8..8, 0u64..48, 0usize..3), 1..250),
        cap in 2usize..24, batch in 1usize..8)
    {
        let mut epc = Epc::new(cap, batch);
        let mut epcm = Epcm::new();
        for &(op, page, owner) in &ops {
            let k = PageKey {
                enclave: EnclaveId(owner),
                page: owner as u64 * 1_000 + page,
            };
            match op {
                0..=5 => {
                    epcm.record_key(k, PagePerms::RW);
                    epc.ensure_resident(k);
                }
                6 => {
                    epcm.record_key(k, PagePerms::RW);
                    epc.mark_evicted(k);
                }
                _ => {
                    epc.remove_enclave(EnclaveId(owner));
                    epcm.remove_enclave(EnclaveId(owner));
                }
            }
            if let Err(e) = epc.check_invariants() {
                prop_assert!(false, "EPC invariant violated: {}", e);
            }
            for key in epc.resident_keys() {
                let entry = epcm.entry(key.page);
                prop_assert!(entry.is_some(), "resident {:?} missing from EPCM", key);
                let entry = entry.unwrap();
                prop_assert_eq!(entry.owner, key.enclave);
                prop_assert_eq!(entry.vpage, key.page);
            }
        }
    }

    /// Removing an enclave that owns no frames is behaviorally invisible:
    /// every later replacement decision (victim choice included) matches
    /// a clone that never saw the removal, so the clock hand's position
    /// is preserved exactly.
    #[test]
    fn noop_remove_enclave_preserves_replacement(
        warm in prop::collection::vec(0u64..32, 1..200),
        probe in prop::collection::vec(32u64..64, 1..50),
        cap in 2usize..16, batch in 1usize..4)
    {
        let mut a = Epc::new(cap, batch);
        for &p in &warm {
            a.ensure_resident(key(p));
        }
        let mut b = a.clone();
        prop_assert_eq!(b.remove_enclave(EnclaveId(7)), 0);
        for &p in &probe {
            let ea = a.ensure_resident(key(p));
            let eb = b.ensure_resident(key(p));
            prop_assert_eq!(ea.kind, eb.kind);
            prop_assert_eq!(ea.evicted, eb.evicted);
        }
    }

    /// The machine-wide invariant check holds after every access of an
    /// arbitrary stream that thrashes a tiny EPC (allocs, evictions and
    /// load-backs all occur), not just at end of run.
    #[test]
    fn machine_invariants_hold_under_random_streams(
        pages in prop::collection::vec(0u64..48, 1..150))
    {
        let mut m = SgxMachine::new(SgxConfig::with_tiny_epc(16, 4));
        let t = m.add_thread();
        let e = m.create_enclave(64 * PAGE_SIZE, 4 * PAGE_SIZE).unwrap();
        m.ecall_enter(t, e).unwrap();
        let heap = m.alloc_enclave_heap(e, 48 * PAGE_SIZE).unwrap();
        if let Err(err) = m.check_invariants() {
            prop_assert!(false, "after build: {}", err);
        }
        for &p in &pages {
            m.access(t, heap + p * PAGE_SIZE, 8, AccessKind::Read);
            if let Err(err) = m.check_invariants() {
                prop_assert!(false, "after touching page {}: {}", p, err);
            }
        }
        m.destroy_enclave(e);
        if let Err(err) = m.check_invariants() {
            prop_assert!(false, "after teardown: {}", err);
        }
    }

    /// Transition bookkeeping: enters and exits pair up and each flushes
    /// the TLB exactly once.
    #[test]
    fn transitions_balance(n in 1usize..50) {
        let mut m = SgxMachine::new(SgxConfig::with_tiny_epc(64, 4));
        let t = m.add_thread();
        let e = m.create_enclave(32 * PAGE_SIZE, 0).unwrap();
        m.reset_measurement();
        for _ in 0..n {
            m.ecall_enter(t, e).unwrap();
            m.ecall_exit(t, e).unwrap();
        }
        prop_assert_eq!(m.sgx_counters().ecalls, n as u64);
        prop_assert_eq!(m.mem().counters().tlb_flushes, 2 * n as u64);
    }
}
