//! Co-tenant host guarantees: a 1-tenant host is cycle- and
//! counter-identical to the legacy hand-driven `SgxMachine` path, the
//! N-tenant interleaver is deterministic, and shared-EPC attribution
//! lands on the right tenant.

use mem_sim::PAGE_SIZE;
use proptest::prelude::*;
use sgx_sim::host::{Host, TenantId, TenantOp, TenantSpec};
use sgx_sim::{SgxConfig, SgxMachine};

/// Random tenant op with offsets already inside a `heap_bytes` span (the
/// host clamps defensively, but in-range ops keep the legacy replay
/// trivially identical).
fn op_strategy(heap_bytes: u64) -> impl Strategy<Value = TenantOp> {
    prop_oneof![
        (0..heap_bytes, 1u64..4096, any::<bool>())
            .prop_map(|(offset, len, write)| TenantOp::Access { offset, len, write }),
        (1u64..20_000).prop_map(|cycles| TenantOp::Compute { cycles }),
        (1u64..5_000).prop_map(|work| TenantOp::Ocall { work }),
    ]
}

fn solo_spec() -> TenantSpec {
    TenantSpec {
        name: "solo".to_string(),
        enclave_bytes: 96 * PAGE_SIZE,
        content_bytes: 4 * PAGE_SIZE,
        heap_bytes: 48 * PAGE_SIZE,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ISSUE 9 equivalence guarantee: over random op sequences, a
    /// 1-tenant co-tenant host and a legacy single-enclave machine agree
    /// on every clock and counter — the interleaver adds nothing.
    #[test]
    fn one_tenant_host_matches_legacy_machine(
        ops in prop::collection::vec(op_strategy(48 * PAGE_SIZE), 1..120),
    ) {
        let cfg = SgxConfig::with_tiny_epc(64, 4);
        let spec = solo_spec();

        let mut host = Host::builder()
            .sgx(cfg.clone())
            .tenant(spec.clone())
            .build()
            .unwrap();
        host.push_ops(TenantId(0), ops.iter().copied());
        host.run().unwrap();

        let mut m = SgxMachine::new(cfg);
        let t = m.add_thread();
        let e = m.create_enclave(spec.enclave_bytes, spec.content_bytes).unwrap();
        m.ecall_enter(t, e).unwrap();
        let heap = m.alloc_enclave_heap(e, spec.heap_bytes).unwrap();
        let built = *m.sgx_counters();
        for &op in &ops {
            op.apply(&mut m, t, heap, spec.heap_bytes).unwrap();
        }

        let ht = host.tenant_thread(TenantId(0));
        prop_assert_eq!(host.machine().mem().cycles_of(ht), m.mem().cycles_of(t));
        prop_assert_eq!(*host.machine().sgx_counters(), *m.sgx_counters());
        prop_assert_eq!(host.machine().mem().counters(), m.mem().counters());
        prop_assert_eq!(
            host.machine().epc().resident_count(),
            m.epc().resident_count()
        );
        prop_assert_eq!(
            host.machine().epc().evicted_count(),
            m.epc().evicted_count()
        );
        prop_assert!(host.machine().check_invariants().is_ok());

        // The tenant's charged ledger is exactly the post-build counter
        // delta of the legacy run.
        let report = host.tenant_report(TenantId(0));
        let legacy = *m.sgx_counters();
        for f in sgx_sim::CounterField::ALL {
            prop_assert_eq!(report.charged.get(f), legacy.get(f) - built.get(f));
        }
    }
}

fn two_tenant_host() -> Host {
    Host::builder()
        .sgx(SgxConfig::with_tiny_epc(64, 4))
        .wave_cycles(5_000)
        .tenant(TenantSpec {
            name: "victim".to_string(),
            enclave_bytes: 32 * PAGE_SIZE,
            content_bytes: 0,
            heap_bytes: 8 * PAGE_SIZE,
        })
        .tenant(TenantSpec {
            name: "antagonist".to_string(),
            enclave_bytes: 160 * PAGE_SIZE,
            content_bytes: 0,
            heap_bytes: 128 * PAGE_SIZE,
        })
        .build()
        .unwrap()
}

fn queue_contending_ops(host: &mut Host) {
    // Victim: loops over a working set that fits the EPC on its own,
    // with compute between touches so the stream spans many waves.
    let victim_ops: Vec<TenantOp> = (0..1000)
        .flat_map(|i| {
            [
                TenantOp::Access {
                    offset: (i % 8) * PAGE_SIZE,
                    len: 64,
                    write: false,
                },
                TenantOp::Compute { cycles: 500 },
            ]
        })
        .collect();
    // Antagonist: streams a 2x-EPC span, thrashing the shared pool.
    let antagonist_ops: Vec<TenantOp> = (0..1000)
        .map(|i| TenantOp::Access {
            offset: (i % 128) * PAGE_SIZE,
            len: 64,
            write: true,
        })
        .collect();
    host.push_ops(TenantId(0), victim_ops);
    host.push_ops(TenantId(1), antagonist_ops);
}

#[test]
fn two_tenant_run_is_deterministic() {
    let run = || {
        let mut host = two_tenant_host();
        queue_contending_ops(&mut host);
        host.run().unwrap();
        (
            host.tenant_reports(),
            *host.machine().sgx_counters(),
            host.machine()
                .mem()
                .cycles_of(host.tenant_thread(TenantId(0))),
            host.machine()
                .mem()
                .cycles_of(host.tenant_thread(TenantId(1))),
        )
    };
    assert_eq!(run(), run(), "same specs + ops must replay identically");
}

#[test]
fn noisy_neighbor_attribution_lands_on_the_victim() {
    let mut host = two_tenant_host();
    queue_contending_ops(&mut host);
    host.run().unwrap();

    let victim = host.tenant_report(TenantId(0));
    let antagonist = host.tenant_report(TenantId(1));
    assert!(host.machine().check_invariants().is_ok());
    assert!(victim.waves > 1, "victim must be scheduled in waves");
    assert!(
        antagonist.charged.epc_evictions > 0,
        "the antagonist's faults must force evictions"
    );
    assert!(
        victim.epc.victimizations > 0,
        "the shared clock hand must victimize the victim's resident set"
    );
    assert!(
        victim.epc.loadbacks > 0 || victim.charged.epc_loadbacks > 0,
        "the victim must pay ELDUs to recover its working set"
    );
    // The EPC ledger distinguishes owner-attribution from charge
    // attribution: the victim's victimizations were not (all) charged by
    // the victim's own execution.
    assert!(
        antagonist.charged.epc_evictions + victim.charged.epc_evictions
            >= victim.epc.victimizations,
        "every victimization is some tenant's charged eviction"
    );
}

#[test]
fn one_tenant_alone_suffers_no_victimizations() {
    let mut host = Host::builder()
        .sgx(SgxConfig::with_tiny_epc(64, 4))
        .tenant(TenantSpec {
            name: "solo".to_string(),
            enclave_bytes: 32 * PAGE_SIZE,
            content_bytes: 0,
            heap_bytes: 8 * PAGE_SIZE,
        })
        .build()
        .unwrap();
    let ops: Vec<TenantOp> = (0..200)
        .map(|i| TenantOp::Access {
            offset: (i % 8) * PAGE_SIZE,
            len: 64,
            write: false,
        })
        .collect();
    host.push_ops(TenantId(0), ops);
    host.run().unwrap();
    let report = host.tenant_report(TenantId(0));
    assert_eq!(
        report.epc.victimizations, 0,
        "an all-resident solo tenant must never be victimized"
    );
    assert_eq!(report.charged.epc_evictions, 0);
}

#[test]
fn mid_run_teardown_keeps_survivors_consistent() {
    let mut host = two_tenant_host();
    queue_contending_ops(&mut host);
    host.run().unwrap();
    let before = host.tenant_report(TenantId(1));
    // Tear the antagonist down mid-campaign; the victim keeps running on
    // the shared (now quiet) EPC.
    host.evict_tenant(TenantId(1));
    assert!(host.machine().check_invariants().is_ok());
    let after = host.tenant_report(TenantId(1));
    assert_eq!(after.epc.resident_frames, 0, "teardown ends residency");
    assert_eq!(
        after.epc.allocs, before.epc.allocs,
        "teardown must not erase attribution history"
    );
    let victim_ops: Vec<TenantOp> = (0..200)
        .map(|i| TenantOp::Access {
            offset: (i % 8) * PAGE_SIZE,
            len: 64,
            write: false,
        })
        .collect();
    let evictions_before = host.tenant_report(TenantId(0)).charged.epc_evictions;
    host.push_ops(TenantId(0), victim_ops);
    host.run().unwrap();
    let victim = host.tenant_report(TenantId(0));
    assert_eq!(
        victim.charged.epc_evictions, evictions_before,
        "with the antagonist gone the victim's set is all-resident again"
    );
    assert!(host.machine().check_invariants().is_ok());
}

/// Regression: tearing an enclave down while a thread is inside used to
/// leave `in_enclave` dangling at the destroyed enclave and its TCS
/// accounting stuck, wedging the thread for every later tenant.
#[test]
fn destroy_enclave_forces_resident_threads_out() {
    let mut m = SgxMachine::new(SgxConfig::with_tiny_epc(64, 4));
    let t = m.add_thread();
    let e0 = m.create_enclave(16 * PAGE_SIZE, 0).unwrap();
    let e1 = m.create_enclave(16 * PAGE_SIZE, 0).unwrap();
    m.ecall_enter(t, e0).unwrap();
    m.destroy_enclave(e0);
    assert_eq!(
        m.current_enclave(t),
        None,
        "teardown must force the thread out of the dead enclave"
    );
    // The freed TCS slot and thread state must allow a fresh entry.
    m.ecall_enter(t, e1).unwrap();
    m.ecall_exit(t, e1).unwrap();
    assert!(m.check_invariants().is_ok());
}
