//! Host-backed t-of-n threshold-signing driver.
//!
//! [`run_mpc`] builds one co-tenant [`Host`] with N party enclaves and
//! drives R signing rounds through the [`Relay`], interleaving message
//! deliveries with the host's wave scheduler
//! ([`Host::run_wave_for`]): a delivery enqueues the receiver's verify
//! work *between* waves at a deterministic cycle boundary, so the
//! per-round transition and paging amplification of the protocol is
//! exactly attributable in the tenant ledgers.
//!
//! The driver advances a global *frontier* (the max of the party
//! thread clocks) from event to event — next delivery, next retry
//! deadline, next fault-schedule edge, round watchdog — charging idle
//! waits as in-enclave compute so timeouts are cycle-accounted. Every
//! loop iteration strictly advances the frontier or completes the
//! round, and every round is bounded by
//! [`costs::RELAY_ROUND_BUDGET_CYCLES`], so a run terminates for every
//! plan: quorum loss is a typed error, never a hang.

use faults::prng::splitmix64;
use faults::NetFaultPlan;
use sgx_sim::costs;
use sgx_sim::host::{Host, HostError, TenantId, TenantOp, TenantSpec, DEFAULT_WAVE_CYCLES};
use sgx_sim::SgxConfig;
use trace::relay::{NetDropReason, NetLog};
use trace::{CampaignEvent, CampaignLog};

use crate::detector::DetectorEventKind;
use crate::net::{Relay, RelayStats};
use crate::sign::SignRound;
use crate::{FailureDetector, PartyId};

/// Configuration of one threshold-signing run.
#[derive(Debug, Clone)]
pub struct MpcConfig {
    /// Number of party enclaves (n).
    pub parties: u32,
    /// Signing threshold (t): rounds complete with any t live parties.
    pub threshold: u32,
    /// Signing rounds to run (R).
    pub rounds: u32,
    /// The network fault plan (compiled per run under the caller's salt).
    pub net: NetFaultPlan,
    /// Per-party enclave heap bytes.
    pub heap_bytes: u64,
    /// Host scheduler wave width.
    pub wave_cycles: u64,
    /// Platform configuration for the shared machine.
    pub sgx: SgxConfig,
}

impl MpcConfig {
    /// A t-of-n run with default rounds, heap, wave width and platform.
    pub fn new(parties: u32, threshold: u32) -> MpcConfig {
        MpcConfig {
            parties,
            threshold,
            rounds: 8,
            net: NetFaultPlan::default(),
            heap_bytes: 1 << 20,
            wave_cycles: DEFAULT_WAVE_CYCLES,
            sgx: SgxConfig::default(),
        }
    }

    /// Sets the network fault plan.
    #[must_use]
    pub fn net(mut self, plan: NetFaultPlan) -> MpcConfig {
        self.net = plan;
        self
    }

    /// Sets the number of signing rounds.
    #[must_use]
    pub fn rounds(mut self, rounds: u32) -> MpcConfig {
        self.rounds = rounds;
        self
    }

    fn validate(&self) -> Result<(), MpcError> {
        if self.parties < 2 || self.parties > 64 {
            return Err(MpcError::Config(format!(
                "parties must be in 2..=64, got {}",
                self.parties
            )));
        }
        if self.threshold < 1 || self.threshold > self.parties {
            return Err(MpcError::Config(format!(
                "threshold must be in 1..={}, got {}",
                self.parties, self.threshold
            )));
        }
        if self.rounds == 0 {
            return Err(MpcError::Config("rounds must be non-zero".into()));
        }
        Ok(())
    }
}

/// Error from a threshold-signing run.
#[derive(Debug, Clone, PartialEq)]
pub enum MpcError {
    /// The configuration was rejected before any enclave was built.
    Config(String),
    /// The host substrate failed.
    Host(HostError),
    /// Live parties fell below the signing threshold. Carries the
    /// partial report so supervision events up to the abort survive.
    QuorumLost {
        /// Round during which quorum was lost (0-based).
        round: u32,
        /// Parties still live when the protocol aborted.
        live: u32,
        /// The configured threshold.
        threshold: u32,
        /// Everything observed up to the abort.
        partial: Box<MpcReport>,
    },
}

impl std::fmt::Display for MpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpcError::Config(msg) => write!(f, "mpc config: {msg}"),
            MpcError::Host(e) => write!(f, "mpc host: {e}"),
            MpcError::QuorumLost {
                round,
                live,
                threshold,
                ..
            } => write!(
                f,
                "quorum lost in round {round}: {live} live parties < threshold {threshold}"
            ),
        }
    }
}

impl std::error::Error for MpcError {}

impl From<HostError> for MpcError {
    fn from(e: HostError) -> Self {
        MpcError::Host(e)
    }
}

/// Outcome of one signing round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundStat {
    /// Round ordinal (0-based).
    pub round: u32,
    /// Frontier cycle the round started at.
    pub started_at: u64,
    /// Frontier cycle the round completed or timed out at.
    pub ended_at: u64,
    /// Whether a quorum of parties completed the round.
    pub completed: bool,
    /// Parties holding a full share quorum when the round ended.
    pub signers: u32,
    /// Retry attempts issued during the round.
    pub retries: u32,
}

impl RoundStat {
    /// Round latency in simulated cycles.
    pub fn latency_cycles(&self) -> u64 {
        self.ended_at.saturating_sub(self.started_at)
    }
}

/// Everything a threshold-signing run observed.
#[derive(Debug, Clone, PartialEq)]
pub struct MpcReport {
    /// Number of parties.
    pub parties: u32,
    /// The signing threshold.
    pub threshold: u32,
    /// Per-round outcomes, in order.
    pub rounds: Vec<RoundStat>,
    /// Relay message counters.
    pub stats: RelayStats,
    /// The per-message relay log.
    pub net_log: NetLog,
    /// Supervision events (suspicions, recoveries, timeouts).
    pub supervision: CampaignLog,
    /// Total frontier cycles consumed by the run.
    pub total_cycles: u64,
    /// Fold of the aggregate signatures of all completed rounds.
    pub checksum: u64,
}

impl MpcReport {
    /// Rounds that reached quorum completion.
    pub fn completed_rounds(&self) -> usize {
        self.rounds.iter().filter(|r| r.completed).count()
    }

    /// Quorum-survival fraction in permille: completed rounds over all
    /// rounds attempted.
    pub fn survival_permille(&self) -> u64 {
        if self.rounds.is_empty() {
            return 0;
        }
        self.completed_rounds() as u64 * 1000 / self.rounds.len() as u64
    }

    /// Mean latency of completed rounds, in cycles (0 when none).
    pub fn mean_round_latency(&self) -> u64 {
        let done: Vec<u64> = self
            .rounds
            .iter()
            .filter(|r| r.completed)
            .map(|r| r.latency_cycles())
            .collect();
        if done.is_empty() {
            return 0;
        }
        done.iter().sum::<u64>() / done.len() as u64
    }

    /// Maximum latency over completed rounds, in cycles.
    pub fn max_round_latency(&self) -> u64 {
        self.rounds
            .iter()
            .filter(|r| r.completed)
            .map(|r| r.latency_cycles())
            .max()
            .unwrap_or(0)
    }

    /// Number of `party_suspected` supervision events.
    pub fn suspect_events(&self) -> usize {
        self.supervision
            .events()
            .filter(|(_, e)| matches!(e, CampaignEvent::PartySuspected { .. }))
            .count()
    }

    /// Number of `party_recovered` supervision events.
    pub fn recover_events(&self) -> usize {
        self.supervision
            .events()
            .filter(|(_, e)| matches!(e, CampaignEvent::PartyRecovered { .. }))
            .count()
    }
}

/// The signing share party `p` contributes to round `r` — a pure hash,
/// so the protocol transcript is a function of (plan seed, salt) alone.
fn share(base: u64, round: u32, party: PartyId) -> u64 {
    splitmix64(base ^ (u64::from(round) << 32) ^ u64::from(party))
}

fn fnv_fold(h: u64, v: u64) -> u64 {
    let mut h = h;
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Internal driver state shared by the round loop.
///
/// All protocol logic runs in *protocol time*: each party's clock is
/// its tenant thread clock rebased to zero at protocol start, so fault
/// schedule windows (`partykill=2@100000:...`) mean "cycles into the
/// run" regardless of how enclave build costs distributed over the
/// party threads.
struct Driver {
    host: Host,
    relay: Relay,
    detector: FailureDetector,
    supervision: CampaignLog,
    n: u32,
    threshold: u32,
    share_base: u64,
    /// Per-party tenant clock at protocol start.
    bases: Vec<u64>,
}

impl Driver {
    /// Party `p`'s clock in protocol time.
    fn clock(&self, p: PartyId) -> u64 {
        self.host
            .tenant_cycles(TenantId(p as usize))
            .saturating_sub(self.bases[p as usize])
    }

    fn frontier(&self) -> u64 {
        (0..self.n).map(|p| self.clock(p)).max().unwrap_or(0)
    }

    fn alive(&self, p: PartyId, now: u64) -> bool {
        !self.relay.hook().party_dead(p, now)
    }

    fn live_count(&self, now: u64) -> u32 {
        (0..self.n).filter(|p| self.alive(*p, now)).count() as u32
    }

    /// Drains tenant `p`'s queued ops through the wave scheduler.
    fn drain(&mut self, p: PartyId) -> Result<(), HostError> {
        while self.host.run_wave_for(TenantId(p as usize))? {}
        Ok(())
    }

    /// Charges `p` the marshalling of one relay send and issues it at
    /// `p`'s own (protocol-time) clock.
    fn charged_send(
        &mut self,
        p: PartyId,
        to: PartyId,
        round: u32,
        payload: u64,
    ) -> Result<(), HostError> {
        self.host.push_ops(
            TenantId(p as usize),
            [TenantOp::Ocall {
                work: costs::HOST_SYSCALL_CYCLES,
            }],
        );
        self.drain(p)?;
        let now = self.clock(p);
        self.relay.send(now, p, to, round, payload);
        Ok(())
    }

    /// Applies all deliveries due at `now`: records shares, charges the
    /// receivers' verify work, feeds the failure detector.
    fn deliver_due(&mut self, now: u64, sr: &mut SignRound) -> Result<(), HostError> {
        for d in self.relay.due(now) {
            let env = d.envelope;
            if !self.alive(env.to, d.at_cycles) {
                self.relay.discard(&d, NetDropReason::ReceiverDead);
                continue;
            }
            if let Some(ev) = self.detector.heard(env.from, d.at_cycles) {
                if ev.kind == DetectorEventKind::Recovered {
                    self.supervision.push(
                        ev.at_cycles,
                        CampaignEvent::PartyRecovered { party: ev.party },
                    );
                }
            }
            if env.round == sr.round() && sr.on_share(env.to, env.from) {
                self.host.push_ops(
                    TenantId(env.to as usize),
                    [TenantOp::Compute {
                        cycles: costs::SIGN_VERIFY_CYCLES,
                    }],
                );
                self.drain(env.to)?;
            }
        }
        Ok(())
    }

    /// Raises newly due suspicions at `now`.
    fn tick_detector(&mut self, now: u64) {
        for ev in self.detector.tick(now) {
            if let DetectorEventKind::Suspected { silent_cycles } = ev.kind {
                self.supervision.push(
                    ev.at_cycles,
                    CampaignEvent::PartySuspected {
                        party: ev.party,
                        silent_cycles,
                    },
                );
            }
        }
    }

    /// Charges every live party idle compute up to protocol-time
    /// `target` so waiting on a timeout is cycle-accounted, then
    /// returns the new frontier.
    fn advance_to(&mut self, target: u64) -> Result<u64, HostError> {
        for p in 0..self.n {
            if !self.alive(p, target) {
                continue;
            }
            let clock = self.clock(p);
            if clock < target {
                self.host.push_ops(
                    TenantId(p as usize),
                    [TenantOp::Compute {
                        cycles: target - clock,
                    }],
                );
                self.drain(p)?;
            }
        }
        Ok(self.frontier().max(target))
    }

    fn report(&self, rounds: Vec<RoundStat>, checksum: u64) -> MpcReport {
        MpcReport {
            parties: self.n,
            threshold: self.threshold,
            rounds,
            stats: self.relay.stats(),
            net_log: self.relay.log().clone(),
            supervision: self.supervision.clone(),
            total_cycles: self.frontier(),
            checksum,
        }
    }
}

/// Runs `cfg.rounds` threshold-signing rounds over `cfg.parties` party
/// enclaves under the configured network weather, salted per (cell,
/// attempt) by `salt` exactly like the enclave-side fault plane.
///
/// # Errors
///
/// [`MpcError::Config`] before any enclave is built,
/// [`MpcError::Host`] if the substrate fails, and
/// [`MpcError::QuorumLost`] (with the partial report attached) the
/// moment live parties fall below the threshold.
pub fn run_mpc(cfg: &MpcConfig, salt: u64) -> Result<MpcReport, MpcError> {
    cfg.validate()?;
    let n = cfg.parties;
    let t = cfg.threshold;

    let mut builder = Host::builder()
        .sgx(cfg.sgx.clone())
        .wave_cycles(cfg.wave_cycles);
    for p in 0..n {
        builder = builder.tenant(TenantSpec::sized(&format!("p{p}"), cfg.heap_bytes));
    }
    let host = builder.build().map_err(HostError::Sgx)?;

    let relay = Relay::new(&cfg.net, salt);
    let bases = (0..n as usize)
        .map(|i| host.tenant_cycles(TenantId(i)))
        .collect();
    let mut d = Driver {
        detector: FailureDetector::new(n as usize, costs::RELAY_SUSPECT_CYCLES, 0),
        supervision: CampaignLog::new(),
        n,
        threshold: t,
        share_base: splitmix64(cfg.net.seed ^ splitmix64(salt)),
        bases,
        host,
        relay,
    };

    let mut rounds: Vec<RoundStat> = Vec::with_capacity(cfg.rounds as usize);
    let mut checksum = 0xcbf2_9ce4_8422_2325u64;

    for round in 0..cfg.rounds {
        let round_start = d.frontier();
        let deadline = round_start.saturating_add(costs::RELAY_ROUND_BUDGET_CYCLES);
        let mut sr = SignRound::new(round, n, t, round_start);

        // Rejoin: a party whose kill window just closed still carries
        // the clock it froze at when it died, which would put its sends
        // back inside the window. Catch every live party up to the
        // round start before anyone broadcasts.
        d.advance_to(round_start)?;

        // Broadcast phase: every live party generates its share
        // in-enclave and relays it to every peer.
        for p in 0..n {
            if !d.alive(p, round_start) {
                continue;
            }
            d.host.push_ops(
                TenantId(p as usize),
                [TenantOp::Compute {
                    cycles: costs::SIGN_SHARE_CYCLES,
                }],
            );
            d.drain(p)?;
            sr.note_broadcast(p);
            let payload = share(d.share_base, round, p);
            for q in 0..n {
                if q != p {
                    d.charged_send(p, q, round, payload)?;
                }
            }
        }

        // Event loop: deliveries, suspicion, retries, watchdog.
        let stat = loop {
            let frontier = d.frontier();
            d.deliver_due(frontier, &mut sr)?;
            d.tick_detector(frontier);

            if sr.complete() {
                break RoundStat {
                    round,
                    started_at: round_start,
                    ended_at: d.frontier(),
                    completed: true,
                    signers: sr.signers().len() as u32,
                    retries: sr.retries(),
                };
            }

            let live = d.live_count(frontier);
            if live < t {
                d.supervision.push(
                    frontier,
                    CampaignEvent::QuorumLost {
                        round,
                        live,
                        threshold: t,
                    },
                );
                let partial = Box::new(d.report(rounds, checksum));
                return Err(MpcError::QuorumLost {
                    round,
                    live,
                    threshold: t,
                    partial,
                });
            }

            if frontier >= deadline {
                d.supervision.push(
                    frontier,
                    CampaignEvent::RoundTimeout {
                        round,
                        signers: sr.signers().len() as u32,
                        threshold: t,
                    },
                );
                break RoundStat {
                    round,
                    started_at: round_start,
                    ended_at: frontier,
                    completed: false,
                    signers: sr.signers().len() as u32,
                    retries: sr.retries(),
                };
            }

            // Pull-retry: a party past its deadline re-requests its
            // missing shares; each live broadcaster resends one hop
            // out, drawing fresh per-message fault decisions.
            for p in 0..n {
                if !d.alive(p, frontier) {
                    continue;
                }
                if d.sr_due_retry(&mut sr, p, frontier)? {
                    for q in sr.missing(p) {
                        if d.alive(q, frontier) {
                            let payload = share(d.share_base, round, q);
                            d.charged_send(q, p, round, payload)?;
                        }
                    }
                }
            }

            // Jump to the next event; the round deadline bounds the hop
            // so the loop always terminates.
            let mut next = deadline;
            if let Some(at) = d.relay.next_due() {
                next = next.min(at);
            }
            if let Some(at) = sr.next_deadline() {
                next = next.min(at);
            }
            if let Some(at) = d.relay.hook().next_schedule_edge(frontier) {
                next = next.min(at);
            }
            let next = next.max(frontier + 1);
            d.advance_to(next)?;
        };

        if stat.completed {
            // Aggregate: XOR of the t lowest-id signers' shares.
            let mut agg = 0u64;
            for p in sr.signers().into_iter().take(t as usize) {
                agg ^= share(d.share_base, round, p);
            }
            checksum = fnv_fold(checksum, agg);
        }
        rounds.push(stat);
    }

    // Settle: land the last in-flight deliveries so the ledgers
    // quiesce (sent == delivered + dropped) and late recoveries are
    // still observed.
    for delivery in d.relay.due(u64::MAX) {
        let env = delivery.envelope;
        if !d.alive(env.to, delivery.at_cycles) {
            d.relay.discard(&delivery, NetDropReason::ReceiverDead);
            continue;
        }
        if let Some(ev) = d.detector.heard(env.from, delivery.at_cycles) {
            if ev.kind == DetectorEventKind::Recovered {
                d.supervision.push(
                    ev.at_cycles,
                    CampaignEvent::PartyRecovered { party: ev.party },
                );
            }
        }
    }

    Ok(d.report(rounds, checksum))
}

impl Driver {
    /// Charges the re-request marshalling when `p`'s retry fires.
    fn sr_due_retry(
        &mut self,
        sr: &mut SignRound,
        p: PartyId,
        now: u64,
    ) -> Result<bool, HostError> {
        if sr.due_retry(p, now).is_none() {
            return Ok(false);
        }
        self.host.push_ops(
            TenantId(p as usize),
            [TenantOp::Ocall {
                work: costs::HOST_SYSCALL_CYCLES,
            }],
        );
        self.drain(p)?;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(parties: u32, threshold: u32) -> MpcConfig {
        let mut cfg = MpcConfig::new(parties, threshold);
        cfg.rounds = 3;
        cfg.heap_bytes = 64 << 10;
        cfg
    }

    #[test]
    fn fault_free_run_completes_every_round() {
        let report = run_mpc(&quick(4, 3), 0).expect("clean run");
        assert_eq!(report.rounds.len(), 3);
        assert_eq!(report.completed_rounds(), 3);
        assert_eq!(report.survival_permille(), 1000);
        assert!(report.mean_round_latency() > 0);
        assert_eq!(report.stats.dropped, 0);
        assert_eq!(report.suspect_events(), 0);
        // Every round: 4 broadcasts of 3 messages each.
        assert_eq!(report.stats.sent, 3 * 4 * 3);
        assert_eq!(report.stats.delivered, report.stats.sent);
    }

    #[test]
    fn runs_are_byte_identical() {
        let cfg = quick(4, 3).net(NetFaultPlan::parse("drop=80,dup=50,reorder=100").unwrap());
        let a = run_mpc(&cfg, 5).expect("run a");
        let b = run_mpc(&cfg, 5).expect("run b");
        assert_eq!(a, b);
        assert_eq!(a.net_log.render_jsonl(), b.net_log.render_jsonl());
        assert_eq!(a.supervision.render_jsonl(), b.supervision.render_jsonl());
    }

    #[test]
    fn salt_changes_the_weather_not_the_protocol() {
        let cfg = quick(4, 3).net(NetFaultPlan::parse("drop=200").unwrap());
        let a = run_mpc(&cfg, 1).expect("run a");
        let b = run_mpc(&cfg, 2).expect("run b");
        assert_eq!(a.rounds.len(), b.rounds.len());
        assert_ne!(
            a.net_log.render_jsonl(),
            b.net_log.render_jsonl(),
            "different salts must draw different drops"
        );
    }

    #[test]
    fn losing_quorum_is_a_typed_error_with_partial_report() {
        // 3-of-3 with one party dead from the start: quorum is
        // unreachable the moment the first round is checked.
        let cfg = quick(3, 3).net(NetFaultPlan::parse("partykill=1@0:100000000").unwrap());
        match run_mpc(&cfg, 0) {
            Err(MpcError::QuorumLost {
                round,
                live,
                threshold,
                partial,
            }) => {
                assert_eq!(round, 0);
                assert_eq!(live, 2);
                assert_eq!(threshold, 3);
                let text = partial.supervision.render_jsonl();
                assert!(text.contains("\"quorum_lost\""), "got: {text}");
            }
            other => panic!("expected QuorumLost, got {other:?}"),
        }
    }

    #[test]
    fn kill_window_degrades_gracefully_and_recovers() {
        // The acceptance scenario: 5 parties, t=3, party 2 dead for
        // cycles 100k..600k of the run. Every round must still reach
        // quorum, and supervision must show exactly one suspicion and
        // one recovery — both for party 2.
        let cfg = MpcConfig::new(5, 3)
            .net(NetFaultPlan::parse("drop=50,partykill=2@100000:500000").unwrap());
        let r = run_mpc(&cfg, 0).expect("degraded run completes");
        assert_eq!(r.completed_rounds(), r.rounds.len());
        assert_eq!(r.survival_permille(), 1000);
        assert_eq!(r.suspect_events(), 1);
        assert_eq!(r.recover_events(), 1);
        let text = r.supervision.render_jsonl();
        assert!(
            text.contains("\"event\":\"party_suspected\",\"party\":2"),
            "got: {text}"
        );
        assert!(
            text.contains("\"event\":\"party_recovered\",\"party\":2"),
            "got: {text}"
        );
    }

    #[test]
    fn config_validation_rejects_bad_shapes() {
        assert!(matches!(run_mpc(&quick(1, 1), 0), Err(MpcError::Config(_))));
        assert!(matches!(run_mpc(&quick(3, 4), 0), Err(MpcError::Config(_))));
        let mut cfg = quick(3, 2);
        cfg.rounds = 0;
        assert!(matches!(run_mpc(&cfg, 0), Err(MpcError::Config(_))));
    }
}
