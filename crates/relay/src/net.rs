//! The message plane: envelopes, the deterministic delivery queue, and
//! the compiled network fault hook.

use std::collections::BTreeMap;

use faults::{NetFaultHook, NetFaultPlan};
use sgx_sim::costs;
use trace::relay::{NetDropReason, NetEvent, NetLog};

use crate::PartyId;

/// One message in flight: who sent what to whom, in which round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Envelope {
    /// Relay-wide monotonically increasing sequence number.
    pub seq: u64,
    /// Sending party.
    pub from: PartyId,
    /// Receiving party.
    pub to: PartyId,
    /// Protocol round the message belongs to.
    pub round: u32,
    /// Opaque payload (a signing share in the MPC workload).
    pub payload: u64,
    /// Simulated cycle the send was issued at.
    pub sent_at: u64,
}

/// A delivery handed back by [`Relay::due`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The delivered envelope.
    pub envelope: Envelope,
    /// The cycle the delivery was scheduled at.
    pub at_cycles: u64,
    /// Whether this is the fault plane's duplicate copy.
    pub duplicate: bool,
}

/// The immediate outcome of a [`Relay::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The message was accepted; delivery is scheduled.
    Queued {
        /// Cycle the (first) delivery will surface at.
        deliver_at: u64,
    },
    /// The message was lost at send time.
    Dropped {
        /// Why.
        reason: NetDropReason,
    },
}

/// Deterministic message counters, folded across a relay's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelayStats {
    /// Sends issued (accepted or dropped).
    pub sent: u64,
    /// Deliveries surfaced by [`Relay::due`].
    pub delivered: u64,
    /// Messages lost (at send time or discarded at delivery).
    pub dropped: u64,
    /// Extra duplicate deliveries scheduled by the fault plane.
    pub duplicated: u64,
    /// Messages that drew extra fault-plane latency.
    pub delayed: u64,
    /// Messages that drew reordering jitter.
    pub reordered: u64,
}

/// The cross-enclave message relay.
///
/// All state is deterministic: the in-flight queue is a `BTreeMap`
/// keyed `(deliver_at, seq, duplicate)` so deliveries surface in a
/// total order that is a pure function of the send history, and every
/// probabilistic fault decision is a stateless hash draw (see
/// [`faults::NetFaultHook`]) — independent of polling cadence.
#[derive(Debug, Clone)]
pub struct Relay {
    hook: NetFaultHook,
    next_seq: u64,
    inflight: BTreeMap<(u64, u64, bool), Envelope>,
    stats: RelayStats,
    log: NetLog,
}

impl Relay {
    /// Compiles `plan` under `salt` (per cell and attempt, like the
    /// enclave-side fault plane) and starts an empty relay.
    pub fn new(plan: &NetFaultPlan, salt: u64) -> Relay {
        Relay {
            hook: plan.compile(salt),
            next_seq: 0,
            inflight: BTreeMap::new(),
            stats: RelayStats::default(),
            log: NetLog::new(),
        }
    }

    /// The compiled fault hook (schedule queries for drivers).
    pub fn hook(&self) -> &NetFaultHook {
        &self.hook
    }

    /// Message counters so far.
    pub fn stats(&self) -> RelayStats {
        self.stats
    }

    /// The per-message event log.
    pub fn log(&self) -> &NetLog {
        &self.log
    }

    /// Messages currently in flight (duplicates counted).
    pub fn pending(&self) -> usize {
        self.inflight.len()
    }

    /// Sends `payload` from `from` to `to` at cycle `now`.
    ///
    /// The fault plane is consulted in a fixed order: schedule cuts
    /// first (dead sender, dead receiver, partitioned link), then the
    /// per-message drop draw, then latency shaping (delay, reordering
    /// jitter) and duplication. The base hop costs
    /// [`costs::RELAY_LINK_CYCLES`]; jitter spans four hops.
    pub fn send(
        &mut self,
        now: u64,
        from: PartyId,
        to: PartyId,
        round: u32,
        payload: u64,
    ) -> SendOutcome {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.sent += 1;
        let env = Envelope {
            seq,
            from,
            to,
            round,
            payload,
            sent_at: now,
        };
        let reason = if self.hook.party_dead(from, now) {
            Some(NetDropReason::SenderDead)
        } else if self.hook.party_dead(to, now) {
            Some(NetDropReason::ReceiverDead)
        } else if self.hook.link_cut(from, to, now) {
            Some(NetDropReason::Partitioned)
        } else if self.hook.drops(seq) {
            Some(NetDropReason::Faulted)
        } else {
            None
        };
        if let Some(reason) = reason {
            self.stats.dropped += 1;
            self.log.push(
                now,
                NetEvent::Dropped {
                    seq,
                    from,
                    to,
                    round,
                    reason,
                },
            );
            return SendOutcome::Dropped { reason };
        }
        let delay = self.hook.delay_cycles(seq);
        if delay > 0 {
            self.stats.delayed += 1;
        }
        let jitter = self.hook.reorder_jitter(seq, costs::RELAY_LINK_CYCLES * 4);
        if jitter > 0 {
            self.stats.reordered += 1;
        }
        let deliver_at = now + costs::RELAY_LINK_CYCLES + delay + jitter;
        let duplicated = self.hook.duplicates(seq);
        self.inflight.insert((deliver_at, seq, false), env);
        if duplicated {
            self.stats.duplicated += 1;
            self.inflight
                .insert((deliver_at + costs::RELAY_LINK_CYCLES, seq, true), env);
        }
        self.log.push(
            now,
            NetEvent::Sent {
                seq,
                from,
                to,
                round,
                deliver_at,
                duplicated,
            },
        );
        SendOutcome::Queued { deliver_at }
    }

    /// Pops every delivery scheduled at or before `now`, in the total
    /// `(deliver_at, seq, duplicate)` order.
    pub fn due(&mut self, now: u64) -> Vec<Delivery> {
        let mut out = Vec::new();
        while let Some(entry) = self.inflight.first_entry() {
            let (at, _seq, duplicate) = *entry.key();
            if at > now {
                break;
            }
            let envelope = entry.remove();
            self.stats.delivered += 1;
            self.log.push(
                at,
                NetEvent::Delivered {
                    seq: envelope.seq,
                    from: envelope.from,
                    to: envelope.to,
                    round: envelope.round,
                    duplicate,
                },
            );
            out.push(Delivery {
                envelope,
                at_cycles: at,
                duplicate,
            });
        }
        out
    }

    /// The cycle of the earliest in-flight delivery, if any.
    pub fn next_due(&self) -> Option<u64> {
        self.inflight.keys().next().map(|(at, _, _)| *at)
    }

    /// Records that a surfaced delivery was discarded by the driver —
    /// e.g. the receiver was inside a kill window when the message
    /// arrived. Reclassifies the message from delivered to dropped so
    /// the ledgers stay faithful (`sent + duplicated == delivered +
    /// dropped + pending` at all times).
    pub fn discard(&mut self, delivery: &Delivery, reason: NetDropReason) {
        self.stats.delivered = self.stats.delivered.saturating_sub(1);
        self.stats.dropped += 1;
        self.log.push(
            delivery.at_cycles,
            NetEvent::Dropped {
                seq: delivery.envelope.seq,
                from: delivery.envelope.from,
                to: delivery.envelope.to,
                round: delivery.envelope.round,
                reason,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_relay() -> Relay {
        Relay::new(&NetFaultPlan::default(), 0)
    }

    #[test]
    fn fault_free_delivery_is_in_order_after_one_hop() {
        let mut r = clean_relay();
        for i in 0..4u64 {
            let out = r.send(i * 10, 0, 1, 0, 100 + i);
            assert_eq!(
                out,
                SendOutcome::Queued {
                    deliver_at: i * 10 + costs::RELAY_LINK_CYCLES
                }
            );
        }
        assert_eq!(r.pending(), 4);
        assert!(r.due(costs::RELAY_LINK_CYCLES - 1).is_empty());
        let all = r.due(u64::MAX);
        let seqs: Vec<u64> = all.iter().map(|d| d.envelope.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        assert_eq!(r.stats().delivered, 4);
        assert_eq!(r.stats().dropped, 0);
    }

    #[test]
    fn same_cycle_sends_break_ties_by_sequence() {
        let mut r = clean_relay();
        r.send(0, 2, 0, 0, 1);
        r.send(0, 1, 0, 0, 2);
        let all = r.due(u64::MAX);
        assert_eq!(all[0].envelope.from, 2);
        assert_eq!(all[1].envelope.from, 1);
    }

    #[test]
    fn dead_endpoints_and_partitions_drop_at_send() {
        let plan = NetFaultPlan::parse("partykill=1@100:100,partition=0-2@100:100").unwrap();
        let mut r = Relay::new(&plan, 0);
        assert!(matches!(
            r.send(150, 1, 0, 0, 0),
            SendOutcome::Dropped {
                reason: NetDropReason::SenderDead
            }
        ));
        assert!(matches!(
            r.send(150, 0, 1, 0, 0),
            SendOutcome::Dropped {
                reason: NetDropReason::ReceiverDead
            }
        ));
        assert!(matches!(
            r.send(150, 2, 0, 0, 0),
            SendOutcome::Dropped {
                reason: NetDropReason::Partitioned
            }
        ));
        // Outside the windows everything flows.
        assert!(matches!(
            r.send(300, 1, 0, 0, 0),
            SendOutcome::Queued { .. }
        ));
        assert_eq!(r.stats().dropped, 3);
        assert_eq!(r.stats().sent, 4);
    }

    #[test]
    fn duplicates_arrive_one_hop_apart() {
        let plan = NetFaultPlan::parse("dup=1000").unwrap();
        let mut r = Relay::new(&plan, 0);
        r.send(0, 0, 1, 0, 7);
        let all = r.due(u64::MAX);
        assert_eq!(all.len(), 2);
        assert!(!all[0].duplicate);
        assert!(all[1].duplicate);
        assert_eq!(
            all[1].at_cycles - all[0].at_cycles,
            costs::RELAY_LINK_CYCLES
        );
        assert_eq!(r.stats().duplicated, 1);
        assert_eq!(r.stats().delivered, 2);
    }

    #[test]
    fn polling_cadence_does_not_change_outcomes() {
        let plan =
            NetFaultPlan::parse("seed=5,drop=100,dup=200,reorder=300,delay=2000@400").unwrap();
        let run = |poll_step: u64| {
            let mut r = Relay::new(&plan, 9);
            let mut deliveries = Vec::new();
            for i in 0..40u64 {
                r.send(i * 1_000, (i % 4) as u32, ((i + 1) % 4) as u32, 0, i);
                let mut at = 0;
                while at <= i * 1_000 {
                    deliveries.extend(r.due(at));
                    at += poll_step;
                }
            }
            deliveries.extend(r.due(u64::MAX));
            (deliveries, r.stats())
        };
        // The *log* interleaves sent/delivered lines by processing
        // order, which legitimately tracks the polling cadence; the
        // delivery sequence and the counters must not.
        let coarse = run(50_001);
        let fine = run(101);
        assert_eq!(coarse.0, fine.0);
        assert_eq!(coarse.1, fine.1);
    }

    #[test]
    fn discard_keeps_the_drop_ledger_faithful() {
        let mut r = clean_relay();
        r.send(0, 0, 1, 0, 7);
        let all = r.due(u64::MAX);
        r.discard(&all[0], NetDropReason::ReceiverDead);
        assert_eq!(r.stats().dropped, 1);
        let text = r.log().render_jsonl();
        assert!(text.contains("\"reason\":\"receiver_dead\""));
    }
}
