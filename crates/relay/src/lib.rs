//! Cross-enclave message relay with a deterministic network fault plane.
//!
//! SGXGauge benchmarks one enclave at a time; this crate models the
//! next regime up — *systems built from enclaves*. N party enclaves on
//! one co-tenant [`sgx_sim::host::Host`] exchange protocol rounds
//! through an untrusted host relay, and the interesting quantity is how
//! the per-message transition and paging costs amplify across a
//! multi-round protocol, especially under hostile network weather.
//!
//! Three layers, bottom to top:
//!
//! * [`Relay`] — the message plane: cycle-stamped envelopes, a
//!   deterministic delivery queue, and a compiled
//!   [`faults::NetFaultHook`] deciding drops/delays/duplication/
//!   reordering per message and partitions/kills per schedule window.
//!   Every decision is a pure hash of (seed, salt, message sequence),
//!   so relays are byte-identical run-to-run and across `--jobs`.
//! * [`FailureDetector`] — a cycle-based heartbeat-less detector:
//!   a party silent for the suspicion window
//!   ([`sgx_sim::costs::RELAY_SUSPECT_CYCLES`]) is declared suspect,
//!   and recovers on its next delivery. Typed events feed the campaign
//!   supervision vocabulary ([`trace::CampaignEvent`]).
//! * [`SignRound`] / [`run_mpc`] — a t-of-n threshold-signing protocol
//!   (modeled on the DKLs23-style share-exchange flow) that *degrades
//!   gracefully*: rounds complete with any quorum of `t` live parties,
//!   retries time out with doubling backoff
//!   ([`sgx_sim::costs::RELAY_SEND_TIMEOUT_CYCLES`]), every round is
//!   bounded by a cycle watchdog
//!   ([`sgx_sim::costs::RELAY_ROUND_BUDGET_CYCLES`]), and losing
//!   quorum is a typed [`MpcError::QuorumLost`] — never a panic or a
//!   hang.
//!
//! Everything is keyed on simulated cycles: no wall clock, no OS
//! randomness, no threads.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod detector;
pub mod mpc;
pub mod net;
pub mod sign;

pub use detector::{DetectorEvent, DetectorEventKind, FailureDetector};
pub use mpc::{run_mpc, MpcConfig, MpcError, MpcReport, RoundStat};
pub use net::{Delivery, Envelope, Relay, RelayStats, SendOutcome};
pub use sign::SignRound;
pub use trace::relay::NetDropReason;

/// A party's dense id on the relay (also its tenant index on the host).
pub type PartyId = u32;

/// Bounded retry: a party re-requests a missing share at most this many
/// times per round, with the send timeout doubling per attempt.
pub const MAX_SEND_ATTEMPTS: u32 = 4;
