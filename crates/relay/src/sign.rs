//! Substrate-free bookkeeping for one t-of-n threshold-signing round.
//!
//! [`SignRound`] tracks who broadcast a share, who holds which shares,
//! and the per-party retry deadlines of the protocol-resilience layer
//! (doubling backoff, bounded attempts). It knows nothing about hosts,
//! relays or environments — the same engine drives both the
//! [`crate::run_mpc`] host-backed driver and the `ThresholdSign`
//! workload, so the two stay semantically identical.

use sgx_sim::costs;
use std::collections::BTreeSet;

use crate::{PartyId, MAX_SEND_ATTEMPTS};

/// State of one signing round over `n` parties with threshold `t`.
///
/// A party is *ready* once it holds `t` distinct shares counting its
/// own; the round is *complete* once at least `t` parties are ready (a
/// quorum certifies the aggregate signature).
#[derive(Debug, Clone)]
pub struct SignRound {
    round: u32,
    n: u32,
    t: u32,
    started_at: u64,
    broadcast: Vec<bool>,
    received: Vec<BTreeSet<PartyId>>,
    deadline: Vec<u64>,
    attempts: Vec<u32>,
    retries: u32,
}

impl SignRound {
    /// Starts round `round` over `n` parties with threshold `t` at
    /// cycle `now`. Every party's first retry deadline is one base send
    /// timeout out.
    pub fn new(round: u32, n: u32, t: u32, now: u64) -> SignRound {
        SignRound {
            round,
            n,
            t,
            started_at: now,
            broadcast: vec![false; n as usize],
            received: vec![BTreeSet::new(); n as usize],
            deadline: vec![now + costs::RELAY_SEND_TIMEOUT_CYCLES; n as usize],
            attempts: vec![0; n as usize],
            retries: 0,
        }
    }

    /// The round ordinal.
    pub fn round(&self) -> u32 {
        self.round
    }

    /// The cycle the round started at.
    pub fn started_at(&self) -> u64 {
        self.started_at
    }

    /// Retries issued so far this round.
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// Records that `party` generated and broadcast its share.
    pub fn note_broadcast(&mut self, party: PartyId) {
        if let Some(b) = self.broadcast.get_mut(party as usize) {
            *b = true;
        }
    }

    /// Whether `party` broadcast its share this round.
    pub fn has_broadcast(&self, party: PartyId) -> bool {
        self.broadcast.get(party as usize).copied().unwrap_or(false)
    }

    /// Records that `to` received `from`'s share. Returns `true` on
    /// first receipt (duplicates are absorbed silently).
    pub fn on_share(&mut self, to: PartyId, from: PartyId) -> bool {
        match self.received.get_mut(to as usize) {
            Some(set) => set.insert(from),
            None => false,
        }
    }

    /// Whether `party` holds a full quorum of shares (its own plus
    /// `t - 1` received).
    pub fn ready(&self, party: PartyId) -> bool {
        self.received
            .get(party as usize)
            .is_some_and(|set| set.len() as u32 + 1 >= self.t)
    }

    /// Parties currently ready, in id order.
    pub fn signers(&self) -> Vec<PartyId> {
        (0..self.n).filter(|p| self.ready(*p)).collect()
    }

    /// Whether a quorum of parties is ready.
    pub fn complete(&self) -> bool {
        self.signers().len() as u32 >= self.t
    }

    /// Broadcasting parties whose share `party` still lacks, in id
    /// order.
    pub fn missing(&self, party: PartyId) -> Vec<PartyId> {
        let received = match self.received.get(party as usize) {
            Some(set) => set,
            None => return Vec::new(),
        };
        (0..self.n)
            .filter(|q| *q != party && self.has_broadcast(*q) && !received.contains(q))
            .collect()
    }

    /// If `party`'s retry deadline has passed and it is still not
    /// ready, consumes one attempt and returns the attempt ordinal
    /// (1-based). The next deadline doubles per attempt
    /// (`RELAY_SEND_TIMEOUT_CYCLES << attempt`); after
    /// [`MAX_SEND_ATTEMPTS`] the party stops retrying and waits for the
    /// round watchdog.
    pub fn due_retry(&mut self, party: PartyId, now: u64) -> Option<u32> {
        let i = party as usize;
        if i >= self.deadline.len() || self.ready(party) {
            return None;
        }
        if self.attempts[i] >= MAX_SEND_ATTEMPTS || now < self.deadline[i] {
            return None;
        }
        self.attempts[i] += 1;
        self.retries += 1;
        let backoff = costs::RELAY_SEND_TIMEOUT_CYCLES
            .saturating_mul(1u64.checked_shl(self.attempts[i]).unwrap_or(u64::MAX));
        self.deadline[i] = now.saturating_add(backoff);
        Some(self.attempts[i])
    }

    /// The earliest pending retry deadline over parties that are not
    /// ready and still have attempts left, if any.
    pub fn next_deadline(&self) -> Option<u64> {
        (0..self.n)
            .filter(|p| !self.ready(*p) && self.attempts[*p as usize] < MAX_SEND_ATTEMPTS)
            .map(|p| self.deadline[p as usize])
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readiness_counts_own_share() {
        let mut sr = SignRound::new(0, 5, 3, 0);
        for p in 0..5 {
            sr.note_broadcast(p);
        }
        assert!(!sr.ready(0));
        sr.on_share(0, 1);
        assert!(!sr.ready(0));
        sr.on_share(0, 2);
        assert!(sr.ready(0));
        assert!(!sr.complete());
        for to in 1..3 {
            sr.on_share(to, 3);
            sr.on_share(to, 4);
        }
        assert!(sr.complete());
        assert_eq!(sr.signers(), vec![0, 1, 2]);
    }

    #[test]
    fn duplicates_are_absorbed_once() {
        let mut sr = SignRound::new(0, 3, 3, 0);
        assert!(sr.on_share(0, 1));
        assert!(!sr.on_share(0, 1));
        assert!(!sr.ready(0));
    }

    #[test]
    fn missing_tracks_only_broadcasters() {
        let mut sr = SignRound::new(0, 4, 3, 0);
        sr.note_broadcast(1);
        sr.note_broadcast(3);
        assert_eq!(sr.missing(0), vec![1, 3]);
        sr.on_share(0, 3);
        assert_eq!(sr.missing(0), vec![1]);
    }

    #[test]
    fn retries_double_and_are_bounded() {
        let mut sr = SignRound::new(0, 2, 2, 0);
        sr.note_broadcast(0);
        sr.note_broadcast(1);
        let base = costs::RELAY_SEND_TIMEOUT_CYCLES;
        assert_eq!(sr.due_retry(0, base - 1), None);
        assert_eq!(sr.due_retry(0, base), Some(1));
        // Party 1 still sits on its initial deadline; party 0's doubled.
        assert_eq!(sr.next_deadline(), Some(base));
        assert_eq!(sr.due_retry(1, base), Some(1));
        assert_eq!(sr.next_deadline(), Some(base * 3));
        // Not due again until the doubled deadline.
        assert_eq!(sr.due_retry(0, base + 1), None);
        assert_eq!(sr.due_retry(0, base * 3), Some(2));
        assert_eq!(sr.due_retry(0, base * 7), Some(3));
        assert_eq!(sr.due_retry(0, base * 15), Some(4));
        assert_eq!(sr.due_retry(0, base * 31), None, "attempts bounded");
        assert_eq!(sr.retries(), 5, "four attempts by party 0, one by party 1");
        // A ready party never retries.
        sr.on_share(1, 0);
        assert_eq!(sr.due_retry(1, base * 31), None);
        assert_eq!(sr.next_deadline(), None);
    }
}
