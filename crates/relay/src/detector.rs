//! A deterministic cycle-based failure detector.
//!
//! No heartbeats and no wall clock: a party is *heard* whenever one of
//! its messages is delivered, and *suspected* once the simulated clock
//! has advanced a full suspicion window past its last delivery. The
//! detector is driven by the protocol driver, so its verdicts are a
//! pure function of the delivery stream — identical across runs and
//! `--jobs`, which is what lets suspect/recover events live in the
//! byte-compared supervision trace.

use crate::PartyId;

/// What the detector concluded about one party.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorEventKind {
    /// Nothing was heard from the party for the suspicion window.
    Suspected {
        /// Cycles of silence at the moment of suspicion.
        silent_cycles: u64,
    },
    /// A suspected party was heard again.
    Recovered,
}

/// One detector verdict, stamped with the cycle it was reached at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorEvent {
    /// The party the verdict is about.
    pub party: PartyId,
    /// Cycle the verdict was reached at.
    pub at_cycles: u64,
    /// The verdict.
    pub kind: DetectorEventKind,
}

/// Cycle-based suspicion state over `n` parties.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    timeout_cycles: u64,
    last_heard: Vec<u64>,
    suspected: Vec<bool>,
}

impl FailureDetector {
    /// A detector over `n` parties, all considered heard at `now`, that
    /// suspects after `timeout_cycles` of silence.
    pub fn new(n: usize, timeout_cycles: u64, now: u64) -> FailureDetector {
        FailureDetector {
            timeout_cycles: timeout_cycles.max(1),
            last_heard: vec![now; n],
            suspected: vec![false; n],
        }
    }

    /// The configured suspicion window.
    pub fn timeout_cycles(&self) -> u64 {
        self.timeout_cycles
    }

    /// Records that `party` was heard at `now` (a delivery carrying its
    /// message surfaced). Returns a [`DetectorEventKind::Recovered`]
    /// event if the party was suspected.
    pub fn heard(&mut self, party: PartyId, now: u64) -> Option<DetectorEvent> {
        let i = party as usize;
        if i >= self.last_heard.len() {
            return None;
        }
        self.last_heard[i] = self.last_heard[i].max(now);
        if self.suspected[i] {
            self.suspected[i] = false;
            return Some(DetectorEvent {
                party,
                at_cycles: now,
                kind: DetectorEventKind::Recovered,
            });
        }
        None
    }

    /// Advances the detector to `now`, returning newly raised
    /// suspicions in party order.
    pub fn tick(&mut self, now: u64) -> Vec<DetectorEvent> {
        let mut out = Vec::new();
        for i in 0..self.last_heard.len() {
            if self.suspected[i] {
                continue;
            }
            let silent = now.saturating_sub(self.last_heard[i]);
            if silent >= self.timeout_cycles {
                self.suspected[i] = true;
                out.push(DetectorEvent {
                    party: i as PartyId,
                    at_cycles: now,
                    kind: DetectorEventKind::Suspected {
                        silent_cycles: silent,
                    },
                });
            }
        }
        out
    }

    /// Whether `party` is currently suspected.
    pub fn is_suspected(&self, party: PartyId) -> bool {
        self.suspected.get(party as usize).copied().unwrap_or(false)
    }

    /// Parties not currently suspected.
    pub fn live_count(&self) -> usize {
        self.suspected.iter().filter(|s| !**s).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silence_raises_suspicion_and_delivery_recovers() {
        let mut d = FailureDetector::new(3, 1_000, 0);
        assert!(d.tick(999).is_empty());
        d.heard(0, 500);
        d.heard(1, 500);
        let events = d.tick(1_400);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].party, 2);
        assert_eq!(
            events[0].kind,
            DetectorEventKind::Suspected {
                silent_cycles: 1_400
            }
        );
        assert!(d.is_suspected(2));
        assert_eq!(d.live_count(), 2);
        // Suspicion is raised once, not re-raised every tick.
        d.heard(0, 1_500);
        d.heard(1, 1_500);
        assert!(d.tick(2_000).is_empty());
        let rec = d.heard(2, 2_100).expect("recovery event");
        assert_eq!(rec.kind, DetectorEventKind::Recovered);
        assert_eq!(d.live_count(), 3);
    }

    #[test]
    fn heard_never_moves_the_clock_backwards() {
        let mut d = FailureDetector::new(1, 1_000, 0);
        d.heard(0, 900);
        d.heard(0, 100);
        assert!(d.tick(1_899).is_empty());
        assert_eq!(d.tick(1_900).len(), 1);
    }

    #[test]
    fn out_of_range_parties_are_ignored() {
        let mut d = FailureDetector::new(2, 1_000, 0);
        assert!(d.heard(9, 50).is_none());
        assert!(!d.is_suspected(9));
    }
}
