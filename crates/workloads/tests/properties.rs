//! Property tests for the workload kernels: each data structure or
//! algorithm implemented over simulated memory is checked against a
//! plain-Rust oracle on arbitrary inputs.

use proptest::prelude::*;
use sgxgauge_core::env::Placement;
use sgxgauge_core::{Env, EnvConfig, ExecMode, InputSetting, Runner, RunnerConfig};
use sgxgauge_workloads::util::SplitMix64;
use sgxgauge_workloads::{Bfs, HashJoin, Lighttpd, Memcached};

fn quick_env() -> Env {
    Env::new(EnvConfig::quick_test(ExecMode::Vanilla)).expect("env")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The region accessors preserve arbitrary byte patterns at arbitrary
    /// (in-bounds) offsets — the foundation every workload stands on.
    #[test]
    fn region_bytes_roundtrip(writes in prop::collection::vec((0u64..4000, any::<u64>()), 1..64)) {
        let mut env = quick_env();
        let r = env.alloc(4096, Placement::Untrusted).expect("alloc");
        let mut oracle = std::collections::HashMap::new();
        for &(off, v) in &writes {
            let off = off & !7; // align
            env.write_u64(r, off, v);
            oracle.insert(off, v);
        }
        for (&off, &v) in &oracle {
            prop_assert_eq!(env.read_u64(r, off), v);
        }
    }

    /// A BFS over any ring-plus-random-edges graph visits every node
    /// exactly once (the workload validates this internally; here the
    /// graph shape varies).
    #[test]
    fn bfs_visits_all_nodes(divisor in 64u64..2048) {
        let wl = Bfs::scaled(divisor);
        let runner = Runner::new(RunnerConfig::quick_test());
        let r = runner.run_once(&wl, ExecMode::Vanilla, InputSetting::Low).expect("run");
        let (n, _) = wl.graph_size(InputSetting::Low);
        prop_assert_eq!(r.output.ops, n);
    }

    /// HashJoin matches exactly its build-row count at any scale (every
    /// even probe replays a build key; odd probes cannot match).
    #[test]
    fn hashjoin_match_count_exact(divisor in 128u64..4096) {
        let wl = HashJoin::scaled(divisor);
        let runner = Runner::new(RunnerConfig::quick_test());
        let r = runner.run_once(&wl, ExecMode::Vanilla, InputSetting::Low).expect("run");
        let matches = r.output.metric("matches").expect("metric") as u64;
        prop_assert_eq!(matches, wl.build_rows(InputSetting::Low));
    }

    /// Memcached read-hit counts are identical between Vanilla and LibOS
    /// (the store's logic is mode-independent).
    #[test]
    fn memcached_hits_mode_independent(divisor in 256u64..2048) {
        let wl = Memcached::scaled(divisor);
        let runner = Runner::new(RunnerConfig::quick_test());
        let v = runner.run_once(&wl, ExecMode::Vanilla, InputSetting::Low).expect("vanilla");
        let l = runner.run_once(&wl, ExecMode::LibOs, InputSetting::Low).expect("libos");
        prop_assert_eq!(v.output.metric("read_hits"), l.output.metric("read_hits"));
    }

    /// Lighttpd's mean latency is monotone (non-strictly) in the client
    /// count under SGX: more concurrency, more queueing.
    #[test]
    fn lighttpd_latency_monotone_in_threads(threads in 2usize..12) {
        let runner = Runner::new(RunnerConfig::quick_test());
        let lat = |t: usize| {
            let wl = Lighttpd::scaled(1024).with_threads(t);
            runner
                .run_once(&wl, ExecMode::LibOs, InputSetting::Low)
                .expect("run")
                .output
                .metric("mean_latency_cycles")
                .expect("metric")
        };
        prop_assert!(lat(threads + 4) >= lat(threads) * 0.98);
    }

    /// SplitMix64 streams never collide across distinct seeds (sanity of
    /// the deterministic input generation shared by all workloads).
    #[test]
    fn splitmix_streams_differ(seed_a in any::<u64>(), seed_b in any::<u64>()) {
        prop_assume!(seed_a != seed_b);
        let mut a = SplitMix64::new(seed_a);
        let mut b = SplitMix64::new(seed_b);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        prop_assert_ne!(va, vb);
    }
}
