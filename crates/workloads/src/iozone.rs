//! IOzone-style filesystem benchmark (Appendix E / Fig 10).
//!
//! The paper uses IOzone to quantify GrapheneSGX's file-I/O overhead and
//! the cost of its protected-files (PF) mode: sequentially write and then
//! read 1 GB in 4 MB records, comparing Vanilla, LibOS, and LibOS+PF.
//! This driver reproduces that experiment; it is not one of the ten
//! SGXGauge workloads, but it ships with the suite because Fig 10 needs
//! it.

use crate::util::{fold, scale_down};
use sgxgauge_core::env::Placement;
use sgxgauge_core::{
    Env, ExecMode, InputSetting, Workload, WorkloadError, WorkloadOutput, WorkloadSpec,
};

/// Record (block) size: 4 MB, as in the paper.
const RECORD_BYTES: u64 = 4 << 20;

/// The IOzone driver. See the module docs.
#[derive(Debug, Clone)]
pub struct Iozone {
    divisor: u64,
}

impl Iozone {
    /// Paper-scale instance (1 GB of data in 4 MB records).
    pub fn new() -> Self {
        Iozone { divisor: 1 }
    }

    /// Instance with the total size divided by `divisor`.
    pub fn scaled(divisor: u64) -> Self {
        Iozone {
            divisor: divisor.max(1),
        }
    }

    /// Total bytes transferred in each direction.
    pub fn total_bytes(&self) -> u64 {
        scale_down(1 << 30, self.divisor, 1 << 20)
    }

    fn record_bytes(&self) -> u64 {
        RECORD_BYTES.min(self.total_bytes())
    }
}

impl Default for Iozone {
    fn default() -> Self {
        Iozone::new()
    }
}

impl Workload for Iozone {
    fn name(&self) -> &'static str {
        "IOzone"
    }

    fn property(&self) -> &'static str {
        "IO-intensive"
    }

    fn supported_modes(&self) -> &'static [ExecMode] {
        &[ExecMode::Vanilla, ExecMode::LibOs]
    }

    fn spec(&self, _setting: InputSetting) -> WorkloadSpec {
        WorkloadSpec::new(
            self.record_bytes() + (1 << 20),
            format!(
                "Size {} MB Record {} MB",
                self.total_bytes() >> 20,
                self.record_bytes() >> 20
            ),
        )
    }

    fn setup(&self, _env: &mut Env, _setting: InputSetting) -> Result<(), WorkloadError> {
        Ok(())
    }

    fn execute(
        &self,
        env: &mut Env,
        _setting: InputSetting,
    ) -> Result<WorkloadOutput, WorkloadError> {
        let total = self.total_bytes();
        let record = self.record_bytes();
        let records = total / record;
        let buf = env.alloc(record, Placement::Protected)?;

        // Fill the record buffer once (IOzone reuses its buffer), then
        // write it out per record, stamping the record id.
        let pattern = vec![0x5au8; record as usize];
        env.write_bytes(buf, 0, &pattern);
        let write_start = env.now();
        for r in 0..records {
            env.write_u64(buf, 0, r);
            env.write_u64(buf, record - 8, r ^ 0xffff);
            env.write_file_from(&format!("iozone.{r}"), buf, 0, record)?;
        }
        let write_cycles = env.now() - write_start;

        // Read phase: read every record back and fold a checksum.
        let read_start = env.now();
        let mut checksum = 0u64;
        for r in 0..records {
            let n = env.read_file_into(&format!("iozone.{r}"), buf, 0)?;
            if n != record {
                return Err(WorkloadError::Validation(format!(
                    "record {r}: {n} != {record}"
                )));
            }
            checksum = fold(checksum, env.read_u64(buf, 0));
            checksum = fold(checksum, env.read_u64(buf, record - 8));
        }
        let read_cycles = env.now() - read_start;

        Ok(WorkloadOutput {
            ops: records * 2,
            checksum,
            metrics: vec![
                ("write_cycles".into(), write_cycles as f64),
                ("read_cycles".into(), read_cycles as f64),
            ],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgxgauge_core::{EnvConfig, Runner, RunnerConfig};

    #[test]
    fn roundtrip_checksum_stable_across_modes() {
        let wl = Iozone::scaled(256);
        let runner = Runner::new(RunnerConfig::quick_test());
        let v = runner
            .run_once(&wl, ExecMode::Vanilla, InputSetting::Low)
            .unwrap();
        let l = runner
            .run_once(&wl, ExecMode::LibOs, InputSetting::Low)
            .unwrap();
        assert_eq!(v.output.checksum, l.output.checksum);
    }

    #[test]
    fn pf_mode_costs_most() {
        // Fig 10 ordering: Vanilla < LibOS < LibOS+PF.
        let wl = Iozone::scaled(256);
        let runner = Runner::new(RunnerConfig::quick_test());
        let v = runner
            .run_once(&wl, ExecMode::Vanilla, InputSetting::Low)
            .unwrap();
        let l = runner
            .run_once(&wl, ExecMode::LibOs, InputSetting::Low)
            .unwrap();

        let mut pf_cfg = RunnerConfig::quick_test();
        pf_cfg.env = EnvConfig::quick_test(ExecMode::LibOs).with_protected_files();
        let pf = Runner::new(pf_cfg)
            .run_once(&wl, ExecMode::LibOs, InputSetting::Low)
            .unwrap();

        assert!(l.runtime_cycles > v.runtime_cycles);
        assert!(pf.runtime_cycles > l.runtime_cycles);
        // PF still round-trips correctly.
        assert_eq!(pf.output.checksum, v.output.checksum);
    }

    #[test]
    fn read_and_write_metrics_present() {
        let wl = Iozone::scaled(512);
        let runner = Runner::new(RunnerConfig::quick_test());
        let r = runner
            .run_once(&wl, ExecMode::Vanilla, InputSetting::Low)
            .unwrap();
        assert!(r.output.metric("write_cycles").unwrap() > 0.0);
        assert!(r.output.metric("read_cycles").unwrap() > 0.0);
    }
}
