//! B-Tree workload (§4.2.3) — database-style index build + lookups.
//!
//! Builds a B-Tree (the mitosis-project workload the paper uses) inside
//! protected memory and performs random `find` operations. Every node
//! access is a simulated memory access, so tree depth and node fan-out
//! translate directly into the paging behaviour the paper studies: at 1 M
//! elements the tree fits the EPC, at 2 M it spills (Table 2).
//!
//! The tree is implemented *inside a region* (manual node layout over
//! simulated memory), the way the original C workload lays out malloc'd
//! nodes.

use crate::util::{fold, scale_down, SplitMix64};
use sgxgauge_core::env::{Placement, Region};
use sgxgauge_core::{
    Env, ExecMode, InputSetting, Workload, WorkloadError, WorkloadOutput, WorkloadSpec,
};

/// Keys per node (fan-out - 1). 64 keys keeps nodes at two cache lines
/// of keys plus children: realistic pointer-chasing behaviour.
const ORDER: usize = 64;

/// Payload bytes stored with each key in a leaf (sized so the Table 2
/// element counts land on the paper's side of the EPC boundary: with
/// ~69% node fill this gives ~60 bytes/element, i.e. 1 M -> ~60 MB,
/// 1.5 M -> ~90 MB, 2 M -> ~120 MB around the 92 MB EPC).
const VALUE_BYTES: u64 = 24;

/// Node layout:
/// `[is_leaf u64][count u64][keys: ORDER*8][children: (ORDER+1)*8 | values: ORDER*VALUE_BYTES]`
const NODE_HEADER: u64 = 16;
const KEYS_OFF: u64 = NODE_HEADER;
const PTRS_OFF: u64 = KEYS_OFF + (ORDER as u64) * 8;
const NODE_BYTES: u64 = PTRS_OFF + (ORDER as u64 + 1) * 8 + (ORDER as u64) * VALUE_BYTES;

/// The B-Tree workload. See the module docs.
#[derive(Debug, Clone)]
pub struct BTree {
    divisor: u64,
}

impl BTree {
    /// Paper-scale instance (1 M / 1.5 M / 2 M elements).
    pub fn new() -> Self {
        BTree { divisor: 1 }
    }

    /// Instance with element counts divided by `divisor`.
    pub fn scaled(divisor: u64) -> Self {
        BTree {
            divisor: divisor.max(1),
        }
    }

    /// Elements for `setting` (Table 2).
    pub fn elements(&self, setting: InputSetting) -> u64 {
        let n: u64 = match setting {
            InputSetting::Low => 1_000_000,
            InputSetting::Medium => 1_500_000,
            InputSetting::High => 2_000_000,
        };
        scale_down(n, self.divisor, 512)
    }

    /// Find operations performed after the build.
    pub fn finds(&self, setting: InputSetting) -> u64 {
        self.elements(setting) / 2
    }

    fn arena_bytes(&self, setting: InputSetting) -> u64 {
        // Nodes are ~2/3 full on average after random inserts.
        let n = self.elements(setting);
        let leaves = n * 3 / (2 * ORDER as u64) + 4;
        let internals = leaves / (ORDER as u64 / 2) + 4;
        (leaves + internals + 16) * NODE_BYTES
    }
}

impl Default for BTree {
    fn default() -> Self {
        BTree::new()
    }
}

/// A B-Tree living inside a simulated region; all node I/O goes through
/// the environment so the machine model sees every access.
struct RegionTree<'a> {
    env: &'a mut Env,
    arena: Region,
    next_node: u64,
    root: u64,
}

impl<'a> RegionTree<'a> {
    fn create(env: &'a mut Env, arena: Region) -> Result<Self, WorkloadError> {
        let mut t = RegionTree {
            env,
            arena,
            next_node: 0,
            root: 0,
        };
        let root = t.alloc_node(true)?;
        t.root = root;
        Ok(t)
    }

    fn alloc_node(&mut self, leaf: bool) -> Result<u64, WorkloadError> {
        let off = self.next_node;
        if off + NODE_BYTES > self.env.region_len(self.arena) {
            return Err(WorkloadError::Other("btree arena exhausted".into()));
        }
        self.next_node += NODE_BYTES;
        self.env.write_u64(self.arena, off, leaf as u64);
        self.env.write_u64(self.arena, off + 8, 0);
        Ok(off)
    }

    fn is_leaf(&mut self, node: u64) -> bool {
        self.env.read_u64(self.arena, node) == 1
    }

    fn count(&mut self, node: u64) -> usize {
        self.env.read_u64(self.arena, node + 8) as usize
    }

    fn set_count(&mut self, node: u64, c: usize) {
        self.env.write_u64(self.arena, node + 8, c as u64);
    }

    fn key(&mut self, node: u64, i: usize) -> u64 {
        self.env
            .read_u64(self.arena, node + KEYS_OFF + (i as u64) * 8)
    }

    fn set_key(&mut self, node: u64, i: usize, k: u64) {
        self.env
            .write_u64(self.arena, node + KEYS_OFF + (i as u64) * 8, k);
    }

    fn child(&mut self, node: u64, i: usize) -> u64 {
        self.env
            .read_u64(self.arena, node + PTRS_OFF + (i as u64) * 8)
    }

    fn set_child(&mut self, node: u64, i: usize, c: u64) {
        self.env
            .write_u64(self.arena, node + PTRS_OFF + (i as u64) * 8, c);
    }

    fn value_off(node: u64, i: usize) -> u64 {
        node + PTRS_OFF + (ORDER as u64 + 1) * 8 + (i as u64) * VALUE_BYTES
    }

    fn write_value(&mut self, node: u64, i: usize, key: u64) {
        let off = Self::value_off(node, i);
        self.env
            .write_u64(self.arena, off, key.wrapping_mul(0x9e37_79b9));
        // Touch the rest of the payload.
        self.env.touch(self.arena, off + 8, VALUE_BYTES - 8, true);
    }

    fn read_value(&mut self, node: u64, i: usize) -> u64 {
        let off = Self::value_off(node, i);
        self.env.touch(self.arena, off + 8, VALUE_BYTES - 8, false);
        self.env.read_u64(self.arena, off)
    }

    /// Position of the first key >= `k` via binary search over the node's
    /// key array (each probe is a real simulated access).
    fn lower_bound(&mut self, node: u64, k: u64) -> usize {
        let mut lo = 0usize;
        let mut hi = self.count(node);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.key(node, mid) < k {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    fn find(&mut self, k: u64) -> Option<u64> {
        let mut node = self.root;
        loop {
            let pos = self.lower_bound(node, k);
            if self.is_leaf(node) {
                if pos < self.count(node) && self.key(node, pos) == k {
                    return Some(self.read_value(node, pos));
                }
                return None;
            }
            let idx = if pos < self.count(node) && self.key(node, pos) == k {
                pos + 1
            } else {
                pos
            };
            node = self.child(node, idx);
        }
    }

    fn insert(&mut self, k: u64) -> Result<(), WorkloadError> {
        let root = self.root;
        if self.count(root) == ORDER {
            let new_root = self.alloc_node(false)?;
            self.set_child(new_root, 0, root);
            self.split_child(new_root, 0)?;
            self.root = new_root;
        }
        self.insert_nonfull(self.root, k)
    }

    fn insert_nonfull(&mut self, node: u64, k: u64) -> Result<(), WorkloadError> {
        let mut node = node;
        loop {
            if self.is_leaf(node) {
                let pos = self.lower_bound(node, k);
                let cnt = self.count(node);
                // Shift keys + values right.
                for i in (pos..cnt).rev() {
                    let key = self.key(node, i);
                    self.set_key(node, i + 1, key);
                    let v = self.read_value(node, i);
                    let off = Self::value_off(node, i + 1);
                    self.env.write_u64(self.arena, off, v);
                }
                self.set_key(node, pos, k);
                self.write_value(node, pos, k);
                self.set_count(node, cnt + 1);
                return Ok(());
            }
            let pos = self.lower_bound(node, k);
            // Router semantics: equal keys live in the right subtree.
            let mut idx = if pos < self.count(node) && self.key(node, pos) == k {
                pos + 1
            } else {
                pos
            };
            let child = self.child(node, idx);
            if self.count(child) == ORDER {
                self.split_child(node, idx)?;
                if k >= self.key(node, idx) {
                    idx += 1;
                }
            }
            node = self.child(node, idx);
        }
    }

    /// Splits the full child at `idx` of `parent`.
    ///
    /// B+-style semantics: internal keys are routers with "left < router
    /// <= right". Leaf splits keep all keys in leaves and copy the first
    /// right key up as the router; internal splits promote the median.
    fn split_child(&mut self, parent: u64, idx: usize) -> Result<(), WorkloadError> {
        let child = self.child(parent, idx);
        let leaf = self.is_leaf(child);
        let right = self.alloc_node(leaf)?;
        let mid = ORDER / 2;
        let (move_from, move_n, median) = if leaf {
            // Keys mid..ORDER move right; router = first right key.
            (mid, ORDER - mid, self.key(child, mid))
        } else {
            // Keys mid+1..ORDER move right; key[mid] is promoted.
            (mid + 1, ORDER - mid - 1, self.key(child, mid))
        };
        for i in 0..move_n {
            let k = self.key(child, move_from + i);
            self.set_key(right, i, k);
            if leaf {
                let v = self.read_value(child, move_from + i);
                let off = Self::value_off(right, i);
                self.env.write_u64(self.arena, off, v);
            }
        }
        if !leaf {
            for i in 0..=move_n {
                let c = self.child(child, move_from + i);
                self.set_child(right, i, c);
            }
        }
        self.set_count(right, move_n);
        self.set_count(child, mid);
        // Shift the parent's keys/children right and hook in.
        let pcnt = self.count(parent);
        for i in (idx..pcnt).rev() {
            let k = self.key(parent, i);
            self.set_key(parent, i + 1, k);
        }
        for i in (idx + 1..=pcnt).rev() {
            let c = self.child(parent, i);
            self.set_child(parent, i + 1, c);
        }
        self.set_key(parent, idx, median);
        self.set_child(parent, idx + 1, right);
        self.set_count(parent, pcnt + 1);
        Ok(())
    }
}

impl Workload for BTree {
    fn name(&self) -> &'static str {
        "BTree"
    }

    fn property(&self) -> &'static str {
        "Data/CPU-intensive"
    }

    fn supported_modes(&self) -> &'static [ExecMode] {
        &[ExecMode::Vanilla, ExecMode::Native, ExecMode::LibOs]
    }

    fn spec(&self, setting: InputSetting) -> WorkloadSpec {
        WorkloadSpec::new(
            self.arena_bytes(setting),
            format!("Elements {}", self.elements(setting)),
        )
    }

    fn setup(&self, _env: &mut Env, _setting: InputSetting) -> Result<(), WorkloadError> {
        Ok(())
    }

    fn execute(
        &self,
        env: &mut Env,
        setting: InputSetting,
    ) -> Result<WorkloadOutput, WorkloadError> {
        let n = self.elements(setting);
        let finds = self.finds(setting);
        let arena = env.alloc(self.arena_bytes(setting), Placement::Protected)?;

        let (checksum, hits) =
            env.secure_call(move |env| -> Result<(u64, u64), WorkloadError> {
                let mut tree = RegionTree::create(env, arena)?;
                // Build: keys are a deterministic permutation-ish stream.
                let mut rng = SplitMix64::new(0xb7ee_5eed);
                for _ in 0..n {
                    let k = rng.next_u64() % (n * 4);
                    tree.insert(k | 1)?; // odd keys only
                }
                tree.env.compute(n * 20); // comparison ALU work

                // Probe: half the probes for existing-ish keys, half misses.
                let mut rng = SplitMix64::new(0xf1d5_eed0);
                let mut checksum = 0u64;
                let mut hits = 0u64;
                for i in 0..finds {
                    let k = if i % 2 == 0 {
                        (rng.next_u64() % (n * 4)) | 1
                    } else {
                        (rng.next_u64() % (n * 4)) & !1 // even: guaranteed miss
                    };
                    match tree.find(k) {
                        Some(v) => {
                            hits += 1;
                            checksum = fold(checksum, v);
                        }
                        None => checksum = fold(checksum, 0),
                    }
                }
                tree.env.compute(finds * 20);
                Ok((checksum, hits))
            })??;

        if hits == 0 {
            return Err(WorkloadError::Validation("no find ever hit".into()));
        }
        Ok(WorkloadOutput {
            ops: n + finds,
            checksum,
            metrics: vec![("find_hits".into(), hits as f64)],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgxgauge_core::{EnvConfig, Runner, RunnerConfig};
    use std::collections::BTreeSet;

    #[test]
    fn tree_matches_std_btreeset() {
        let mut env = Env::new(EnvConfig::quick_test(ExecMode::Vanilla)).unwrap();
        let arena = env.alloc(2 << 20, Placement::Untrusted).unwrap();
        let mut tree = RegionTree::create(&mut env, arena).unwrap();
        let mut oracle = BTreeSet::new();
        let mut rng = SplitMix64::new(7);
        for _ in 0..3_000 {
            let k = rng.below(10_000) | 1;
            tree.insert(k).unwrap();
            oracle.insert(k);
        }
        for k in 0..10_000u64 {
            let expect = oracle.contains(&k);
            let got = tree.find(k).is_some();
            assert_eq!(got, expect, "key {k}");
            if expect {
                assert_eq!(tree.find(k).unwrap(), k.wrapping_mul(0x9e37_79b9));
            }
        }
    }

    #[test]
    fn sequential_inserts_split_correctly() {
        let mut env = Env::new(EnvConfig::quick_test(ExecMode::Vanilla)).unwrap();
        let arena = env.alloc(2 << 20, Placement::Untrusted).unwrap();
        let mut tree = RegionTree::create(&mut env, arena).unwrap();
        for k in (1..2_000u64).map(|k| k * 2 + 1) {
            tree.insert(k).unwrap();
        }
        for k in (1..2_000u64).map(|k| k * 2 + 1) {
            assert!(tree.find(k).is_some(), "missing {k}");
        }
        assert!(tree.find(4).is_none());
    }

    #[test]
    fn checksums_agree_across_modes() {
        let wl = BTree::scaled(512);
        let runner = Runner::new(RunnerConfig::quick_test());
        let mut sums = Vec::new();
        for mode in ExecMode::ALL {
            let r = runner.run_once(&wl, mode, InputSetting::Low).unwrap();
            sums.push(r.output.checksum);
        }
        assert!(sums.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn element_counts_follow_table2() {
        let wl = BTree::new();
        assert_eq!(wl.elements(InputSetting::Low), 1_000_000);
        assert_eq!(wl.elements(InputSetting::Medium), 1_500_000);
        assert_eq!(wl.elements(InputSetting::High), 2_000_000);
        // Footprints straddle the 92 MB EPC.
        assert!(wl.spec(InputSetting::Low).protected_bytes < 92 << 20);
        assert!(wl.spec(InputSetting::High).protected_bytes > 92 << 20);
    }

    #[test]
    fn high_setting_faults_more() {
        let wl = BTree::scaled(2048);
        let runner = Runner::new(RunnerConfig::quick_test());
        let low = runner
            .run_once(&wl, ExecMode::Native, InputSetting::Low)
            .unwrap();
        let high = runner
            .run_once(&wl, ExecMode::Native, InputSetting::High)
            .unwrap();
        assert!(high.sgx.epc_faults >= low.sgx.epc_faults);
    }
}
