//! SVM workload (§4.2.10) — support-vector-machine training in the
//! libSVM style.
//!
//! Classifies synthetic data by SMO-style coordinate updates over a
//! linear kernel. The training matrix is modest, but — as in libSVM —
//! the *kernel cache* of Q-matrix rows is the memory hog, and its size
//! is what moves the Table 2 row counts (4 K / 6 K / 10 K) across the
//! EPC boundary. The workload runs many passes over the same data, the
//! iterative pattern the paper calls typical of ML (§4).
//!
//! The numeric kernel runs natively (dense dot products) while the
//! memory traffic is charged to the simulated regions at row
//! granularity, matching how libSVM streams whole rows through the
//! cache.

use crate::util::{fold, scale_down, SplitMix64};
use sgxgauge_core::env::Placement;
use sgxgauge_core::{
    Env, ExecMode, InputSetting, Workload, WorkloadError, WorkloadOutput, WorkloadSpec,
};

/// Features per row (Table 2: 128).
const FEATURES: u64 = 128;

/// Cached kernel rows (libSVM's ~100 MB default cache, in rows).
const CACHE_ROWS: u64 = 1_792;

/// Every Nth training row's memory traffic is charged during the dense
/// Q-row pass (the arithmetic itself runs on every row, natively); this
/// keeps simulation time linear without changing which pages are hot.
const DATA_TOUCH_STRIDE: u64 = 32;

/// The SVM workload. See the module docs.
#[derive(Debug, Clone)]
pub struct Svm {
    divisor: u64,
}

impl Svm {
    /// Paper-scale instance (4 K / 6 K / 10 K rows x 128 features).
    pub fn new() -> Self {
        Svm { divisor: 1 }
    }

    /// Instance with sizes divided by `divisor`.
    pub fn scaled(divisor: u64) -> Self {
        Svm {
            divisor: divisor.max(1),
        }
    }

    /// Training rows for `setting` (Table 2).
    pub fn rows(&self, setting: InputSetting) -> u64 {
        let n: u64 = match setting {
            InputSetting::Low => 4_000,
            InputSetting::Medium => 6_000,
            InputSetting::High => 10_000,
        };
        scale_down(n, self.divisor, 24)
    }

    /// SMO updates: one full epoch over the training rows.
    fn iterations(&self, setting: InputSetting) -> u64 {
        self.rows(setting)
    }

    fn cache_rows(&self, setting: InputSetting) -> u64 {
        scale_down(CACHE_ROWS, self.divisor, 16).min(self.rows(setting))
    }
}

impl Default for Svm {
    fn default() -> Self {
        Svm::new()
    }
}

impl Workload for Svm {
    fn name(&self) -> &'static str {
        "SVM"
    }

    fn property(&self) -> &'static str {
        "Data/CPU-intensive"
    }

    fn supported_modes(&self) -> &'static [ExecMode] {
        &[ExecMode::Vanilla, ExecMode::LibOs]
    }

    fn spec(&self, setting: InputSetting) -> WorkloadSpec {
        let rows = self.rows(setting);
        let data = rows * FEATURES * 8;
        let cache = self.cache_rows(setting) * rows * 8;
        WorkloadSpec::new(
            data + cache + rows * 24,
            format!("Rows {} Features {}", rows, FEATURES),
        )
    }

    fn setup(&self, _env: &mut Env, _setting: InputSetting) -> Result<(), WorkloadError> {
        Ok(())
    }

    fn execute(
        &self,
        env: &mut Env,
        setting: InputSetting,
    ) -> Result<WorkloadOutput, WorkloadError> {
        let rows = self.rows(setting);
        let iters = self.iterations(setting);
        let cache_rows = self.cache_rows(setting);
        let row_bytes = FEATURES * 8;

        let data = env.alloc(rows * row_bytes, Placement::Protected)?;
        let vectors = env.alloc(rows * 24, Placement::Protected)?; // labels+alphas+errors
        let qcache = env.alloc(cache_rows * rows * 8, Placement::Protected)?;

        let (support_vectors, checksum) =
            env.secure_call(move |env| -> Result<(u64, u64), WorkloadError> {
                // Synthetic, noisily separable data: label = sign of a fixed
                // alternating hyperplane plus noise. The numeric state lives
                // natively; region traffic is charged per row.
                let mut rng = SplitMix64::new(0x5f4d_0001);
                let mut x = vec![0.0f64; (rows * FEATURES) as usize];
                let mut y = vec![0.0f64; rows as usize];
                let mut alpha = vec![0.0f64; rows as usize];
                let mut err = vec![0.0f64; rows as usize];
                for i in 0..rows as usize {
                    let mut dot = 0.0f64;
                    for f in 0..FEATURES as usize {
                        let v = rng.unit_f64() * 2.0 - 1.0;
                        x[i * FEATURES as usize + f] = v;
                        dot += if f % 2 == 0 { v } else { -v };
                    }
                    env.touch(data, i as u64 * row_bytes, row_bytes, true);
                    y[i] = if dot + (rng.unit_f64() - 0.5) * 0.2 > 0.0 {
                        1.0
                    } else {
                        -1.0
                    };
                    err[i] = -y[i];
                    env.touch(vectors, i as u64 * 24, 24, true);
                    env.compute(FEATURES * 3);
                }

                // One SMO epoch: sweep the training rows in order, pull each
                // row's kernel row through the cache (dense computation on a
                // miss — with ~5.6 rows per cache slot almost every pull
                // misses, exactly libSVM's regime on shuffled data), update
                // its alpha, propagate through the error vector.
                let mut q = vec![0.0f64; (cache_rows * rows) as usize];
                let mut qtag = vec![u64::MAX; cache_rows as usize];
                let c_param = 1.0f64;
                let lr = 0.05f64;
                let mut cache_misses = 0u64;
                for i in 0..iters {
                    let slot = (i % cache_rows) as usize;
                    if qtag[slot] != i {
                        cache_misses += 1;
                        // Dense Q-row computation: stream the training matrix.
                        env.touch(data, i * row_bytes, row_bytes, false);
                        let xi = &x[(i * FEATURES) as usize..((i + 1) * FEATURES) as usize];
                        for j in 0..rows as usize {
                            let xj = &x[j * FEATURES as usize..(j + 1) * FEATURES as usize];
                            let mut dot = 0.0f64;
                            for f in 0..FEATURES as usize {
                                dot += xi[f] * xj[f];
                            }
                            q[slot * rows as usize + j] = dot;
                            if (j as u64).is_multiple_of(DATA_TOUCH_STRIDE) {
                                env.touch(data, j as u64 * row_bytes, row_bytes, false);
                            }
                        }
                        env.compute(rows * FEATURES * 2);
                        env.touch(qcache, slot as u64 * rows * 8, rows * 8, true);
                        qtag[slot] = i;
                    }
                    // Alpha update + error propagation using the cached row.
                    env.touch(qcache, slot as u64 * rows * 8, rows * 8, false);
                    env.touch(vectors, i * 24, 24, false);
                    let old_alpha = alpha[i as usize];
                    let new_alpha =
                        (old_alpha - lr * y[i as usize] * err[i as usize]).clamp(0.0, c_param);
                    alpha[i as usize] = new_alpha;
                    let delta = (new_alpha - old_alpha) * y[i as usize];
                    if delta != 0.0 {
                        for j in 0..rows as usize {
                            err[j] += delta * q[slot * rows as usize + j];
                        }
                        env.touch(vectors, 0, rows * 8, false);
                        env.touch(vectors, rows * 16, rows * 8, true);
                        env.compute(rows * 3);
                    }
                }

                // Count support vectors and fold the model.
                let mut sv = 0u64;
                let mut checksum = 0u64;
                for (i, &a) in alpha.iter().enumerate() {
                    env.touch(vectors, i as u64 * 24, 8, false);
                    if a > 1e-9 {
                        sv += 1;
                        checksum = fold(checksum, (a * 1e9) as u64);
                    }
                }
                checksum = fold(checksum, cache_misses);
                Ok((sv, checksum))
            })??;

        if support_vectors == 0 {
            return Err(WorkloadError::Validation("no support vectors found".into()));
        }
        Ok(WorkloadOutput {
            ops: iters,
            checksum,
            metrics: vec![("support_vectors".into(), support_vectors as f64)],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgxgauge_core::{Runner, RunnerConfig};

    #[test]
    fn trains_and_finds_support_vectors() {
        let wl = Svm::scaled(64);
        let runner = Runner::new(RunnerConfig::quick_test());
        let r = runner
            .run_once(&wl, ExecMode::Vanilla, InputSetting::Low)
            .unwrap();
        assert!(r.output.metric("support_vectors").unwrap() > 0.0);
    }

    #[test]
    fn checksums_agree_across_modes() {
        let wl = Svm::scaled(64);
        let runner = Runner::new(RunnerConfig::quick_test());
        let v = runner
            .run_once(&wl, ExecMode::Vanilla, InputSetting::Low)
            .unwrap();
        let l = runner
            .run_once(&wl, ExecMode::LibOs, InputSetting::Low)
            .unwrap();
        assert_eq!(v.output.checksum, l.output.checksum);
    }

    #[test]
    fn row_counts_follow_table2() {
        let wl = Svm::new();
        assert_eq!(wl.rows(InputSetting::Low), 4_000);
        assert_eq!(wl.rows(InputSetting::Medium), 6_000);
        assert_eq!(wl.rows(InputSetting::High), 10_000);
        assert!(wl.spec(InputSetting::Low).protected_bytes < 92 << 20);
        assert!(wl.spec(InputSetting::High).protected_bytes > 92 << 20);
    }

    #[test]
    fn footprint_grows_with_rows() {
        let wl = Svm::new();
        assert!(
            wl.spec(InputSetting::High).protected_bytes
                > wl.spec(InputSetting::Low).protected_bytes
        );
    }
}
