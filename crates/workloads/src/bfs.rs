//! BFS workload (§4.2.5) — breadth-first search, ported from the Rodinia
//! benchmark suite as in the paper.
//!
//! The input is an undirected graph; the workload loads it into the EPC
//! and traverses every connected component. Rodinia's BFS keeps per-node
//! and per-edge structs (not packed CSR indices), which is what gives the
//! workload its large, data-intensive footprint; we keep the same layout
//! (64-byte edge records, 64-byte node records) so the Table 2 node and
//! edge counts land on the paper's side of the EPC boundary.

use crate::util::{fold, scale_down, SplitMix64};
use sgxgauge_core::env::Placement;
use sgxgauge_core::{
    Env, ExecMode, InputSetting, Workload, WorkloadError, WorkloadOutput, WorkloadSpec,
};

/// Per-node record bytes (Rodinia `Node` struct padded to a line).
const NODE_BYTES: u64 = 64;

/// Per-edge record bytes (dest + weight + padding to a line).
const EDGE_BYTES: u64 = 64;

/// The BFS workload. See the module docs.
#[derive(Debug, Clone)]
pub struct Bfs {
    divisor: u64,
}

impl Bfs {
    /// Paper-scale instance (70 K/909 K … 150 K/1.9 M nodes/edges).
    pub fn new() -> Self {
        Bfs { divisor: 1 }
    }

    /// Instance with graph sizes divided by `divisor`.
    pub fn scaled(divisor: u64) -> Self {
        Bfs {
            divisor: divisor.max(1),
        }
    }

    /// `(nodes, edges)` for `setting` (Table 2).
    pub fn graph_size(&self, setting: InputSetting) -> (u64, u64) {
        let (n, e) = match setting {
            InputSetting::Low => (70_000, 909_000),
            InputSetting::Medium => (100_000, 1_300_000),
            InputSetting::High => (150_000, 1_900_000),
        };
        (
            scale_down(n, self.divisor, 64),
            scale_down(e, self.divisor, 256),
        )
    }
}

impl Default for Bfs {
    fn default() -> Self {
        Bfs::new()
    }
}

impl Workload for Bfs {
    fn name(&self) -> &'static str {
        "BFS"
    }

    fn property(&self) -> &'static str {
        "Data-intensive"
    }

    fn supported_modes(&self) -> &'static [ExecMode] {
        &[ExecMode::Vanilla, ExecMode::Native, ExecMode::LibOs]
    }

    fn spec(&self, setting: InputSetting) -> WorkloadSpec {
        let (n, e) = self.graph_size(setting);
        WorkloadSpec::new(
            n * NODE_BYTES + e * EDGE_BYTES + n * 8,
            format!("Nodes {n} Edges {e}"),
        )
    }

    fn setup(&self, env: &mut Env, setting: InputSetting) -> Result<(), WorkloadError> {
        // Serialize the graph to an input file the workload will parse,
        // like Rodinia's .graph text inputs (binary here): per node the
        // edge offset + degree, then the edge list.
        let (n, e) = self.graph_size(setting);
        let mut rng = SplitMix64::new(0xbf5_0001);
        let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
        // Ring to guarantee connectivity (2n directed entries), then
        // random directed entries up to the Table 2 edge-record count.
        // Rodinia graphs store per-node directed edge lists, so `e`
        // counts directed records.
        for i in 0..n {
            let next = (i + 1) % n;
            adjacency[i as usize].push(next as u32);
            adjacency[next as usize].push(i as u32);
        }
        let random_edges = e.saturating_sub(2 * n);
        for _ in 0..random_edges {
            let a = rng.below(n);
            let b = rng.below(n);
            adjacency[a as usize].push(b as u32);
        }
        let mut file = Vec::with_capacity((n * 8 + e * 2 * 4 + 8) as usize);
        file.extend_from_slice(&(n as u32).to_le_bytes());
        let total_dirs: u64 = adjacency.iter().map(|a| a.len() as u64).sum();
        file.extend_from_slice(&(total_dirs as u32).to_le_bytes());
        let mut offset = 0u32;
        for adj in &adjacency {
            file.extend_from_slice(&offset.to_le_bytes());
            file.extend_from_slice(&(adj.len() as u32).to_le_bytes());
            offset += adj.len() as u32;
        }
        for adj in &adjacency {
            for &d in adj {
                file.extend_from_slice(&d.to_le_bytes());
            }
        }
        env.put_file("graph.bin", file);
        Ok(())
    }

    fn execute(
        &self,
        env: &mut Env,
        setting: InputSetting,
    ) -> Result<WorkloadOutput, WorkloadError> {
        let (n, _) = self.graph_size(setting);

        let (visited_count, checksum) =
            env.secure_call(move |env| -> Result<(u64, u64), WorkloadError> {
                // Parse the header from the input file (unmodeled scratch),
                // then build the in-EPC structures with padded records.
                let raw = env.read_file("graph.bin")?;
                let nodes = u32::from_le_bytes(raw[0..4].try_into().expect("4 bytes")) as u64;
                let total_dirs = u32::from_le_bytes(raw[4..8].try_into().expect("4 bytes")) as u64;
                debug_assert_eq!(nodes, n);

                let node_region = env.alloc(nodes * NODE_BYTES, Placement::Protected)?;
                let edge_region = env.alloc(total_dirs * EDGE_BYTES, Placement::Protected)?;
                let level_region = env.alloc(nodes * 8, Placement::Protected)?;

                // Load phase ("first reads the input graph to the EPC").
                let hdr = 8usize;
                for i in 0..nodes as usize {
                    let off = hdr + i * 8;
                    let start = u32::from_le_bytes(raw[off..off + 4].try_into().expect("4 bytes"));
                    let deg =
                        u32::from_le_bytes(raw[off + 4..off + 8].try_into().expect("4 bytes"));
                    env.write_u64(node_region, i as u64 * NODE_BYTES, start as u64);
                    env.write_u64(node_region, i as u64 * NODE_BYTES + 8, deg as u64);
                    env.write_u64(level_region, i as u64 * 8, u64::MAX);
                }
                let edges_base = hdr + nodes as usize * 8;
                for j in 0..total_dirs as usize {
                    let off = edges_base + j * 4;
                    let dest = u32::from_le_bytes(raw[off..off + 4].try_into().expect("4 bytes"));
                    env.write_u64(edge_region, j as u64 * EDGE_BYTES, dest as u64);
                }
                env.compute(total_dirs * 4);

                // Traverse all connected components.
                let mut queue: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
                let mut visited_count = 0u64;
                let mut checksum = 0u64;
                let mut level_sum = 0u64;
                for root in 0..nodes {
                    if env.read_u64(level_region, root * 8) != u64::MAX {
                        continue;
                    }
                    env.write_u64(level_region, root * 8, 0);
                    queue.push_back(root);
                    while let Some(u) = queue.pop_front() {
                        visited_count += 1;
                        let lvl = env.read_u64(level_region, u * 8);
                        level_sum += lvl;
                        let start = env.read_u64(node_region, u * NODE_BYTES);
                        let deg = env.read_u64(node_region, u * NODE_BYTES + 8);
                        for j in start..start + deg {
                            let v = env.read_u64(edge_region, j * EDGE_BYTES);
                            if env.read_u64(level_region, v * 8) == u64::MAX {
                                env.write_u64(level_region, v * 8, lvl + 1);
                                queue.push_back(v);
                            }
                        }
                        env.compute(8 + deg * 4);
                    }
                }
                checksum = fold(checksum, visited_count);
                checksum = fold(checksum, level_sum);
                Ok((visited_count, checksum))
            })??;

        if visited_count != n {
            return Err(WorkloadError::Validation(format!(
                "visited {visited_count} of {n} nodes"
            )));
        }
        Ok(WorkloadOutput {
            ops: visited_count,
            checksum,
            metrics: vec![("visited".into(), visited_count as f64)],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgxgauge_core::{Runner, RunnerConfig};

    #[test]
    fn visits_every_node() {
        let wl = Bfs::scaled(256);
        let runner = Runner::new(RunnerConfig::quick_test());
        let r = runner
            .run_once(&wl, ExecMode::Vanilla, InputSetting::Low)
            .unwrap();
        let (n, _) = wl.graph_size(InputSetting::Low);
        assert_eq!(r.output.ops, n);
    }

    #[test]
    fn checksums_agree_across_modes() {
        let wl = Bfs::scaled(256);
        let runner = Runner::new(RunnerConfig::quick_test());
        let mut sums = Vec::new();
        for mode in ExecMode::ALL {
            sums.push(
                runner
                    .run_once(&wl, mode, InputSetting::Low)
                    .unwrap()
                    .output
                    .checksum,
            );
        }
        assert!(sums.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn graph_sizes_follow_table2() {
        let wl = Bfs::new();
        assert_eq!(wl.graph_size(InputSetting::Low), (70_000, 909_000));
        assert_eq!(wl.graph_size(InputSetting::High), (150_000, 1_900_000));
        assert!(wl.spec(InputSetting::Low).protected_bytes < 92 << 20);
        assert!(wl.spec(InputSetting::High).protected_bytes > 92 << 20);
    }

    #[test]
    fn locality_limits_fault_growth() {
        // The paper notes BFS shows little fault growth with input size
        // relative to pointer-chasing workloads (§B.5); sanity-check that
        // the High/Low fault ratio stays moderate.
        let wl = Bfs::scaled(64);
        let runner = Runner::new(RunnerConfig::quick_test());
        let low = runner
            .run_once(&wl, ExecMode::Native, InputSetting::Low)
            .unwrap();
        let high = runner
            .run_once(&wl, ExecMode::Native, InputSetting::High)
            .unwrap();
        let ratio = high.sgx.epc_faults as f64 / low.sgx.epc_faults.max(1) as f64;
        assert!(ratio < 50.0, "fault ratio {ratio}");
    }
}
