//! Shared helpers for the workloads: deterministic randomness, sizing
//! arithmetic, and checksum folding.

/// SplitMix64: tiny, fast, deterministic PRNG for input generation.
/// (Workloads must be reproducible across runs and modes so that
/// checksums can be compared; `rand`'s `StdRng` is used where a richer
/// API helps, this where raw speed does.)
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Folds a value into a running checksum (order-sensitive FNV-style mix).
#[inline]
pub fn fold(acc: u64, v: u64) -> u64 {
    (acc ^ v).wrapping_mul(0x100000001b3).rotate_left(17)
}

/// Divides `v` by `d`, keeping at least `min`.
pub fn scale_down(v: u64, d: u64, min: u64) -> u64 {
    (v / d.max(1)).max(min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let v = a.next_u64();
            assert_eq!(v, b.next_u64());
            seen.insert(v);
        }
        assert_eq!(seen.len(), 1000);
    }

    #[test]
    fn below_in_range() {
        let mut r = SplitMix64::new(2);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn fold_order_sensitive() {
        let a = fold(fold(0, 1), 2);
        let b = fold(fold(0, 2), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn scale_down_floors() {
        assert_eq!(scale_down(100, 8, 1), 12);
        assert_eq!(scale_down(100, 1000, 5), 5);
        assert_eq!(scale_down(100, 0, 1), 100);
    }
}
