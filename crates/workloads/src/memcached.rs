//! Memcached workload (§4.2.7) — in-memory key-value store driven by
//! YCSB.
//!
//! The store (hash index + slab-style value arena) lives in protected
//! memory; a YCSB client on an untrusted driver thread populates it with
//! the Table 2 record counts and then issues 800 K zipfian-skewed
//! operations (workload-A style 50/50 read/update mix). Every request
//! crosses the trust boundary twice (receive + respond), which is what
//! makes the workload Data/ECALL-intensive under a LibOS.

use crate::util::{fold, scale_down};
use sgxgauge_core::env::{Placement, Region, SimThread};
use sgxgauge_core::{
    Env, ExecMode, InputSetting, Workload, WorkloadError, WorkloadOutput, WorkloadSpec,
};
use ycsb_gen::{Distribution, OpKind, WorkloadMix};

/// Value bytes per record (sized so the Table 2 record counts straddle
/// the EPC: 50 K ≈ 45 MB, 100 K ≈ 90 MB, 200 K ≈ 180 MB).
const VALUE_BYTES: u64 = 896;

/// Request/response wire sizes.
const REQ_BYTES: u64 = 64;
const RESP_BYTES: u64 = 128;

/// One-way network-stack delay between client and server, cycles.
const NET_DELAY: u64 = 2_000;

/// The Memcached workload. See the module docs.
#[derive(Debug, Clone)]
pub struct Memcached {
    divisor: u64,
    mix: WorkloadMix,
}

impl Memcached {
    /// Paper-scale instance (50 K/100 K/200 K records, 800 K ops,
    /// YCSB workload A).
    pub fn new() -> Self {
        Memcached {
            divisor: 1,
            mix: WorkloadMix::A,
        }
    }

    /// Instance with sizes divided by `divisor`.
    pub fn scaled(divisor: u64) -> Self {
        Memcached {
            divisor: divisor.max(1),
            mix: WorkloadMix::A,
        }
    }

    /// Selects a different YCSB core mix (B–F).
    pub fn with_mix(mut self, mix: WorkloadMix) -> Self {
        self.mix = mix;
        self
    }

    /// Records for `setting` (Table 2).
    pub fn records(&self, setting: InputSetting) -> u64 {
        let n: u64 = match setting {
            InputSetting::Low => 50_000,
            InputSetting::Medium => 100_000,
            InputSetting::High => 200_000,
        };
        scale_down(n, self.divisor, 128)
    }

    /// Operations in the run phase (Table 2: 800 K for every setting).
    pub fn operations(&self) -> u64 {
        scale_down(800_000, self.divisor, 512)
    }

    fn slots(&self, setting: InputSetting) -> u64 {
        (self.records(setting) * 2).next_power_of_two()
    }
}

impl Default for Memcached {
    fn default() -> Self {
        Memcached::new()
    }
}

#[inline]
fn hash_key(k: u64) -> u64 {
    let mut x = k.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x ^ (x >> 31)
}

/// The in-enclave store: index region + value arena, manipulated through
/// the environment on the *server* thread.
struct Store {
    index: Region,
    arena: Region,
    slots: u64,
    records: u64,
}

impl Store {
    /// Inserts or updates `key`; returns the value offset.
    fn upsert(&self, env: &mut Env, key: u64, stamp: u64) -> u64 {
        let mask = self.slots - 1;
        let mut s = hash_key(key) & mask;
        loop {
            let existing = env.read_u64(self.index, s * 16);
            if existing == 0 || existing == key {
                // Slab allocation: keys are dense, so the value slab slot
                // is derived from the key (memcached's slab classes keep
                // same-sized values packed the same way).
                let voff = ((key - 1) % self.records) * VALUE_BYTES;
                if existing == 0 {
                    env.write_u64(self.index, s * 16, key);
                    env.write_u64(self.index, s * 16 + 8, voff);
                }
                env.write_u64(self.arena, voff, stamp);
                env.touch(self.arena, voff + 8, VALUE_BYTES - 8, true);
                env.compute(60); // memcached command parsing + slab logic
                return voff;
            }
            s = (s + 1) & mask;
        }
    }

    /// Reads `key`, returning the value stamp if present.
    fn get(&self, env: &mut Env, key: u64) -> Option<u64> {
        let mask = self.slots - 1;
        let mut s = hash_key(key) & mask;
        loop {
            let existing = env.read_u64(self.index, s * 16);
            if existing == 0 {
                return None;
            }
            if existing == key {
                let voff = env.read_u64(self.index, s * 16 + 8);
                let stamp = env.read_u64(self.arena, voff);
                env.touch(self.arena, voff + 8, VALUE_BYTES - 8, false);
                env.compute(60);
                return Some(stamp);
            }
            s = (s + 1) & mask;
        }
    }
}

/// Executes one client→server request round trip; returns the latency in
/// cycles observed by the client.
fn request_roundtrip(
    env: &mut Env,
    server: SimThread,
    client: SimThread,
    server_work: impl FnOnce(&mut Env),
) -> Result<u64, WorkloadError> {
    // Client sends.
    let issue = env.with_thread(client, |env| {
        env.io_transfer(REQ_BYTES, true)?;
        Ok::<u64, WorkloadError>(env.now())
    })?;
    // Server picks the request up when both it and the request are ready.
    let start = issue + NET_DELAY;
    env.sync_to(server, start);
    let done = env.with_thread(server, |env| {
        env.io_transfer(REQ_BYTES, false)?; // recv
        server_work(env);
        env.io_transfer(RESP_BYTES, true)?; // respond
        Ok::<u64, WorkloadError>(env.now())
    })?;
    // Client observes the response.
    let ready = done + NET_DELAY;
    env.sync_to(client, ready);
    Ok(ready - issue)
}

impl Workload for Memcached {
    fn name(&self) -> &'static str {
        "Memcached"
    }

    fn property(&self) -> &'static str {
        "Data/ECALL-intensive"
    }

    fn supported_modes(&self) -> &'static [ExecMode] {
        &[ExecMode::Vanilla, ExecMode::LibOs]
    }

    fn spec(&self, setting: InputSetting) -> WorkloadSpec {
        let bytes = self.records(setting) * VALUE_BYTES + self.slots(setting) * 16;
        WorkloadSpec::new(
            bytes,
            format!(
                "Records: {} Operations: {}",
                self.records(setting),
                self.operations()
            ),
        )
    }

    fn setup(&self, _env: &mut Env, _setting: InputSetting) -> Result<(), WorkloadError> {
        Ok(())
    }

    fn execute(
        &self,
        env: &mut Env,
        setting: InputSetting,
    ) -> Result<WorkloadOutput, WorkloadError> {
        let records = self.records(setting);
        let ops = self.operations();
        let slots = self.slots(setting);
        let index = env.alloc(slots * 16, Placement::Protected)?;
        let arena = env.alloc(records * VALUE_BYTES, Placement::Protected)?;
        let store = Store {
            index,
            arena,
            slots,
            records,
        };

        let server = env.main_thread();
        let client = env.spawn_driver_thread();

        // Load phase: YCSB inserts every record.
        for key in 0..records {
            request_roundtrip(env, server, client, |env| {
                store.upsert(env, key + 1, key.wrapping_mul(0x5851_f42d));
            })?;
        }

        // Run phase: the configured YCSB core mix over a zipfian key
        // distribution (workload A by default, as the paper implies with
        // "a specified set of (read or write) operations").
        let stream = ycsb_gen::Workload::new(self.mix, Distribution::Zipfian, records, 0x5ca1e);
        let mut checksum = 0u64;
        let mut hits = 0u64;
        let mut latency_sum = 0u64;
        for (i, op) in stream.operations().take(ops as usize).enumerate() {
            let lat = request_roundtrip(env, server, client, |env| match op.kind {
                OpKind::Read => {
                    if let Some(stamp) = store.get(env, (op.key % records) + 1) {
                        hits += 1;
                        checksum = fold(checksum, stamp);
                    }
                }
                OpKind::Update | OpKind::Insert | OpKind::ReadModifyWrite => {
                    if op.kind == OpKind::ReadModifyWrite {
                        if let Some(stamp) = store.get(env, (op.key % records) + 1) {
                            hits += 1;
                            checksum = fold(checksum, stamp);
                        }
                    }
                    store.upsert(env, (op.key % records) + 1, i as u64);
                }
                OpKind::Scan => {
                    // Short range scan: sequential probes from the key.
                    for k in 0..op.scan_len as u64 {
                        if let Some(stamp) = store.get(env, ((op.key + k) % records) + 1) {
                            hits += 1;
                            checksum = fold(checksum, stamp);
                        }
                    }
                }
            })?;
            latency_sum += lat;
        }

        if hits == 0 {
            return Err(WorkloadError::Validation("no YCSB read ever hit".into()));
        }
        Ok(WorkloadOutput {
            ops: records + ops,
            checksum,
            metrics: vec![
                ("read_hits".into(), hits as f64),
                (
                    "mean_latency_cycles".into(),
                    latency_sum as f64 / ops as f64,
                ),
            ],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgxgauge_core::{Runner, RunnerConfig};

    #[test]
    fn store_get_after_upsert() {
        let mut env = Env::new(sgxgauge_core::EnvConfig::quick_test(ExecMode::Vanilla)).unwrap();
        let index = env.alloc(1024 * 16, Placement::Untrusted).unwrap();
        let arena = env.alloc(512 * VALUE_BYTES, Placement::Untrusted).unwrap();
        let store = Store {
            index,
            arena,
            slots: 1024,
            records: 512,
        };
        store.upsert(&mut env, 42, 7);
        store.upsert(&mut env, 43, 8);
        assert_eq!(store.get(&mut env, 42), Some(7));
        assert_eq!(store.get(&mut env, 43), Some(8));
        assert_eq!(store.get(&mut env, 44), None);
        store.upsert(&mut env, 42, 9);
        assert_eq!(store.get(&mut env, 42), Some(9));
    }

    #[test]
    fn runs_in_vanilla_and_libos() {
        let wl = Memcached::scaled(512);
        let runner = Runner::new(RunnerConfig::quick_test());
        let v = runner
            .run_once(&wl, ExecMode::Vanilla, InputSetting::Low)
            .unwrap();
        let l = runner
            .run_once(&wl, ExecMode::LibOs, InputSetting::Low)
            .unwrap();
        assert!(v.output.metric("read_hits").unwrap() > 0.0);
        assert_eq!(v.output.checksum, l.output.checksum);
        // LibOS: every request is shim syscalls => OCALLs.
        assert!(
            l.sgx.ocalls > 2 * (v.output.ops / 2),
            "ocalls {}",
            l.sgx.ocalls
        );
    }

    #[test]
    fn native_mode_unsupported() {
        let wl = Memcached::new();
        assert!(!wl.supports(ExecMode::Native));
        let runner = Runner::new(RunnerConfig::quick_test());
        assert!(runner
            .run_once(&wl, ExecMode::Native, InputSetting::Low)
            .is_err());
    }

    #[test]
    fn latency_higher_under_libos() {
        let wl = Memcached::scaled(512);
        let runner = Runner::new(RunnerConfig::quick_test());
        let v = runner
            .run_once(&wl, ExecMode::Vanilla, InputSetting::Low)
            .unwrap();
        let l = runner
            .run_once(&wl, ExecMode::LibOs, InputSetting::Low)
            .unwrap();
        assert!(
            l.output.metric("mean_latency_cycles").unwrap()
                > v.output.metric("mean_latency_cycles").unwrap()
        );
    }

    #[test]
    fn all_ycsb_mixes_run() {
        let runner = Runner::new(RunnerConfig::quick_test());
        for mix in [
            WorkloadMix::A,
            WorkloadMix::B,
            WorkloadMix::C,
            WorkloadMix::D,
            WorkloadMix::E,
            WorkloadMix::F,
        ] {
            let wl = Memcached::scaled(1024).with_mix(mix);
            let r = runner
                .run_once(&wl, ExecMode::Vanilla, InputSetting::Low)
                .unwrap_or_else(|e| panic!("{mix:?}: {e}"));
            assert!(
                r.output.metric("read_hits").unwrap() > 0.0,
                "{mix:?} had no hits"
            );
        }
    }

    #[test]
    fn read_only_mix_never_writes_after_load() {
        let runner = Runner::new(RunnerConfig::quick_test());
        let wl = Memcached::scaled(1024).with_mix(WorkloadMix::C);
        let a = runner
            .run_once(&wl, ExecMode::Vanilla, InputSetting::Low)
            .unwrap();
        let b = runner
            .run_once(&wl, ExecMode::Vanilla, InputSetting::Low)
            .unwrap();
        // Workload C is 100% reads: re-running yields the same checksum
        // (and the same hit count) since nothing mutates.
        assert_eq!(a.output.checksum, b.output.checksum);
    }

    #[test]
    fn record_counts_follow_table2() {
        let wl = Memcached::new();
        assert_eq!(wl.records(InputSetting::Low), 50_000);
        assert_eq!(wl.records(InputSetting::High), 200_000);
        assert_eq!(wl.operations(), 800_000);
    }
}
