//! ThresholdSign workload — t-of-n threshold signing over the
//! cross-enclave relay, as an [`Env`]-based suite workload.
//!
//! This is the same protocol the host-backed [`relay::run_mpc`] driver
//! runs, rebuilt on the single-enclave measurement environment so it
//! composes with modes, sweeps and campaigns like any other workload:
//! the *protocol transcript* (who sends what when, which messages the
//! fault plane eats, which rounds reach quorum) is driven by virtual
//! per-party protocol clocks and is therefore identical across
//! Vanilla/Native/LibOS, while the *work* (share generation, share
//! verification, send marshalling) is charged through the environment —
//! so ECALL/OCALL counts and paging emerge organically per mode.
//!
//! Losing quorum is the typed [`WorkloadError::QuorumLost`], classified
//! fatal: the loss is a property of the fault plan, not weather.

use faults::NetFaultPlan;
use relay::{FailureDetector, Relay, SignRound};
use sgx_sim::costs;
use sgxgauge_core::env::Placement;
use sgxgauge_core::{
    Env, ExecMode, InputSetting, Workload, WorkloadError, WorkloadOutput, WorkloadSpec,
};

use crate::util::{fold, SplitMix64};

/// Protocol-clock cost of marshalling one send out of the enclave: the
/// OCALL round trip the host-backed driver charges per message.
const SEND_MARSHALL_CYCLES: u64 =
    costs::EEXIT_CYCLES + costs::HOST_SYSCALL_CYCLES + costs::EENTER_CYCLES;

/// The ThresholdSign workload. See the module docs.
#[derive(Debug, Clone)]
pub struct ThresholdSign {
    divisor: u64,
    parties: u32,
    threshold: u32,
    net: NetFaultPlan,
}

impl ThresholdSign {
    /// Paper-scale instance: 5 parties, threshold 3, clean network.
    pub fn new() -> Self {
        ThresholdSign {
            divisor: 1,
            parties: 5,
            threshold: 3,
            net: NetFaultPlan::default(),
        }
    }

    /// Instance with round counts divided by `divisor` (for tests).
    pub fn scaled(divisor: u64) -> Self {
        ThresholdSign {
            divisor: divisor.max(1),
            ..ThresholdSign::new()
        }
    }

    /// Sets the party count and signing threshold.
    #[must_use]
    pub fn with_shape(mut self, parties: u32, threshold: u32) -> Self {
        self.parties = parties;
        self.threshold = threshold;
        self
    }

    /// Sets the network fault plan (salt it upstream, per cell/attempt).
    #[must_use]
    pub fn with_net(mut self, net: NetFaultPlan) -> Self {
        self.net = net;
        self
    }

    /// Signing rounds for `setting` (4 / 8 / 16 at paper scale).
    pub fn rounds(&self, setting: InputSetting) -> u32 {
        let base = match setting {
            InputSetting::Low => 4,
            InputSetting::Medium => 8,
            InputSetting::High => 16,
        };
        (base / self.divisor.min(u64::from(u32::MAX)) as u32).max(1)
    }
}

impl Default for ThresholdSign {
    fn default() -> Self {
        ThresholdSign::new()
    }
}

impl Workload for ThresholdSign {
    fn name(&self) -> &'static str {
        "ThresholdSign"
    }

    fn property(&self) -> &'static str {
        "Network/OCALL-intensive"
    }

    fn supported_modes(&self) -> &'static [ExecMode] {
        &[ExecMode::Vanilla, ExecMode::Native, ExecMode::LibOs]
    }

    fn spec(&self, setting: InputSetting) -> WorkloadSpec {
        // One protected share page per party plus protocol state.
        WorkloadSpec::new(
            u64::from(self.parties) * 4096 + (64 << 10),
            format!(
                "Parties {}, t {}, Rounds {}",
                self.parties,
                self.threshold,
                self.rounds(setting)
            ),
        )
    }

    fn setup(&self, _env: &mut Env, _setting: InputSetting) -> Result<(), WorkloadError> {
        Ok(())
    }

    fn execute(
        &self,
        env: &mut Env,
        setting: InputSetting,
    ) -> Result<WorkloadOutput, WorkloadError> {
        let n = self.parties;
        let t = self.threshold;
        if !(2..=64).contains(&n) || t < 1 || t > n {
            return Err(WorkloadError::Validation(format!("bad shape: {t}-of-{n}")));
        }
        let rounds = self.rounds(setting);

        // One protected page of signing state per party.
        let state = env.alloc(u64::from(n) * 4096, Placement::Protected)?;
        let threads: Vec<_> = (0..n)
            .map(|_| env.spawn_app_thread())
            .collect::<Result<_, _>>()?;

        // The virtual protocol clocks: these drive the relay and the
        // fault schedule, so the transcript is mode-independent.
        let mut vclock = vec![0u64; n as usize];
        let mut relay = Relay::new(&self.net, 0);
        let mut detector = FailureDetector::new(n as usize, costs::RELAY_SUSPECT_CYCLES, 0);
        let share_base = SplitMix64::new(self.net.seed ^ 0x7453_1676).next_u64();
        let share = |round: u32, party: u32| {
            let mut rng = SplitMix64::new(share_base ^ (u64::from(round) << 32) ^ u64::from(party));
            rng.next_u64()
        };

        let frontier = |vclock: &[u64]| -> u64 { vclock.iter().copied().max().unwrap_or(0) };
        let mut checksum = 0u64;
        let mut completed = 0u32;
        let mut suspects = 0u64;
        let mut total_retries = 0u64;
        let mut latency_sum = 0u64;

        for round in 0..rounds {
            let round_start = frontier(&vclock);
            let deadline = round_start.saturating_add(costs::RELAY_ROUND_BUDGET_CYCLES);
            let mut sr = SignRound::new(round, n, t, round_start);

            // Rejoin: revived parties pick up at the current protocol
            // time rather than the clock they froze at when killed.
            for (p, vc) in vclock.iter_mut().enumerate().take(n as usize) {
                if !relay.hook().party_dead(p as u32, round_start) {
                    *vc = (*vc).max(round_start);
                }
            }

            // Broadcast phase.
            for p in 0..n {
                if relay.hook().party_dead(p, round_start) {
                    continue;
                }
                let th = threads[p as usize];
                env.with_thread(th, |env| {
                    env.secure_call(|env| {
                        env.write_u64(state, u64::from(p) * 4096, share(round, p));
                        env.compute(costs::SIGN_SHARE_CYCLES);
                    })
                })?;
                vclock[p as usize] += costs::SIGN_SHARE_CYCLES;
                sr.note_broadcast(p);
                for q in 0..n {
                    if q == p {
                        continue;
                    }
                    env.with_thread(th, |env| env.host_syscall())?;
                    vclock[p as usize] += SEND_MARSHALL_CYCLES;
                    relay.send(vclock[p as usize], p, q, round, share(round, p));
                }
            }

            // Event loop: deliveries, suspicion, retries, watchdog.
            let stat_completed = loop {
                let now = frontier(&vclock);
                for d in relay.due(now) {
                    let env_msg = d.envelope;
                    if relay.hook().party_dead(env_msg.to, d.at_cycles) {
                        relay.discard(&d, relay::NetDropReason::ReceiverDead);
                        continue;
                    }
                    detector.heard(env_msg.from, d.at_cycles);
                    if env_msg.round == sr.round() && sr.on_share(env_msg.to, env_msg.from) {
                        let th = threads[env_msg.to as usize];
                        env.with_thread(th, |env| {
                            env.secure_call(|env| {
                                env.touch(state, u64::from(env_msg.to) * 4096, 64, true);
                                env.compute(costs::SIGN_VERIFY_CYCLES);
                            })
                        })?;
                        vclock[env_msg.to as usize] += costs::SIGN_VERIFY_CYCLES;
                    }
                }
                suspects += detector.tick(now).len() as u64;

                if sr.complete() {
                    break true;
                }

                let live = (0..n).filter(|p| !relay.hook().party_dead(*p, now)).count() as u32;
                if live < t {
                    return Err(WorkloadError::QuorumLost { live, threshold: t });
                }
                if now >= deadline {
                    break false;
                }

                // Pull-retry: live broadcasters resend missing shares.
                for p in 0..n {
                    if relay.hook().party_dead(p, now) || sr.due_retry(p, now).is_none() {
                        continue;
                    }
                    total_retries += 1;
                    env.with_thread(threads[p as usize], |env| env.host_syscall())?;
                    vclock[p as usize] += SEND_MARSHALL_CYCLES;
                    for q in sr.missing(p) {
                        if relay.hook().party_dead(q, now) {
                            continue;
                        }
                        env.with_thread(threads[q as usize], |env| env.host_syscall())?;
                        vclock[q as usize] += SEND_MARSHALL_CYCLES;
                        relay.send(vclock[q as usize], q, p, round, share(round, q));
                    }
                }

                // Jump to the next event, bounded by the round deadline.
                let mut next = deadline;
                if let Some(at) = relay.next_due() {
                    next = next.min(at);
                }
                if let Some(at) = sr.next_deadline() {
                    next = next.min(at);
                }
                if let Some(at) = relay.hook().next_schedule_edge(now) {
                    next = next.min(at);
                }
                let next = next.max(now + 1);
                for (p, vc) in vclock.iter_mut().enumerate().take(n as usize) {
                    if !relay.hook().party_dead(p as u32, next) && *vc < next {
                        *vc = next;
                    }
                }
            };

            if stat_completed {
                completed += 1;
                latency_sum += frontier(&vclock).saturating_sub(round_start);
                let mut agg = 0u64;
                for p in sr.signers().into_iter().take(t as usize) {
                    agg ^= share(round, p);
                }
                checksum = fold(checksum, agg);
            }
        }

        // Settle the last in-flight deliveries so the ledgers quiesce.
        for d in relay.due(u64::MAX) {
            if relay.hook().party_dead(d.envelope.to, d.at_cycles) {
                relay.discard(&d, relay::NetDropReason::ReceiverDead);
            }
        }

        let stats = relay.stats();
        Ok(WorkloadOutput {
            ops: stats.delivered,
            checksum,
            metrics: vec![
                (
                    "survival_permille".into(),
                    f64::from(completed) * 1000.0 / f64::from(rounds),
                ),
                (
                    "mean_round_latency_cycles".into(),
                    if completed == 0 {
                        0.0
                    } else {
                        latency_sum as f64 / f64::from(completed)
                    },
                ),
                ("dropped_msgs".into(), stats.dropped as f64),
                ("suspect_events".into(), suspects as f64),
                ("retries".into(), total_retries as f64),
            ],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgxgauge_core::{Runner, RunnerConfig};

    #[test]
    fn runs_and_validates_in_all_modes() {
        let wl = ThresholdSign::scaled(4);
        let runner = Runner::new(RunnerConfig::quick_test());
        let mut checksums = Vec::new();
        for mode in ExecMode::ALL {
            let r = runner.run_once(&wl, mode, InputSetting::Low).unwrap();
            assert!(r.output.ops > 0);
            assert_eq!(r.output.metric("survival_permille"), Some(1000.0));
            checksums.push(r.output.checksum);
        }
        // The protocol transcript is mode-independent.
        assert!(checksums.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn degrades_gracefully_under_a_kill_window() {
        let wl = ThresholdSign::new()
            .with_net(NetFaultPlan::parse("drop=50,partykill=2@100000:500000").unwrap());
        let runner = Runner::new(RunnerConfig::quick_test());
        let r = runner
            .run_once(&wl, ExecMode::Vanilla, InputSetting::Medium)
            .unwrap();
        assert_eq!(r.output.metric("survival_permille"), Some(1000.0));
        assert_eq!(r.output.metric("suspect_events"), Some(1.0));
        assert!(r.output.metric("dropped_msgs").unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn quorum_loss_is_the_typed_fatal_error() {
        let wl = ThresholdSign::scaled(4)
            .with_shape(3, 3)
            .with_net(NetFaultPlan::parse("partykill=1@0:100000000").unwrap());
        let runner = Runner::new(RunnerConfig::quick_test());
        let err = runner
            .run_once(&wl, ExecMode::Vanilla, InputSetting::Low)
            .unwrap_err();
        match err {
            WorkloadError::QuorumLost { live, threshold } => {
                assert_eq!((live, threshold), (2, 3));
            }
            other => panic!("expected QuorumLost, got {other}"),
        }
        assert_eq!(
            err.class(),
            sgxgauge_core::ErrorClass::Fatal,
            "quorum loss must not be retried"
        );
    }

    #[test]
    fn native_mode_pays_transitions_for_the_message_plane() {
        let wl = ThresholdSign::scaled(4);
        let runner = Runner::new(RunnerConfig::quick_test());
        let native = runner
            .run_once(&wl, ExecMode::Native, InputSetting::Low)
            .unwrap();
        // Every share generation and verification is an ECALL.
        assert!(native.sgx.ecalls > 0);
    }
}
