//! OpenSSL workload (§4.2.2) — decrypt-in, compute, encrypt-out.
//!
//! Mirrors the paper's Intel SGX-SSL workload: read an encrypted input
//! file, decrypt it inside the enclave, perform a small compute-intensive
//! pass over the plaintext, encrypt the result and write it back to the
//! untrusted filesystem. Data-intensive: the file sizes (76 / 88 /
//! 151 MB) put the Low/Medium/High settings on either side of the EPC
//! boundary, stressing the copy path into the EPC and the paging system.

use crate::util::{fold, scale_down};
use sgx_crypto::{hmac_sha256, ChaCha20};
use sgxgauge_core::env::Placement;
use sgxgauge_core::{
    Env, ExecMode, InputSetting, Workload, WorkloadError, WorkloadOutput, WorkloadSpec,
};

/// Software ChaCha20 throughput on the modeled core, cycles per byte.
const CRYPTO_CYCLES_PER_BYTE: u64 = 4;

/// Chunk the crypto pipeline operates in.
const CHUNK: usize = 4096;

const KEY: [u8; 32] = [0x42; 32];
const NONCE: [u8; 12] = [0x24; 12];

/// The OpenSSL workload. See the module docs.
#[derive(Debug, Clone)]
pub struct OpenSsl {
    divisor: u64,
}

impl OpenSsl {
    /// Paper-scale instance (76 / 88 / 151 MB files).
    pub fn new() -> Self {
        OpenSsl { divisor: 1 }
    }

    /// Instance with file sizes divided by `divisor`.
    pub fn scaled(divisor: u64) -> Self {
        OpenSsl {
            divisor: divisor.max(1),
        }
    }

    /// Input file size for `setting` (Table 2).
    pub fn file_bytes(&self, setting: InputSetting) -> u64 {
        let mb = match setting {
            InputSetting::Low => 76,
            InputSetting::Medium => 88,
            InputSetting::High => 151,
        };
        scale_down(mb << 20, self.divisor, 64 << 10)
    }
}

impl Default for OpenSsl {
    fn default() -> Self {
        OpenSsl::new()
    }
}

impl Workload for OpenSsl {
    fn name(&self) -> &'static str {
        "OpenSSL"
    }

    fn property(&self) -> &'static str {
        "Data-intensive"
    }

    fn supported_modes(&self) -> &'static [ExecMode] {
        &[ExecMode::Vanilla, ExecMode::Native, ExecMode::LibOs]
    }

    fn spec(&self, setting: InputSetting) -> WorkloadSpec {
        let bytes = self.file_bytes(setting);
        WorkloadSpec::new(bytes + (4 << 20), format!("File Size {} MB", bytes >> 20))
    }

    fn setup(&self, env: &mut Env, setting: InputSetting) -> Result<(), WorkloadError> {
        // Produce the encrypted input file (what the data owner ships).
        let bytes = self.file_bytes(setting) as usize;
        let mut data = vec![0u8; bytes];
        // Deterministic compressible-ish plaintext.
        for (i, b) in data.iter_mut().enumerate() {
            *b = ((i * 31) ^ (i >> 7)) as u8;
        }
        ChaCha20::new(&KEY, &NONCE).apply(&mut data, 0);
        env.put_file("input.enc", data);
        Ok(())
    }

    fn execute(
        &self,
        env: &mut Env,
        setting: InputSetting,
    ) -> Result<WorkloadOutput, WorkloadError> {
        let bytes = self.file_bytes(setting);
        let buf = env.alloc(bytes, Placement::Protected)?;

        let checksum = env.secure_call(|env| -> Result<u64, WorkloadError> {
            // 1. Pull the encrypted file into the enclave.
            let n = env.read_file_into("input.enc", buf, 0)?;

            // 2. Decrypt in place, chunk by chunk (real ChaCha20 +
            //    modeled crypto cycles), folding a histogram-style
            //    compute pass over the plaintext.
            let cipher = ChaCha20::new(&KEY, &NONCE);
            let mut chunk = vec![0u8; CHUNK];
            let mut histogram = [0u64; 16];
            let mut counter = 0u32;
            let mut off = 0u64;
            while off < n {
                let len = ((n - off) as usize).min(CHUNK);
                env.read_bytes(buf, off, &mut chunk[..len]);
                cipher.apply(&mut chunk[..len], counter);
                env.compute(len as u64 * CRYPTO_CYCLES_PER_BYTE);
                for &b in &chunk[..len] {
                    histogram[(b & 0xf) as usize] += 1;
                }
                env.compute(len as u64); // one cycle/byte compute pass
                env.write_bytes(buf, off, &chunk[..len]);
                counter += (CHUNK / 64) as u32;
                off += len as u64;
            }

            // 3. MAC + re-encrypt the result and ship it out.
            let mut mac_input = Vec::with_capacity(128);
            for h in histogram {
                mac_input.extend_from_slice(&h.to_le_bytes());
            }
            let tag = hmac_sha256(&KEY, &mac_input);
            env.compute(2_000);
            // Encrypt output in place (second pass) and write the file.
            let out_cipher = ChaCha20::new(&KEY, &[0x77; 12]);
            let mut off = 0u64;
            let mut counter = 0u32;
            while off < n {
                let len = ((n - off) as usize).min(CHUNK);
                env.read_bytes(buf, off, &mut chunk[..len]);
                out_cipher.apply(&mut chunk[..len], counter);
                env.compute(len as u64 * CRYPTO_CYCLES_PER_BYTE);
                env.write_bytes(buf, off, &chunk[..len]);
                counter += (CHUNK / 64) as u32;
                off += len as u64;
            }
            env.write_file_from("output.enc", buf, 0, n)?;
            env.write_file("output.tag", &tag)?;

            let mut checksum = 0u64;
            for h in histogram {
                checksum = fold(checksum, h);
            }
            Ok(checksum)
        })??;

        Ok(WorkloadOutput {
            ops: bytes / CHUNK as u64,
            checksum,
            metrics: vec![],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgxgauge_core::{Runner, RunnerConfig};

    fn runner() -> Runner {
        Runner::new(RunnerConfig::quick_test())
    }

    #[test]
    fn checksums_agree_across_modes() {
        let wl = OpenSsl::scaled(512);
        let mut sums = Vec::new();
        for mode in ExecMode::ALL {
            let r = runner().run_once(&wl, mode, InputSetting::Low).unwrap();
            sums.push(r.output.checksum);
            assert!(r.output.ops > 0);
        }
        assert!(
            sums.windows(2).all(|w| w[0] == w[1]),
            "decryption result differs across modes"
        );
    }

    #[test]
    fn decryption_recovers_plaintext_statistics() {
        // The checksum is over the plaintext histogram; a wrong key would
        // yield a near-uniform histogram. Compare against a direct
        // computation.
        let wl = OpenSsl::scaled(512);
        let bytes = wl.file_bytes(InputSetting::Low) as usize;
        let mut hist = [0u64; 16];
        for i in 0..bytes {
            hist[((((i * 31) ^ (i >> 7)) as u8) & 0xf) as usize] += 1;
        }
        let mut expect = 0u64;
        for h in hist {
            expect = fold(expect, h);
        }
        let r = runner()
            .run_once(&wl, ExecMode::Vanilla, InputSetting::Low)
            .unwrap();
        assert_eq!(r.output.checksum, expect);
    }

    #[test]
    fn file_sizes_follow_table2() {
        let wl = OpenSsl::new();
        assert_eq!(wl.file_bytes(InputSetting::Low), 76 << 20);
        assert_eq!(wl.file_bytes(InputSetting::Medium), 88 << 20);
        assert_eq!(wl.file_bytes(InputSetting::High), 151 << 20);
    }

    #[test]
    fn writes_outputs() {
        let wl = OpenSsl::scaled(512);
        let runner = runner();
        let cfg = runner.config().clone();
        let mut env_cfg = cfg.env.clone();
        env_cfg.mode = ExecMode::Vanilla;
        let mut env = Env::new(env_cfg).unwrap();
        wl.setup(&mut env, InputSetting::Low).unwrap();
        env.start_app().unwrap();
        wl.execute(&mut env, InputSetting::Low).unwrap();
        assert!(env.file_len("output.enc").unwrap() > 0);
        assert_eq!(env.file_len("output.tag").unwrap(), 32);
    }

    #[test]
    fn sgx_mode_pays_for_data_movement() {
        let wl = OpenSsl::scaled(512);
        let v = runner()
            .run_once(&wl, ExecMode::Vanilla, InputSetting::Low)
            .unwrap();
        let n = runner()
            .run_once(&wl, ExecMode::Native, InputSetting::Low)
            .unwrap();
        assert!(n.runtime_cycles > v.runtime_cycles);
        assert!(n.sgx.epc_faults > 0);
    }
}
