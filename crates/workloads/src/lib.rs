//! The ten SGXGauge workloads (Table 2 of the paper).
//!
//! | # | Workload   | Property            | Modes                     |
//! |---|------------|---------------------|---------------------------|
//! | 1 | [`Blockchain`] | CPU/ECALL-intensive | Vanilla, Native, LibOS |
//! | 2 | [`OpenSsl`]    | Data-intensive      | Vanilla, Native, LibOS |
//! | 3 | [`BTree`]      | Data/CPU-intensive  | Vanilla, Native, LibOS |
//! | 4 | [`HashJoin`]   | Data/CPU-intensive  | Vanilla, Native, LibOS |
//! | 5 | [`Bfs`]        | Data-intensive      | Vanilla, Native, LibOS |
//! | 6 | [`PageRank`]   | Data-intensive      | Vanilla, Native, LibOS |
//! | 7 | [`Memcached`]  | Data/ECALL-intensive| Vanilla, LibOS         |
//! | 8 | [`XsBench`]    | CPU-intensive       | Vanilla, LibOS         |
//! | 9 | [`Lighttpd`]   | ECALL-intensive     | Vanilla, LibOS         |
//! | 10| [`Svm`]        | Data/CPU-intensive  | Vanilla, LibOS         |
//!
//! Six are ported to Native mode; the four real-world applications run
//! under the LibOS only, exactly as in the paper (§4.3).
//!
//! Beyond the paper's table, [`ThresholdSign`] is a distributed
//! extension workload — t-of-n threshold signing over the
//! cross-enclave relay (see the `relay` crate) — exported separately so
//! the canonical [`suite`] stays the paper's ten.
//!
//! Every workload executes *real computation* (real hashing, real
//! encryption, real graph traversals…) over data held in simulated
//! memory regions, so the SGX performance counters emerge from organic
//! access patterns rather than synthetic event injection.
//!
//! All workloads support [`scaled`](Blockchain::scaled) construction:
//! `scaled(d)` divides the input sizes by `d` so unit tests (and the
//! quick-test environment with its scaled-down EPC) finish in
//! milliseconds while preserving each Low/Medium/High setting's position
//! relative to the EPC boundary.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bfs;
pub mod blockchain;
pub mod btree;
pub mod hashjoin;
pub mod iozone;
pub mod lighttpd;
pub mod memcached;
pub mod openssl;
pub mod pagerank;
pub mod svm;
pub mod threshold_sign;
pub mod util;
pub mod xsbench;

pub use bfs::Bfs;
pub use blockchain::Blockchain;
pub use btree::BTree;
pub use hashjoin::HashJoin;
pub use iozone::Iozone;
pub use lighttpd::Lighttpd;
pub use memcached::Memcached;
pub use openssl::OpenSsl;
pub use pagerank::PageRank;
pub use svm::Svm;
pub use threshold_sign::ThresholdSign;
pub use xsbench::XsBench;

use sgxgauge_core::Workload;

/// The full suite at paper scale, in Table 2 order.
pub fn suite() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Blockchain::new()),
        Box::new(OpenSsl::new()),
        Box::new(BTree::new()),
        Box::new(HashJoin::new()),
        Box::new(Bfs::new()),
        Box::new(PageRank::new()),
        Box::new(Memcached::new()),
        Box::new(XsBench::new()),
        Box::new(Lighttpd::new()),
        Box::new(Svm::new()),
    ]
}

/// The suite scaled down by `divisor` (for tests and smoke runs).
pub fn suite_scaled(divisor: u64) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Blockchain::scaled(divisor)),
        Box::new(OpenSsl::scaled(divisor)),
        Box::new(BTree::scaled(divisor)),
        Box::new(HashJoin::scaled(divisor)),
        Box::new(Bfs::scaled(divisor)),
        Box::new(PageRank::scaled(divisor)),
        Box::new(Memcached::scaled(divisor)),
        Box::new(XsBench::scaled(divisor)),
        Box::new(Lighttpd::scaled(divisor)),
        Box::new(Svm::scaled(divisor)),
    ]
}

/// The six workloads with Native-mode ports, at paper scale (§4.3).
pub fn native_suite() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Blockchain::new()),
        Box::new(OpenSsl::new()),
        Box::new(BTree::new()),
        Box::new(HashJoin::new()),
        Box::new(Bfs::new()),
        Box::new(PageRank::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgxgauge_core::ExecMode;

    #[test]
    fn suite_has_ten_workloads() {
        let s = suite();
        assert_eq!(s.len(), 10);
        let names: Vec<_> = s.iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            [
                "Blockchain",
                "OpenSSL",
                "BTree",
                "HashJoin",
                "BFS",
                "PageRank",
                "Memcached",
                "XSBench",
                "Lighttpd",
                "SVM"
            ]
        );
    }

    #[test]
    fn six_support_native_four_do_not() {
        let native: Vec<_> = suite()
            .into_iter()
            .filter(|w| w.supports(ExecMode::Native))
            .collect();
        assert_eq!(native.len(), 6);
        for w in suite() {
            assert!(w.supports(ExecMode::Vanilla));
            assert!(w.supports(ExecMode::LibOs));
        }
    }
}
