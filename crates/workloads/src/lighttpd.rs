//! Lighttpd workload (§4.2.9) — a single-threaded event-driven web
//! server under concurrent load.
//!
//! The server hosts a 20 KB page (as in the paper / HotCalls) and an
//! `ab`-style closed-loop client drives it with a configurable number of
//! concurrent connections. The server runs on one thread — concurrency
//! shows up as queueing delay, which is why the paper's Fig 3 sees
//! request latency grow by up to 7x under SGX as transition costs
//! lengthen per-request service time.

use crate::util::{fold, scale_down};
use sgxgauge_core::env::{Placement, SimThread};
use sgxgauge_core::{
    Env, ExecMode, InputSetting, Workload, WorkloadError, WorkloadOutput, WorkloadSpec,
};

/// Served page size (paper: "a web-page of size 20 KB").
const PAGE_BYTES: u64 = 20 << 10;

/// Request line + headers on the wire.
const REQ_BYTES: u64 = 256;

/// One-way network delay, cycles.
const NET_DELAY: u64 = 3_000;

/// HTTP parsing + response-header formatting cost, cycles.
const PARSE_CYCLES: u64 = 2_500;

/// The Lighttpd workload. See the module docs.
#[derive(Debug, Clone)]
pub struct Lighttpd {
    divisor: u64,
    threads: usize,
}

impl Lighttpd {
    /// Paper-scale instance (50 K/60 K/70 K requests, 16 client threads).
    pub fn new() -> Self {
        Lighttpd {
            divisor: 1,
            threads: 16,
        }
    }

    /// Instance with request counts divided by `divisor`.
    pub fn scaled(divisor: u64) -> Self {
        Lighttpd {
            divisor: divisor.max(1),
            threads: 16,
        }
    }

    /// Overrides the number of concurrent `ab` client threads (Fig 3
    /// sweeps this).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one client");
        self.threads = threads;
        self
    }

    /// Total requests for `setting` (Table 2).
    pub fn requests(&self, setting: InputSetting) -> u64 {
        let n: u64 = match setting {
            InputSetting::Low => 50_000,
            InputSetting::Medium => 60_000,
            InputSetting::High => 70_000,
        };
        scale_down(n, self.divisor, 64)
    }

    /// Concurrent client threads.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Default for Lighttpd {
    fn default() -> Self {
        Lighttpd::new()
    }
}

impl Workload for Lighttpd {
    fn name(&self) -> &'static str {
        "Lighttpd"
    }

    fn property(&self) -> &'static str {
        "ECALL-intensive"
    }

    fn supported_modes(&self) -> &'static [ExecMode] {
        &[ExecMode::Vanilla, ExecMode::LibOs]
    }

    fn spec(&self, setting: InputSetting) -> WorkloadSpec {
        WorkloadSpec::new(
            8 << 20,
            format!(
                "Requests: {} Threads: {}",
                self.requests(setting),
                self.threads
            ),
        )
    }

    fn setup(&self, env: &mut Env, _setting: InputSetting) -> Result<(), WorkloadError> {
        // The document root: one 20 KB page.
        let page: Vec<u8> = (0..PAGE_BYTES).map(|i| (i % 251) as u8).collect();
        env.put_file("htdocs/index.html", page);
        Ok(())
    }

    fn execute(
        &self,
        env: &mut Env,
        setting: InputSetting,
    ) -> Result<WorkloadOutput, WorkloadError> {
        let requests = self.requests(setting);
        let server = env.main_thread();

        // Server start-up: read config, load the page into its in-memory
        // cache (lighttpd serves hot files from memory).
        let cache = env.alloc(PAGE_BYTES, Placement::Protected)?;
        let page_len = env.read_file_into("htdocs/index.html", cache, 0)?;

        // ab clients.
        let clients: Vec<SimThread> = (0..self.threads)
            .map(|_| env.spawn_driver_thread())
            .collect();

        let per_client = requests / clients.len() as u64;
        let mut latencies: Vec<u64> =
            Vec::with_capacity((per_client * clients.len() as u64) as usize);
        let mut checksum = 0u64;

        // Closed loop: each client issues its next request as soon as the
        // previous response arrives. The single-threaded server serializes
        // service; we interleave clients round-robin, which is exactly
        // the arrival order of a synchronized closed loop.
        for _round in 0..per_client {
            for &client in &clients {
                // Client sends the request.
                let issue = env.with_thread(client, |env| {
                    env.io_transfer(REQ_BYTES, true)?;
                    Ok::<u64, WorkloadError>(env.now())
                })?;
                // Server accepts when free and the request has arrived.
                env.sync_to(server, issue + NET_DELAY);
                let done = env
                    .with_thread(server, |env| {
                        env.io_transfer(REQ_BYTES, false)?; // read request
                        env.compute(PARSE_CYCLES);
                        // Serve the page from the in-memory cache.
                        let mut acc = 0u64;
                        let mut off = 0u64;
                        while off < page_len {
                            acc = acc.wrapping_add(env.read_u64(cache, off));
                            off += 64;
                        }
                        env.io_transfer(page_len, true)?; // sendfile
                        Ok::<(u64, u64), WorkloadError>((env.now(), acc))
                    })
                    .map(|(t, acc)| {
                        checksum = fold(checksum, acc);
                        t
                    })?;
                let ready = done + NET_DELAY;
                env.sync_to(client, ready);
                latencies.push(ready - issue);
            }
        }

        let n = latencies.len() as u64;
        let mean = latencies.iter().sum::<u64>() as f64 / n as f64;
        let mut sorted = latencies.clone();
        sorted.sort_unstable();
        let p95 = sorted[(sorted.len() * 95 / 100).min(sorted.len() - 1)] as f64;
        let clock_hz = env.machine().config().mem.clock_hz.max(1) as f64;
        let throughput = n as f64 / (env.elapsed_cycles() as f64 / clock_hz);

        Ok(WorkloadOutput {
            ops: n,
            checksum,
            metrics: vec![
                ("mean_latency_cycles".into(), mean),
                ("p95_latency_cycles".into(), p95),
                ("requests_per_second".into(), throughput),
            ],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgxgauge_core::{Runner, RunnerConfig};

    #[test]
    fn serves_all_requests() {
        let wl = Lighttpd::scaled(512);
        let runner = Runner::new(RunnerConfig::quick_test());
        let r = runner
            .run_once(&wl, ExecMode::Vanilla, InputSetting::Low)
            .unwrap();
        let expect = (wl.requests(InputSetting::Low) / 16) * 16;
        assert_eq!(r.output.ops, expect);
        assert!(r.output.metric("mean_latency_cycles").unwrap() > 0.0);
    }

    #[test]
    fn latency_grows_with_concurrency() {
        // Fig 3: latency rises with the number of concurrent clients.
        let runner = Runner::new(RunnerConfig::quick_test());
        let lat = |threads: usize| {
            let wl = Lighttpd::scaled(512).with_threads(threads);
            runner
                .run_once(&wl, ExecMode::LibOs, InputSetting::Low)
                .unwrap()
                .output
                .metric("mean_latency_cycles")
                .unwrap()
        };
        let one = lat(1);
        let sixteen = lat(16);
        assert!(
            sixteen > 2.0 * one,
            "16-thread latency {sixteen} vs 1-thread {one}"
        );
    }

    #[test]
    fn libos_slower_than_vanilla_per_request() {
        let wl = Lighttpd::scaled(512);
        let runner = Runner::new(RunnerConfig::quick_test());
        let v = runner
            .run_once(&wl, ExecMode::Vanilla, InputSetting::Low)
            .unwrap();
        let l = runner
            .run_once(&wl, ExecMode::LibOs, InputSetting::Low)
            .unwrap();
        assert!(
            l.output.metric("mean_latency_cycles").unwrap()
                > v.output.metric("mean_latency_cycles").unwrap()
        );
        assert_eq!(v.output.checksum, l.output.checksum);
    }

    #[test]
    fn request_counts_follow_table2() {
        let wl = Lighttpd::new();
        assert_eq!(wl.requests(InputSetting::Low), 50_000);
        assert_eq!(wl.requests(InputSetting::High), 70_000);
        assert_eq!(wl.threads(), 16);
    }
}
