//! Blockchain workload (§4.2.1) — libcatena-style chain with the hash
//! computation protected inside the enclave.
//!
//! A blockchain is a linked list of blocks, each carrying a payload and
//! the hash of the previous block. Mining a block means finding a nonce
//! whose SHA-256 header hash clears a difficulty threshold. The hash
//! computation is the sensitive operation: in Native mode it is the one
//! function moved into the enclave and hammered by ECALLs from many
//! untrusted threads (the paper counts millions of ECALLs; §B.1). The
//! property column calls this workload CPU/ECALL-intensive.

use crate::util::{fold, scale_down, SplitMix64};
use sgx_crypto::Sha256;
use sgxgauge_core::env::Placement;
use sgxgauge_core::{
    Env, ExecMode, InputSetting, Workload, WorkloadError, WorkloadOutput, WorkloadSpec,
};

/// Cycles one mining attempt costs on the modeled core: SHA-256 over the
/// block header plus a few hundred bytes of payload (~15 cycles/byte)
/// and the serialization around it.
const HASH_COMPUTE_CYCLES: u64 = 9_000;

/// Mining threads (the paper uses 16, §B.1).
const MINER_THREADS: usize = 16;

/// The Blockchain workload. See the module docs.
#[derive(Debug, Clone)]
pub struct Blockchain {
    divisor: u64,
}

impl Blockchain {
    /// Paper-scale instance (3/5/8 blocks; difficulty tuned so mining a
    /// block takes tens of thousands of hash ECALLs).
    pub fn new() -> Self {
        Blockchain { divisor: 1 }
    }

    /// Instance with input sizes divided by `divisor` (for tests).
    pub fn scaled(divisor: u64) -> Self {
        Blockchain {
            divisor: divisor.max(1),
        }
    }

    /// Blocks to mine for `setting` (Table 2: 3 / 5 / 8).
    pub fn blocks(&self, setting: InputSetting) -> u64 {
        match setting {
            InputSetting::Low => 3,
            InputSetting::Medium => 5,
            InputSetting::High => 8,
        }
    }

    /// Number of leading zero bits a block hash must have.
    fn difficulty(&self) -> u32 {
        // Paper-scale mining performs ~10^6 ECALLs per run; we target
        // ~2^14 hashes per block (difficulty 14) scaled down for tests.
        let base: u32 = 14;
        let reduction = 63 - (self.divisor.max(1)).leading_zeros(); // log2
        base.saturating_sub(reduction).max(4)
    }

    /// Deterministically mines `payload`, returning `(nonce, hash,
    /// attempts)`. Pure function; used by both the workload and its
    /// tests.
    pub fn mine(prev_hash: &[u8; 32], payload: &[u8], difficulty: u32) -> (u64, [u8; 32], u64) {
        let mut attempts = 0u64;
        let mut nonce = 0u64;
        loop {
            attempts += 1;
            let mut h = Sha256::new();
            h.update(prev_hash);
            h.update(payload);
            h.update(&nonce.to_le_bytes());
            let digest = h.finalize();
            if leading_zero_bits(&digest) >= difficulty {
                return (nonce, digest, attempts);
            }
            nonce += 1;
        }
    }
}

impl Default for Blockchain {
    fn default() -> Self {
        Blockchain::new()
    }
}

/// Counts leading zero bits of a digest.
fn leading_zero_bits(digest: &[u8; 32]) -> u32 {
    let mut bits = 0;
    for &b in digest {
        if b == 0 {
            bits += 8;
        } else {
            bits += b.leading_zeros();
            break;
        }
    }
    bits
}

impl Workload for Blockchain {
    fn name(&self) -> &'static str {
        "Blockchain"
    }

    fn property(&self) -> &'static str {
        "CPU/ECALL-intensive"
    }

    fn supported_modes(&self) -> &'static [ExecMode] {
        &[ExecMode::Vanilla, ExecMode::Native, ExecMode::LibOs]
    }

    fn spec(&self, setting: InputSetting) -> WorkloadSpec {
        // The chain itself is small; the enclave holds headers + payload
        // buffers per thread.
        WorkloadSpec::new(8 << 20, format!("Blocks {}", self.blocks(setting)))
    }

    fn setup(&self, _env: &mut Env, _setting: InputSetting) -> Result<(), WorkloadError> {
        Ok(())
    }

    fn execute(
        &self,
        env: &mut Env,
        setting: InputSetting,
    ) -> Result<WorkloadOutput, WorkloadError> {
        let blocks = self.blocks(setting);
        let difficulty = self.difficulty();
        let payload_len = 256usize;

        // Protected state: previous hash + candidate header buffer.
        let state = env.alloc(4096, Placement::Protected)?;
        // Untrusted: the chain (headers + payloads) lives outside; only
        // hashing is protected, as in the paper's port (§4.3).
        let chain = env.alloc(blocks * (payload_len as u64 + 64), Placement::Untrusted)?;

        let workers: Vec<_> = (0..MINER_THREADS)
            .map(|_| env.spawn_app_thread())
            .collect::<Result<_, _>>()?;

        let mut rng = SplitMix64::new(0x5eed_0001);
        let mut prev_hash = [0u8; 32];
        let mut checksum = 0u64;
        let mut total_attempts = 0u64;

        for b in 0..blocks {
            // Assemble the payload (untrusted side).
            let mut payload = vec![0u8; payload_len];
            for byte in payload.iter_mut() {
                *byte = rng.next_u64() as u8;
            }
            env.write_bytes(chain, b * (payload_len as u64 + 64), &payload);

            // Parallel mining: each worker scans a disjoint nonce range;
            // the real winner is the deterministic `mine` result, and
            // each worker is charged its share of the attempt stream.
            let (nonce, hash, attempts) = Blockchain::mine(&prev_hash, &payload, difficulty);
            total_attempts += attempts;
            let share = attempts / workers.len() as u64 + 1;
            let mut worker_err: Option<WorkloadError> = None;
            env.parallel(&workers, |env, _i| {
                if worker_err.is_some() {
                    return;
                }
                for _ in 0..share {
                    // Each attempt is one ECALL into the enclave hash
                    // function (Native); a plain call otherwise.
                    let res = env.secure_call(|env| {
                        // Read the candidate header state, hash, write
                        // the running digest back.
                        let n = env.read_u64(state, 0);
                        env.write_u64(state, 0, n.wrapping_add(1));
                        env.touch(state, 64, payload_len as u64 / 4, false);
                        env.compute(HASH_COMPUTE_CYCLES);
                    });
                    if let Err(e) = res {
                        worker_err = Some(e);
                        return;
                    }
                    // Fetch the next candidate from the shared work queue:
                    // with 16 miners the futex is contended, so every mode
                    // pays a host syscall — which Graphene must shuttle
                    // across the enclave boundary (this is why the paper
                    // sees LibOS ~ Native for this workload, Fig 4).
                    if let Err(e) = env.host_syscall() {
                        worker_err = Some(e);
                        return;
                    }
                }
            });
            if let Some(e) = worker_err {
                return Err(e);
            }

            // Commit the mined block (untrusted side bookkeeping).
            env.write_bytes(
                chain,
                b * (payload_len as u64 + 64) + payload_len as u64,
                &hash[..32],
            );
            checksum = fold(checksum, nonce);
            checksum = fold(
                checksum,
                u64::from_le_bytes(hash[..8].try_into().expect("8 bytes")),
            );
            prev_hash = hash;
        }

        // Verify the chain end-to-end (as libcatena does on load).
        let mut verify_prev = [0u8; 32];
        let mut rng2 = SplitMix64::new(0x5eed_0001);
        for b in 0..blocks {
            let mut payload = vec![0u8; payload_len];
            for byte in payload.iter_mut() {
                *byte = rng2.next_u64() as u8;
            }
            let mut stored = vec![0u8; 32];
            env.read_bytes(
                chain,
                b * (payload_len as u64 + 64) + payload_len as u64,
                &mut stored,
            );
            let (_, expect, _) = Blockchain::mine(&verify_prev, &payload, difficulty);
            if stored != expect {
                return Err(WorkloadError::Validation(format!(
                    "block {b} hash mismatch"
                )));
            }
            verify_prev = expect;
        }

        Ok(WorkloadOutput {
            ops: total_attempts,
            checksum,
            metrics: vec![("hash_attempts".into(), total_attempts as f64)],
        })
    }
}

// Silence the unused-import lint for scale_down which other workloads use
// through this module's pattern; Blockchain scales via difficulty.
const _: fn(u64, u64, u64) -> u64 = scale_down;

#[cfg(test)]
mod tests {
    use super::*;
    use sgxgauge_core::{EnvConfig, Runner, RunnerConfig};

    #[test]
    fn leading_zeros_counting() {
        let mut d = [0xffu8; 32];
        assert_eq!(leading_zero_bits(&d), 0);
        d[0] = 0x0f;
        assert_eq!(leading_zero_bits(&d), 4);
        d[0] = 0;
        d[1] = 0x80;
        assert_eq!(leading_zero_bits(&d), 8);
        let z = [0u8; 32];
        assert_eq!(leading_zero_bits(&z), 256);
    }

    #[test]
    fn mining_meets_difficulty_deterministically() {
        let prev = [1u8; 32];
        let (n1, h1, a1) = Blockchain::mine(&prev, b"payload", 8);
        let (n2, h2, a2) = Blockchain::mine(&prev, b"payload", 8);
        assert_eq!((n1, h1, a1), (n2, h2, a2));
        assert!(leading_zero_bits(&h1) >= 8);
        assert_eq!(a1, n1 + 1);
    }

    #[test]
    fn runs_and_validates_in_all_modes() {
        let wl = Blockchain::scaled(1024);
        let runner = Runner::new(RunnerConfig::quick_test());
        let mut checksums = Vec::new();
        for mode in ExecMode::ALL {
            let r = runner.run_once(&wl, mode, InputSetting::Low).unwrap();
            assert!(r.output.ops > 0);
            checksums.push(r.output.checksum);
        }
        // The computed chain must be identical across modes.
        assert!(checksums.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn native_mode_is_ecall_heavy() {
        let wl = Blockchain::scaled(1024);
        let runner = Runner::new(RunnerConfig::quick_test());
        let r = runner
            .run_once(&wl, ExecMode::Native, InputSetting::Low)
            .unwrap();
        // Every hash attempt is an ECALL (plus thread bookkeeping).
        assert!(
            r.sgx.ecalls >= r.output.ops,
            "ecalls {} < attempts {}",
            r.sgx.ecalls,
            r.output.ops
        );
        let v = runner
            .run_once(&wl, ExecMode::Vanilla, InputSetting::Low)
            .unwrap();
        assert!(r.counters.tlb_flushes > v.counters.tlb_flushes);
    }

    #[test]
    fn more_blocks_more_work() {
        let wl = Blockchain::scaled(1024);
        let runner = Runner::new(RunnerConfig::quick_test());
        let low = runner
            .run_once(&wl, ExecMode::Vanilla, InputSetting::Low)
            .unwrap();
        let high = runner
            .run_once(&wl, ExecMode::Vanilla, InputSetting::High)
            .unwrap();
        assert!(high.output.ops > low.output.ops);
    }

    #[test]
    fn env_config_quick_test_used() {
        // quick_test config sanity: keeps this suite's tests sub-second.
        let cfg = EnvConfig::quick_test(ExecMode::Vanilla);
        assert!(cfg.sgx.epc_bytes <= 8 << 20);
    }
}
