//! HashJoin workload (§4.2.4) — the equi-join kernel of modern databases.
//!
//! Two phases, as in the paper (and the mitosis-project workload it
//! takes the code from): *build* a hash table over the rows of the first
//! data table, then *probe* it with the rows of the second. The size of
//! the first table (61 / 91 / 122 MB) is what the paper varies across
//! the EPC boundary. Hash probing is cache-hostile — the paper's §B.4
//! notes the page-fault and dTLB blowups.

use crate::util::{fold, scale_down, SplitMix64};
use sgxgauge_core::env::Placement;
use sgxgauge_core::{
    Env, ExecMode, InputSetting, Workload, WorkloadError, WorkloadOutput, WorkloadSpec,
};

/// Bytes per row: 8-byte key + 8-byte payload.
const ROW_BYTES: u64 = 16;

/// Hash-table slot: 8-byte key (0 = empty) + 8-byte payload.
const SLOT_BYTES: u64 = 16;

/// Probe rows per build row.
const PROBE_FACTOR: u64 = 2;

/// The HashJoin workload. See the module docs.
#[derive(Debug, Clone)]
pub struct HashJoin {
    divisor: u64,
}

impl HashJoin {
    /// Paper-scale instance (61 / 91 / 122 MB build tables).
    pub fn new() -> Self {
        HashJoin { divisor: 1 }
    }

    /// Instance with table sizes divided by `divisor`.
    pub fn scaled(divisor: u64) -> Self {
        HashJoin {
            divisor: divisor.max(1),
        }
    }

    /// Build-table bytes for `setting` (Table 2).
    pub fn table_bytes(&self, setting: InputSetting) -> u64 {
        let mb = match setting {
            InputSetting::Low => 61,
            InputSetting::Medium => 91,
            InputSetting::High => 122,
        };
        scale_down(mb << 20, self.divisor, 64 << 10)
    }

    /// Rows in the build table.
    pub fn build_rows(&self, setting: InputSetting) -> u64 {
        // The hash table (1.5x slots) plus the table itself form the
        // footprint; rows are sized so the *total* protected footprint
        // matches Table 2's table sizes.
        self.table_bytes(setting) / (ROW_BYTES + SLOT_BYTES + SLOT_BYTES / 2)
    }

    fn slots(&self, setting: InputSetting) -> u64 {
        // Exactly 1.5x rows (no power-of-two rounding) so the Table 2
        // footprints land on the paper's side of the EPC boundary.
        self.build_rows(setting) * 3 / 2
    }
}

impl Default for HashJoin {
    fn default() -> Self {
        HashJoin::new()
    }
}

#[inline]
fn hash_key(k: u64) -> u64 {
    let mut x = k;
    x = (x ^ (x >> 33)).wrapping_mul(0xff51afd7ed558ccd);
    x = (x ^ (x >> 33)).wrapping_mul(0xc4ceb9fe1a85ec53);
    x ^ (x >> 33)
}

impl Workload for HashJoin {
    fn name(&self) -> &'static str {
        "HashJoin"
    }

    fn property(&self) -> &'static str {
        "Data/CPU-intensive"
    }

    fn supported_modes(&self) -> &'static [ExecMode] {
        &[ExecMode::Vanilla, ExecMode::Native, ExecMode::LibOs]
    }

    fn spec(&self, setting: InputSetting) -> WorkloadSpec {
        let rows = self.build_rows(setting);
        let bytes = rows * ROW_BYTES + self.slots(setting) * SLOT_BYTES;
        WorkloadSpec::new(
            bytes,
            format!("Data Table Size {} MB", self.table_bytes(setting) >> 20),
        )
    }

    fn setup(&self, _env: &mut Env, _setting: InputSetting) -> Result<(), WorkloadError> {
        Ok(())
    }

    fn execute(
        &self,
        env: &mut Env,
        setting: InputSetting,
    ) -> Result<WorkloadOutput, WorkloadError> {
        let rows = self.build_rows(setting);
        let slots = self.slots(setting);
        let table = env.alloc(rows * ROW_BYTES, Placement::Protected)?;
        let ht = env.alloc(slots * SLOT_BYTES, Placement::Protected)?;

        let (matches, checksum) =
            env.secure_call(move |env| -> Result<(u64, u64), WorkloadError> {
                // Materialize table R (sequential writes).
                let mut rng = SplitMix64::new(0x7_ab1e_5eed % 0xffff_ffff);
                for i in 0..rows {
                    let key = rng.next_u64() | 1; // non-zero keys
                    env.write_u64(table, i * ROW_BYTES, key);
                    env.write_u64(table, i * ROW_BYTES + 8, i);
                }

                // Build phase: open addressing, linear probing.
                for i in 0..rows {
                    let key = env.read_u64(table, i * ROW_BYTES);
                    let payload = env.read_u64(table, i * ROW_BYTES + 8);
                    let mut s = hash_key(key) % slots;
                    loop {
                        let existing = env.read_u64(ht, s * SLOT_BYTES);
                        if existing == 0 {
                            env.write_u64(ht, s * SLOT_BYTES, key);
                            env.write_u64(ht, s * SLOT_BYTES + 8, payload);
                            break;
                        }
                        s = (s + 1) % slots;
                    }
                    env.compute(12);
                }

                // Probe phase: table S rows, half of which hit.
                let mut probe_rng = SplitMix64::new(0x7_ab1e_5eed % 0xffff_ffff);
                let mut miss_rng = SplitMix64::new(0xdeed);
                let probes = rows * PROBE_FACTOR;
                let mut matches = 0u64;
                let mut checksum = 0u64;
                for i in 0..probes {
                    let key = if i % 2 == 0 {
                        probe_rng.next_u64() | 1 // replays a build key
                    } else {
                        miss_rng.next_u64() & !1 // even keys never inserted
                    };
                    let mut s = hash_key(key) % slots;
                    loop {
                        let existing = env.read_u64(ht, s * SLOT_BYTES);
                        if existing == 0 {
                            checksum = fold(checksum, 0);
                            break;
                        }
                        if existing == key {
                            let payload = env.read_u64(ht, s * SLOT_BYTES + 8);
                            matches += 1;
                            checksum = fold(checksum, payload);
                            break;
                        }
                        s = (s + 1) % slots;
                    }
                    env.compute(12);
                }
                Ok((matches, checksum))
            })??;

        if matches < self.build_rows(setting) / 2 {
            return Err(WorkloadError::Validation(format!(
                "join matched {matches} of expected >= {}",
                self.build_rows(setting) / 2
            )));
        }
        Ok(WorkloadOutput {
            ops: rows * (1 + PROBE_FACTOR),
            checksum,
            metrics: vec![("matches".into(), matches as f64)],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgxgauge_core::{Runner, RunnerConfig};

    #[test]
    fn join_matches_expected_count() {
        let wl = HashJoin::scaled(1024);
        let runner = Runner::new(RunnerConfig::quick_test());
        let r = runner
            .run_once(&wl, ExecMode::Vanilla, InputSetting::Low)
            .unwrap();
        let rows = wl.build_rows(InputSetting::Low);
        // Every even-indexed probe replays a build key: exactly `rows`
        // hits (collisions between the two rngs are vanishingly rare).
        let matches = r.output.metric("matches").unwrap() as u64;
        assert_eq!(matches, rows);
    }

    #[test]
    fn checksums_agree_across_modes() {
        let wl = HashJoin::scaled(1024);
        let runner = Runner::new(RunnerConfig::quick_test());
        let mut sums = Vec::new();
        for mode in ExecMode::ALL {
            sums.push(
                runner
                    .run_once(&wl, mode, InputSetting::Low)
                    .unwrap()
                    .output
                    .checksum,
            );
        }
        assert!(sums.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn table_sizes_follow_table2() {
        let wl = HashJoin::new();
        assert_eq!(wl.table_bytes(InputSetting::Low), 61 << 20);
        assert_eq!(wl.table_bytes(InputSetting::Medium), 91 << 20);
        assert_eq!(wl.table_bytes(InputSetting::High), 122 << 20);
        assert!(wl.spec(InputSetting::Low).protected_bytes < 92 << 20);
        assert!(wl.spec(InputSetting::High).protected_bytes > 92 << 20);
    }

    #[test]
    fn random_probes_blow_up_dtlb_in_native() {
        let wl = HashJoin::scaled(24);
        let runner = Runner::new(RunnerConfig::quick_test());
        let v = runner
            .run_once(&wl, ExecMode::Vanilla, InputSetting::High)
            .unwrap();
        let n = runner
            .run_once(&wl, ExecMode::Native, InputSetting::High)
            .unwrap();
        assert!(n.counters.dtlb_misses > v.counters.dtlb_misses);
        assert!(n.sgx.epc_evictions > 0);
    }

    #[test]
    fn hash_is_well_mixed() {
        let mut buckets = [0u32; 16];
        for k in 0..10_000u64 {
            buckets[(hash_key(k) & 15) as usize] += 1;
        }
        for b in buckets {
            assert!((400..850).contains(&b), "skewed bucket {b}");
        }
    }
}
