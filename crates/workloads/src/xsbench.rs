//! XSBench workload (§4.2.8) — the macroscopic cross-section lookup
//! kernel of Monte Carlo neutron transport (Tramm et al.).
//!
//! The unionized energy grid holds, for every grid point, pointers into
//! each nuclide's cross-section table; a lookup picks a random energy,
//! binary-searches the grid, and accumulates the macroscopic cross
//! section over all nuclides in the material. The grid-point counts of
//! Table 2 (53 K / 88 K / 768 K) with XSBench's ~1 KB-per-point data
//! place Low below, Medium at, and High far beyond the EPC.

use crate::util::{fold, scale_down, SplitMix64};
use sgxgauge_core::env::Placement;
use sgxgauge_core::{
    Env, ExecMode, InputSetting, Workload, WorkloadError, WorkloadOutput, WorkloadSpec,
};

/// Nuclides per material.
const NUCLIDES: u64 = 16;

/// Cross-section channels per (gridpoint, nuclide): total, elastic,
/// absorption, fission, nu-fission — as in XSBench.
const CHANNELS: u64 = 5;

/// Bytes per grid point: energy (8) + per-nuclide channel data.
// Raw point payload is 8 + NUCLIDES*CHANNELS*8 = 648 bytes; XSBench pads
// rows, so the stride below is 1 KiB.
const POINT_STRIDE: u64 = 1024; // pad to 1 KB like XSBench's real layout

/// The XSBench workload. See the module docs.
#[derive(Debug, Clone)]
pub struct XsBench {
    divisor: u64,
}

impl XsBench {
    /// Paper-scale instance (53 K / 88 K / 768 K grid points).
    pub fn new() -> Self {
        XsBench { divisor: 1 }
    }

    /// Instance with grid sizes divided by `divisor`.
    pub fn scaled(divisor: u64) -> Self {
        XsBench {
            divisor: divisor.max(1),
        }
    }

    /// Grid points for `setting` (Table 2).
    pub fn gridpoints(&self, setting: InputSetting) -> u64 {
        let n: u64 = match setting {
            InputSetting::Low => 53_000,
            InputSetting::Medium => 88_000,
            InputSetting::High => 768_000,
        };
        scale_down(n, self.divisor, 256)
    }

    /// Cross-section lookups performed (the paper lists "Lookups: 100"
    /// per grid-point batch; we issue a fixed large batch so the kernel,
    /// not initialization, dominates).
    pub fn lookups(&self) -> u64 {
        scale_down(100_000, self.divisor, 512)
    }
}

impl Default for XsBench {
    fn default() -> Self {
        XsBench::new()
    }
}

impl Workload for XsBench {
    fn name(&self) -> &'static str {
        "XSBench"
    }

    fn property(&self) -> &'static str {
        "CPU-intensive"
    }

    fn supported_modes(&self) -> &'static [ExecMode] {
        &[ExecMode::Vanilla, ExecMode::LibOs]
    }

    fn spec(&self, setting: InputSetting) -> WorkloadSpec {
        WorkloadSpec::new(
            self.gridpoints(setting) * POINT_STRIDE,
            format!(
                "Points: {} Lookups: {}",
                self.gridpoints(setting),
                self.lookups()
            ),
        )
    }

    fn setup(&self, _env: &mut Env, _setting: InputSetting) -> Result<(), WorkloadError> {
        Ok(())
    }

    fn execute(
        &self,
        env: &mut Env,
        setting: InputSetting,
    ) -> Result<WorkloadOutput, WorkloadError> {
        let points = self.gridpoints(setting);
        let lookups = self.lookups();
        let grid = env.alloc(points * POINT_STRIDE, Placement::Protected)?;

        let checksum = env.secure_call(move |env| -> Result<u64, WorkloadError> {
            // Grid generation: monotonically increasing energies with
            // per-nuclide channel data.
            let mut rng = SplitMix64::new(0x5bec_0001);
            for i in 0..points {
                let base = i * POINT_STRIDE;
                let energy = i as f64 / points as f64;
                env.write_f64(grid, base, energy);
                // Fill a representative subset of channel data (first
                // two channels per nuclide; the rest is padding that
                // still occupies EPC pages).
                for nuc in 0..NUCLIDES {
                    let off = base + 8 + nuc * CHANNELS * 8;
                    env.write_f64(grid, off, rng.unit_f64());
                    env.write_f64(grid, off + 8, rng.unit_f64());
                }
            }
            env.compute(points * 50);

            // Lookup kernel.
            let mut rng = SplitMix64::new(0x0100_c0b5);
            let mut macro_sum = 0.0f64;
            for _ in 0..lookups {
                let e = rng.unit_f64();
                // Binary search for the bracketing grid point.
                let mut lo = 0u64;
                let mut hi = points - 1;
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    let me = env.read_f64(grid, mid * POINT_STRIDE);
                    if me < e {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                // Accumulate the macroscopic XS over all nuclides.
                let base = lo * POINT_STRIDE;
                let mut xs = 0.0f64;
                for nuc in 0..NUCLIDES {
                    let off = base + 8 + nuc * CHANNELS * 8;
                    let sigma_t = env.read_f64(grid, off);
                    let sigma_a = env.read_f64(grid, off + 8);
                    xs += sigma_t * 0.7 + sigma_a * 0.3;
                }
                macro_sum += xs;
                env.compute(40 + NUCLIDES * 12 + 64 /* FLOPs + search ALU */);
            }
            let mut checksum = fold(0, (macro_sum * 1e9) as u64);
            checksum = fold(checksum, lookups);
            Ok(checksum)
        })??;

        Ok(WorkloadOutput {
            ops: lookups,
            checksum,
            metrics: vec![("gridpoints".into(), points as f64)],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgxgauge_core::{Runner, RunnerConfig};

    #[test]
    fn checksums_agree_across_modes() {
        let wl = XsBench::scaled(256);
        let runner = Runner::new(RunnerConfig::quick_test());
        let v = runner
            .run_once(&wl, ExecMode::Vanilla, InputSetting::Low)
            .unwrap();
        let l = runner
            .run_once(&wl, ExecMode::LibOs, InputSetting::Low)
            .unwrap();
        assert_eq!(v.output.checksum, l.output.checksum);
    }

    #[test]
    fn grid_sizes_follow_table2() {
        let wl = XsBench::new();
        assert_eq!(wl.gridpoints(InputSetting::Low), 53_000);
        assert_eq!(wl.gridpoints(InputSetting::Medium), 88_000);
        assert_eq!(wl.gridpoints(InputSetting::High), 768_000);
        assert!(wl.spec(InputSetting::Low).protected_bytes < 92 << 20);
        assert!(wl.spec(InputSetting::Medium).protected_bytes < 96 << 20);
        assert!(wl.spec(InputSetting::High).protected_bytes > 92 << 20);
    }

    #[test]
    fn high_setting_thrashes_epc_under_libos() {
        let wl = XsBench::scaled(256);
        let runner = Runner::new(RunnerConfig::quick_test());
        let low = runner
            .run_once(&wl, ExecMode::LibOs, InputSetting::Low)
            .unwrap();
        let high = runner
            .run_once(&wl, ExecMode::LibOs, InputSetting::High)
            .unwrap();
        assert!(high.sgx.epc_evictions > low.sgx.epc_evictions);
    }

    #[test]
    fn lookup_count_is_ops() {
        let wl = XsBench::scaled(256);
        let runner = Runner::new(RunnerConfig::quick_test());
        let r = runner
            .run_once(&wl, ExecMode::Vanilla, InputSetting::Low)
            .unwrap();
        assert_eq!(r.output.ops, wl.lookups());
    }
}
