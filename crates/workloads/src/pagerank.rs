//! PageRank workload (§4.2.6) — link analysis by power iteration.
//!
//! The input is a dense directed graph in adjacency-list form (4500–5000
//! nodes but 10–12.5 M edges, per Table 2 — the edge list is the
//! footprint). The workload loads the graph into the EPC, gives every
//! page a default rank, and repeatedly redistributes rank along out-links
//! a fixed number of iterations, exactly as the paper describes.

use crate::util::{fold, scale_down, SplitMix64};
use sgxgauge_core::env::Placement;
use sgxgauge_core::{
    Env, ExecMode, InputSetting, Workload, WorkloadError, WorkloadOutput, WorkloadSpec,
};

/// Damping factor.
const DAMPING: f64 = 0.85;

/// Power iterations ("repeated a fixed number of times").
const ITERATIONS: u64 = 4;

/// The PageRank workload. See the module docs.
#[derive(Debug, Clone)]
pub struct PageRank {
    divisor: u64,
}

impl PageRank {
    /// Paper-scale instance (4500/10.1 M … 5000/12.5 M nodes/edges).
    pub fn new() -> Self {
        PageRank { divisor: 1 }
    }

    /// Instance with edge counts divided by `divisor`.
    pub fn scaled(divisor: u64) -> Self {
        PageRank {
            divisor: divisor.max(1),
        }
    }

    /// `(nodes, edges)` for `setting` (Table 2).
    pub fn graph_size(&self, setting: InputSetting) -> (u64, u64) {
        let (n, e) = match setting {
            InputSetting::Low => (4_500, 10_100_000),
            InputSetting::Medium => (4_750, 11_200_000),
            InputSetting::High => (5_000, 12_500_000),
        };
        (
            scale_down(n, self.divisor, 32),
            scale_down(e, self.divisor, 512),
        )
    }
}

impl Default for PageRank {
    fn default() -> Self {
        PageRank::new()
    }
}

impl Workload for PageRank {
    fn name(&self) -> &'static str {
        "PageRank"
    }

    fn property(&self) -> &'static str {
        "Data-intensive"
    }

    fn supported_modes(&self) -> &'static [ExecMode] {
        &[ExecMode::Vanilla, ExecMode::Native, ExecMode::LibOs]
    }

    fn spec(&self, setting: InputSetting) -> WorkloadSpec {
        let (n, e) = self.graph_size(setting);
        // Edge list (8 B/edge) dominates; ranks and offsets are small.
        WorkloadSpec::new(e * 8 + n * 32, format!("Nodes {n} Edges {e}"))
    }

    fn setup(&self, _env: &mut Env, _setting: InputSetting) -> Result<(), WorkloadError> {
        Ok(())
    }

    fn execute(
        &self,
        env: &mut Env,
        setting: InputSetting,
    ) -> Result<WorkloadOutput, WorkloadError> {
        let (n, e) = self.graph_size(setting);

        // CSR-ish layout in protected memory: per-node edge offsets and
        // degrees, the big edge array, two rank arrays.
        let meta = env.alloc(n * 16, Placement::Protected)?;
        let edges = env.alloc(e * 8, Placement::Protected)?;
        let ranks = env.alloc(n * 8, Placement::Protected)?;
        let next = env.alloc(n * 8, Placement::Protected)?;

        let checksum = env.secure_call(move |env| -> Result<u64, WorkloadError> {
            // Build the graph in the EPC (load phase): every node gets
            // e/n out-links to deterministic pseudo-random targets
            // (out-degree >= 1 as the paper requires).
            let per_node = (e / n).max(1);
            let mut rng = SplitMix64::new(0x9a9e_2a4c);
            let mut cursor = 0u64;
            for i in 0..n {
                env.write_u64(meta, i * 16, cursor);
                env.write_u64(meta, i * 16 + 8, per_node);
                for _ in 0..per_node {
                    env.write_u64(edges, cursor * 8, rng.below(n));
                    cursor += 1;
                }
            }
            let initial = 1.0 / n as f64;
            for i in 0..n {
                env.write_f64(ranks, i * 8, initial);
            }

            // Power iterations.
            for _ in 0..ITERATIONS {
                for i in 0..n {
                    env.write_f64(next, i * 8, (1.0 - DAMPING) / n as f64);
                }
                for i in 0..n {
                    let start = env.read_u64(meta, i * 16);
                    let deg = env.read_u64(meta, i * 16 + 8);
                    let share = DAMPING * env.read_f64(ranks, i * 8) / deg as f64;
                    for j in start..start + deg {
                        let dst = env.read_u64(edges, j * 8);
                        let cur = env.read_f64(next, dst * 8);
                        env.write_f64(next, dst * 8, cur + share);
                    }
                    env.compute(4 + deg * 3);
                }
                // Swap rank arrays (copy, as the Ligra-derived code does).
                for i in 0..n {
                    let v = env.read_f64(next, i * 8);
                    env.write_f64(ranks, i * 8, v);
                }
            }

            // Fold the final ranks into a checksum (quantized so float
            // association noise cannot flip bits across modes — the
            // computation order is identical anyway).
            let mut checksum = 0u64;
            let mut total = 0.0f64;
            for i in 0..n {
                let r = env.read_f64(ranks, i * 8);
                total += r;
                checksum = fold(checksum, (r * 1e12) as u64);
            }
            if (total - 1.0).abs() > 1e-6 {
                return Err(WorkloadError::Validation(format!("rank mass {total} != 1")));
            }
            Ok(checksum)
        })??;

        Ok(WorkloadOutput {
            ops: e * ITERATIONS,
            checksum,
            metrics: vec![("iterations".into(), ITERATIONS as f64)],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgxgauge_core::{Runner, RunnerConfig};

    #[test]
    fn rank_mass_conserved_and_deterministic() {
        let wl = PageRank::scaled(2048);
        let runner = Runner::new(RunnerConfig::quick_test());
        let a = runner
            .run_once(&wl, ExecMode::Vanilla, InputSetting::Low)
            .unwrap();
        let b = runner
            .run_once(&wl, ExecMode::Vanilla, InputSetting::Low)
            .unwrap();
        assert_eq!(a.output.checksum, b.output.checksum);
    }

    #[test]
    fn checksums_agree_across_modes() {
        let wl = PageRank::scaled(2048);
        let runner = Runner::new(RunnerConfig::quick_test());
        let mut sums = Vec::new();
        for mode in ExecMode::ALL {
            sums.push(
                runner
                    .run_once(&wl, mode, InputSetting::Low)
                    .unwrap()
                    .output
                    .checksum,
            );
        }
        assert!(sums.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn graph_sizes_follow_table2() {
        let wl = PageRank::new();
        assert_eq!(wl.graph_size(InputSetting::Low), (4_500, 10_100_000));
        assert_eq!(wl.graph_size(InputSetting::High), (5_000, 12_500_000));
        assert!(wl.spec(InputSetting::Low).protected_bytes < 92 << 20);
        assert!(wl.spec(InputSetting::High).protected_bytes > 92 << 20);
    }

    #[test]
    fn sequential_edge_scan_has_low_dtlb_pressure() {
        // The paper (§B.6) observes PageRank's dTLB misses are dominated
        // by the workload's own streaming nature: the SGX-added misses
        // are comparatively small. Check Native/Vanilla dTLB ratio is far
        // below a pointer-chasing workload's.
        let wl = PageRank::scaled(512);
        let runner = Runner::new(RunnerConfig::quick_test());
        let v = runner
            .run_once(&wl, ExecMode::Vanilla, InputSetting::Low)
            .unwrap();
        let n = runner
            .run_once(&wl, ExecMode::Native, InputSetting::Low)
            .unwrap();
        let ratio = n.counters.dtlb_misses as f64 / v.counters.dtlb_misses.max(1) as f64;
        assert!(ratio < 500.0, "dTLB ratio {ratio}");
    }
}
