//! Terminal bar charts, for rendering the paper's figures as text.
//!
//! The bench targets emit tables and CSV; the CLI's `compare` command
//! additionally renders a horizontal bar chart so the figure shapes (the
//! EPC cliff, the mode gaps) are visible at a glance without plotting
//! tools.

use std::fmt;

/// A horizontal bar chart.
///
/// ```
/// use gauge_stats::chart::BarChart;
/// let mut c = BarChart::new("overhead (x)", 20);
/// c.push("Vanilla", 1.0);
/// c.push("Native", 3.4);
/// let s = c.to_string();
/// assert!(s.contains("Native"));
/// assert!(s.contains('#'));
/// ```
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    width: usize,
    bars: Vec<(String, f64)>,
}

impl BarChart {
    /// Creates a chart whose longest bar spans `width` characters.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(title: &str, width: usize) -> Self {
        assert!(width > 0, "chart width must be positive");
        BarChart {
            title: title.to_owned(),
            width,
            bars: Vec::new(),
        }
    }

    /// Appends a labeled value. Negative values are clamped to zero.
    pub fn push(&mut self, label: &str, value: f64) {
        self.bars.push((label.to_owned(), value.max(0.0)));
    }

    /// Number of bars so far.
    pub fn len(&self) -> usize {
        self.bars.len()
    }

    /// Whether the chart has no bars.
    pub fn is_empty(&self) -> bool {
        self.bars.is_empty()
    }
}

impl fmt::Display for BarChart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "-- {} --", self.title)?;
        let max = self.bars.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
        let label_w = self.bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        for (label, v) in &self.bars {
            let n = if max > 0.0 {
                ((v / max) * self.width as f64).round() as usize
            } else {
                0
            };
            writeln!(
                f,
                "{label:>label_w$} | {:<width$} {v:.2}",
                "#".repeat(n),
                width = self.width
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_max() {
        let mut c = BarChart::new("t", 10);
        c.push("a", 5.0);
        c.push("b", 10.0);
        let s = c.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[1].matches('#').count(), 5);
        assert_eq!(lines[2].matches('#').count(), 10);
    }

    #[test]
    fn zero_and_negative_safe() {
        let mut c = BarChart::new("t", 10);
        c.push("zero", 0.0);
        c.push("neg", -3.0);
        let s = c.to_string();
        assert!(!s.contains('#'));
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn labels_aligned() {
        let mut c = BarChart::new("t", 4);
        c.push("short", 1.0);
        c.push("a-much-longer-label", 2.0);
        let s = c.to_string();
        for line in s.lines().skip(1) {
            assert!(line.contains(" | "));
        }
    }

    #[test]
    #[should_panic]
    fn zero_width_rejected() {
        let _ = BarChart::new("t", 0);
    }
}
