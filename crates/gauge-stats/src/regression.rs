//! Ordinary-least-squares linear regression (Appendix C / Table 5).
//!
//! The paper fits execution time as a linear function of the hardware
//! counters, standardizes the features, and ranks counters by coefficient
//! magnitude. We solve the normal equations with Gaussian elimination
//! (partial pivoting); a tiny ridge term keeps collinear counter columns
//! (common: walk cycles track dTLB misses) from blowing up.

use std::error::Error;
use std::fmt;

/// Regression failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegressionError {
    /// Fewer observations than features + intercept.
    TooFewSamples,
    /// Rows have inconsistent numbers of features.
    RaggedRows,
    /// The normal-equation matrix was singular even after ridging.
    Singular,
}

impl fmt::Display for RegressionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegressionError::TooFewSamples => write!(f, "not enough samples for the feature count"),
            RegressionError::RaggedRows => write!(f, "feature rows have inconsistent lengths"),
            RegressionError::Singular => write!(f, "normal equations are singular"),
        }
    }
}

impl Error for RegressionError {}

/// A fitted linear model `y = intercept + coefficients . x`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRegression {
    /// Intercept term.
    pub intercept: f64,
    /// One coefficient per feature column.
    pub coefficients: Vec<f64>,
    /// Coefficient of determination on the training data.
    pub r_squared: f64,
}

impl LinearRegression {
    /// Fits OLS on raw (unstandardized) features.
    ///
    /// # Errors
    ///
    /// See [`RegressionError`].
    pub fn fit(xs: &[Vec<f64>], ys: &[f64]) -> Result<LinearRegression, RegressionError> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(RegressionError::TooFewSamples);
        }
        let k = xs[0].len();
        if xs.iter().any(|r| r.len() != k) {
            return Err(RegressionError::RaggedRows);
        }
        if xs.len() < k + 1 {
            return Err(RegressionError::TooFewSamples);
        }
        let n = xs.len();
        let dim = k + 1; // intercept column first
                         // Build X^T X and X^T y.
        let mut xtx = vec![vec![0.0f64; dim]; dim];
        let mut xty = vec![0.0f64; dim];
        for (row, &y) in xs.iter().zip(ys) {
            let mut full = Vec::with_capacity(dim);
            full.push(1.0);
            full.extend_from_slice(row);
            for i in 0..dim {
                xty[i] += full[i] * y;
                for j in 0..dim {
                    xtx[i][j] += full[i] * full[j];
                }
            }
        }
        // Ridge for numerical stability on (near-)collinear counters.
        let trace: f64 = (0..dim).map(|i| xtx[i][i]).sum();
        let lambda = 1e-9 * trace.max(1.0) / dim as f64;
        for (i, row) in xtx.iter_mut().enumerate().skip(1) {
            row[i] += lambda;
        }
        let beta = solve(xtx, xty)?;
        // R^2.
        let y_mean = ys.iter().sum::<f64>() / n as f64;
        let mut ss_res = 0.0;
        let mut ss_tot = 0.0;
        for (row, &y) in xs.iter().zip(ys) {
            let pred = beta[0] + row.iter().zip(&beta[1..]).map(|(x, b)| x * b).sum::<f64>();
            ss_res += (y - pred) * (y - pred);
            ss_tot += (y - y_mean) * (y - y_mean);
        }
        let r_squared = if ss_tot == 0.0 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        };
        Ok(LinearRegression {
            intercept: beta[0],
            coefficients: beta[1..].to_vec(),
            r_squared,
        })
    }

    /// Predicts `y` for a feature row.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong number of features.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.coefficients.len(), "feature count mismatch");
        self.intercept
            + x.iter()
                .zip(&self.coefficients)
                .map(|(x, b)| x * b)
                .sum::<f64>()
    }
}

/// Fits on z-scored features and a normalized target, returning the
/// standardized coefficients the paper tabulates (Table 5): comparable
/// magnitudes, sign preserved. Constant columns get coefficient 0.
///
/// # Errors
///
/// See [`RegressionError`].
pub fn standardized_coefficients(xs: &[Vec<f64>], ys: &[f64]) -> Result<Vec<f64>, RegressionError> {
    if xs.is_empty() || xs.len() != ys.len() {
        return Err(RegressionError::TooFewSamples);
    }
    let k = xs[0].len();
    if xs.iter().any(|r| r.len() != k) {
        return Err(RegressionError::RaggedRows);
    }
    let n = xs.len() as f64;
    let mut mu = vec![0.0; k];
    let mut sd = vec![0.0; k];
    for row in xs {
        for (j, &v) in row.iter().enumerate() {
            mu[j] += v;
        }
    }
    for m in &mut mu {
        *m /= n;
    }
    for row in xs {
        for (j, &v) in row.iter().enumerate() {
            sd[j] += (v - mu[j]) * (v - mu[j]);
        }
    }
    for s in &mut sd {
        *s = (*s / n).sqrt();
    }
    let y_mu = ys.iter().sum::<f64>() / n;
    let y_sd = (ys.iter().map(|y| (y - y_mu) * (y - y_mu)).sum::<f64>() / n).sqrt();
    let keep: Vec<usize> = (0..k).filter(|&j| sd[j] > 0.0).collect();
    let zx: Vec<Vec<f64>> = xs
        .iter()
        .map(|row| keep.iter().map(|&j| (row[j] - mu[j]) / sd[j]).collect())
        .collect();
    let zy: Vec<f64> = if y_sd > 0.0 {
        ys.iter().map(|y| (y - y_mu) / y_sd).collect()
    } else {
        vec![0.0; ys.len()]
    };
    let fit = LinearRegression::fit(&zx, &zy)?;
    let mut out = vec![0.0; k];
    for (slot, &j) in keep.iter().enumerate() {
        out[j] = fit.coefficients[slot];
    }
    Ok(out)
}

/// Solves `a x = b` by Gaussian elimination with partial pivoting.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>, RegressionError> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("NaN in solver")
            })
            .expect("non-empty range");
        if a[pivot][col].abs() < 1e-12 {
            return Err(RegressionError::Singular);
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            if f == 0.0 {
                continue;
            }
            let (pivot_rows, rest) = a.split_at_mut(row);
            let pivot_row = &pivot_rows[col];
            for (c, cell) in rest[0].iter_mut().enumerate().skip(col) {
                *cell -= f * pivot_row[c];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for c in row + 1..n {
            acc -= a[row][c] * x[c];
        }
        x[row] = acc / a[row][row];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relation() {
        // y = 3 + 2a - b
        let xs: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i * i % 7) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|r| 3.0 + 2.0 * r[0] - r[1]).collect();
        let fit = LinearRegression::fit(&xs, &ys).unwrap();
        assert!(
            (fit.intercept - 3.0).abs() < 1e-6,
            "intercept {}",
            fit.intercept
        );
        assert!((fit.coefficients[0] - 2.0).abs() < 1e-6);
        assert!((fit.coefficients[1] + 1.0).abs() < 1e-6);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn predict_matches_fit() {
        let xs = vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]];
        let ys = vec![2.0, 4.0, 6.0, 8.0];
        let fit = LinearRegression::fit(&xs, &ys).unwrap();
        assert!((fit.predict(&[5.0]) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn standardized_ranks_dominant_feature_first() {
        // y driven overwhelmingly by feature 0.
        let xs: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 10) as f64, ((i * 13) % 17) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|r| 100.0 * r[0] + 0.5 * r[1]).collect();
        let coefs = standardized_coefficients(&xs, &ys).unwrap();
        assert!(coefs[0].abs() > coefs[1].abs());
        assert!(coefs[0] > 0.9, "dominant standardized coef {}", coefs[0]);
    }

    #[test]
    fn constant_column_gets_zero_coefficient() {
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, 7.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| r[0] * 2.0).collect();
        let coefs = standardized_coefficients(&xs, &ys).unwrap();
        assert_eq!(coefs[1], 0.0);
        assert!(coefs[0] > 0.99);
    }

    #[test]
    fn too_few_samples_rejected() {
        let xs = vec![vec![1.0, 2.0]];
        let ys = vec![1.0];
        assert_eq!(
            LinearRegression::fit(&xs, &ys),
            Err(RegressionError::TooFewSamples)
        );
    }

    #[test]
    fn ragged_rows_rejected() {
        let xs = vec![vec![1.0], vec![1.0, 2.0], vec![3.0]];
        let ys = vec![1.0, 2.0, 3.0];
        assert_eq!(
            LinearRegression::fit(&xs, &ys),
            Err(RegressionError::RaggedRows)
        );
    }

    #[test]
    fn collinear_columns_survive_via_ridge() {
        // Second column is exactly 2x the first.
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let ys: Vec<f64> = (0..20).map(|i| 5.0 * i as f64).collect();
        let fit = LinearRegression::fit(&xs, &ys).unwrap();
        // Prediction still works even if individual coefs are not unique.
        assert!((fit.predict(&[10.0, 20.0]) - 50.0).abs() < 1e-3);
    }

    #[test]
    fn noisy_fit_has_reasonable_r2() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..100)
            .map(|i| 3.0 * i as f64 + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let fit = LinearRegression::fit(&xs, &ys).unwrap();
        assert!(fit.r_squared > 0.99);
    }
}
