//! Statistics for benchmark reporting.
//!
//! The paper aggregates runs with geometric means (§5.2), reports ratio
//! tables (Table 4), and ranks performance counters by fitting a linear
//! regression of execution time on standardized counter values and
//! comparing coefficient magnitudes (Appendix C, Table 5). This crate
//! implements exactly those tools.
//!
//! # Example
//!
//! ```
//! use gauge_stats::geomean;
//! assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod chart;
pub mod regression;
pub mod summary;
pub mod timeline;

pub use chart::BarChart;
pub use regression::{standardized_coefficients, LinearRegression, RegressionError};
pub use summary::{geomean, mean, percentile, ratio, Summary};
pub use timeline::{bin_timelines, TimelineBin};
