//! Summary statistics: means, geometric means, percentiles.

/// Arithmetic mean of `xs` (zero for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean of `xs`, the aggregation the paper uses across runs.
///
/// # Panics
///
/// Panics if any value is non-positive (a ratio of zero time makes no
/// sense and would silently poison the mean).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean requires positive values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Ratio `num / den` guarding against a zero denominator (returns 0).
pub fn ratio(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// The `p`-th percentile (0–100) using nearest-rank on a sorted copy.
///
/// # Panics
///
/// Panics if `p` is outside `0..=100` or `xs` is empty.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in 0..=100");
    assert!(!xs.is_empty(), "percentile of empty slice");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank]
}

/// Five-number-style summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Geometric mean.
    pub geomean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
}

impl Summary {
    /// Summarizes `xs`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or contains non-positive values (the
    /// geometric mean requires positivity).
    pub fn of(xs: &[f64]) -> Summary {
        assert!(!xs.is_empty(), "summary of empty sample");
        Summary {
            n: xs.len(),
            mean: mean(xs),
            geomean: geomean(xs),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            median: percentile(xs, 50.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn geomean_below_arithmetic_mean() {
        let xs = [1.0, 10.0, 100.0];
        assert!(geomean(&xs) < mean(&xs));
    }

    #[test]
    #[should_panic]
    fn geomean_rejects_zero() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[1.0, 2.0, 4.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 2.0);
        assert!((s.geomean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_guards_zero() {
        assert_eq!(ratio(4.0, 2.0), 2.0);
        assert_eq!(ratio(4.0, 0.0), 0.0);
    }
}
