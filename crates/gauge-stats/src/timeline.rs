//! Timeline aggregation: aligning and binning sampled counter series.
//!
//! The trace plane samples cumulative counters at fixed simulated-cycle
//! intervals, but different runs (repetitions, modes) finish at
//! different clocks and sample at different instants. To compare or
//! average their timelines, this module resamples each series onto a
//! common grid of `bins` equal-width cycle windows using step
//! interpolation (a cumulative counter holds its last observed value
//! until the next sample), then reports mean/min/max across series per
//! bin.

/// One bin of an aggregated timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineBin {
    /// Cycle clock at the bin's right edge.
    pub cycles: u64,
    /// Mean of the step-interpolated series values at that instant.
    pub mean: f64,
    /// Smallest series value at that instant.
    pub min: u64,
    /// Largest series value at that instant.
    pub max: u64,
}

/// Step-interpolates `series` at clock `at`: the value of the last
/// sample with `cycles <= at`, or 0 before the first sample (cumulative
/// counters start at zero).
fn step_at(series: &[(u64, u64)], at: u64) -> u64 {
    match series.partition_point(|&(cycles, _)| cycles <= at) {
        0 => 0,
        n => series[n - 1].1,
    }
}

/// Aligns `series` — each a `(cycles, value)` sequence sorted by cycles,
/// as produced by a trace timeline — onto `bins` equal-width windows
/// spanning `[0, max_cycles]` and aggregates across series per bin.
///
/// Returns an empty vector when there is nothing to bin (`bins == 0`,
/// no series, or every series empty).
pub fn bin_timelines(series: &[Vec<(u64, u64)>], bins: usize) -> Vec<TimelineBin> {
    let span = series
        .iter()
        .filter_map(|s| s.last().map(|&(cycles, _)| cycles))
        .max()
        .unwrap_or(0);
    let populated = series.iter().filter(|s| !s.is_empty()).count();
    if bins == 0 || populated == 0 {
        return Vec::new();
    }
    (1..=bins)
        .map(|i| {
            // Right edge of bin i; the last bin lands exactly on `span`.
            let at = span * i as u64 / bins as u64;
            let mut sum = 0.0;
            let mut min = u64::MAX;
            let mut max = 0;
            for s in series.iter().filter(|s| !s.is_empty()) {
                let v = step_at(s, at);
                sum += v as f64;
                min = min.min(v);
                max = max.max(v);
            }
            TimelineBin {
                cycles: at,
                mean: sum / populated as f64,
                min,
                max,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_interpolation_holds_last_value() {
        let s = vec![(10, 1), (20, 5), (30, 7)];
        assert_eq!(step_at(&s, 0), 0);
        assert_eq!(step_at(&s, 10), 1);
        assert_eq!(step_at(&s, 19), 1);
        assert_eq!(step_at(&s, 25), 5);
        assert_eq!(step_at(&s, 99), 7);
    }

    #[test]
    fn bins_span_longest_series_and_aggregate() {
        let a = vec![(10, 2), (100, 10)];
        let b = vec![(50, 4)];
        let bins = bin_timelines(&[a, b], 2);
        assert_eq!(bins.len(), 2);
        // Bin 1 right edge: 50 cycles — a holds 2, b holds 4.
        assert_eq!(bins[0].cycles, 50);
        assert!((bins[0].mean - 3.0).abs() < 1e-12);
        assert_eq!((bins[0].min, bins[0].max), (2, 4));
        // Bin 2 right edge: 100 cycles — a holds 10, b holds 4.
        assert_eq!(bins[1].cycles, 100);
        assert!((bins[1].mean - 7.0).abs() < 1e-12);
        assert_eq!((bins[1].min, bins[1].max), (4, 10));
    }

    #[test]
    fn degenerate_inputs_yield_empty() {
        assert!(bin_timelines(&[], 8).is_empty());
        assert!(bin_timelines(&[vec![]], 8).is_empty());
        assert!(bin_timelines(&[vec![(1, 1)]], 0).is_empty());
    }
}
