//! The campaign config grammar: a hand-rolled TOML subset.
//!
//! The build is fully offline (no `toml` crate), so campaigns are
//! described in a deliberately small grammar the parser below covers
//! completely: `[campaign]` and repeated `[[stage]]` tables, and
//! `key = value` lines where a value is an integer, a `"string"`, a
//! boolean, or an array of strings. `#` starts a comment (outside
//! strings). Everything else is a parse error with a line number —
//! never a silent default.
//!
//! ```toml
//! [campaign]
//! name = "storm"
//! seed = 42
//! scale = 64            # input divisor (0 = paper scale)
//! profile = "quick"     # "quick" (test platform) or "paper"
//! reps = 2
//! jobs = 2              # wave width = worker threads (determinism!)
//! retries = 2
//! retry_budget_cycles = 2000000
//! breaker_threshold = 3
//! breaker_cooldown = 2
//! max_quarantine = 8
//!
//! [[stage]]
//! name = "baseline"
//! modes = ["vanilla", "native"]
//! settings = ["low"]
//! workloads = ["Blockchain", "BTree"]
//! faults = "aex=2@50000"
//! io_faults = "eio=25,torn=10"
//! deadline_cycles = 0
//! antagonist = false
//! ```

use faults::{FaultPlan, IoFaultPlan, NetFaultPlan};
use sgxgauge_core::{ExecMode, InputSetting};

/// A parsed campaign: global policy plus ordered stages.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Campaign name (path-safe; names the output tree).
    pub name: String,
    /// Campaign seed: salts every stage's fault and io-fault plans and
    /// the soak kill schedule.
    pub seed: u64,
    /// Workload input divisor (`0` = paper scale).
    pub scale: u64,
    /// Platform profile: `true` = the scaled-down quick-test machine.
    pub quick_profile: bool,
    /// Repetitions per grid combination.
    pub reps: usize,
    /// Wave width *and* worker thread count. Part of the campaign's
    /// deterministic identity: supervision decisions are made at wave
    /// boundaries, so the wave width must come from config, never from
    /// the machine.
    pub jobs: usize,
    /// Per-cell retry budget (extra attempts) while undegraded.
    pub retries: usize,
    /// Campaign-wide retry spend budget in simulated backoff cycles
    /// (`0` = unlimited). Draining it flips the campaign into degraded
    /// mode.
    pub retry_budget_cycles: u64,
    /// Consecutive transient failures that open a workload's breaker
    /// (`0` = breakers disabled).
    pub breaker_threshold: usize,
    /// Cells of that workload shed while the breaker is open, before a
    /// half-open probe is admitted.
    pub breaker_cooldown: usize,
    /// Campaign-wide tolerance for quarantined (fatal/panicked) cells.
    pub max_quarantine: Option<usize>,
    /// Ordered sweep stages.
    pub stages: Vec<StageSpec>,
}

/// One ordered stage of the campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSpec {
    /// Stage name (path-safe; names the per-stage artifact directory).
    pub name: String,
    /// Execution modes swept, in order.
    pub modes: Vec<ExecMode>,
    /// Input settings swept, in order.
    pub settings: Vec<InputSetting>,
    /// Workload names (Table 2 spelling); empty = the full suite.
    pub workloads: Vec<String>,
    /// Simulated-fault plan (seed re-derived per stage from the
    /// campaign seed).
    pub faults: Option<FaultPlan>,
    /// Host-I/O fault plan applied to this stage's artifact writes when
    /// the campaign runs in chaos mode (seed re-derived per stage).
    pub io_faults: Option<IoFaultPlan>,
    /// Simulated-cycle deadline for the whole stage (`0` = none).
    /// Exceeding it sheds the stage's remaining cells.
    pub deadline_cycles: u64,
    /// An antagonist stage exists to *create* stress; it is skipped
    /// entirely when the campaign is already degraded by the time it
    /// is reached.
    pub antagonist: bool,
    /// Co-tenant count sharing the stage's EPC (`0` = the classic
    /// single-tenant stage). When set, every cell key carries the
    /// `tNaM` dimension and the stage's per-tenant EPC share shrinks
    /// accordingly, modeling `tenants` enclaves resident on one
    /// machine.
    pub tenants: u64,
    /// Of those tenants, how many are EPC-thrashing antagonists
    /// (recorded in the key's `aM` half; must not exceed `tenants`).
    pub antagonists: u64,
    /// Distributed-protocol party count (`0` = the classic single-enclave
    /// stage). When set, the stage sweeps the `ThresholdSign` workload
    /// over `parties` relay-connected enclaves and every cell key carries
    /// the `pNqT` dimension.
    pub parties: u64,
    /// Signing quorum for an MPC stage (`t` of `parties`); required —
    /// and only meaningful — when `parties` is set.
    pub threshold: u64,
    /// Network fault plan applied to the stage's cross-enclave relay
    /// (seed re-derived per stage from the campaign seed). Only
    /// meaningful when `parties` is set.
    pub net_faults: Option<NetFaultPlan>,
}

impl Default for StageSpec {
    fn default() -> Self {
        StageSpec {
            name: String::new(),
            modes: vec![ExecMode::Vanilla],
            settings: vec![InputSetting::Low],
            workloads: Vec::new(),
            faults: None,
            io_faults: None,
            deadline_cycles: 0,
            antagonist: false,
            tenants: 0,
            antagonists: 0,
            parties: 0,
            threshold: 0,
            net_faults: None,
        }
    }
}

/// One parsed `key = value` right-hand side.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Int(u64),
    Str(String),
    Bool(bool),
    StrArray(Vec<String>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "integer",
            Value::Str(_) => "string",
            Value::Bool(_) => "boolean",
            Value::StrArray(_) => "string array",
        }
    }
}

fn want_int(key: &str, line: usize, v: &Value) -> Result<u64, String> {
    match v {
        Value::Int(n) => Ok(*n),
        other => Err(format!(
            "line {line}: `{key}` wants an integer, got {}",
            other.type_name()
        )),
    }
}

fn want_str(key: &str, line: usize, v: &Value) -> Result<String, String> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        other => Err(format!(
            "line {line}: `{key}` wants a string, got {}",
            other.type_name()
        )),
    }
}

fn want_bool(key: &str, line: usize, v: &Value) -> Result<bool, String> {
    match v {
        Value::Bool(b) => Ok(*b),
        other => Err(format!(
            "line {line}: `{key}` wants a boolean, got {}",
            other.type_name()
        )),
    }
}

fn want_str_array(key: &str, line: usize, v: &Value) -> Result<Vec<String>, String> {
    match v {
        Value::StrArray(items) => Ok(items.clone()),
        other => Err(format!(
            "line {line}: `{key}` wants a string array, got {}",
            other.type_name()
        )),
    }
}

/// Names that become artifact directory components must stay path-safe.
fn path_safe(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
}

impl CampaignConfig {
    /// Parses the grammar documented on the module.
    ///
    /// # Errors
    ///
    /// A human-readable message with the offending line number.
    pub fn parse(text: &str) -> Result<CampaignConfig, String> {
        #[derive(PartialEq)]
        enum Section {
            None,
            Campaign,
            Stage,
        }
        let mut cfg = CampaignConfig {
            name: String::new(),
            seed: 1,
            scale: 0,
            quick_profile: false,
            reps: 1,
            jobs: 1,
            retries: 0,
            retry_budget_cycles: 0,
            breaker_threshold: 0,
            breaker_cooldown: 1,
            max_quarantine: None,
            stages: Vec::new(),
        };
        let mut section = Section::None;
        let mut saw_campaign = false;
        for (n, raw) in text.lines().enumerate() {
            let lineno = n + 1;
            let line = strip_comment(raw).trim().to_owned();
            if line.is_empty() {
                continue;
            }
            if line == "[campaign]" {
                if saw_campaign {
                    return Err(format!("line {lineno}: duplicate [campaign] table"));
                }
                saw_campaign = true;
                section = Section::Campaign;
                continue;
            }
            if line == "[[stage]]" {
                cfg.stages.push(StageSpec::default());
                section = Section::Stage;
                continue;
            }
            if line.starts_with('[') {
                return Err(format!(
                    "line {lineno}: unknown table `{line}` (only [campaign] and [[stage]])"
                ));
            }
            let (key, value) = parse_kv(&line, lineno)?;
            match section {
                Section::None => {
                    return Err(format!(
                        "line {lineno}: `{key}` outside any table; start with [campaign]"
                    ));
                }
                Section::Campaign => apply_campaign_key(&mut cfg, &key, &value, lineno)?,
                Section::Stage => {
                    let stage = cfg
                        .stages
                        .last_mut()
                        .ok_or_else(|| format!("line {lineno}: no open [[stage]]"))?;
                    apply_stage_key(stage, &key, &value, lineno)?;
                }
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }

    fn validate(&self) -> Result<(), String> {
        if !path_safe(&self.name) {
            return Err(format!(
                "campaign name `{}` must be non-empty and [A-Za-z0-9_-] (it names a directory)",
                self.name
            ));
        }
        if self.stages.is_empty() {
            return Err("a campaign needs at least one [[stage]]".to_owned());
        }
        if self.reps == 0 {
            return Err("reps must be at least 1".to_owned());
        }
        if self.jobs == 0 {
            return Err("jobs must be at least 1 (it is the deterministic wave width)".to_owned());
        }
        if self.breaker_threshold > 0 && self.breaker_cooldown == 0 {
            return Err("breaker_cooldown must be at least 1 when breakers are enabled".to_owned());
        }
        let mut seen = Vec::new();
        for stage in &self.stages {
            if !path_safe(&stage.name) {
                return Err(format!(
                    "stage name `{}` must be non-empty and [A-Za-z0-9_-] (it names a directory)",
                    stage.name
                ));
            }
            if seen.contains(&stage.name.as_str()) {
                return Err(format!(
                    "duplicate stage name `{}` (stage directories would collide)",
                    stage.name
                ));
            }
            seen.push(stage.name.as_str());
            if stage.modes.is_empty() {
                return Err(format!("stage `{}` sweeps no modes", stage.name));
            }
            if stage.settings.is_empty() {
                return Err(format!("stage `{}` sweeps no settings", stage.name));
            }
            if stage.tenants > u64::from(u8::MAX) {
                return Err(format!(
                    "stage `{}`: tenants {} exceeds the key dimension's limit of {}",
                    stage.name,
                    stage.tenants,
                    u8::MAX
                ));
            }
            if stage.antagonists > stage.tenants {
                return Err(format!(
                    "stage `{}`: {} antagonists among only {} tenants",
                    stage.name, stage.antagonists, stage.tenants
                ));
            }
            if stage.parties > 0 {
                if !(2..=64).contains(&stage.parties) {
                    return Err(format!(
                        "stage `{}`: parties {} outside the relay's 2..=64 range",
                        stage.name, stage.parties
                    ));
                }
                if stage.threshold == 0 || stage.threshold > stage.parties {
                    return Err(format!(
                        "stage `{}`: threshold {} must be 1..={} (its parties)",
                        stage.name, stage.threshold, stage.parties
                    ));
                }
                if !stage.workloads.is_empty() {
                    return Err(format!(
                        "stage `{}`: an MPC stage runs only ThresholdSign; drop its `workloads` list",
                        stage.name
                    ));
                }
            } else {
                if stage.threshold > 0 {
                    return Err(format!("stage `{}`: threshold without parties", stage.name));
                }
                if stage.net_faults.is_some() {
                    return Err(format!(
                        "stage `{}`: net_faults without parties (the relay only exists in an MPC stage)",
                        stage.name
                    ));
                }
            }
        }
        Ok(())
    }
}

fn apply_campaign_key(
    cfg: &mut CampaignConfig,
    key: &str,
    value: &Value,
    line: usize,
) -> Result<(), String> {
    match key {
        "name" => cfg.name = want_str(key, line, value)?,
        "seed" => cfg.seed = want_int(key, line, value)?,
        "scale" => cfg.scale = want_int(key, line, value)?,
        "profile" => {
            let profile = want_str(key, line, value)?;
            cfg.quick_profile = match profile.as_str() {
                "quick" => true,
                "paper" => false,
                other => {
                    return Err(format!(
                        "line {line}: profile `{other}` (want \"quick\" or \"paper\")"
                    ));
                }
            };
        }
        "reps" => cfg.reps = want_int(key, line, value)? as usize,
        "jobs" => cfg.jobs = want_int(key, line, value)? as usize,
        "retries" => cfg.retries = want_int(key, line, value)? as usize,
        "retry_budget_cycles" => cfg.retry_budget_cycles = want_int(key, line, value)?,
        "breaker_threshold" => cfg.breaker_threshold = want_int(key, line, value)? as usize,
        "breaker_cooldown" => cfg.breaker_cooldown = want_int(key, line, value)? as usize,
        "max_quarantine" => cfg.max_quarantine = Some(want_int(key, line, value)? as usize),
        other => return Err(format!("line {line}: unknown [campaign] key `{other}`")),
    }
    Ok(())
}

fn apply_stage_key(
    stage: &mut StageSpec,
    key: &str,
    value: &Value,
    line: usize,
) -> Result<(), String> {
    match key {
        "name" => stage.name = want_str(key, line, value)?,
        "modes" => {
            let mut modes = Vec::new();
            for item in want_str_array(key, line, value)? {
                modes.push(
                    item.parse::<ExecMode>()
                        .map_err(|e| format!("line {line}: {e}"))?,
                );
            }
            stage.modes = modes;
        }
        "settings" => {
            let mut settings = Vec::new();
            for item in want_str_array(key, line, value)? {
                settings.push(
                    item.parse::<InputSetting>()
                        .map_err(|e| format!("line {line}: {e}"))?,
                );
            }
            stage.settings = settings;
        }
        "workloads" => stage.workloads = want_str_array(key, line, value)?,
        "faults" => {
            let spec = want_str(key, line, value)?;
            stage.faults = Some(FaultPlan::parse(&spec).map_err(|e| format!("line {line}: {e}"))?);
        }
        "io_faults" => {
            let spec = want_str(key, line, value)?;
            stage.io_faults =
                Some(IoFaultPlan::parse(&spec).map_err(|e| format!("line {line}: {e}"))?);
        }
        "deadline_cycles" => stage.deadline_cycles = want_int(key, line, value)?,
        "antagonist" => stage.antagonist = want_bool(key, line, value)?,
        "tenants" => stage.tenants = want_int(key, line, value)?,
        "antagonists" => stage.antagonists = want_int(key, line, value)?,
        "parties" => stage.parties = want_int(key, line, value)?,
        "threshold" => stage.threshold = want_int(key, line, value)?,
        "net_faults" => {
            let spec = want_str(key, line, value)?;
            stage.net_faults =
                Some(NetFaultPlan::parse(&spec).map_err(|e| format!("line {line}: {e}"))?);
        }
        other => return Err(format!("line {line}: unknown [[stage]] key `{other}`")),
    }
    Ok(())
}

/// Strips a `#` comment that is not inside a double-quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn parse_kv(line: &str, lineno: usize) -> Result<(String, Value), String> {
    let (key, rest) = line
        .split_once('=')
        .ok_or_else(|| format!("line {lineno}: expected `key = value`, got `{line}`"))?;
    let key = key.trim();
    if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(format!("line {lineno}: bad key `{key}`"));
    }
    Ok((key.to_owned(), parse_value(rest.trim(), lineno)?))
}

fn parse_value(text: &str, lineno: usize) -> Result<Value, String> {
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(inner) = text.strip_prefix('"') {
        let s = inner
            .strip_suffix('"')
            .ok_or_else(|| format!("line {lineno}: unterminated string {text}"))?;
        if s.contains('"') {
            return Err(format!(
                "line {lineno}: embedded quote in {text} (escapes are not part of the grammar)"
            ));
        }
        return Ok(Value::Str(s.to_owned()));
    }
    if let Some(inner) = text.strip_prefix('[') {
        let body = inner
            .strip_suffix(']')
            .ok_or_else(|| format!("line {lineno}: unterminated array {text}"))?;
        let mut items = Vec::new();
        for piece in body.split(',') {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            match parse_value(piece, lineno)? {
                Value::Str(s) => items.push(s),
                other => {
                    return Err(format!(
                        "line {lineno}: arrays hold strings only, got {}",
                        other.type_name()
                    ));
                }
            }
        }
        return Ok(Value::StrArray(items));
    }
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    cleaned
        .parse::<u64>()
        .map(Value::Int)
        .map_err(|_| format!("line {lineno}: `{text}` is not an integer, string, bool, or array"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"
# A two-stage storm campaign.
[campaign]
name = "storm"          # output tree name
seed = 42
scale = 64
profile = "quick"
reps = 2
jobs = 2
retries = 2
retry_budget_cycles = 2_000_000
breaker_threshold = 3
breaker_cooldown = 2

[[stage]]
name = "baseline"
modes = ["vanilla", "native"]
settings = ["low"]
workloads = ["Blockchain", "BTree"]

[[stage]]
name = "syscall-storm"
modes = ["vanilla"]
settings = ["low"]
faults = "syscall=300"
io_faults = "eio=25,torn=10"
deadline_cycles = 900000000
antagonist = true
"#;

    #[test]
    fn parses_the_documented_example() {
        let cfg = CampaignConfig::parse(EXAMPLE).expect("example parses");
        assert_eq!(cfg.name, "storm");
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.scale, 64);
        assert!(cfg.quick_profile);
        assert_eq!(cfg.jobs, 2);
        assert_eq!(cfg.retry_budget_cycles, 2_000_000);
        assert_eq!(cfg.stages.len(), 2);
        assert_eq!(
            cfg.stages[0].modes,
            vec![ExecMode::Vanilla, ExecMode::Native]
        );
        assert_eq!(cfg.stages[0].workloads, vec!["Blockchain", "BTree"]);
        let storm = &cfg.stages[1];
        assert_eq!(storm.faults.as_ref().unwrap().syscall_fail_permille, 300);
        assert_eq!(storm.io_faults.as_ref().unwrap().eio_permille, 25);
        assert_eq!(storm.deadline_cycles, 900_000_000);
        assert!(storm.antagonist);
    }

    #[test]
    fn parses_and_validates_cotenancy_keys() {
        let base = "[campaign]\nname = \"x\"\n[[stage]]\nname = \"s\"\n";
        let cfg = CampaignConfig::parse(&format!("{base}tenants = 4\nantagonists = 3\n"))
            .expect("co-tenant stage parses");
        assert_eq!(cfg.stages[0].tenants, 4);
        assert_eq!(cfg.stages[0].antagonists, 3);
        // Default stays the classic single-tenant stage.
        let plain = CampaignConfig::parse(base).expect("plain stage parses");
        assert_eq!(plain.stages[0].tenants, 0);
        assert!(
            CampaignConfig::parse(&format!("{base}tenants = 2\nantagonists = 3\n"))
                .unwrap_err()
                .contains("antagonists")
        );
        assert!(CampaignConfig::parse(&format!("{base}tenants = 300\n"))
            .unwrap_err()
            .contains("limit"));
    }

    #[test]
    fn parses_and_validates_mpc_keys() {
        let base = "[campaign]\nname = \"x\"\n[[stage]]\nname = \"s\"\n";
        let cfg = CampaignConfig::parse(&format!(
            "{base}parties = 5\nthreshold = 3\nnet_faults = \"drop=50,partykill=2@100000:500000\"\n"
        ))
        .expect("mpc stage parses");
        assert_eq!(cfg.stages[0].parties, 5);
        assert_eq!(cfg.stages[0].threshold, 3);
        let net = cfg.stages[0].net_faults.as_ref().unwrap();
        assert_eq!(net.drop_permille, 50);
        // Plain stages stay single-enclave.
        let plain = CampaignConfig::parse(base).expect("plain stage parses");
        assert_eq!(plain.stages[0].parties, 0);
        assert!(plain.stages[0].net_faults.is_none());
        // Shape and pairing rules.
        assert!(
            CampaignConfig::parse(&format!("{base}parties = 1\nthreshold = 1\n"))
                .unwrap_err()
                .contains("2..=64")
        );
        assert!(
            CampaignConfig::parse(&format!("{base}parties = 5\nthreshold = 6\n"))
                .unwrap_err()
                .contains("threshold")
        );
        assert!(CampaignConfig::parse(&format!("{base}parties = 5\n"))
            .unwrap_err()
            .contains("threshold"));
        assert!(CampaignConfig::parse(&format!("{base}threshold = 3\n"))
            .unwrap_err()
            .contains("without parties"));
        assert!(
            CampaignConfig::parse(&format!("{base}net_faults = \"drop=50\"\n"))
                .unwrap_err()
                .contains("without parties")
        );
        assert!(CampaignConfig::parse(&format!(
            "{base}parties = 5\nthreshold = 3\nworkloads = [\"BTree\"]\n"
        ))
        .unwrap_err()
        .contains("ThresholdSign"));
        // Bad plans carry the config line number.
        let err = CampaignConfig::parse(&format!(
            "{base}parties = 5\nthreshold = 3\nnet_faults = \"bogus=1\"\n"
        ))
        .unwrap_err();
        assert!(err.contains("line 7"), "{err}");
    }

    #[test]
    fn comments_respect_strings() {
        assert_eq!(strip_comment("a = 1 # note"), "a = 1 ");
        assert_eq!(strip_comment("a = \"x#y\""), "a = \"x#y\"");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "[campaign]\nname = \"x\"\nbogus_key = 3\n[[stage]]\nname = \"s\"\n";
        let err = CampaignConfig::parse(bad).unwrap_err();
        assert!(err.contains("line 3"), "{err}");
        assert!(err.contains("bogus_key"), "{err}");
    }

    #[test]
    fn rejects_unsafe_and_duplicate_stage_names() {
        let unsafe_name = "[campaign]\nname = \"x\"\n[[stage]]\nname = \"a/b\"\n";
        assert!(CampaignConfig::parse(unsafe_name)
            .unwrap_err()
            .contains("names a directory"));
        let dup = "[campaign]\nname = \"x\"\n[[stage]]\nname = \"s\"\n[[stage]]\nname = \"s\"\n";
        assert!(CampaignConfig::parse(dup)
            .unwrap_err()
            .contains("duplicate"));
    }

    #[test]
    fn rejects_keys_outside_tables_and_bad_values() {
        assert!(CampaignConfig::parse("name = \"x\"\n")
            .unwrap_err()
            .contains("outside any table"));
        assert!(CampaignConfig::parse("[campaign]\nseed = \"q\"\n")
            .unwrap_err()
            .contains("integer"));
        assert!(CampaignConfig::parse(
            "[campaign]\nname = \"x\"\n[[stage]]\nname = \"s\"\nmodes = [\"warp\"]\n"
        )
        .is_err());
    }
}
