//! Crash-restart soak: kill a campaign repeatedly, then prove it
//! converged.
//!
//! The harness runs the campaign once on a clean artifact plane (the
//! *golden* tree — same fault plan, no host-I/O chaos), then runs the
//! same campaign under the full storm — stage io-fault plans active and
//! a seeded [`KillState`](crate::runner::KillState) countdown that kills
//! the process at the N-th artifact rename — `kills` times, resuming
//! from the journal/checkpoint path after each death. A final storm
//! pass with no kill runs the campaign to completion, and every
//! compared artifact (`report.csv`, `checkpoint.json`, `trace.jsonl`)
//! must be **byte-identical** to the golden tree. `health.json` is
//! deliberately excluded: it records how a particular run got there
//! (adoption counts, recovery repairs), not where it landed.
//!
//! Kill points are drawn from the campaign seed, early in the rename
//! stream (every resume re-publishes the artifacts of already-complete
//! stages, so even a fully-adopted resume performs enough renames for
//! the next kill to fire).

use crate::config::CampaignConfig;
use crate::runner::{run_campaign, CampaignError, CampaignReport, KillState};
use faults::prng::splitmix64;
use faults::XorShift64;
use sgxgauge_core::{ArtifactIo, RealFs};
use std::path::Path;

/// Domain separator for the kill-point stream (distinct from every
/// stage salt, which are derived by small additive offsets).
const SOAK_SALT: u64 = 0x50AC_50AC_50AC_50AC;

/// Earliest rename a kill may land on.
const KILL_MIN_RENAME: u64 = 2;

/// Width of the kill-point window.
const KILL_SPAN_RENAMES: u64 = 9;

/// What the soak proved.
#[derive(Debug, Clone)]
pub struct SoakOutcome {
    /// Kill/resume cycles that actually fired (must equal the requested
    /// count — a kill that never lands would weaken the proof).
    pub kills_fired: usize,
    /// All compared artifacts are byte-identical to the golden tree.
    pub converged: bool,
    /// Human-readable descriptions of any divergent artifacts.
    pub mismatches: Vec<String>,
    /// Golden run's simulated cycle total (runtime + backoff).
    pub golden_cycles: u64,
    /// Final storm pass's simulated cycle total.
    pub storm_cycles: u64,
    /// The final storm pass's campaign report.
    pub report: CampaignReport,
}

/// Runs the crash-restart soak under `out` (`<out>/golden` and
/// `<out>/storm` trees) with `kills` seeded kill/resume cycles.
///
/// # Errors
///
/// [`CampaignError`] when the golden run fails, a storm iteration dies
/// of something *other* than its scheduled kill, or the final pass
/// cannot complete.
pub fn run_soak(
    cfg: &CampaignConfig,
    out: &Path,
    kills: usize,
) -> Result<SoakOutcome, CampaignError> {
    let golden_dir = out.join("golden");
    let storm_dir = out.join("storm");
    let golden = run_campaign(cfg, &golden_dir, false, None)?;

    let mut rng = XorShift64::new(splitmix64(cfg.seed ^ SOAK_SALT));
    let mut kills_fired = 0;
    for _ in 0..kills {
        let ordinal = KILL_MIN_RENAME + rng.below(KILL_SPAN_RENAMES);
        let kill = KillState::after_renames(ordinal);
        match run_campaign(cfg, &storm_dir, true, Some(kill.clone())) {
            Ok(_) => {}
            Err(e) if kill.fired() => {
                // The scheduled death; the next iteration resumes.
                let _ = e;
            }
            Err(e) => return Err(e),
        }
        if kill.fired() {
            kills_fired += 1;
        }
    }
    let report = run_campaign(cfg, &storm_dir, true, None)?;

    let mut mismatches = Vec::new();
    for stage in &cfg.stages {
        for artifact in ["report.csv", "checkpoint.json", "trace.jsonl"] {
            let golden_path = golden_dir.join(&stage.name).join(artifact);
            let storm_path = storm_dir.join(&stage.name).join(artifact);
            let golden_text = RealFs.read(&golden_path).ok();
            let storm_text = RealFs.read(&storm_path).ok();
            if golden_text.is_none() || golden_text != storm_text {
                mismatches.push(format!(
                    "{}/{artifact}: golden {} bytes, storm {} bytes",
                    stage.name,
                    golden_text.map_or(0, |t| t.len()),
                    storm_text.map_or(0, |t| t.len()),
                ));
            }
        }
    }
    Ok(SoakOutcome {
        kills_fired,
        converged: mismatches.is_empty(),
        mismatches,
        golden_cycles: golden.total_cycles(),
        storm_cycles: report.total_cycles(),
        report,
    })
}
