//! Campaign supervision: circuit breakers, the global retry budget,
//! and per-stage deadlines as one pure state machine.
//!
//! The [`Supervisor`] never runs anything and never touches a clock or
//! the filesystem — the stage runner asks it to *admit* each cell of a
//! wave (in grid order) and then reports back what actually happened
//! (also in grid order, at the wave boundary). All of its state
//! transitions are pure functions of that observation order, which is
//! itself a pure function of the campaign config. That is the whole
//! determinism argument: a resumed campaign replays the same admission
//! sequence (adopted cells are observed exactly like executed ones) and
//! therefore makes byte-identical shed decisions.
//!
//! Every decision the supervisor takes is emitted as a typed
//! [`CampaignEvent`] into the stage's [`CampaignLog`], so breaker trips
//! and shed cells are first-class trace records, not log prose.

use std::collections::BTreeMap;
use trace::{BreakerState, CampaignEvent, CampaignLog, ShedReason};

/// What the supervisor decided for one cell at admission time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Run the cell. `probe` marks a half-open breaker's trial cell;
    /// its outcome alone decides whether the breaker closes again.
    Run {
        /// This cell is a half-open breaker probe.
        probe: bool,
    },
    /// Shed the cell without executing it, for the stated reason.
    Shed(ShedReason),
}

/// What the runner observed for one admitted (or adopted) cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// The cell settled successfully.
    pub ok: bool,
    /// The cell's final failure was transient (retry-worthy); only
    /// these count toward opening a breaker.
    pub transient: bool,
    /// Simulated backoff cycles the cell's retries accounted — charged
    /// against the campaign's global retry budget.
    pub backoff_cycles: u64,
    /// Simulated runtime cycles of the cell (0 for failed cells) —
    /// charged against the stage deadline together with backoff.
    pub cell_cycles: u64,
}

/// Per-workload circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Breaker {
    /// Healthy; counts consecutive transient failures.
    Closed { consecutive: usize },
    /// Tripped; sheds cells until the cooldown is spent.
    Open { cooldown_left: usize },
    /// Cooled down; admits exactly one probe cell.
    HalfOpen { probe_pending: bool },
}

/// Aggregate counters for `health.json` and the campaign report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisorHealth {
    /// Simulated backoff cycles spent from the global retry budget.
    pub retry_spent_cycles: u64,
    /// Whether the retry budget is drained (campaign is degraded).
    pub degraded: bool,
    /// Breaker open transitions across the campaign.
    pub breaker_trips: u64,
    /// Cells shed across the campaign, by any reason.
    pub cells_shed: u64,
}

/// The campaign-wide supervision state machine.
///
/// Breakers are scoped per workload and reset at every stage boundary;
/// the retry budget and the degraded flag persist across stages.
#[derive(Debug)]
pub struct Supervisor {
    /// Consecutive transient failures that open a breaker (0 = off).
    threshold: usize,
    /// Shed cells per open period before a half-open probe.
    cooldown: usize,
    /// Global retry budget in simulated backoff cycles (0 = unlimited).
    budget_cycles: u64,
    spent_cycles: u64,
    degraded: bool,
    drain_announced: bool,
    breakers: BTreeMap<String, Breaker>,
    stage_deadline: u64,
    stage_spent: u64,
    trips: u64,
    shed: u64,
}

impl Supervisor {
    /// A fresh supervisor with the campaign's policy knobs.
    #[must_use]
    pub fn new(threshold: usize, cooldown: usize, budget_cycles: u64) -> Supervisor {
        Supervisor {
            threshold,
            cooldown: cooldown.max(1),
            budget_cycles,
            spent_cycles: 0,
            degraded: false,
            drain_announced: false,
            breakers: BTreeMap::new(),
            stage_deadline: 0,
            stage_spent: 0,
            trips: 0,
            shed: 0,
        }
    }

    /// Starts a stage: breakers reset (a new stage is a new fault
    /// regime), the stage cycle ledger restarts against `deadline`
    /// (0 = no deadline). The retry budget carries over.
    pub fn begin_stage(&mut self, deadline_cycles: u64) {
        self.breakers.clear();
        self.stage_deadline = deadline_cycles;
        self.stage_spent = 0;
    }

    /// Whether the global retry budget is drained.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Simulated cycles (runtime + backoff) observed in this stage.
    #[must_use]
    pub fn stage_spent_cycles(&self) -> u64 {
        self.stage_spent
    }

    /// Aggregate counters for health reporting.
    #[must_use]
    pub fn health(&self) -> SupervisorHealth {
        SupervisorHealth {
            retry_spent_cycles: self.spent_cycles,
            degraded: self.degraded,
            breaker_trips: self.trips,
            cells_shed: self.shed,
        }
    }

    /// Decides one cell's fate. Called sequentially in grid order;
    /// earlier admissions in the same wave are visible to later ones
    /// (cooldown ticks, probe reservation), which is deterministic
    /// because grid order is.
    pub fn admit(
        &mut self,
        workload: &str,
        cell: &str,
        rep: usize,
        log: &mut CampaignLog,
    ) -> Admission {
        // Degraded mode sheds every repetition beyond the first: the
        // campaign keeps measuring each coordinate once but stops
        // paying for statistical depth.
        if self.degraded && rep > 0 {
            return self.shed(workload, cell, ShedReason::RetryBudgetDrained, log);
        }
        if self.stage_deadline > 0 && self.stage_spent > self.stage_deadline {
            return self.shed(workload, cell, ShedReason::SloExceeded, log);
        }
        if self.threshold == 0 {
            return Admission::Run { probe: false };
        }
        let threshold = self.threshold;
        let entry = self
            .breakers
            .entry(workload.to_owned())
            .or_insert(Breaker::Closed { consecutive: 0 });
        match *entry {
            Breaker::Closed { .. } => Admission::Run { probe: false },
            Breaker::Open { cooldown_left } => {
                let left = cooldown_left.saturating_sub(1);
                if left == 0 {
                    *entry = Breaker::HalfOpen {
                        probe_pending: false,
                    };
                    log.push(
                        self.spent_cycles,
                        CampaignEvent::BreakerTransition {
                            workload: workload.to_owned(),
                            from: BreakerState::Open,
                            to: BreakerState::HalfOpen,
                            consecutive_failures: threshold,
                        },
                    );
                } else {
                    *entry = Breaker::Open {
                        cooldown_left: left,
                    };
                }
                self.shed(workload, cell, ShedReason::BreakerOpen, log)
            }
            Breaker::HalfOpen { probe_pending } => {
                if probe_pending {
                    self.shed(workload, cell, ShedReason::BreakerOpen, log)
                } else {
                    *entry = Breaker::HalfOpen {
                        probe_pending: true,
                    };
                    Admission::Run { probe: true }
                }
            }
        }
    }

    fn shed(
        &mut self,
        workload: &str,
        cell: &str,
        reason: ShedReason,
        log: &mut CampaignLog,
    ) -> Admission {
        self.shed += 1;
        log.push(
            self.spent_cycles,
            CampaignEvent::CellShed {
                cell: cell.to_owned(),
                workload: workload.to_owned(),
                reason,
            },
        );
        Admission::Shed(reason)
    }

    /// Reports one admitted (or checkpoint-adopted) cell's outcome.
    /// Called in grid order at the wave boundary. `probe` must echo the
    /// admission decision.
    pub fn observe(
        &mut self,
        workload: &str,
        probe: bool,
        obs: Observation,
        log: &mut CampaignLog,
    ) {
        self.stage_spent = self
            .stage_spent
            .saturating_add(obs.cell_cycles)
            .saturating_add(obs.backoff_cycles);
        self.spend_backoff(obs.backoff_cycles, log);
        if self.threshold == 0 {
            return;
        }
        let threshold = self.threshold;
        let cooldown = self.cooldown;
        let entry = self
            .breakers
            .entry(workload.to_owned())
            .or_insert(Breaker::Closed { consecutive: 0 });
        if probe {
            log.push(
                self.spent_cycles,
                CampaignEvent::ProbeResult {
                    cell: workload.to_owned(),
                    workload: workload.to_owned(),
                    ok: obs.ok,
                },
            );
            let (next, to) = if obs.ok {
                (Breaker::Closed { consecutive: 0 }, BreakerState::Closed)
            } else {
                (
                    Breaker::Open {
                        cooldown_left: cooldown,
                    },
                    BreakerState::Open,
                )
            };
            *entry = next;
            log.push(
                self.spent_cycles,
                CampaignEvent::BreakerTransition {
                    workload: workload.to_owned(),
                    from: BreakerState::HalfOpen,
                    to,
                    consecutive_failures: if obs.ok { 0 } else { threshold },
                },
            );
            if !obs.ok {
                self.trips += 1;
            }
            return;
        }
        match *entry {
            Breaker::Closed { consecutive } => {
                if obs.ok || !obs.transient {
                    *entry = Breaker::Closed { consecutive: 0 };
                } else {
                    let consecutive = consecutive + 1;
                    if consecutive >= threshold {
                        *entry = Breaker::Open {
                            cooldown_left: cooldown,
                        };
                        self.trips += 1;
                        log.push(
                            self.spent_cycles,
                            CampaignEvent::BreakerTransition {
                                workload: workload.to_owned(),
                                from: BreakerState::Closed,
                                to: BreakerState::Open,
                                consecutive_failures: consecutive,
                            },
                        );
                    } else {
                        *entry = Breaker::Closed { consecutive };
                    }
                }
            }
            // Outcomes for cells admitted while the breaker was not
            // closed are probe outcomes (handled above) or shed cells
            // (never observed), so nothing reaches here.
            Breaker::Open { .. } | Breaker::HalfOpen { .. } => {}
        }
    }

    fn spend_backoff(&mut self, backoff_cycles: u64, log: &mut CampaignLog) {
        self.spent_cycles = self.spent_cycles.saturating_add(backoff_cycles);
        if self.budget_cycles > 0 && self.spent_cycles > self.budget_cycles && !self.degraded {
            self.degraded = true;
            if !self.drain_announced {
                self.drain_announced = true;
                log.push(
                    self.spent_cycles,
                    CampaignEvent::RetryBudgetDrained {
                        spent_cycles: self.spent_cycles,
                        budget_cycles: self.budget_cycles,
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok() -> Observation {
        Observation {
            ok: true,
            transient: false,
            backoff_cycles: 0,
            cell_cycles: 100,
        }
    }

    fn transient(backoff: u64) -> Observation {
        Observation {
            ok: false,
            transient: true,
            backoff_cycles: backoff,
            cell_cycles: 0,
        }
    }

    #[test]
    fn breaker_opens_cools_probes_and_recloses() {
        let mut sup = Supervisor::new(2, 2, 0);
        let mut log = CampaignLog::new();
        sup.begin_stage(0);
        // Two consecutive transient failures open the breaker.
        assert_eq!(
            sup.admit("BTree", "BTree", 0, &mut log),
            Admission::Run { probe: false }
        );
        sup.observe("BTree", false, transient(10), &mut log);
        assert_eq!(
            sup.admit("BTree", "BTree", 1, &mut log),
            Admission::Run { probe: false }
        );
        sup.observe("BTree", false, transient(10), &mut log);
        // Open: two cooldown cells are shed; the second admission
        // transitions to half-open but is itself still shed.
        assert_eq!(
            sup.admit("BTree", "BTree", 2, &mut log),
            Admission::Shed(ShedReason::BreakerOpen)
        );
        assert_eq!(
            sup.admit("BTree", "BTree", 3, &mut log),
            Admission::Shed(ShedReason::BreakerOpen)
        );
        // Half-open: exactly one probe runs; a sibling in the same wave
        // is shed.
        assert_eq!(
            sup.admit("BTree", "BTree", 4, &mut log),
            Admission::Run { probe: true }
        );
        assert_eq!(
            sup.admit("BTree", "BTree", 5, &mut log),
            Admission::Shed(ShedReason::BreakerOpen)
        );
        // Successful probe recloses the breaker.
        sup.observe("BTree", true, ok(), &mut log);
        assert_eq!(
            sup.admit("BTree", "BTree", 6, &mut log),
            Admission::Run { probe: false }
        );
        assert_eq!(sup.health().breaker_trips, 1);
        assert_eq!(sup.health().cells_shed, 3);
    }

    #[test]
    fn failed_probe_reopens_for_a_full_cooldown() {
        let mut sup = Supervisor::new(1, 1, 0);
        let mut log = CampaignLog::new();
        sup.begin_stage(0);
        sup.admit("Bfs", "Bfs", 0, &mut log);
        sup.observe("Bfs", false, transient(1), &mut log);
        // cooldown=1: the first open admission flips straight to
        // half-open (and is shed); the next admits the probe.
        assert_eq!(
            sup.admit("Bfs", "Bfs", 1, &mut log),
            Admission::Shed(ShedReason::BreakerOpen)
        );
        assert_eq!(
            sup.admit("Bfs", "Bfs", 2, &mut log),
            Admission::Run { probe: true }
        );
        sup.observe("Bfs", true, transient(1), &mut log);
        // Probe failed (observe with probe=true and !ok reopens).
        assert_eq!(
            sup.admit("Bfs", "Bfs", 3, &mut log),
            Admission::Shed(ShedReason::BreakerOpen)
        );
        assert_eq!(sup.health().breaker_trips, 2);
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let mut sup = Supervisor::new(2, 1, 0);
        let mut log = CampaignLog::new();
        sup.begin_stage(0);
        for _ in 0..4 {
            assert_eq!(
                sup.admit("Svm", "Svm", 0, &mut log),
                Admission::Run { probe: false }
            );
            sup.observe("Svm", false, transient(1), &mut log);
            assert_eq!(
                sup.admit("Svm", "Svm", 0, &mut log),
                Admission::Run { probe: false }
            );
            sup.observe("Svm", true, ok(), &mut log);
        }
        assert_eq!(sup.health().breaker_trips, 0);
    }

    #[test]
    fn budget_drain_fires_once_and_sheds_later_reps() {
        let mut sup = Supervisor::new(0, 1, 100);
        let mut log = CampaignLog::new();
        sup.begin_stage(0);
        sup.admit("Svm", "Svm", 0, &mut log);
        sup.observe("Svm", false, transient(101), &mut log);
        assert!(sup.is_degraded());
        sup.observe("Svm", false, transient(50), &mut log);
        let drained = log
            .events()
            .filter(|(_, e)| matches!(e, CampaignEvent::RetryBudgetDrained { .. }))
            .count();
        assert_eq!(drained, 1);
        assert_eq!(
            sup.admit("Svm", "Svm", 0, &mut log),
            Admission::Run { probe: false }
        );
        assert_eq!(
            sup.admit("Svm", "Svm", 1, &mut log),
            Admission::Shed(ShedReason::RetryBudgetDrained)
        );
    }

    #[test]
    fn stage_deadline_sheds_the_remainder_and_resets_per_stage() {
        let mut sup = Supervisor::new(0, 1, 0);
        let mut log = CampaignLog::new();
        sup.begin_stage(50);
        sup.admit("Bfs", "Bfs", 0, &mut log);
        sup.observe(
            "Bfs",
            false,
            Observation {
                ok: true,
                transient: false,
                backoff_cycles: 0,
                cell_cycles: 60,
            },
            &mut log,
        );
        assert_eq!(
            sup.admit("Bfs", "Bfs", 1, &mut log),
            Admission::Shed(ShedReason::SloExceeded)
        );
        sup.begin_stage(50);
        assert_eq!(
            sup.admit("Bfs", "Bfs", 0, &mut log),
            Admission::Run { probe: false }
        );
    }

    #[test]
    fn breakers_reset_at_stage_boundaries() {
        let mut sup = Supervisor::new(1, 5, 0);
        let mut log = CampaignLog::new();
        sup.begin_stage(0);
        sup.admit("Svm", "Svm", 0, &mut log);
        sup.observe("Svm", false, transient(1), &mut log);
        assert_eq!(
            sup.admit("Svm", "Svm", 1, &mut log),
            Admission::Shed(ShedReason::BreakerOpen)
        );
        sup.begin_stage(0);
        assert_eq!(
            sup.admit("Svm", "Svm", 0, &mut log),
            Admission::Run { probe: false }
        );
    }
}
