//! Campaign execution: stages, waves, artifacts, and crash-safe resume.
//!
//! A campaign is executed stage by stage; within a stage the grid is
//! consumed in *waves* of `jobs` cells. All supervision decisions
//! ([`Supervisor::admit`]) happen sequentially in grid order at the
//! start of a wave, the admitted cells run in parallel, and outcomes
//! are observed — again in grid order — at the wave boundary. Because
//! the wave width comes from the config (never from the machine) and
//! cell outcomes are pure functions of the salted fault plan, two runs
//! of the same campaign make byte-identical decisions regardless of how
//! many host threads actually executed the cells.
//!
//! Crash-safety rides entirely on the core artifact plane: every
//! compared artifact (`report.csv`, `checkpoint.json`, `trace.jsonl`)
//! is published journaled-and-sealed, and a (re)started stage first
//! replays the recovery journal, then adopts the checkpoint. An adopted
//! cell flows through the *same* admission/observation sequence as an
//! executed one, so a resumed campaign converges on the same artifacts
//! as an uninterrupted run.

use crate::config::{CampaignConfig, StageSpec};
use crate::supervisor::{Admission, Observation, Supervisor, SupervisorHealth};
use faults::prng::splitmix64;
use sgxgauge_core::io::Journal;
use sgxgauge_core::sweep::{CellError, CellErrorKind, SweepCell};
use sgxgauge_core::workload::Workload;
use sgxgauge_core::{
    checkpoint, io, ArtifactError, ArtifactIo, CellKey, ChaosFs, Emitter, IoErrorKind, PartyDim,
    RealFs, ReportTable, RunnerConfig, SuiteRunner, TenantDim,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use trace::{CampaignEvent, CampaignLog, ShedReason};

/// Publish attempts per artifact before a transient storm is treated as
/// weather the campaign cannot fly in.
const PUBLISH_ATTEMPTS: usize = 4;

/// Why a campaign could not complete.
#[derive(Debug)]
pub enum CampaignError {
    /// The configuration is unusable (unknown workload names, etc.).
    Config(String),
    /// The artifact plane failed in a way retries could not fix — this
    /// is also how a simulated process kill surfaces.
    Artifact(ArtifactError),
    /// More cells quarantined (fatal/panicked) than the campaign
    /// tolerates.
    Quarantine {
        /// Stage that crossed the threshold.
        stage: String,
        /// Quarantined cells observed campaign-wide.
        quarantined: usize,
        /// The configured tolerance.
        max: usize,
        /// The quarantined cells, in observation order.
        cells: Vec<CellKey>,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Config(msg) => write!(f, "campaign config: {msg}"),
            CampaignError::Artifact(e) => write!(f, "campaign artifact plane: {e}"),
            CampaignError::Quarantine {
                stage,
                quarantined,
                max,
                cells,
            } => {
                write!(
                    f,
                    "campaign is globally sick at stage `{stage}`: \
                     {quarantined} cells quarantined (tolerance {max})"
                )?;
                if !cells.is_empty() {
                    let list: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
                    write!(f, " [{}]", list.join(", "))?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<ArtifactError> for CampaignError {
    fn from(e: ArtifactError) -> Self {
        CampaignError::Artifact(e)
    }
}

/// Shared countdown for the simulated process kill: the campaign dies
/// at the N-th artifact rename, campaign-wide, and every subsequent
/// host-I/O operation fails — exactly what a `kill -9` between a
/// journal intent and its commit looks like to the artifact plane.
#[derive(Debug, Default)]
pub struct KillState {
    renames_left: Mutex<Option<u64>>,
    dead: AtomicBool,
}

impl KillState {
    /// Kills the process at the `nth` rename (1-based) observed across
    /// the whole campaign.
    #[must_use]
    pub fn after_renames(nth: u64) -> Arc<KillState> {
        Arc::new(KillState {
            renames_left: Mutex::new(Some(nth.max(1))),
            dead: AtomicBool::new(false),
        })
    }

    /// Whether the simulated kill has fired.
    #[must_use]
    pub fn fired(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    fn crashed(&self, op: &'static str, path: &Path) -> Result<(), ArtifactError> {
        if self.fired() {
            return Err(ArtifactError::io(
                op,
                path,
                IoErrorKind::CrashRename,
                "process killed by soak harness (simulated)",
            ));
        }
        Ok(())
    }

    /// Ticks the rename countdown; returns an error when this rename is
    /// the one the process dies on.
    fn on_rename(&self, path: &Path) -> Result<(), ArtifactError> {
        let mut left = match self.renames_left.lock() {
            Ok(guard) => guard,
            // A poisoned countdown means a panicking thread died holding
            // the lock; treat the process as killed rather than racing.
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(n) = *left {
            if n <= 1 {
                *left = Some(0);
                self.dead.store(true, Ordering::SeqCst);
                return Err(ArtifactError::io(
                    "rename",
                    path,
                    IoErrorKind::CrashRename,
                    "process killed by soak harness (simulated)",
                ));
            }
            *left = Some(n - 1);
        }
        Ok(())
    }
}

/// [`ArtifactIo`] backend that dies — permanently, for every operation —
/// once its [`KillState`] countdown reaches the fatal rename.
#[derive(Debug)]
pub struct KillFs {
    state: Arc<KillState>,
}

impl KillFs {
    /// Wraps the real filesystem with the shared kill countdown.
    #[must_use]
    pub fn new(state: Arc<KillState>) -> KillFs {
        KillFs { state }
    }
}

impl ArtifactIo for KillFs {
    fn read(&self, path: &Path) -> Result<String, ArtifactError> {
        self.state.crashed("read", path)?;
        RealFs.read(path)
    }

    fn write(&self, path: &Path, contents: &str) -> Result<(), ArtifactError> {
        self.state.crashed("write", path)?;
        RealFs.write(path, contents)
    }

    fn append(&self, path: &Path, contents: &str) -> Result<(), ArtifactError> {
        self.state.crashed("append", path)?;
        RealFs.append(path, contents)
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), ArtifactError> {
        self.state.crashed("rename", from)?;
        // The fatal rename never happens: the process died just before
        // the syscall, leaving the temp sibling and the journal intent.
        self.state.on_rename(from)?;
        RealFs.rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> Result<(), ArtifactError> {
        self.state.crashed("sync_dir", dir)?;
        RealFs.sync_dir(dir)
    }

    fn remove(&self, path: &Path) -> Result<(), ArtifactError> {
        self.state.crashed("remove", path)?;
        RealFs.remove(path)
    }

    fn exists(&self, path: &Path) -> bool {
        !self.state.fired() && RealFs.exists(path)
    }

    fn list(&self, dir: &Path) -> Result<Vec<PathBuf>, ArtifactError> {
        self.state.crashed("list", dir)?;
        RealFs.list(dir)
    }

    fn create_dir_all(&self, dir: &Path) -> Result<(), ArtifactError> {
        self.state.crashed("create_dir_all", dir)?;
        RealFs.create_dir_all(dir)
    }
}

/// Outcome of one stage, for the campaign report and `health.json`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageReport {
    /// Stage name.
    pub name: String,
    /// The stage was skipped whole (degraded antagonist).
    pub skipped: bool,
    /// Cells freshly executed this run.
    pub executed: usize,
    /// Cells adopted from the stage checkpoint.
    pub adopted: usize,
    /// Cells shed by supervision.
    pub shed: usize,
    /// Quarantined (fatal/panicked) cells.
    pub quarantined: usize,
    /// Simulated runtime cycles of the stage's settled cells.
    pub runtime_cycles: u64,
    /// Simulated backoff cycles accounted by the stage's retries.
    pub backoff_cycles: u64,
    /// Interrupted publishes the stage's startup recovery repaired or
    /// quarantined.
    pub recovered: usize,
}

/// What one campaign run did, across all stages.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Per-stage outcomes, in stage order.
    pub stages: Vec<StageReport>,
    /// Final supervision counters.
    pub health: SupervisorHealth,
    /// Total simulated runtime cycles across settled cells.
    pub total_runtime_cycles: u64,
    /// Total simulated backoff cycles across retries.
    pub total_backoff_cycles: u64,
}

impl CampaignReport {
    /// All simulated cycles the campaign accounted (runtime + backoff).
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.total_runtime_cycles
            .saturating_add(self.total_backoff_cycles)
    }
}

/// Runs a campaign, writing the per-stage artifact tree under `out`:
/// `<out>/<stage>/{report.csv, checkpoint.json, trace.jsonl, health.json}`.
///
/// `chaos` applies each stage's `io_faults` plan to the artifact plane;
/// `kill` (used by the soak harness) arms a campaign-wide countdown
/// that kills the process at the N-th artifact rename. Resume is
/// implicit: each stage replays its recovery journal and adopts its
/// checkpoint before executing anything.
///
/// # Errors
///
/// [`CampaignError`] — a config problem, a non-transient artifact
/// failure (including the simulated kill), or a blown quarantine
/// tolerance.
pub fn run_campaign(
    cfg: &CampaignConfig,
    out: &Path,
    chaos: bool,
    kill: Option<Arc<KillState>>,
) -> Result<CampaignReport, CampaignError> {
    let suite = build_suite(cfg);
    let mut supervisor = Supervisor::new(
        cfg.breaker_threshold,
        cfg.breaker_cooldown,
        cfg.retry_budget_cycles,
    );
    let mut report = CampaignReport::default();
    let mut quarantined_cells: Vec<CellKey> = Vec::new();
    for (si, stage) in cfg.stages.iter().enumerate() {
        let stage_salt = splitmix64(cfg.seed.wrapping_add(si as u64 + 1));
        let stage_dir = out.join(&stage.name);
        let io = stage_io(stage, chaos, kill.as_ref(), stage_salt);
        let io: &dyn ArtifactIo = io.as_ref();
        io.create_dir_all(&stage_dir)?;
        let mut log = CampaignLog::new();
        if supervisor.is_degraded() && stage.antagonist {
            // An antagonist stage exists to create stress; a degraded
            // campaign cannot afford it. Its artifacts still exist (so
            // the tree shape is run-independent), just empty.
            log.push(
                supervisor.health().retry_spent_cycles,
                CampaignEvent::StageSkipped {
                    stage: stage.name.clone(),
                    reason: ShedReason::AntagonistSkipped,
                },
            );
            let skipped = StageReport {
                name: stage.name.clone(),
                skipped: true,
                ..StageReport::default()
            };
            let table = stage_table(&stage.name);
            publish_artifact(io, &stage_dir.join("report.csv"), &table.render())?;
            publish_artifact(io, &stage_dir.join("trace.jsonl"), &log.render_jsonl())?;
            write_health(io, &stage_dir, &supervisor, &skipped)?;
            report.stages.push(skipped);
            continue;
        }
        let sr = run_stage(
            cfg,
            stage,
            stage_salt,
            &suite,
            io,
            &stage_dir,
            &mut supervisor,
            &mut log,
            &mut quarantined_cells,
        )?;
        report.total_runtime_cycles = report
            .total_runtime_cycles
            .saturating_add(sr.runtime_cycles);
        report.total_backoff_cycles = report
            .total_backoff_cycles
            .saturating_add(sr.backoff_cycles);
        let total_quarantined = quarantined_cells.len();
        report.stages.push(sr);
        if let Some(max) = cfg.max_quarantine {
            if total_quarantined > max {
                return Err(CampaignError::Quarantine {
                    stage: stage.name.clone(),
                    quarantined: total_quarantined,
                    max,
                    cells: quarantined_cells,
                });
            }
        }
    }
    report.health = supervisor.health();
    Ok(report)
}

fn build_suite(cfg: &CampaignConfig) -> Vec<Box<dyn Workload>> {
    if cfg.scale > 0 {
        sgxgauge_workloads::suite_scaled(cfg.scale)
    } else {
        sgxgauge_workloads::suite()
    }
}

fn base_runner_config(cfg: &CampaignConfig) -> RunnerConfig {
    let mut base = if cfg.quick_profile {
        RunnerConfig::quick_test()
    } else {
        RunnerConfig::paper(cfg.reps)
    };
    base.repetitions = cfg.reps;
    base
}

/// Selects the stage's workload subset, in config order (the whole
/// suite when the stage names none).
fn stage_workloads<'a>(
    stage: &StageSpec,
    suite: &'a [Box<dyn Workload>],
) -> Result<Vec<&'a dyn Workload>, CampaignError> {
    if stage.workloads.is_empty() {
        return Ok(suite.iter().map(AsRef::as_ref).collect());
    }
    let mut picked = Vec::new();
    for name in &stage.workloads {
        let found = suite.iter().find(|w| w.name() == name).ok_or_else(|| {
            CampaignError::Config(format!(
                "stage `{}` names unknown workload `{name}`",
                stage.name
            ))
        })?;
        picked.push(found.as_ref());
    }
    Ok(picked)
}

fn stage_io(
    stage: &StageSpec,
    chaos: bool,
    kill: Option<&Arc<KillState>>,
    stage_salt: u64,
) -> Box<dyn ArtifactIo> {
    let inner: Box<dyn ArtifactIo> = match kill {
        Some(state) => Box::new(KillFs::new(Arc::clone(state))),
        None => Box::new(RealFs),
    };
    match (&stage.io_faults, chaos) {
        (Some(plan), true) => {
            // Each stage gets its own deterministic io-fault stream; the
            // kill countdown (if any) lives *under* the chaos layer so a
            // fault-retried rename still ticks it.
            Box::new(ChaosFs::new(inner, plan.salted(stage_salt)))
        }
        _ => inner,
    }
}

fn stage_table(stage: &str) -> ReportTable {
    ReportTable::new(
        &format!("campaign stage {stage}"),
        &[
            "cell",
            "workload",
            "mode",
            "setting",
            "rep",
            "outcome",
            "attempts",
            "backoff_cycles",
            "runtime_cycles",
            "ops",
            "checksum",
        ],
    )
}

fn publish_artifact(io: &dyn ArtifactIo, path: &Path, body: &str) -> Result<(), ArtifactError> {
    let journal = Journal::for_artifact(path);
    io::publish_sealed(io, &journal, path, body, PUBLISH_ATTEMPTS)
}

/// Replays the recovery journals of the stage's compared artifacts.
fn recover_stage(io: &dyn ArtifactIo, stage_dir: &Path) -> Result<usize, ArtifactError> {
    let mut recovered = 0;
    for artifact in ["checkpoint.json", "report.csv", "trace.jsonl"] {
        let rr = io::recover(io, &stage_dir.join(artifact))?;
        recovered += rr.repaired.len() + rr.quarantined.len();
    }
    Ok(recovered)
}

#[allow(clippy::too_many_arguments)]
fn run_stage(
    cfg: &CampaignConfig,
    stage: &StageSpec,
    stage_salt: u64,
    suite: &[Box<dyn Workload>],
    io: &dyn ArtifactIo,
    stage_dir: &Path,
    supervisor: &mut Supervisor,
    log: &mut CampaignLog,
    quarantined_cells: &mut Vec<CellKey>,
) -> Result<StageReport, CampaignError> {
    // An MPC stage sweeps a stage-local ThresholdSign over its relay
    // shape instead of the suite; the net plan is salted per stage so
    // stages decorrelate their network weather exactly like `faults`.
    let mpc: Option<Box<dyn Workload>> = (stage.parties > 0).then(|| {
        let base = if cfg.scale > 0 {
            sgxgauge_workloads::ThresholdSign::scaled(cfg.scale)
        } else {
            sgxgauge_workloads::ThresholdSign::new()
        };
        let net = stage
            .net_faults
            .clone()
            .unwrap_or_default()
            .salted(stage_salt);
        Box::new(
            base.with_shape(stage.parties as u32, stage.threshold as u32)
                .with_net(net),
        ) as Box<dyn Workload>
    });
    let workloads = match &mpc {
        Some(w) => vec![w.as_ref()],
        None => stage_workloads(stage, suite)?,
    };
    let mut base = base_runner_config(cfg);
    if stage.tenants > 1 {
        // Co-tenancy: `tenants` enclaves share one machine's EPC, so
        // each cell runs against its per-tenant share of the pool. The
        // floor keeps a degenerate config (tiny EPC, many tenants) a
        // slow stage instead of an unbootable one.
        let share = base.env.sgx.epc_bytes / stage.tenants;
        base.env.sgx.epc_bytes = share.max(base.env.sgx.epc_reserved_bytes + (64 << 12));
    }
    let make_runner = |retries: usize| {
        let mut runner = SuiteRunner::new(base.clone())
            .modes(&stage.modes)
            .settings(&stage.settings)
            .threads(cfg.jobs)
            .retries(retries);
        if stage.tenants > 0 {
            runner = runner.tenant(TenantDim {
                tenants: u8::try_from(stage.tenants).unwrap_or(u8::MAX),
                antagonists: u8::try_from(stage.antagonists).unwrap_or(u8::MAX),
            });
        }
        if stage.parties > 0 {
            runner = runner.party(PartyDim {
                parties: u8::try_from(stage.parties).unwrap_or(u8::MAX),
                threshold: u8::try_from(stage.threshold).unwrap_or(u8::MAX),
            });
        }
        if let Some(plan) = &stage.faults {
            runner = runner.faults(plan.salted(stage_salt));
        }
        runner
    };
    let normal = make_runner(cfg.retries);
    let degraded = make_runner(0);
    let grid = normal.grid(&workloads);
    let grid_fp = checkpoint::grid_fingerprint(&normal, &workloads);
    let fault_seed = stage
        .faults
        .as_ref()
        .map_or(0, |p| p.salted(stage_salt).seed);
    let mut sr = StageReport {
        name: stage.name.clone(),
        ..StageReport::default()
    };

    // Crash recovery, then checkpoint adoption. A missing, stale, or
    // unreadable checkpoint simply means a fresh stage: resume must
    // never be able to make a campaign fail that would have succeeded
    // from scratch.
    sr.recovered = recover_stage(io, stage_dir)?;
    let checkpoint_path = stage_dir.join("checkpoint.json");
    let mut adopted: Vec<Option<SweepCell>> = (0..grid.len()).map(|_| None).collect();
    if io.exists(&checkpoint_path) {
        if let Ok(cp) = checkpoint::load_checkpoint_io(io, &checkpoint_path) {
            if cp.grid_fp == grid_fp {
                for stored in cp.cells {
                    let index = stored.index;
                    if let Ok(cell) = checkpoint::adopt_stored_cell(stored, &grid, &workloads) {
                        if index < adopted.len() {
                            adopted[index] = Some(cell);
                        }
                    }
                }
            }
        }
    }

    supervisor.begin_stage(stage.deadline_cycles);
    log.push(
        supervisor.health().retry_spent_cycles,
        CampaignEvent::StageBegin {
            stage: stage.name.clone(),
            cells: grid.len(),
            fault_seed,
        },
    );

    let mut settled: Vec<Option<SweepCell>> = (0..grid.len()).map(|_| None).collect();
    let wave_width = cfg.jobs.max(1);
    let mut wave_start = 0;
    while wave_start < grid.len() {
        let wave_end = (wave_start + wave_width).min(grid.len());
        // Pick the executing runner for the wave *before* admissions:
        // degraded-ness only flips at wave boundaries, so this is the
        // state every cell of the wave sees.
        let runner = if supervisor.is_degraded() {
            &degraded
        } else {
            &normal
        };
        let mut to_run: Vec<(usize, CellKey)> = Vec::new();
        let mut probes: Vec<bool> = (wave_start..wave_end).map(|_| false).collect();
        for j in wave_start..wave_end {
            let key = grid[j];
            let workload = workloads[key.workload].name();
            match supervisor.admit(workload, &key.to_string(), key.rep, log) {
                Admission::Run { probe } => {
                    probes[j - wave_start] = probe;
                    if adopted[j].is_none() {
                        to_run.push((j, key));
                    }
                }
                Admission::Shed(reason) => {
                    settled[j] = Some(shed_cell(workload, key, reason));
                    sr.shed += 1;
                }
            }
        }
        let keys: Vec<CellKey> = to_run.iter().map(|&(_, k)| k).collect();
        let executed = runner.run_cells(&workloads, &keys);
        for ((j, _), cell) in to_run.iter().zip(executed) {
            settled[*j] = Some(cell);
            sr.executed += 1;
        }
        // Observe in grid order at the wave boundary — adopted cells
        // included, so supervision replays identically on resume.
        for j in wave_start..wave_end {
            let key = grid[j];
            let workload = workloads[key.workload].name();
            if settled[j].is_none() {
                if let Some(cell) = adopted[j].take() {
                    settled[j] = Some(cell);
                    sr.adopted += 1;
                }
            }
            let Some(cell) = settled[j].as_ref() else {
                continue;
            };
            if matches!(
                cell.result,
                Err(CellError {
                    kind: CellErrorKind::Degraded,
                    ..
                })
            ) {
                continue;
            }
            let obs = observe_cell(cell);
            supervisor.observe(workload, probes[j - wave_start], obs, log);
            sr.runtime_cycles = sr.runtime_cycles.saturating_add(obs.cell_cycles);
            sr.backoff_cycles = sr.backoff_cycles.saturating_add(obs.backoff_cycles);
            if let Err(e) = &cell.result {
                if e.quarantines() {
                    sr.quarantined += 1;
                    quarantined_cells.push(key);
                }
            }
        }
        // Checkpoint the settled (non-shed) prefix so a kill inside the
        // next wave resumes here. Shed cells are supervision decisions,
        // recomputed on resume, never persisted.
        let durable: Vec<(usize, &SweepCell)> = settled
            .iter()
            .enumerate()
            .filter_map(|(index, slot)| slot.as_ref().map(|cell| (index, cell)))
            .filter(|(_, cell)| {
                !matches!(
                    cell.result,
                    Err(CellError {
                        kind: CellErrorKind::Degraded,
                        ..
                    })
                )
            })
            .collect();
        let body = checkpoint::render_checkpoint(grid_fp, &durable);
        publish_artifact(io, &checkpoint_path, &body)?;
        wave_start = wave_end;
    }

    log.push(
        supervisor.health().retry_spent_cycles,
        CampaignEvent::StageEnd {
            stage: stage.name.clone(),
            executed: sr.executed + sr.adopted,
            shed: sr.shed,
            spent_cycles: supervisor.stage_spent_cycles(),
        },
    );

    let mut table = stage_table(&stage.name);
    for (j, slot) in settled.iter().enumerate() {
        if let Some(cell) = slot {
            let name = workloads[grid[j].workload].name();
            table.push_row(report_row(&grid[j], name, cell));
        }
    }
    publish_artifact(io, &stage_dir.join("report.csv"), &table.render())?;
    publish_artifact(io, &stage_dir.join("trace.jsonl"), &log.render_jsonl())?;
    write_health(io, stage_dir, supervisor, &sr)?;
    Ok(sr)
}

fn shed_cell(workload: &'static str, key: CellKey, reason: ShedReason) -> SweepCell {
    SweepCell {
        cell: key,
        workload,
        result: Err(CellError {
            kind: CellErrorKind::Degraded,
            message: format!("shed by campaign supervision: {}", reason.name()),
        }),
        attempts: 0,
        backoff_cycles: 0,
        trail: Vec::new(),
    }
}

fn observe_cell(cell: &SweepCell) -> Observation {
    match &cell.result {
        Ok(report) => Observation {
            ok: true,
            transient: false,
            backoff_cycles: cell.backoff_cycles,
            cell_cycles: report.runtime_cycles,
        },
        Err(e) => Observation {
            ok: false,
            transient: e.kind == CellErrorKind::Transient,
            backoff_cycles: cell.backoff_cycles,
            cell_cycles: 0,
        },
    }
}

fn report_row(key: &CellKey, workload: &str, cell: &SweepCell) -> Vec<String> {
    let (outcome, runtime, ops, checksum) = match &cell.result {
        Ok(report) => (
            "ok".to_owned(),
            report.runtime_cycles,
            report.output.ops,
            report.output.checksum,
        ),
        Err(e) => (e.kind.to_string(), 0, 0, 0),
    };
    vec![
        key.to_string(),
        workload.to_owned(),
        key.mode.to_string(),
        key.setting.to_string(),
        key.rep.to_string(),
        outcome,
        cell.attempts.to_string(),
        cell.backoff_cycles.to_string(),
        runtime.to_string(),
        ops.to_string(),
        checksum.to_string(),
    ]
}

/// Writes the run-specific `health.json` (attempt trails, recovery and
/// shed counters). Deliberately *excluded* from soak byte-comparison:
/// it records how this particular run got here, not where it landed.
fn write_health(
    io: &dyn ArtifactIo,
    stage_dir: &Path,
    supervisor: &Supervisor,
    sr: &StageReport,
) -> Result<(), ArtifactError> {
    let h = supervisor.health();
    let body = format!(
        "{{\"stage\":\"{}\",\"executed\":{},\"adopted\":{},\"shed\":{},\
         \"quarantined\":{},\"recovered\":{},\"runtime_cycles\":{},\
         \"backoff_cycles\":{},\"retry_spent_cycles\":{},\"degraded\":{},\
         \"breaker_trips\":{},\"cells_shed\":{}}}\n",
        sr.name,
        sr.executed,
        sr.adopted,
        sr.shed,
        sr.quarantined,
        sr.recovered,
        sr.runtime_cycles,
        sr.backoff_cycles,
        h.retry_spent_cycles,
        h.degraded,
        h.breaker_trips,
        h.cells_shed
    );
    let path = stage_dir.join("health.json");
    let mut last = ArtifactError::io(
        "write",
        &path,
        IoErrorKind::Other,
        "health write retry budget exhausted",
    );
    for _ in 0..PUBLISH_ATTEMPTS {
        match io::write_atomic_with(io, &path, &body) {
            Ok(()) => return Ok(()),
            Err(e) if e.is_transient() => last = e,
            Err(e) => return Err(e),
        }
    }
    Err(last)
}
