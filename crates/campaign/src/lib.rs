//! Declarative chaos campaigns over the SGXGauge sweep executor.
//!
//! A *campaign* is an ordered list of sweep stages — each with its own
//! mode/setting/workload grid, simulated-fault plan, host-I/O fault
//! plan, and simulated-cycle deadline — governed by one campaign-wide
//! resilience policy: a global retry budget accounted in simulated
//! backoff cycles, per-workload circuit breakers, and degraded-mode
//! load shedding. The whole thing is declared in a small TOML-subset
//! config ([`CampaignConfig`]) and executed by [`run_campaign`], which
//! writes a per-stage artifact tree
//! (`<out>/<stage>/{report.csv, checkpoint.json, trace.jsonl,
//! health.json}`) through the core crate's journaled artifact plane.
//!
//! # Determinism, stated once
//!
//! Everything the campaign decides is a pure function of the config:
//!
//! * cell outcomes are pure functions of the stage-salted fault plan
//!   (the simulator never consults wall-clock time or host randomness),
//! * supervision decisions happen at *wave* boundaries, and the wave
//!   width is the config's `jobs` value — never the machine's core
//!   count — so admission order is config-derived,
//! * a checkpoint-adopted cell flows through the same admission and
//!   observation sequence as a freshly executed one.
//!
//! The payoff is the strongest robustness claim in the workspace: kill
//! the campaign at seeded points mid-write, resume it from the journal
//! and checkpoint, repeat, and the final artifacts are **byte-identical**
//! to an uninterrupted run. [`run_soak`] is that claim as an executable
//! harness; CI runs it on every push.
//!
//! This crate is dependency-free beyond its workspace siblings and
//! performs no host I/O outside the injectable
//! [`ArtifactIo`](sgxgauge_core::ArtifactIo) plane.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod runner;
pub mod soak;
pub mod supervisor;

pub use config::{CampaignConfig, StageSpec};
pub use runner::{run_campaign, CampaignError, CampaignReport, KillFs, KillState, StageReport};
pub use soak::{run_soak, SoakOutcome};
pub use supervisor::{Admission, Observation, Supervisor, SupervisorHealth};
