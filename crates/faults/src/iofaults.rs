//! Declarative host-I/O fault plans and their spec-string grammar.
//!
//! The plans in [`crate::plan`] perturb the *simulated* machine; this
//! module describes faults of the **host** filesystem the harness writes
//! its artifacts (reports, checkpoints, traces) to. The chaos backend in
//! `sgxgauge-core::io` compiles an [`IoFaultPlan`] into a deterministic
//! fault stream over artifact operations, reusing the same seeded
//! xorshift discipline as the simulated-fault plane: the same plan and
//! seed produce the same injection sequence on every run.

/// A seeded, declarative host-I/O fault plan.
///
/// Parsed from a comma-separated spec string:
///
/// ```text
/// seed=<u64>            PRNG seed (default 1)
/// enospc=<permille>     each artifact write fails with ENOSPC with p/1000
/// eio=<permille>        each artifact write fails transiently with p/1000
/// torn=<permille>       each artifact write lands only a prefix with p/1000
/// crash_rename=<n>      the n-th rename (1-based) crashes the harness:
///                       the rename does not happen and every later
///                       operation fails (the process is "dead")
/// ```
///
/// ```
/// use faults::IoFaultPlan;
/// let p = IoFaultPlan::parse("seed=9,enospc=10,torn=5,crash_rename=3").unwrap();
/// assert_eq!(p.seed, 9);
/// assert_eq!(p.enospc_permille, 10);
/// assert_eq!(p.crash_rename, Some(3));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoFaultPlan {
    /// Base PRNG seed for the per-operation draws.
    pub seed: u64,
    /// Per-write ENOSPC (disk full) probability in permille (0–1000).
    pub enospc_permille: u32,
    /// Per-write transient-EIO probability in permille (0–1000).
    pub eio_permille: u32,
    /// Per-write torn-write (prefix only lands) probability in permille.
    pub torn_permille: u32,
    /// Crash the harness at the n-th rename (1-based), if set.
    pub crash_rename: Option<u64>,
}

impl IoFaultPlan {
    /// Parses the spec grammar documented on the type.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending item.
    pub fn parse(spec: &str) -> Result<IoFaultPlan, String> {
        let mut plan = IoFaultPlan {
            seed: 1,
            ..IoFaultPlan::default()
        };
        for item in spec.split(',').filter(|s| !s.trim().is_empty()) {
            let (key, val) = item
                .split_once('=')
                .ok_or_else(|| format!("io fault item `{item}` is not key=value"))?;
            match key.trim() {
                "seed" => plan.seed = parse_u64("seed", val)?,
                "enospc" => plan.enospc_permille = parse_permille("enospc", val)?,
                "eio" => plan.eio_permille = parse_permille("eio", val)?,
                "torn" => plan.torn_permille = parse_permille("torn", val)?,
                "crash_rename" => {
                    let n = parse_u64("crash_rename", val)?;
                    if n == 0 {
                        return Err("crash_rename is 1-based; use crash_rename=1".into());
                    }
                    plan.crash_rename = Some(n);
                }
                other => return Err(format!("unknown io fault item `{other}`")),
            }
        }
        Ok(plan)
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.enospc_permille == 0
            && self.eio_permille == 0
            && self.torn_permille == 0
            && self.crash_rename.is_none()
    }

    /// The same plan with its seed deterministically re-derived from
    /// `salt` — the host-I/O twin of [`crate::FaultPlan::salted`], so a
    /// campaign stage's artifact chaos stream is as reproducible and
    /// stage-local as its simulated faults. `crash_rename` is *not*
    /// salted: kill points are scheduled by the soak driver, not drawn.
    #[must_use]
    pub fn salted(&self, salt: u64) -> IoFaultPlan {
        let mut plan = self.clone();
        plan.seed = crate::prng::splitmix64(self.seed ^ salt.rotate_left(32));
        plan
    }

    /// An order-sensitive FNV-1a digest of the plan (for logs and
    /// provenance records).
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        mix(self.seed);
        mix(u64::from(self.enospc_permille));
        mix(u64::from(self.eio_permille));
        mix(u64::from(self.torn_permille));
        match self.crash_rename {
            Some(n) => {
                mix(1);
                mix(n);
            }
            None => mix(0),
        }
        h
    }
}

fn parse_u64(what: &str, s: &str) -> Result<u64, String> {
    s.trim()
        .replace('_', "")
        .parse()
        .map_err(|_| format!("{what}: `{s}` is not a number"))
}

fn parse_permille(what: &str, s: &str) -> Result<u32, String> {
    let v = parse_u64(what, s)?;
    if v > 1000 {
        return Err(format!("{what}: permille {v} exceeds 1000"));
    }
    Ok(v as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let p = IoFaultPlan::parse("seed=4,enospc=10,eio=20,torn=5,crash_rename=2").unwrap();
        assert_eq!(p.seed, 4);
        assert_eq!(p.enospc_permille, 10);
        assert_eq!(p.eio_permille, 20);
        assert_eq!(p.torn_permille, 5);
        assert_eq!(p.crash_rename, Some(2));
        assert!(!p.is_empty());
    }

    #[test]
    fn empty_spec_defaults_to_seed_one_and_no_faults() {
        let p = IoFaultPlan::parse("").unwrap();
        assert_eq!(p.seed, 1);
        assert!(p.is_empty());
    }

    #[test]
    fn rejects_malformed_items() {
        assert!(IoFaultPlan::parse("bogus").is_err());
        assert!(IoFaultPlan::parse("enospc=1001").is_err());
        assert!(IoFaultPlan::parse("crash_rename=0").is_err());
        assert!(IoFaultPlan::parse("volcano=7").is_err());
        assert!(IoFaultPlan::parse("seed=notanumber").is_err());
    }

    #[test]
    fn digest_distinguishes_plans() {
        let a = IoFaultPlan::parse("seed=1,eio=10").unwrap();
        let b = IoFaultPlan::parse("seed=2,eio=10").unwrap();
        let c = IoFaultPlan::parse("seed=1,torn=10").unwrap();
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
        assert_eq!(
            a.digest(),
            IoFaultPlan::parse("seed=1,eio=10").unwrap().digest()
        );
    }
}
