//! The compiled, per-run fault hook.

use crate::plan::FaultPlan;
use crate::prng::{splitmix64, XorShift64};

/// One fault event due at the current simulated instant. The *mechanism*
/// lives with the caller (the environment applies it to the SGX machine);
/// the hook only decides *when*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Inject `exits` asynchronous enclave exits on the polling thread.
    Aex {
        /// AEX round trips to inject.
        exits: u32,
    },
    /// Begin an EPC pressure window: reserve `frames` EPC frames.
    EpcSpike {
        /// Frames to withdraw from the usable EPC.
        frames: usize,
    },
    /// End the active EPC pressure window.
    EpcRelease,
}

impl InjectedFault {
    /// The trace-plane event recording this injection, so the
    /// environment can stamp every application of the fault plane into
    /// the run's trace stream.
    pub fn trace_event(&self) -> trace::TraceEvent {
        let kind = match self {
            InjectedFault::Aex { .. } => trace::InjectedKind::Aex,
            InjectedFault::EpcSpike { .. } => trace::InjectedKind::EpcSpike,
            InjectedFault::EpcRelease => trace::InjectedKind::EpcRelease,
        };
        trace::TraceEvent::FaultInjected { kind }
    }
}

#[derive(Debug, Clone)]
struct StormState {
    exits: u32,
    period: u64,
    next: u64,
}

#[derive(Debug, Clone)]
struct SpikeState {
    frames: usize,
    period: u64,
    duration: u64,
    next_start: u64,
    /// `u64::MAX` while no spike is active.
    release_at: u64,
}

/// A [`FaultPlan`] compiled for one run (one grid cell, one attempt).
///
/// The environment polls it from its hot paths with the current thread
/// clock; the hook answers from precomputed schedules, so the common case
/// is a single integer compare. All state advances deterministically from
/// the plan's seed and the compile-time salt — polling the same clock
/// sequence always yields the same events.
#[derive(Debug, Clone)]
pub struct FaultHook {
    rng: XorShift64,
    storm: Option<StormState>,
    spike: Option<SpikeState>,
    syscall_permille: u32,
    bitflip_permille: u32,
    /// Cached minimum of every pending schedule, gating [`FaultHook::poll`].
    next_due: u64,
}

impl FaultHook {
    /// Compiles `plan` with `salt` (see [`FaultPlan::compile`]).
    pub fn new(plan: &FaultPlan, salt: u64) -> FaultHook {
        let mut rng = XorShift64::new(plan.seed ^ splitmix64(salt));
        let storm = plan.aex.map(|s| StormState {
            exits: s.exits,
            period: s.period_cycles,
            next: s.period_cycles + rng.below(s.period_cycles / 8 + 1),
        });
        let spike = plan.epc.map(|s| {
            // Pressure windows must not overlap: a new spike can only
            // start after the previous one released.
            let period = s.period_cycles.max(s.duration_cycles + 1);
            SpikeState {
                frames: s.frames,
                period,
                duration: s.duration_cycles,
                next_start: period + rng.below(period / 8 + 1),
                release_at: u64::MAX,
            }
        });
        let mut hook = FaultHook {
            rng,
            storm,
            spike,
            syscall_permille: plan.syscall_fail_permille,
            bitflip_permille: plan.bitflip_permille,
            next_due: 0,
        };
        hook.next_due = hook.compute_next_due();
        hook
    }

    /// Returns the next fault due at simulated instant `now`, if any.
    /// Call repeatedly until `None`: multiple schedules can be due at the
    /// same instant and each poll surfaces one event.
    #[inline]
    pub fn poll(&mut self, now: u64) -> Option<InjectedFault> {
        if now < self.next_due {
            return None;
        }
        self.poll_slow(now)
    }

    fn poll_slow(&mut self, now: u64) -> Option<InjectedFault> {
        let mut fired = None;
        // An overdue release is served before anything else so pressure
        // windows never overlap or leak into the next period.
        if let Some(sp) = self.spike.as_mut() {
            if sp.release_at <= now {
                sp.release_at = u64::MAX;
                fired = Some(InjectedFault::EpcRelease);
            }
        }
        if fired.is_none() {
            if let Some(st) = self.storm.as_mut() {
                if st.next <= now {
                    st.next += st.period;
                    if st.next <= now {
                        // Charging the injected exits advanced the clock
                        // past several periods; re-anchor rather than
                        // firing a catch-up burst per missed period.
                        st.next = now + st.period;
                    }
                    fired = Some(InjectedFault::Aex { exits: st.exits });
                }
            }
        }
        if fired.is_none() {
            if let Some(sp) = self.spike.as_mut() {
                if sp.next_start <= now {
                    sp.next_start += sp.period;
                    if sp.next_start <= now {
                        sp.next_start = now + sp.period;
                    }
                    sp.release_at = now + sp.duration;
                    fired = Some(InjectedFault::EpcSpike { frames: sp.frames });
                }
            }
        }
        self.next_due = self.compute_next_due();
        fired
    }

    fn compute_next_due(&self) -> u64 {
        let mut due = u64::MAX;
        if let Some(st) = &self.storm {
            due = due.min(st.next);
        }
        if let Some(sp) = &self.spike {
            due = due.min(sp.next_start).min(sp.release_at);
        }
        due
    }

    /// Draws whether the host syscall issued now fails transiently.
    pub fn syscall_fails(&mut self) -> bool {
        self.rng.chance(self.syscall_permille)
    }

    /// Draws whether the file read issued now is corrupted; returns the
    /// bit index to flip within `len_bytes` bytes.
    pub fn corrupt_bit(&mut self, len_bytes: usize) -> Option<u64> {
        if len_bytes == 0 || !self.rng.chance(self.bitflip_permille) {
            return None;
        }
        Some(self.rng.below(len_bytes as u64 * 8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(spec: &str) -> FaultPlan {
        FaultPlan::parse(spec).expect("test spec")
    }

    #[test]
    fn empty_plan_never_fires() {
        let mut h = plan("seed=1").compile(0);
        for now in (0..1_000_000).step_by(1000) {
            assert_eq!(h.poll(now), None);
        }
        assert!(!h.syscall_fails());
        assert_eq!(h.corrupt_bit(4096), None);
    }

    #[test]
    fn storm_fires_periodically_and_deterministically() {
        let collect = |salt| {
            let mut h = plan("seed=5,aex=3@10000").compile(salt);
            let mut events = Vec::new();
            for now in (0..200_000).step_by(100) {
                while let Some(ev) = h.poll(now) {
                    events.push((now, ev));
                }
            }
            events
        };
        let a = collect(7);
        let b = collect(7);
        assert_eq!(a, b, "same salt, same schedule");
        assert!(a.len() >= 15, "storm must fire ~20 times: {}", a.len());
        assert!(a
            .iter()
            .all(|(_, ev)| *ev == InjectedFault::Aex { exits: 3 }));
        // Consecutive bursts are about one period apart.
        for w in a.windows(2) {
            let gap = w[1].0 - w[0].0;
            assert!((9_000..=12_000).contains(&gap), "gap {gap}");
        }
    }

    #[test]
    fn different_salts_shift_the_phase() {
        let first_fire = |salt| {
            let mut h = plan("seed=5,aex=1@100000").compile(salt);
            (0..400_000u64).find(|&now| h.poll(now).is_some())
        };
        let fires: Vec<_> = (0..8).map(first_fire).collect();
        assert!(
            fires.windows(2).any(|w| w[0] != w[1]),
            "salts must perturb the schedule: {fires:?}"
        );
    }

    #[test]
    fn spike_alternates_start_and_release() {
        let mut h = plan("seed=2,epc=16@50000:10000").compile(0);
        let mut events = Vec::new();
        for now in (0..300_000).step_by(50) {
            while let Some(ev) = h.poll(now) {
                events.push(ev);
            }
        }
        assert!(events.len() >= 8, "expected several windows: {events:?}");
        for (i, ev) in events.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(*ev, InjectedFault::EpcSpike { frames: 16 });
            } else {
                assert_eq!(*ev, InjectedFault::EpcRelease);
            }
        }
    }

    #[test]
    fn overlapping_spike_period_is_clamped() {
        // duration > period would overlap windows; the compile clamps.
        let mut h = plan("seed=2,epc=8@1000:5000").compile(0);
        let mut depth = 0i32;
        for now in (0..100_000).step_by(10) {
            while let Some(ev) = h.poll(now) {
                match ev {
                    InjectedFault::EpcSpike { .. } => depth += 1,
                    InjectedFault::EpcRelease => depth -= 1,
                    InjectedFault::Aex { .. } => {}
                }
                assert!((0..=1).contains(&depth), "windows overlapped");
            }
        }
    }

    #[test]
    fn stalled_clock_reanchors_instead_of_bursting() {
        let mut h = plan("seed=1,aex=1@1000").compile(0);
        // Jump far past many periods: exactly one event fires, then the
        // schedule re-anchors at now + period.
        let mut n = 0;
        while h.poll(1_000_000).is_some() {
            n += 1;
        }
        assert_eq!(n, 1, "no catch-up burst");
    }

    #[test]
    fn corrupt_bit_stays_in_bounds() {
        let mut h = plan("seed=3,bitflip=1000").compile(0);
        for _ in 0..100 {
            let bit = h.corrupt_bit(100).expect("permille 1000 always flips");
            assert!(bit < 800);
        }
        assert_eq!(h.corrupt_bit(0), None, "empty file cannot flip");
    }
}
