//! Declarative **network** fault plans for the cross-enclave relay.
//!
//! Where [`crate::FaultPlan`] injects faults *inside* one enclave's
//! execution (AEX storms, EPC spikes, syscall failures), a
//! [`NetFaultPlan`] injects faults *between* enclaves: message drops,
//! delivery delays, duplication, reordering jitter, link partitions and
//! whole-party kills. The compiled [`NetFaultHook`] is stateless: every
//! probabilistic decision is a pure hash of (seed, salt, message
//! sequence number, purpose), so outcomes are independent of delivery
//! order, polling cadence and `--jobs`, and byte-identical run-to-run.

use crate::plan::split_spec;
use crate::prng::splitmix64;

/// A scheduled bidirectional link cut between two parties.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkPartition {
    /// One endpoint of the cut link.
    pub from: u32,
    /// The other endpoint of the cut link.
    pub to: u32,
    /// Simulated cycle at which the partition begins.
    pub at_cycles: u64,
    /// Simulated cycles the partition lasts.
    pub duration_cycles: u64,
}

/// A scheduled window during which one party is dead: it neither sends
/// nor receives, and its silence drives the failure detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartyKill {
    /// The party taken down.
    pub party: u32,
    /// Simulated cycle at which the kill begins.
    pub at_cycles: u64,
    /// Simulated cycles the party stays dead.
    pub duration_cycles: u64,
}

/// Probabilistic extra delivery latency: each message independently
/// gains `cycles` with probability `permille`/1000.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetDelay {
    /// Extra simulated cycles added to an affected delivery.
    pub cycles: u64,
    /// Probability in permille that a message is affected.
    pub permille: u32,
}

/// A seeded, declarative network fault plan.
///
/// Parsed from a comma-separated spec string sharing the strict item
/// grammar (positioned errors, no duplicate keys, no trailing commas)
/// of [`crate::FaultPlan`]:
///
/// ```text
/// seed=<u64>                       PRNG seed (default 1)
/// drop=<permille>                  each message is lost with p/1000
/// delay=<cycles>@<permille>        extra latency on p/1000 of messages
/// dup=<permille>                   each message is duplicated with p/1000
/// reorder=<permille>               p/1000 of messages gain hashed jitter
/// partition=<from>-<to>@<cycle>:<dur>   cut one link for a window
/// partykill=<id>@<cycle>:<dur>     kill one party for a window
/// ```
///
/// Each key may appear once per spec; richer schedules (several
/// partitions or kills) are composed programmatically by pushing onto
/// [`NetFaultPlan::partitions`] / [`NetFaultPlan::partykills`].
///
/// ```
/// use faults::NetFaultPlan;
/// let p = NetFaultPlan::parse("drop=50,partykill=2@100000:500000").unwrap();
/// assert_eq!(p.drop_permille, 50);
/// assert_eq!(p.partykills[0].party, 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetFaultPlan {
    /// Base PRNG seed; every compiled hook mixes it with its salt.
    pub seed: u64,
    /// Per-message loss probability in permille (0–1000).
    pub drop_permille: u32,
    /// Probabilistic extra delivery latency, if any.
    pub delay: Option<NetDelay>,
    /// Per-message duplication probability in permille (0–1000).
    pub dup_permille: u32,
    /// Per-message reordering-jitter probability in permille (0–1000).
    pub reorder_permille: u32,
    /// Scheduled link partitions (bidirectional cuts).
    pub partitions: Vec<LinkPartition>,
    /// Scheduled party kill windows.
    pub partykills: Vec<PartyKill>,
}

impl NetFaultPlan {
    /// Parses the spec grammar documented on the type.
    ///
    /// # Errors
    ///
    /// Returns a positioned (`line 1, column C`) message naming the
    /// offending item, with the same strictness as
    /// [`crate::FaultPlan::parse`].
    pub fn parse(spec: &str) -> Result<NetFaultPlan, String> {
        let mut plan = NetFaultPlan {
            seed: 1,
            ..NetFaultPlan::default()
        };
        for item in split_spec(spec)? {
            let (key, val, col) = (item.key, item.val, item.col);
            match key {
                "seed" => plan.seed = parse_u64("seed", val)?,
                "drop" => plan.drop_permille = parse_permille("drop", val)?,
                "dup" => plan.dup_permille = parse_permille("dup", val)?,
                "reorder" => plan.reorder_permille = parse_permille("reorder", val)?,
                "delay" => {
                    let (cycles, permille) = val
                        .split_once('@')
                        .ok_or_else(|| format!("delay=`{val}` is not <cycles>@<permille>"))?;
                    let delay = NetDelay {
                        cycles: parse_u64("delay cycles", cycles)?,
                        permille: parse_permille("delay", permille)?,
                    };
                    if delay.cycles == 0 || delay.permille == 0 {
                        return Err("delay needs non-zero cycles and permille".into());
                    }
                    plan.delay = Some(delay);
                }
                "partition" => {
                    let (ends, window) = val.split_once('@').ok_or_else(|| {
                        format!("partition=`{val}` is not <from>-<to>@<cycle>:<dur>")
                    })?;
                    let (from, to) = ends.split_once('-').ok_or_else(|| {
                        format!("partition=`{val}` is not <from>-<to>@<cycle>:<dur>")
                    })?;
                    let (at, dur) = window.split_once(':').ok_or_else(|| {
                        format!("partition=`{val}` is not <from>-<to>@<cycle>:<dur>")
                    })?;
                    let cut = LinkPartition {
                        from: parse_u64("partition from", from)? as u32,
                        to: parse_u64("partition to", to)? as u32,
                        at_cycles: parse_u64("partition cycle", at)?,
                        duration_cycles: parse_u64("partition duration", dur)?,
                    };
                    if cut.from == cut.to {
                        return Err("partition endpoints must differ".into());
                    }
                    if cut.duration_cycles == 0 {
                        return Err("partition needs a non-zero duration".into());
                    }
                    plan.partitions.push(cut);
                }
                "partykill" => {
                    let (id, window) = val
                        .split_once('@')
                        .ok_or_else(|| format!("partykill=`{val}` is not <id>@<cycle>:<dur>"))?;
                    let (at, dur) = window
                        .split_once(':')
                        .ok_or_else(|| format!("partykill=`{val}` is not <id>@<cycle>:<dur>"))?;
                    let kill = PartyKill {
                        party: parse_u64("partykill id", id)? as u32,
                        at_cycles: parse_u64("partykill cycle", at)?,
                        duration_cycles: parse_u64("partykill duration", dur)?,
                    };
                    if kill.duration_cycles == 0 {
                        return Err("partykill needs a non-zero duration".into());
                    }
                    plan.partykills.push(kill);
                }
                other => {
                    return Err(format!(
                        "line 1, column {col}: unknown network fault item `{other}`"
                    ))
                }
            }
        }
        Ok(plan)
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.drop_permille == 0
            && self.delay.is_none()
            && self.dup_permille == 0
            && self.reorder_permille == 0
            && self.partitions.is_empty()
            && self.partykills.is_empty()
    }

    /// The same plan with its seed deterministically re-derived from
    /// `salt`, mirroring [`crate::FaultPlan::salted`] so campaign
    /// stages decorrelate their network weather per stage ordinal.
    #[must_use]
    pub fn salted(&self, salt: u64) -> NetFaultPlan {
        let mut plan = self.clone();
        plan.seed = splitmix64(self.seed ^ salt.rotate_left(32));
        plan
    }

    /// Compiles the plan into a per-run hook. `salt` distinguishes runs
    /// that must see *different* network weather (the sweep executor
    /// derives it per cell and attempt); schedule windows (partitions,
    /// kills) are calendar facts and are **not** salted.
    pub fn compile(&self, salt: u64) -> NetFaultHook {
        NetFaultHook::new(self, salt)
    }

    /// An order-sensitive FNV-1a digest of the plan, used to guard
    /// checkpoints exactly like [`crate::FaultPlan::digest`].
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        mix(self.seed);
        mix(u64::from(self.drop_permille));
        match self.delay {
            Some(d) => {
                mix(1);
                mix(d.cycles);
                mix(u64::from(d.permille));
            }
            None => mix(0),
        }
        mix(u64::from(self.dup_permille));
        mix(u64::from(self.reorder_permille));
        mix(self.partitions.len() as u64);
        for p in &self.partitions {
            mix(u64::from(p.from));
            mix(u64::from(p.to));
            mix(p.at_cycles);
            mix(p.duration_cycles);
        }
        mix(self.partykills.len() as u64);
        for k in &self.partykills {
            mix(u64::from(k.party));
            mix(k.at_cycles);
            mix(k.duration_cycles);
        }
        h
    }
}

/// Purpose tags decorrelating the per-message hash draws: the drop
/// decision for message 7 must not predict its delay or duplication.
mod tag {
    pub const DROP: u64 = 0x6472;
    pub const DELAY: u64 = 0x646c;
    pub const DUP: u64 = 0x6475;
    pub const REORDER: u64 = 0x726f;
}

/// Compiled, stateless network fault oracle.
///
/// All probabilistic draws are pure functions of the compiled key and
/// the message sequence number, so two relays replaying the same
/// message sequence reach identical verdicts regardless of the order in
/// which they ask — the property that makes relay runs byte-identical
/// across `--jobs`. Schedule queries (`link_cut`, `party_dead`) are
/// pure functions of the plan's windows and the queried cycle.
#[derive(Debug, Clone)]
pub struct NetFaultHook {
    key: u64,
    drop_permille: u32,
    delay: Option<NetDelay>,
    dup_permille: u32,
    reorder_permille: u32,
    partitions: Vec<LinkPartition>,
    partykills: Vec<PartyKill>,
}

impl NetFaultHook {
    /// Compiles `plan` under `salt`; prefer [`NetFaultPlan::compile`].
    pub fn new(plan: &NetFaultPlan, salt: u64) -> NetFaultHook {
        NetFaultHook {
            key: splitmix64(plan.seed ^ splitmix64(salt)),
            drop_permille: plan.drop_permille,
            delay: plan.delay,
            dup_permille: plan.dup_permille,
            reorder_permille: plan.reorder_permille,
            partitions: plan.partitions.clone(),
            partykills: plan.partykills.clone(),
        }
    }

    fn draw(&self, seq: u64, tag: u64) -> u64 {
        splitmix64(self.key ^ splitmix64(seq.wrapping_mul(0x9e37_79b9_7f4a_7c55) ^ tag))
    }

    fn chance(&self, seq: u64, tag: u64, permille: u32) -> bool {
        permille > 0 && self.draw(seq, tag) % 1000 < u64::from(permille)
    }

    /// Whether message `seq` is lost in transit.
    pub fn drops(&self, seq: u64) -> bool {
        self.chance(seq, tag::DROP, self.drop_permille)
    }

    /// Extra delivery latency for message `seq` (0 when unaffected).
    pub fn delay_cycles(&self, seq: u64) -> u64 {
        match self.delay {
            Some(d) if self.chance(seq, tag::DELAY, d.permille) => d.cycles,
            _ => 0,
        }
    }

    /// Whether message `seq` arrives twice.
    pub fn duplicates(&self, seq: u64) -> bool {
        self.chance(seq, tag::DUP, self.dup_permille)
    }

    /// Reordering jitter for message `seq`: a hashed extra latency in
    /// `1..=span` cycles when affected, 0 otherwise. The caller picks
    /// `span` (typically a small multiple of the link latency) so the
    /// faults crate stays free of cost-model constants.
    pub fn reorder_jitter(&self, seq: u64, span: u64) -> u64 {
        if span == 0 || !self.chance(seq, tag::REORDER, self.reorder_permille) {
            return 0;
        }
        1 + self.draw(seq, tag::REORDER ^ 0xff) % span
    }

    /// Whether the `from`↔`to` link is cut at cycle `now`, either by a
    /// scheduled partition covering the pair (in either orientation) or
    /// because an endpoint is dead.
    pub fn link_cut(&self, from: u32, to: u32, now: u64) -> bool {
        if self.party_dead(from, now) || self.party_dead(to, now) {
            return true;
        }
        self.partitions.iter().any(|p| {
            let pair = (p.from == from && p.to == to) || (p.from == to && p.to == from);
            pair && in_window(now, p.at_cycles, p.duration_cycles)
        })
    }

    /// Whether `party` is inside a scheduled kill window at cycle `now`.
    pub fn party_dead(&self, party: u32, now: u64) -> bool {
        self.partykills
            .iter()
            .any(|k| k.party == party && in_window(now, k.at_cycles, k.duration_cycles))
    }

    /// The earliest cycle strictly after `now` at which any schedule
    /// window opens or closes — lets an idle driver jump straight to
    /// the next state change instead of polling.
    pub fn next_schedule_edge(&self, now: u64) -> Option<u64> {
        let mut next: Option<u64> = None;
        let mut consider = |edge: u64| {
            if edge > now && next.is_none_or(|n| edge < n) {
                next = Some(edge);
            }
        };
        for p in &self.partitions {
            consider(p.at_cycles);
            consider(p.at_cycles.saturating_add(p.duration_cycles));
        }
        for k in &self.partykills {
            consider(k.at_cycles);
            consider(k.at_cycles.saturating_add(k.duration_cycles));
        }
        next
    }
}

fn in_window(now: u64, at: u64, dur: u64) -> bool {
    now >= at && now < at.saturating_add(dur)
}

fn parse_u64(what: &str, s: &str) -> Result<u64, String> {
    s.trim()
        .replace('_', "")
        .parse()
        .map_err(|_| format!("{what}: `{s}` is not a number"))
}

fn parse_permille(what: &str, s: &str) -> Result<u32, String> {
    let v = parse_u64(what, s)?;
    if v > 1000 {
        return Err(format!("{what}: permille {v} exceeds 1000"));
    }
    Ok(v as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let p = NetFaultPlan::parse(
            "seed=9,drop=50,delay=4_000@100,dup=25,reorder=80,\
             partition=0-3@10000:5000,partykill=2@100000:500000",
        )
        .unwrap();
        assert_eq!(p.seed, 9);
        assert_eq!(p.drop_permille, 50);
        assert_eq!(
            p.delay,
            Some(NetDelay {
                cycles: 4_000,
                permille: 100
            })
        );
        assert_eq!(p.dup_permille, 25);
        assert_eq!(p.reorder_permille, 80);
        assert_eq!(
            p.partitions,
            vec![LinkPartition {
                from: 0,
                to: 3,
                at_cycles: 10_000,
                duration_cycles: 5_000
            }]
        );
        assert_eq!(
            p.partykills,
            vec![PartyKill {
                party: 2,
                at_cycles: 100_000,
                duration_cycles: 500_000
            }]
        );
        assert!(!p.is_empty());
    }

    #[test]
    fn empty_spec_defaults_to_seed_one_and_no_faults() {
        let p = NetFaultPlan::parse("").unwrap();
        assert_eq!(p.seed, 1);
        assert!(p.is_empty());
    }

    #[test]
    fn rejects_malformed_items() {
        assert!(NetFaultPlan::parse("drop=1001").is_err());
        assert!(NetFaultPlan::parse("delay=4000").is_err());
        assert!(NetFaultPlan::parse("delay=0@100").is_err());
        assert!(NetFaultPlan::parse("partition=1@100:50").is_err());
        assert!(NetFaultPlan::parse("partition=1-1@100:50").is_err());
        assert!(NetFaultPlan::parse("partition=1-2@100:0").is_err());
        assert!(NetFaultPlan::parse("partykill=2@100").is_err());
        assert!(NetFaultPlan::parse("partykill=2@100:0").is_err());
        assert!(NetFaultPlan::parse("blizzard=7").is_err());
    }

    #[test]
    fn rejects_duplicates_and_trailing_commas_with_position() {
        let err = NetFaultPlan::parse("drop=10,drop=20").unwrap_err();
        assert!(err.contains("line 1, column 9"), "got: {err}");
        assert!(err.contains("duplicate fault item `drop`"), "got: {err}");
        let err = NetFaultPlan::parse("drop=10,").unwrap_err();
        assert!(err.contains("empty fault item"), "got: {err}");
    }

    #[test]
    fn draws_are_stateless_and_order_independent() {
        let hook = NetFaultPlan::parse("seed=3,drop=200,dup=100,reorder=300")
            .unwrap()
            .compile(7);
        let forward: Vec<bool> = (0..64).map(|s| hook.drops(s)).collect();
        let backward: Vec<bool> = (0..64).rev().map(|s| hook.drops(s)).collect();
        let backward_reversed: Vec<bool> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward_reversed);
        // Roughly 200/1000 of messages drop — sanity, not exactness.
        let hits = forward.iter().filter(|d| **d).count();
        assert!(hits > 0 && hits < 32, "drop rate implausible: {hits}/64");
    }

    #[test]
    fn draw_purposes_are_decorrelated() {
        let hook = NetFaultPlan::parse("seed=3,drop=500,dup=500,reorder=500")
            .unwrap()
            .compile(0);
        let drops: Vec<bool> = (0..256).map(|s| hook.drops(s)).collect();
        let dups: Vec<bool> = (0..256).map(|s| hook.duplicates(s)).collect();
        assert_ne!(drops, dups);
    }

    #[test]
    fn salt_changes_draws_but_not_schedule() {
        let plan = NetFaultPlan::parse("seed=3,drop=500,partykill=1@1000:2000").unwrap();
        let a = plan.compile(1);
        let b = plan.compile(2);
        let draws_a: Vec<bool> = (0..128).map(|s| a.drops(s)).collect();
        let draws_b: Vec<bool> = (0..128).map(|s| b.drops(s)).collect();
        assert_ne!(draws_a, draws_b);
        for now in [0, 999, 1000, 2999, 3000] {
            assert_eq!(a.party_dead(1, now), b.party_dead(1, now));
        }
    }

    #[test]
    fn schedule_windows_are_half_open() {
        let hook = NetFaultPlan::parse("partykill=2@100:50,partition=0-1@300:10")
            .unwrap()
            .compile(0);
        assert!(!hook.party_dead(2, 99));
        assert!(hook.party_dead(2, 100));
        assert!(hook.party_dead(2, 149));
        assert!(!hook.party_dead(2, 150));
        assert!(!hook.link_cut(0, 1, 299));
        assert!(hook.link_cut(0, 1, 300));
        assert!(hook.link_cut(1, 0, 305));
        assert!(!hook.link_cut(0, 1, 310));
        // A dead endpoint cuts every adjacent link.
        assert!(hook.link_cut(2, 3, 120));
        assert!(hook.link_cut(3, 2, 120));
    }

    #[test]
    fn next_schedule_edge_walks_all_window_boundaries() {
        let hook = NetFaultPlan::parse("partykill=2@100:50,partition=0-1@300:10")
            .unwrap()
            .compile(0);
        assert_eq!(hook.next_schedule_edge(0), Some(100));
        assert_eq!(hook.next_schedule_edge(100), Some(150));
        assert_eq!(hook.next_schedule_edge(150), Some(300));
        assert_eq!(hook.next_schedule_edge(300), Some(310));
        assert_eq!(hook.next_schedule_edge(310), None);
    }

    #[test]
    fn digest_distinguishes_plans() {
        let a = NetFaultPlan::parse("seed=1,drop=50").unwrap();
        let b = NetFaultPlan::parse("seed=2,drop=50").unwrap();
        let c = NetFaultPlan::parse("seed=1,drop=51").unwrap();
        let d = NetFaultPlan::parse("seed=1,drop=50,partykill=2@1:1").unwrap();
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
        assert_ne!(a.digest(), d.digest());
        assert_eq!(
            a.digest(),
            NetFaultPlan::parse("seed=1,drop=50").unwrap().digest()
        );
    }

    #[test]
    fn salted_rederives_seed_like_fault_plan() {
        let plan = NetFaultPlan::parse("seed=5,drop=10").unwrap();
        let s1 = plan.salted(9);
        let s2 = plan.salted(9);
        assert_eq!(s1, s2);
        assert_ne!(s1.seed, plan.seed);
        assert_eq!(s1.drop_permille, 10);
    }
}
