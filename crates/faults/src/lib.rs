//! Deterministic fault injection for the SGXGauge simulator.
//!
//! Long sweeps over the paper's grid live or die on noisy SGX mechanisms
//! — AEX interrupts, EPC thrashing, transition storms (paper §2.2–§2.3).
//! The sweep executor must be able to *provoke* those conditions
//! deterministically to prove it survives them. This crate provides the
//! two halves of that story:
//!
//! * [`FaultPlan`] — a seeded, declarative description of which faults to
//!   inject (parsed from a CLI spec string such as
//!   `seed=42,aex=3@50000,epc=64@400000:100000,syscall=20,bitflip=5`),
//! * [`FaultHook`] — the per-run compiled form, advanced by the
//!   environment's hot paths against the *simulated* thread clock,
//! * [`NetFaultPlan`] / [`NetFaultHook`] — the same story for the
//!   *network* between enclaves (drops, delays, duplication,
//!   reordering, partitions, party kills), consumed by `crates/relay`.
//!
//! Everything here is pure state-machine code over simulated cycles: no
//! wall clock, no OS randomness, no dependencies. The same plan compiled
//! with the same salt produces the same event stream on every run, on
//! every thread count — which is what makes fault-injection sweeps
//! fingerprint-stable and resumable.
//!
//! Cycle *costs* of injected events are intentionally absent: an injected
//! AEX is charged by `sgx-sim` from its canonical `costs` module, never
//! from here.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod hook;
pub mod iofaults;
pub mod netplan;
pub mod plan;
pub mod prng;

pub use hook::{FaultHook, InjectedFault};
pub use iofaults::IoFaultPlan;
pub use netplan::{LinkPartition, NetDelay, NetFaultHook, NetFaultPlan, PartyKill};
pub use plan::{AexStorm, EpcSpike, FaultPlan};
pub use prng::XorShift64;
