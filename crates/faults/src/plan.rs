//! Declarative fault plans and their spec-string grammar.

use crate::hook::FaultHook;

/// One `key=value` item of a comma-separated spec, with the 1-based
/// column at which the key starts (specs are single-line, so positioned
/// errors report `line 1, column C`).
pub(crate) struct SpecItem<'a> {
    /// The trimmed key.
    pub key: &'a str,
    /// The trimmed value.
    pub val: &'a str,
    /// 1-based column of the key's first character.
    pub col: usize,
}

/// Splits a comma-separated spec into `key=value` items with the same
/// error discipline as the campaign TOML parser: empty items (a
/// trailing, leading, or doubled comma) and duplicate keys are
/// positioned errors, never silent tolerance. A whole-empty spec is
/// legal and yields no items.
pub(crate) fn split_spec(spec: &str) -> Result<Vec<SpecItem<'_>>, String> {
    let mut items: Vec<SpecItem<'_>> = Vec::new();
    if spec.trim().is_empty() {
        return Ok(items);
    }
    let mut col = 1usize;
    for raw in spec.split(',') {
        let item_col = col;
        col += raw.chars().count() + 1;
        let key_col = item_col + raw.chars().count() - raw.trim_start().chars().count();
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            return Err(format!(
                "line 1, column {item_col}: empty fault item \
                 (trailing or doubled comma)"
            ));
        }
        let (key, val) = trimmed.split_once('=').ok_or_else(|| {
            format!("line 1, column {key_col}: fault item `{trimmed}` is not key=value")
        })?;
        let key = key.trim();
        let val = val.trim();
        if items.iter().any(|it| it.key == key) {
            return Err(format!(
                "line 1, column {key_col}: duplicate fault item `{key}` \
                 (the earlier value would be silently overridden)"
            ));
        }
        items.push(SpecItem {
            key,
            val,
            col: key_col,
        });
    }
    Ok(items)
}

/// A scheduled burst of asynchronous enclave exits: every
/// `period_cycles`, the victim thread takes `exits` extra AEX round trips
/// (AEX + ERESUME with the mandatory TLB flush, §2.3) if it is inside an
/// enclave at that moment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AexStorm {
    /// Extra enclave exits injected per burst.
    pub exits: u32,
    /// Simulated cycles between bursts.
    pub period_cycles: u64,
}

/// A periodic EPC pressure spike: every `period_cycles`, `frames` EPC
/// frames are reserved (as if a co-tenant enclave grabbed them) for
/// `duration_cycles`, forcing EWB churn on the victim's working set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpcSpike {
    /// Frames withdrawn from the usable EPC while the spike is active.
    pub frames: usize,
    /// Simulated cycles between spike onsets.
    pub period_cycles: u64,
    /// Simulated cycles a spike lasts.
    pub duration_cycles: u64,
}

/// A seeded, declarative fault-injection plan.
///
/// Parsed from a comma-separated spec string:
///
/// ```text
/// seed=<u64>                 PRNG seed (default 1)
/// aex=<exits>@<period>       AEX storm: exits per burst @ cycle period
/// epc=<frames>@<period>:<duration>   EPC pressure spikes
/// syscall=<permille>         each host syscall fails with p/1000
/// bitflip=<permille>         each file read is corrupted with p/1000
/// ```
///
/// ```
/// use faults::FaultPlan;
/// let p = FaultPlan::parse("seed=42,aex=3@50000,syscall=20").unwrap();
/// assert_eq!(p.seed, 42);
/// assert_eq!(p.aex.unwrap().exits, 3);
/// assert_eq!(p.syscall_fail_permille, 20);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Base PRNG seed; every compiled hook mixes it with its salt.
    pub seed: u64,
    /// Scheduled AEX storms, if any.
    pub aex: Option<AexStorm>,
    /// Periodic EPC pressure spikes, if any.
    pub epc: Option<EpcSpike>,
    /// Per-syscall transient failure probability in permille (0–1000).
    pub syscall_fail_permille: u32,
    /// Per-file-read bit-flip probability in permille (0–1000).
    pub bitflip_permille: u32,
}

impl FaultPlan {
    /// Parses the spec grammar documented on the type.
    ///
    /// # Errors
    ///
    /// Returns a positioned (`line 1, column C`) message naming the
    /// offending item. Duplicate keys and trailing/doubled commas are
    /// rejected rather than silently tolerated, matching the campaign
    /// TOML parser's error discipline.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan {
            seed: 1,
            ..FaultPlan::default()
        };
        for item in split_spec(spec)? {
            let (key, val, col) = (item.key, item.val, item.col);
            match key {
                "seed" => plan.seed = parse_u64("seed", val)?,
                "aex" => {
                    let (exits, period) = val
                        .split_once('@')
                        .ok_or_else(|| format!("aex=`{val}` is not <exits>@<period>"))?;
                    let storm = AexStorm {
                        exits: parse_u64("aex exits", exits)? as u32,
                        period_cycles: parse_u64("aex period", period)?,
                    };
                    if storm.exits == 0 || storm.period_cycles == 0 {
                        return Err("aex storm needs non-zero exits and period".into());
                    }
                    plan.aex = Some(storm);
                }
                "epc" => {
                    let (frames, rest) = val.split_once('@').ok_or_else(|| {
                        format!("epc=`{val}` is not <frames>@<period>:<duration>")
                    })?;
                    let (period, duration) = rest.split_once(':').ok_or_else(|| {
                        format!("epc=`{val}` is not <frames>@<period>:<duration>")
                    })?;
                    let spike = EpcSpike {
                        frames: parse_u64("epc frames", frames)? as usize,
                        period_cycles: parse_u64("epc period", period)?,
                        duration_cycles: parse_u64("epc duration", duration)?,
                    };
                    if spike.frames == 0 || spike.period_cycles == 0 || spike.duration_cycles == 0 {
                        return Err("epc spike needs non-zero frames, period and duration".into());
                    }
                    plan.epc = Some(spike);
                }
                "syscall" => plan.syscall_fail_permille = parse_permille("syscall", val)?,
                "bitflip" => plan.bitflip_permille = parse_permille("bitflip", val)?,
                other => {
                    return Err(format!(
                        "line 1, column {col}: unknown fault item `{other}`"
                    ))
                }
            }
        }
        Ok(plan)
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.aex.is_none()
            && self.epc.is_none()
            && self.syscall_fail_permille == 0
            && self.bitflip_permille == 0
    }

    /// The same plan with its seed deterministically re-derived from
    /// `salt`: campaign runners call this once per stage so every stage
    /// of one campaign seed faces an unrelated — but exactly
    /// reproducible — fault stream. One splitmix64 round decorrelates
    /// adjacent stage ordinals.
    #[must_use]
    pub fn salted(&self, salt: u64) -> FaultPlan {
        let mut plan = self.clone();
        plan.seed = crate::prng::splitmix64(self.seed ^ salt.rotate_left(32));
        plan
    }

    /// Compiles the plan into a per-run hook. `salt` distinguishes runs
    /// that must see *different* fault outcomes — the sweep executor
    /// derives it from the grid coordinate and the attempt number, so a
    /// retried cell faces a fresh draw while the overall sweep stays
    /// deterministic.
    pub fn compile(&self, salt: u64) -> FaultHook {
        FaultHook::new(self, salt)
    }

    /// An order-sensitive FNV-1a digest of the plan, used to guard
    /// checkpoints: resuming a sweep under a different plan would splice
    /// incompatible cells together.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        mix(self.seed);
        match self.aex {
            Some(s) => {
                mix(1);
                mix(u64::from(s.exits));
                mix(s.period_cycles);
            }
            None => mix(0),
        }
        match self.epc {
            Some(s) => {
                mix(1);
                mix(s.frames as u64);
                mix(s.period_cycles);
                mix(s.duration_cycles);
            }
            None => mix(0),
        }
        mix(u64::from(self.syscall_fail_permille));
        mix(u64::from(self.bitflip_permille));
        h
    }
}

fn parse_u64(what: &str, s: &str) -> Result<u64, String> {
    s.trim()
        .replace('_', "")
        .parse()
        .map_err(|_| format!("{what}: `{s}` is not a number"))
}

fn parse_permille(what: &str, s: &str) -> Result<u32, String> {
    let v = parse_u64(what, s)?;
    if v > 1000 {
        return Err(format!("{what}: permille {v} exceeds 1000"));
    }
    Ok(v as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let p = FaultPlan::parse("seed=9,aex=2@10_000,epc=32@80000:20000,syscall=15,bitflip=3")
            .unwrap();
        assert_eq!(p.seed, 9);
        assert_eq!(
            p.aex,
            Some(AexStorm {
                exits: 2,
                period_cycles: 10_000
            })
        );
        assert_eq!(
            p.epc,
            Some(EpcSpike {
                frames: 32,
                period_cycles: 80_000,
                duration_cycles: 20_000
            })
        );
        assert_eq!(p.syscall_fail_permille, 15);
        assert_eq!(p.bitflip_permille, 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn empty_spec_defaults_to_seed_one_and_no_faults() {
        let p = FaultPlan::parse("").unwrap();
        assert_eq!(p.seed, 1);
        assert!(p.is_empty());
    }

    #[test]
    fn rejects_malformed_items() {
        assert!(FaultPlan::parse("bogus").is_err());
        assert!(FaultPlan::parse("aex=3").is_err());
        assert!(FaultPlan::parse("aex=0@100").is_err());
        assert!(FaultPlan::parse("epc=8@100").is_err());
        assert!(FaultPlan::parse("epc=0@100:50").is_err());
        assert!(FaultPlan::parse("syscall=1001").is_err());
        assert!(FaultPlan::parse("volcano=7").is_err());
        assert!(FaultPlan::parse("seed=notanumber").is_err());
    }

    #[test]
    fn rejects_duplicate_keys_with_position() {
        let err = FaultPlan::parse("seed=1,aex=2@1000,seed=9").unwrap_err();
        assert!(err.contains("line 1, column 19"), "got: {err}");
        assert!(err.contains("duplicate fault item `seed`"), "got: {err}");
    }

    #[test]
    fn rejects_trailing_and_doubled_commas_with_position() {
        let err = FaultPlan::parse("seed=1,").unwrap_err();
        assert!(err.contains("line 1, column 8"), "got: {err}");
        assert!(err.contains("empty fault item"), "got: {err}");

        let err = FaultPlan::parse("seed=1,,bitflip=3").unwrap_err();
        assert!(err.contains("line 1, column 8"), "got: {err}");

        let err = FaultPlan::parse(",seed=1").unwrap_err();
        assert!(err.contains("line 1, column 1"), "got: {err}");
    }

    #[test]
    fn positions_account_for_leading_whitespace() {
        let err = FaultPlan::parse("seed=1,  volcano=7").unwrap_err();
        assert!(err.contains("line 1, column 10"), "got: {err}");
        assert!(err.contains("unknown fault item `volcano`"), "got: {err}");
    }

    #[test]
    fn digest_distinguishes_plans() {
        let a = FaultPlan::parse("seed=1,aex=2@1000").unwrap();
        let b = FaultPlan::parse("seed=2,aex=2@1000").unwrap();
        let c = FaultPlan::parse("seed=1,aex=3@1000").unwrap();
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
        assert_eq!(
            a.digest(),
            FaultPlan::parse("seed=1,aex=2@1000").unwrap().digest()
        );
    }
}
