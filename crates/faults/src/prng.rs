//! Seedable xorshift PRNG driving every probabilistic fault decision.
//!
//! Deliberately tiny and self-contained: the fault plane must be
//! deterministic across platforms and dependency-free, so it carries its
//! own generator instead of pulling one in. The vendored `rand` stub is a
//! dev-only test double elsewhere in the workspace; production fault
//! schedules never touch it.

/// Marsaglia xorshift64 with a splitmix64 seed scrambler.
///
/// ```
/// use faults::XorShift64;
/// let mut a = XorShift64::new(42);
/// let mut b = XorShift64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64(), "same seed, same stream");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from `seed`. Any seed is fine, including zero:
    /// the splitmix64 scrambler guarantees a non-zero internal state.
    pub fn new(seed: u64) -> Self {
        let mut s = splitmix64(seed);
        if s == 0 {
            s = 0x9e37_79b9_7f4a_7c15;
        }
        XorShift64 { state: s }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Uniform-ish value in `0..bound` (`0` when `bound` is zero).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.next_u64() % bound
    }

    /// True with probability `permille`/1000 (clamped to 1000).
    pub fn chance(&mut self, permille: u32) -> bool {
        if permille == 0 {
            return false;
        }
        self.below(1000) < u64::from(permille.min(1000))
    }
}

/// One round of splitmix64: decorrelates adjacent seeds (seed, seed+1, …)
/// so per-cell salts produce unrelated streams.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = XorShift64::new(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = XorShift64::new(4);
        assert!((0..100).all(|_| !r.chance(0)));
        assert!((0..100).all(|_| r.chance(1000)));
        // A 500-permille coin lands on both sides over 1000 draws.
        let heads = (0..1000).filter(|_| r.chance(500)).count();
        assert!(heads > 300 && heads < 700, "suspicious coin: {heads}");
    }
}
