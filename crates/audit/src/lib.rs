//! `gauge-audit`: the workspace model-lint pass.
//!
//! A dependency-free static analyzer that keeps the simulator honest
//! about the paper constants and accounting identities it reproduces.
//! The dynamic half of the same contract is the `audit` cargo feature of
//! `sgx-sim`/`mem-sim` (runtime invariant checks); this crate is the
//! static half, run as `cargo run -p audit -- --check --json` in CI.
//!
//! Two analysis layers share one scan:
//!
//! * **Token rules** ([`rules`]) — flat-lexer pattern checks (cost
//!   literals, wall-clock reads, counter casts, unwrap, fs writes).
//! * **Semantic passes** ([`passes`]) — a recursive-descent item parse
//!   ([`parser`]) plus a workspace call graph ([`callgraph`]) feed four
//!   reachability-aware passes: determinism (`hash-iter`), cycle
//!   conservation (`cycle-routing`), hot-path purity (`hot-path`), and
//!   phase-span balance (`phase-balance`).
//!
//! Three suppression planes, each with stale-entry detection:
//!
//! * `crates/audit/allowlists/<rule>.allow` — individually justified
//!   exceptions, with the reason recorded in a comment. Entries that
//!   match nothing are *stale* (warn; error under `--strict`).
//! * `crates/audit/baseline/workspace.baseline` — accepted findings
//!   carried across PRs. A stale baseline entry always fails `--check`:
//!   the debt was paid, so the entry must go.
//! * `crates/audit/manifests/cycle-routing.manifest` — the reviewed
//!   list of counter-mutating functions; staleness is reported by the
//!   `cycle-routing` pass itself.
//!
//! See DESIGN.md §13 for the pass catalogue and the call-graph
//! approximation's documented false-negative edges.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod passes;
pub mod rules;

use passes::cycles::CycleManifest;
use rules::RuleContext;
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (one of [`rules::ALL_RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable description; allowlist/baseline substrings match
    /// against it.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Result of a workspace scan.
#[derive(Debug, Clone, Default)]
pub struct ScanReport {
    /// Violations that survived the allowlists and the baseline, in
    /// (path, line, rule) order.
    pub findings: Vec<Finding>,
    /// Number of violations suppressed by allowlist entries.
    pub suppressed: usize,
    /// Number of violations suppressed by the committed baseline.
    pub baselined: usize,
    /// Suppressions (allowlist + baseline) per rule id.
    pub suppressed_by_rule: BTreeMap<String, usize>,
    /// Allowlist entries that matched no finding this scan (stale).
    pub stale_allow: Vec<String>,
    /// Baseline entries that matched no finding this scan (stale).
    pub stale_baseline: Vec<String>,
    /// Number of `.rs` files checked.
    pub files_checked: usize,
}

/// One suppression entry: findings for `rule` in files ending with
/// `path_suffix` whose message contains `substring` (empty = any) are
/// suppressed.
#[derive(Debug, Clone)]
struct AllowEntry {
    rule: String,
    path_suffix: String,
    substring: String,
}

impl AllowEntry {
    fn matches(&self, f: &Finding) -> bool {
        self.rule == f.rule
            && f.file.ends_with(&self.path_suffix)
            && (self.substring.is_empty() || f.message.contains(&self.substring))
    }

    fn describe(&self) -> String {
        if self.substring.is_empty() {
            format!("{} {}", self.rule, self.path_suffix)
        } else {
            format!("{} {} {}", self.rule, self.path_suffix, self.substring)
        }
    }
}

/// The merged allowlists of every rule.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Loads `<rule>.allow` files from `dir`. Missing files mean an
    /// empty allowlist for that rule; unreadable ones are an error.
    pub fn load(dir: &Path) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for rule in rules::ALL_RULES {
            let path = dir.join(format!("{rule}.allow"));
            if !path.exists() {
                continue;
            }
            let text = fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let mut parts = line.split_whitespace();
                let path_suffix = parts.next().unwrap_or_default().to_string();
                let substring = parts.collect::<Vec<_>>().join(" ");
                entries.push(AllowEntry {
                    rule: rule.to_string(),
                    path_suffix,
                    substring,
                });
            }
        }
        Ok(Allowlist { entries })
    }

    /// Parses allowlist entries for `rule` from a string (for tests).
    pub fn from_str_for_rule(rule: &'static str, text: &str) -> Allowlist {
        let entries = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(|line| {
                let mut parts = line.split_whitespace();
                AllowEntry {
                    rule: rule.to_string(),
                    path_suffix: parts.next().unwrap_or_default().to_string(),
                    substring: parts.collect::<Vec<_>>().join(" "),
                }
            })
            .collect();
        Allowlist { entries }
    }

    /// Whether `f` is covered by an entry.
    pub fn permits(&self, f: &Finding) -> bool {
        self.entries.iter().any(|e| e.matches(f))
    }

    fn match_index(&self, f: &Finding) -> Option<usize> {
        self.entries.iter().position(|e| e.matches(f))
    }
}

/// The committed baseline: accepted findings carried across PRs so that
/// `--check` only fails on *new* debt. One entry per line:
/// `rule path-suffix [message substring]`; `#` comments.
///
/// Unlike allowlists (justified forever-exceptions), baseline entries
/// are debt: when the underlying finding disappears, the entry is
/// *stale* and fails the scan until removed.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    entries: Vec<AllowEntry>,
}

impl Baseline {
    /// Loads the baseline from `path`; a missing file is an empty
    /// baseline.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        if !path.exists() {
            return Ok(Baseline::default());
        }
        let text =
            fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        Ok(Self::from_str(&text))
    }

    /// Parses baseline text (for tests and [`Baseline::load`]).
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(text: &str) -> Baseline {
        let entries = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .filter_map(|line| {
                let mut parts = line.split_whitespace();
                let rule = parts.next()?.to_string();
                let path_suffix = parts.next()?.to_string();
                let substring = parts.collect::<Vec<_>>().join(" ");
                Some(AllowEntry {
                    rule,
                    path_suffix,
                    substring,
                })
            })
            .collect();
        Baseline { entries }
    }

    fn match_index(&self, f: &Finding) -> Option<usize> {
        self.entries.iter().position(|e| e.matches(f))
    }
}

/// Directories never scanned: vendored stubs, build output, VCS state.
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", ".github"];

/// Recursively collects `.rs` files under `root`, skipping [`SKIP_DIRS`].
fn collect_rs_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            fs::read_dir(&dir).map_err(|e| format!("reading dir {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("reading dir {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Loads the canonical modules and builds the rule context from them.
pub fn load_context(root: &Path) -> Result<RuleContext, String> {
    let costs = root.join("crates/sgx-sim/src/costs.rs");
    let counters = root.join("crates/mem-sim/src/counters.rs");
    let costs_src =
        fs::read_to_string(&costs).map_err(|e| format!("reading {}: {e}", costs.display()))?;
    let counters_src = fs::read_to_string(&counters)
        .map_err(|e| format!("reading {}: {e}", counters.display()))?;
    let ctx = RuleContext::from_sources(&costs_src, &counters_src);
    if ctx.cost_values.is_empty() {
        return Err("no canonical cost constants found in sgx-sim::costs".to_string());
    }
    if ctx.counter_fields.is_empty() {
        return Err("no counter fields found in mem-sim::counters".to_string());
    }
    Ok(ctx)
}

/// Scans in-memory `(rel_path, source)` pairs with every token rule and
/// semantic pass, then applies `allow` and `baseline` with stale-entry
/// tracking. This is the testable core of [`scan_workspace`].
pub fn scan_sources(
    sources: &[(String, String)],
    ctx: &RuleContext,
    allow: &Allowlist,
    baseline: &Baseline,
    manifest: &CycleManifest,
) -> ScanReport {
    let mut raw = Vec::new();
    for (rel, src) in sources {
        raw.extend(rules::check_source(rel, src, ctx));
    }
    let ws = passes::Workspace::build(sources);
    raw.extend(ws.run_passes(ctx, manifest));
    raw.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
    let mut report = ScanReport {
        files_checked: sources.len(),
        ..ScanReport::default()
    };
    let mut allow_used = vec![false; allow.entries.len()];
    let mut base_used = vec![false; baseline.entries.len()];
    for f in raw {
        if let Some(i) = allow.match_index(&f) {
            allow_used[i] = true;
            report.suppressed += 1;
            *report
                .suppressed_by_rule
                .entry(f.rule.to_string())
                .or_default() += 1;
        } else if let Some(i) = baseline.match_index(&f) {
            base_used[i] = true;
            report.baselined += 1;
            *report
                .suppressed_by_rule
                .entry(f.rule.to_string())
                .or_default() += 1;
        } else {
            report.findings.push(f);
        }
    }
    report.stale_allow = allow
        .entries
        .iter()
        .zip(&allow_used)
        .filter(|(_, used)| !**used)
        .map(|(e, _)| e.describe())
        .collect();
    report.stale_baseline = baseline
        .entries
        .iter()
        .zip(&base_used)
        .filter(|(_, used)| !**used)
        .map(|(e, _)| e.describe())
        .collect();
    report
}

/// Workspace-relative path of the committed baseline.
pub const BASELINE_PATH: &str = "crates/audit/baseline/workspace.baseline";
/// Workspace-relative path of the cycle-routing manifest.
pub const MANIFEST_PATH: &str = "crates/audit/manifests/cycle-routing.manifest";

/// Loads the cycle-routing manifest from `root`; a missing file is an
/// empty manifest.
pub fn load_manifest(root: &Path) -> Result<CycleManifest, String> {
    let path = root.join(MANIFEST_PATH);
    if !path.exists() {
        return Ok(CycleManifest::default());
    }
    let text = fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    Ok(CycleManifest::parse(MANIFEST_PATH, &text))
}

/// Scans the workspace rooted at `root` with every rule and pass,
/// applying the allowlists, the committed baseline, and the
/// cycle-routing manifest.
pub fn scan_workspace(root: &Path) -> Result<ScanReport, String> {
    let ctx = load_context(root)?;
    let allow = Allowlist::load(&root.join("crates/audit/allowlists"))?;
    let baseline = Baseline::load(&root.join(BASELINE_PATH))?;
    let manifest = load_manifest(root)?;
    let mut sources = Vec::new();
    for path in collect_rs_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src =
            fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        sources.push((rel, src));
    }
    Ok(scan_sources(&sources, &ctx, &allow, &baseline, &manifest))
}

/// Process exit code for a report under `--check` semantics.
///
/// * `0` — clean: no surviving findings, no stale baseline entries,
///   and (under `--strict`) no stale allowlist entries.
/// * `1` — violations survived the suppression planes, or the baseline
///   has stale entries (paid-off debt that must be removed), or
///   `strict` and the allowlists have stale entries.
///
/// (`2` is reserved by the CLI for usage/IO errors.)
pub fn exit_code(report: &ScanReport, strict: bool) -> i32 {
    let fail = !report.findings.is_empty()
        || !report.stale_baseline.is_empty()
        || (strict && !report.stale_allow.is_empty());
    i32::from(fail)
}

/// Renders the report as SARIF-shaped JSON (hand-rolled; the build is
/// offline and serde is not vendored). The scan-level counters that
/// SARIF has no standard slot for — per-rule suppressed counts, stale
/// suppression entries, files checked — ride in `runs[0].properties`.
pub fn to_json(report: &ScanReport) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"version\": \"2.1.0\",\n");
    s.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    s.push_str("  \"runs\": [\n    {\n");
    // tool.driver with the rule registry.
    s.push_str("      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"gauge-audit\",\n");
    s.push_str("          \"rules\": [");
    for (i, info) in rules::RULE_INFO.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            json_escape(info.id),
            json_escape(info.summary)
        ));
    }
    s.push_str("\n          ]\n        }\n      },\n");
    // results.
    s.push_str("      \"results\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n        {{\"ruleId\": \"{}\", \"level\": \"error\", \
             \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]}}",
            json_escape(f.rule),
            json_escape(&f.message),
            json_escape(&f.file),
            f.line
        ));
    }
    if !report.findings.is_empty() {
        s.push_str("\n      ");
    }
    s.push_str("],\n");
    // Non-standard scan counters.
    s.push_str("      \"properties\": {\n");
    s.push_str(&format!(
        "        \"filesChecked\": {},\n        \"suppressedByAllowlist\": {},\n        \
         \"suppressedByBaseline\": {},\n",
        report.files_checked, report.suppressed, report.baselined
    ));
    s.push_str("        \"suppressedByRule\": {");
    for (i, (rule, n)) in report.suppressed_by_rule.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n          \"{}\": {}", json_escape(rule), n));
    }
    if !report.suppressed_by_rule.is_empty() {
        s.push_str("\n        ");
    }
    s.push_str("},\n");
    s.push_str("        \"staleAllowlistEntries\": [");
    for (i, e) in report.stale_allow.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("\"{}\"", json_escape(e)));
    }
    s.push_str("],\n");
    s.push_str("        \"staleBaselineEntries\": [");
    for (i, e) in report.stale_baseline.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("\"{}\"", json_escape(e)));
    }
    s.push_str("]\n      }\n    }\n  ]\n}");
    s
}

/// Escapes a string for embedding in JSON.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]` — the scan root used when `--root` is not
/// given.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes_and_newlines() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn exit_code_reflects_findings_and_staleness() {
        let mut r = ScanReport::default();
        assert_eq!(exit_code(&r, false), 0);
        r.stale_allow.push("unwrap x.rs".into());
        assert_eq!(exit_code(&r, false), 0, "stale allowlist only warns");
        assert_eq!(exit_code(&r, true), 1, "--strict promotes it");
        r.stale_allow.clear();
        r.stale_baseline.push("unwrap x.rs".into());
        assert_eq!(exit_code(&r, false), 1, "stale baseline always fails");
        r.stale_baseline.clear();
        r.findings.push(Finding {
            rule: rules::UNWRAP,
            file: "x.rs".into(),
            line: 1,
            message: "m".into(),
        });
        assert_eq!(exit_code(&r, false), 1);
    }

    #[test]
    fn allowlist_matches_suffix_and_substring() {
        let allow = Allowlist::from_str_for_rule(
            rules::UNWRAP,
            "# comment\ncrates/libos-sim/src/shim.rs pf_seal\n",
        );
        let mut f = Finding {
            rule: rules::UNWRAP,
            file: "crates/libos-sim/src/shim.rs".into(),
            line: 192,
            message: ".expect(\"pf_seal without protected files\") in non-test code".into(),
        };
        assert!(allow.permits(&f));
        f.message = ".expect(\"pf_open ...\")".into();
        assert!(!allow.permits(&f), "substring must match");
        f.file = "crates/sgx-sim/src/machine.rs".into();
        assert!(!allow.permits(&f), "path suffix must match");
    }

    #[test]
    fn baseline_suppresses_and_tracks_staleness() {
        let ctx = RuleContext::from_sources(
            "pub const EWB_CYCLES: u64 = 12_000;",
            "pub struct Counters { pub epc_faults: u64 }",
        );
        let sources = vec![(
            "crates/sgx-sim/src/x.rs".to_string(),
            "fn f(v: &Option<u32>) -> u32 { v.unwrap() }".to_string(),
        )];
        let baseline = Baseline::from_str(
            "unwrap crates/sgx-sim/src/x.rs\nunwrap crates/sgx-sim/src/gone.rs\n",
        );
        let r = scan_sources(
            &sources,
            &ctx,
            &Allowlist::default(),
            &baseline,
            &CycleManifest::default(),
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.baselined, 1);
        assert_eq!(r.suppressed_by_rule.get("unwrap"), Some(&1));
        assert_eq!(r.stale_baseline, vec!["unwrap crates/sgx-sim/src/gone.rs"]);
        assert_eq!(exit_code(&r, false), 1, "stale baseline entry fails");
    }

    #[test]
    fn stale_allowlist_entry_is_reported_not_fatal() {
        let ctx = RuleContext::from_sources(
            "pub const EWB_CYCLES: u64 = 12_000;",
            "pub struct Counters { pub epc_faults: u64 }",
        );
        let sources = vec![(
            "crates/core/src/clean.rs".to_string(),
            "pub fn ok() -> u32 { 3 }".to_string(),
        )];
        let allow = Allowlist::from_str_for_rule(rules::UNWRAP, "crates/core/src/clean.rs\n");
        let r = scan_sources(
            &sources,
            &ctx,
            &allow,
            &Baseline::default(),
            &CycleManifest::default(),
        );
        assert_eq!(r.stale_allow, vec!["unwrap crates/core/src/clean.rs"]);
        assert_eq!(exit_code(&r, false), 0);
        assert_eq!(exit_code(&r, true), 1);
    }

    #[test]
    fn sarif_json_has_rules_results_and_properties() {
        let mut r = ScanReport {
            files_checked: 2,
            ..ScanReport::default()
        };
        r.suppressed_by_rule.insert("unwrap".into(), 3);
        r.findings.push(Finding {
            rule: rules::HASH_ITER,
            file: "crates/core/src/report.rs".into(),
            line: 7,
            message: "hash iter \"x\"".into(),
        });
        let j = to_json(&r);
        assert!(j.contains("\"version\": \"2.1.0\""));
        assert!(j.contains("\"name\": \"gauge-audit\""));
        assert!(j.contains("\"ruleId\": \"hash-iter\""));
        assert!(j.contains("\"startLine\": 7"));
        assert!(j.contains("\"suppressedByRule\""));
        assert!(j.contains("\"unwrap\": 3"));
        // Every registered rule appears in the driver rule table.
        for rule in rules::ALL_RULES {
            assert!(j.contains(&format!("\"id\": \"{rule}\"")), "{rule} missing");
        }
    }
}
