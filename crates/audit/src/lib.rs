//! `gauge-audit`: the workspace model-lint pass.
//!
//! A dependency-free static analyzer that keeps the simulator honest
//! about the paper constants and accounting identities it reproduces.
//! The dynamic half of the same contract is the `audit` cargo feature of
//! `sgx-sim`/`mem-sim` (runtime invariant checks); this crate is the
//! static half, run as `cargo run -p audit -- --check` in CI.
//!
//! See [`rules`] for what is enforced and why, and DESIGN.md's
//! "Invariant catalogue" for the full list with paper citations. Each
//! rule has an allowlist file under `crates/audit/allowlists/<rule>.allow`
//! for individually justified exceptions.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod lexer;
pub mod rules;

use rules::RuleContext;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (one of [`rules::ALL_RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable description; allowlist substrings match against it.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Result of a workspace scan.
#[derive(Debug, Clone, Default)]
pub struct ScanReport {
    /// Violations that survived the allowlists, in path order.
    pub findings: Vec<Finding>,
    /// Number of violations suppressed by allowlist entries.
    pub suppressed: usize,
    /// Number of `.rs` files checked.
    pub files_checked: usize,
}

/// One allowlist entry: findings in files ending with `path_suffix`
/// whose message contains `substring` (empty = any) are suppressed.
#[derive(Debug, Clone)]
struct AllowEntry {
    rule: String,
    path_suffix: String,
    substring: String,
}

/// The merged allowlists of every rule.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Loads `<rule>.allow` files from `dir`. Missing files mean an
    /// empty allowlist for that rule; unreadable ones are an error.
    pub fn load(dir: &Path) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for rule in rules::ALL_RULES {
            let path = dir.join(format!("{rule}.allow"));
            if !path.exists() {
                continue;
            }
            let text = fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let mut parts = line.split_whitespace();
                let path_suffix = parts.next().unwrap_or_default().to_string();
                let substring = parts.collect::<Vec<_>>().join(" ");
                entries.push(AllowEntry {
                    rule: rule.to_string(),
                    path_suffix,
                    substring,
                });
            }
        }
        Ok(Allowlist { entries })
    }

    /// Parses allowlist entries for `rule` from a string (for tests).
    pub fn from_str_for_rule(rule: &'static str, text: &str) -> Allowlist {
        let entries = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(|line| {
                let mut parts = line.split_whitespace();
                AllowEntry {
                    rule: rule.to_string(),
                    path_suffix: parts.next().unwrap_or_default().to_string(),
                    substring: parts.collect::<Vec<_>>().join(" "),
                }
            })
            .collect();
        Allowlist { entries }
    }

    /// Whether `f` is covered by an entry.
    pub fn permits(&self, f: &Finding) -> bool {
        self.entries.iter().any(|e| {
            e.rule == f.rule
                && f.file.ends_with(&e.path_suffix)
                && (e.substring.is_empty() || f.message.contains(&e.substring))
        })
    }
}

/// Directories never scanned: vendored stubs, build output, VCS state.
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", ".github"];

/// Recursively collects `.rs` files under `root`, skipping [`SKIP_DIRS`].
fn collect_rs_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            fs::read_dir(&dir).map_err(|e| format!("reading dir {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("reading dir {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Loads the canonical modules and builds the rule context from them.
pub fn load_context(root: &Path) -> Result<RuleContext, String> {
    let costs = root.join("crates/sgx-sim/src/costs.rs");
    let counters = root.join("crates/mem-sim/src/counters.rs");
    let costs_src =
        fs::read_to_string(&costs).map_err(|e| format!("reading {}: {e}", costs.display()))?;
    let counters_src = fs::read_to_string(&counters)
        .map_err(|e| format!("reading {}: {e}", counters.display()))?;
    let ctx = RuleContext::from_sources(&costs_src, &counters_src);
    if ctx.cost_values.is_empty() {
        return Err("no canonical cost constants found in sgx-sim::costs".to_string());
    }
    if ctx.counter_fields.is_empty() {
        return Err("no counter fields found in mem-sim::counters".to_string());
    }
    Ok(ctx)
}

/// Scans the workspace rooted at `root` with every rule, applying the
/// allowlists under `crates/audit/allowlists/`.
pub fn scan_workspace(root: &Path) -> Result<ScanReport, String> {
    let ctx = load_context(root)?;
    let allow = Allowlist::load(&root.join("crates/audit/allowlists"))?;
    let mut report = ScanReport::default();
    for path in collect_rs_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src =
            fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        report.files_checked += 1;
        for finding in rules::check_source(&rel, &src, &ctx) {
            if allow.permits(&finding) {
                report.suppressed += 1;
            } else {
                report.findings.push(finding);
            }
        }
    }
    Ok(report)
}

/// Process exit code for a report under `--check` semantics: nonzero
/// iff any violation survived the allowlists.
pub fn exit_code(report: &ScanReport) -> i32 {
    i32::from(!report.findings.is_empty())
}

/// Renders findings as a JSON array (hand-rolled; the build is offline
/// and serde is not vendored).
pub fn to_json(report: &ScanReport) -> String {
    let mut s = String::from("{\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.file),
            f.line,
            json_escape(&f.message)
        ));
    }
    if !report.findings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str(&format!(
        "],\n  \"suppressed\": {},\n  \"files_checked\": {}\n}}",
        report.suppressed, report.files_checked
    ));
    s
}

/// Escapes a string for embedding in JSON.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]` — the scan root used when `--root` is not
/// given.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes_and_newlines() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn exit_code_reflects_findings() {
        let mut r = ScanReport::default();
        assert_eq!(exit_code(&r), 0);
        r.findings.push(Finding {
            rule: rules::UNWRAP,
            file: "x.rs".into(),
            line: 1,
            message: "m".into(),
        });
        assert_eq!(exit_code(&r), 1);
    }

    #[test]
    fn allowlist_matches_suffix_and_substring() {
        let allow = Allowlist::from_str_for_rule(
            rules::UNWRAP,
            "# comment\ncrates/libos-sim/src/shim.rs pf_seal\n",
        );
        let mut f = Finding {
            rule: rules::UNWRAP,
            file: "crates/libos-sim/src/shim.rs".into(),
            line: 192,
            message: ".expect(\"pf_seal without protected files\") in non-test code".into(),
        };
        assert!(allow.permits(&f));
        f.message = ".expect(\"pf_open ...\")".into();
        assert!(!allow.permits(&f), "substring must match");
        f.file = "crates/sgx-sim/src/machine.rs".into();
        assert!(!allow.permits(&f), "path suffix must match");
    }
}
