//! A hand-rolled recursive-descent item parser over the [`crate::lexer`]
//! token stream.
//!
//! The semantic passes (see [`crate::passes`]) need more than a flat
//! token stream: which function a token belongs to, what type an `impl`
//! block targets, what names a file imports. This module builds exactly
//! that — a per-file item tree of functions (with body token spans and
//! `Type::name` qualification), flattened `use` declarations, and the
//! attribute-gated spans (`#[cfg(test)]`, `#[cfg(feature = "audit")]`,
//! `#[cfg(debug_assertions)]`) that the passes must skip.
//!
//! It is deliberately *not* a full Rust parser. Everything it recognizes
//! is item-shaped structure; expressions stay opaque token ranges. The
//! known approximations, which the passes inherit and DESIGN.md §13
//! documents:
//!
//! * Closure bodies are attributed to the enclosing `fn` (no separate
//!   nodes), so calls made through stored closures are edges out of the
//!   function that *defines* the closure, not the one that invokes it.
//! * `fn`-pointer types (`fn(u64) -> u64`) are distinguished from
//!   definitions by the missing name; higher-order calls through them
//!   are invisible to the call graph.
//! * Macro bodies are scanned as plain tokens; a call synthesized by
//!   `macro_rules!` expansion elsewhere is not seen.

use crate::lexer::{lex, Tok, Token};

/// One parsed function definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// Qualified name: `Type::name` inside an `impl`/`trait` block,
    /// otherwise the bare name.
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword (start of the signature).
    pub sig: usize,
    /// Token span of the body, from the opening `{` to the closing `}`
    /// inclusive; `None` for bodyless trait method declarations.
    pub body: Option<(usize, usize)>,
    /// Whether the definition sits inside a `#[cfg(test)]`/`#[test]`
    /// span.
    pub in_test: bool,
}

/// One flattened `use` binding: `use a::b::{C as D};` yields
/// `name = "D"`, `path = "a::b::C"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseDecl {
    /// The name the import binds in this file.
    pub name: String,
    /// The full `::`-joined source path.
    pub path: String,
}

/// The parsed representation of one source file.
#[derive(Debug, Clone)]
pub struct FileIr {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// The underlying token stream.
    pub tokens: Vec<Token>,
    /// Every function definition, in source order (nested `fn`s
    /// included).
    pub fns: Vec<FnDef>,
    /// Flattened `use` declarations.
    pub uses: Vec<UseDecl>,
    /// Token spans gated behind `#[cfg(test)]` / `#[test]`.
    pub test_spans: Vec<(usize, usize)>,
    /// Token spans gated behind `#[cfg(feature = "audit")]` or
    /// `#[cfg(debug_assertions)]` — compiled out of release builds, so
    /// the hot-path purity pass must not charge them.
    pub gated_spans: Vec<(usize, usize)>,
}

impl FileIr {
    /// Parses `src` into a file IR.
    pub fn parse(path: &str, src: &str) -> FileIr {
        let tokens = lex(src);
        let test_spans = attr_spans(&tokens, is_test_attr);
        let gated_spans = attr_spans(&tokens, is_gated_attr);
        let mut ir = FileIr {
            path: path.to_string(),
            tokens,
            fns: Vec::new(),
            uses: Vec::new(),
            test_spans,
            gated_spans,
        };
        let end = ir.tokens.len();
        parse_items(&mut ir, 0, end, None);
        ir
    }

    /// Whether token index `i` lies in a test-gated span.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| i >= s && i <= e)
    }

    /// Whether token index `i` lies in an audit/debug-gated span.
    pub fn in_gated(&self, i: usize) -> bool {
        self.gated_spans.iter().any(|&(s, e)| i >= s && i <= e)
    }

    /// The token ranges belonging to `fns[idx]` itself: its body span
    /// minus the body spans of any function nested inside it, so a
    /// token is attributed to exactly one function.
    pub fn own_ranges(&self, idx: usize) -> Vec<(usize, usize)> {
        let Some((start, end)) = self.fns[idx].body else {
            return Vec::new();
        };
        // Bodies of other fns strictly inside this one, in order.
        let mut holes: Vec<(usize, usize)> = self
            .fns
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != idx)
            .filter_map(|(_, f)| f.body)
            .filter(|&(s, e)| s > start && e < end)
            .collect();
        holes.sort_unstable();
        let mut out = Vec::new();
        let mut cur = start;
        for (hs, he) in holes {
            if hs > cur {
                out.push((cur, hs - 1));
            }
            cur = cur.max(he + 1);
        }
        if cur <= end {
            out.push((cur, end));
        }
        out
    }

    /// The innermost function whose body contains token index `i`.
    pub fn fn_at(&self, i: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.body.is_some_and(|(s, e)| i >= s && i <= e))
            .min_by_key(|(_, f)| {
                let (s, e) = f.body.unwrap_or((0, usize::MAX));
                e - s
            })
            .map(|(j, _)| j)
    }
}

/// Parses the item-level structure of `toks[start..end)`, attributing
/// functions to `impl_ty` when inside an `impl`/`trait` block.
fn parse_items(ir: &mut FileIr, start: usize, end: usize, impl_ty: Option<&str>) {
    let mut i = start;
    while i < end {
        let Some(t) = ir.tokens.get(i) else { break };
        match &t.tok {
            Tok::Ident(kw) if kw == "impl" || kw == "trait" => {
                let (ty, body) = parse_impl_header(&ir.tokens, i + 1, end, kw == "trait");
                match body {
                    Some((open, close)) => {
                        parse_items(ir, open + 1, close, ty.as_deref());
                        i = close + 1;
                    }
                    None => i += 1,
                }
            }
            Tok::Ident(kw) if kw == "mod" => {
                // `mod name { ... }` — recurse without impl context;
                // `mod name;` — nothing to do.
                match find_open_or_semi(&ir.tokens, i + 1, end) {
                    Some(Delim::Brace(open)) => match match_close(&ir.tokens, open, '{', '}') {
                        Some(close) => {
                            parse_items(ir, open + 1, close, None);
                            i = close + 1;
                        }
                        None => i = open + 1,
                    },
                    Some(Delim::Semi(s)) => i = s + 1,
                    None => i += 1,
                }
            }
            Tok::Ident(kw) if kw == "fn" => {
                // Guard against `fn`-pointer types: a definition is
                // always followed by its name.
                let Some(Tok::Ident(name)) = ir.tokens.get(i + 1).map(|t| &t.tok) else {
                    i += 1;
                    continue;
                };
                let name = name.clone();
                let line = t.line;
                let qual = match impl_ty {
                    Some(ty) => format!("{ty}::{name}"),
                    None => name.clone(),
                };
                let in_test = ir.in_test(i);
                match find_open_or_semi(&ir.tokens, i + 2, end) {
                    Some(Delim::Brace(open)) => {
                        let close = match_close(&ir.tokens, open, '{', '}').unwrap_or(end - 1);
                        ir.fns.push(FnDef {
                            name,
                            qual,
                            line,
                            sig: i,
                            body: Some((open, close)),
                            in_test,
                        });
                        // Nested `fn`s get bare-name qualification.
                        parse_items(ir, open + 1, close, None);
                        i = close + 1;
                    }
                    Some(Delim::Semi(s)) => {
                        ir.fns.push(FnDef {
                            name,
                            qual,
                            line,
                            sig: i,
                            body: None,
                            in_test,
                        });
                        i = s + 1;
                    }
                    None => i += 1,
                }
            }
            Tok::Ident(kw) if kw == "use" => {
                let semi = parse_use(ir, i + 1, end);
                i = semi + 1;
            }
            _ => i += 1,
        }
    }
}

/// Where an item's header ends: at its body's `{` or at a `;`.
enum Delim {
    Brace(usize),
    Semi(usize),
}

/// Scans forward from `i` for the first `{` or `;` at top level — the
/// end of an item header. Parenthesized signatures are skipped wholesale
/// so a `;` inside them (none in valid Rust, but cheap to guard) cannot
/// cut the scan short.
fn find_open_or_semi(toks: &[Token], mut i: usize, end: usize) -> Option<Delim> {
    while i < end {
        match toks.get(i)?.tok {
            Tok::Punct('(') => i = match_close(toks, i, '(', ')')? + 1,
            Tok::Punct('{') => return Some(Delim::Brace(i)),
            Tok::Punct(';') => return Some(Delim::Semi(i)),
            _ => i += 1,
        }
    }
    None
}

/// Parses an `impl`/`trait` header starting after the keyword: skips
/// generic parameters, reads the target type (for `impl Trait for Type`,
/// the type after `for`), and finds the body braces.
fn parse_impl_header(
    toks: &[Token],
    mut i: usize,
    end: usize,
    is_trait: bool,
) -> (Option<String>, Option<(usize, usize)>) {
    // Generic parameter list.
    if toks.get(i).map(|t| &t.tok) == Some(&Tok::Punct('<')) {
        i = skip_angles(toks, i, end);
    }
    let mut ty: Option<String> = None;
    while i < end {
        match &toks[i].tok {
            Tok::Ident(s) if s == "for" && !is_trait => {
                ty = None; // `impl Trait for Type`: the type follows.
                i += 1;
            }
            Tok::Ident(s) if s == "where" => {
                // Bounds until the body; the type is already read.
                i += 1;
            }
            Tok::Ident(s) => {
                ty = Some(s.clone());
                i += 1;
                if is_trait {
                    // A trait's name is the single ident after `trait`.
                    break;
                }
            }
            Tok::Punct('<') => i = skip_angles(toks, i, end),
            Tok::Punct('{') => break,
            _ => i += 1,
        }
    }
    // Find the body (for traits we may not be at `{` yet: supertrait
    // bounds, where clauses).
    while i < end && toks[i].tok != Tok::Punct('{') {
        i += 1;
    }
    if i >= end {
        return (ty, None);
    }
    match match_close(toks, i, '{', '}') {
        Some(close) => (ty, Some((i, close))),
        None => (ty, None),
    }
}

/// Skips a balanced `<...>` starting at the `<` at `i`; `->` arrows
/// inside bounds do not close the angle bracket.
fn skip_angles(toks: &[Token], mut i: usize, end: usize) -> usize {
    let mut depth = 0i64;
    while i < end {
        match toks[i].tok {
            Tok::Punct('<') => depth += 1,
            Tok::Punct('>') => {
                let arrow = i > 0 && toks[i - 1].tok == Tok::Punct('-');
                if !arrow {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Parses a `use` declaration starting after the keyword; pushes the
/// flattened bindings and returns the index of the terminating `;`.
fn parse_use(ir: &mut FileIr, start: usize, end: usize) -> usize {
    // Find the `;` first (groups contain no semicolons).
    let mut semi = start;
    while semi < end && ir.tokens[semi].tok != Tok::Punct(';') {
        semi += 1;
    }
    let mut decls = Vec::new();
    flatten_use(&ir.tokens[start..semi], String::new(), &mut decls);
    ir.uses.extend(decls);
    semi
}

/// Recursively flattens a use tree (`a::b::{c, d as e, f::*}`) into
/// bindings, given the `prefix` path accumulated so far.
fn flatten_use(toks: &[Token], prefix: String, out: &mut Vec<UseDecl>) {
    // Split the token run on top-level commas.
    let mut depth = 0i64;
    let mut seg_start = 0usize;
    let mut groups: Vec<(usize, usize)> = Vec::new();
    for (k, t) in toks.iter().enumerate() {
        match t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => depth -= 1,
            Tok::Punct(',') if depth == 0 => {
                groups.push((seg_start, k));
                seg_start = k + 1;
            }
            _ => {}
        }
    }
    groups.push((seg_start, toks.len()));
    for (s, e) in groups {
        let part = &toks[s..e];
        if part.is_empty() {
            continue;
        }
        // Walk the path until a group `{`, an alias `as`, or the end.
        let mut path: Vec<String> = if prefix.is_empty() {
            Vec::new()
        } else {
            vec![prefix.clone()]
        };
        let mut k = 0usize;
        let mut alias: Option<String> = None;
        while k < part.len() {
            match &part[k].tok {
                Tok::Ident(seg) if seg == "as" => {
                    if let Some(Tok::Ident(a)) = part.get(k + 1).map(|t| &t.tok) {
                        alias = Some(a.clone());
                    }
                    break;
                }
                Tok::Ident(seg) => {
                    path.push(seg.clone());
                    k += 1;
                }
                Tok::Punct(':') => k += 1,
                Tok::Punct('{') => {
                    // Group: recurse with the accumulated prefix.
                    let inner_end = part.len() - 1; // its matching `}`
                    flatten_use(&part[k + 1..inner_end], path.join("::"), out);
                    path.clear();
                    break;
                }
                Tok::Punct('*') => {
                    // Glob: record under `*` so passes can at least see
                    // the source module.
                    out.push(UseDecl {
                        name: "*".to_string(),
                        path: format!("{}::*", path.join("::")),
                    });
                    path.clear();
                    break;
                }
                _ => k += 1,
            }
        }
        if let Some(last) = path.last().cloned() {
            out.push(UseDecl {
                name: alias.unwrap_or(last),
                path: path.join("::"),
            });
        }
    }
}

/// Token-index spans of items/statements behind attributes matching
/// `pred` (over the attribute's identifier list).
fn attr_spans(tokens: &[Token], pred: fn(&[&str]) -> bool) -> Vec<(usize, usize)> {
    let mut spans: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let Some(attr_end) = attr_end_if(tokens, i, pred) else {
            i += 1;
            continue;
        };
        // Skip further attributes on the same item.
        let mut j = attr_end + 1;
        while j + 1 < tokens.len()
            && tokens[j].tok == Tok::Punct('#')
            && tokens[j + 1].tok == Tok::Punct('[')
        {
            j = match match_close(tokens, j + 1, '[', ']') {
                Some(e) => e + 1,
                None => break,
            };
        }
        // The gated item/statement extends to its matching `}` or `;`.
        let mut end = tokens.len().saturating_sub(1);
        let mut k = j;
        while k < tokens.len() {
            match tokens[k].tok {
                Tok::Punct(';') => {
                    end = k;
                    break;
                }
                Tok::Punct('{') => {
                    end = match_close(tokens, k, '{', '}').unwrap_or(end);
                    // A trailing `;` (statement position) belongs to it.
                    if tokens.get(end + 1).map(|t| &t.tok) == Some(&Tok::Punct(';')) {
                        end += 1;
                    }
                    break;
                }
                _ => k += 1,
            }
        }
        spans.push((i, end));
        i = end + 1;
    }
    spans
}

/// If tokens at `i` start a `#[...]` attribute whose identifier list
/// satisfies `pred`, returns the index of its closing `]`.
fn attr_end_if(tokens: &[Token], i: usize, pred: fn(&[&str]) -> bool) -> Option<usize> {
    if tokens[i].tok != Tok::Punct('#') || tokens.get(i + 1)?.tok != Tok::Punct('[') {
        return None;
    }
    let close = match_close(tokens, i + 1, '[', ']')?;
    let idents: Vec<&str> = tokens[i + 2..close]
        .iter()
        .filter_map(|t| match &t.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    pred(&idents).then_some(close)
}

/// `#[test]` / `#[cfg(test)]`-style attributes (never `cfg(not(test))`).
fn is_test_attr(idents: &[&str]) -> bool {
    let Some(&first) = idents.first() else {
        return false;
    };
    first == "test" || (first == "cfg" && idents.contains(&"test") && !idents.contains(&"not"))
}

/// `#[cfg(feature = "audit")]` / `#[cfg(debug_assertions)]` — code
/// compiled out of release builds (never the `not(...)` forms).
fn is_gated_attr(idents: &[&str]) -> bool {
    let Some(&first) = idents.first() else {
        return false;
    };
    first == "cfg"
        && !idents.contains(&"not")
        && (idents.contains(&"debug_assertions") || idents.contains(&"feature"))
}

/// Index of the punctuation closing the `open` at `start` (handles
/// nesting); `None` when unbalanced.
pub(crate) fn match_close(toks: &[Token], start: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(start) {
        if t.tok == Tok::Punct(open) {
            depth += 1;
        } else if t.tok == Tok::Punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_free_and_impl_fns_with_qualification() {
        let ir = FileIr::parse(
            "x.rs",
            "fn free() { a(); }\n\
             impl Machine { pub fn access(&mut self) -> u64 { self.touch() } }\n\
             impl Emitter for Table { fn render(&self) -> String { body() } }",
        );
        let quals: Vec<&str> = ir.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, vec!["free", "Machine::access", "Table::render"]);
        assert!(ir.fns.iter().all(|f| f.body.is_some()));
    }

    #[test]
    fn trait_decls_and_default_methods() {
        let ir = FileIr::parse(
            "x.rs",
            "trait Emitter { fn format(&self) -> u8; fn emit(&self) { self.format(); } }",
        );
        assert_eq!(ir.fns.len(), 2);
        assert_eq!(ir.fns[0].qual, "Emitter::format");
        assert!(ir.fns[0].body.is_none());
        assert_eq!(ir.fns[1].qual, "Emitter::emit");
        assert!(ir.fns[1].body.is_some());
    }

    #[test]
    fn fn_pointer_types_are_not_definitions() {
        let ir = FileIr::parse("x.rs", "fn f(cb: fn(u64) -> u64) -> u64 { cb(1) }");
        assert_eq!(ir.fns.len(), 1);
        assert_eq!(ir.fns[0].name, "f");
    }

    #[test]
    fn nested_fns_get_own_ranges() {
        let ir = FileIr::parse(
            "x.rs",
            "fn outer() { fn inner() { danger(); } inner(); safe(); }",
        );
        assert_eq!(ir.fns.len(), 2);
        let outer = ir.fns.iter().position(|f| f.name == "outer").unwrap();
        let ranges = ir.own_ranges(outer);
        let own_idents: Vec<String> = ranges
            .iter()
            .flat_map(|&(s, e)| ir.tokens[s..=e].iter())
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert!(own_idents.contains(&"safe".to_string()));
        assert!(own_idents.contains(&"inner".to_string()), "the call site");
        assert!(
            !own_idents.contains(&"danger".to_string()),
            "inner's body is excluded from outer's own range"
        );
    }

    #[test]
    fn generic_impl_with_fn_bound_parses() {
        let ir = FileIr::parse(
            "x.rs",
            "impl<T: Fn() -> u64> Holder<T> { fn call(&self) -> u64 { (self.f)() } }",
        );
        assert_eq!(ir.fns.len(), 1);
        assert_eq!(ir.fns[0].qual, "Holder::call");
    }

    #[test]
    fn impl_trait_for_type_uses_the_type() {
        let ir = FileIr::parse("x.rs", "impl Display for CellKey { fn fmt(&self) {} }");
        assert_eq!(ir.fns[0].qual, "CellKey::fmt");
    }

    #[test]
    fn use_decls_flatten_groups_and_aliases() {
        let ir = FileIr::parse(
            "x.rs",
            "use std::collections::{HashMap, BTreeMap as Sorted};\nuse crate::io::ArtifactIo;",
        );
        assert!(ir.uses.contains(&UseDecl {
            name: "HashMap".into(),
            path: "std::collections::HashMap".into()
        }));
        assert!(ir.uses.contains(&UseDecl {
            name: "Sorted".into(),
            path: "std::collections::BTreeMap".into()
        }));
        assert!(ir.uses.contains(&UseDecl {
            name: "ArtifactIo".into(),
            path: "crate::io::ArtifactIo".into()
        }));
    }

    #[test]
    fn audit_gated_statement_span_is_detected() {
        let src = "fn f() {\n#[cfg(feature = \"audit\")]\nlet c0 = self.counters;\n\
                   #[cfg(feature = \"audit\")]\n{ assert_eq!(a, b); }\nwork();\n}";
        let ir = FileIr::parse("x.rs", src);
        let assert_idx = ir
            .tokens
            .iter()
            .position(|t| t.tok == Tok::Ident("assert_eq".into()))
            .unwrap();
        let c0_idx = ir
            .tokens
            .iter()
            .position(|t| t.tok == Tok::Ident("c0".into()))
            .unwrap();
        let work_idx = ir
            .tokens
            .iter()
            .position(|t| t.tok == Tok::Ident("work".into()))
            .unwrap();
        assert!(ir.in_gated(assert_idx));
        assert!(ir.in_gated(c0_idx));
        assert!(!ir.in_gated(work_idx));
    }

    #[test]
    fn cfg_not_feature_is_not_gated() {
        let ir = FileIr::parse(
            "x.rs",
            "#[cfg(not(feature = \"audit\"))]\nfn always() { hot(); }",
        );
        let hot_idx = ir
            .tokens
            .iter()
            .position(|t| t.tok == Tok::Ident("hot".into()))
            .unwrap();
        assert!(!ir.in_gated(hot_idx));
    }

    #[test]
    fn fn_at_picks_innermost() {
        let ir = FileIr::parse("x.rs", "fn outer() { fn inner() { x(); } }");
        let x_idx = ir
            .tokens
            .iter()
            .position(|t| t.tok == Tok::Ident("x".into()))
            .unwrap();
        let idx = ir.fn_at(x_idx).unwrap();
        assert_eq!(ir.fns[idx].name, "inner");
    }
}
