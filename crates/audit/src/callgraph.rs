//! The workspace-wide call-reachability graph the semantic passes run
//! on.
//!
//! Nodes are the function definitions collected by [`crate::parser`];
//! edges are name-matched call sites. Resolution is deliberately an
//! *over-approximation*: a call site `foo(...)` or `.foo(...)` creates
//! an edge to **every** workspace function named `foo` (and a
//! `Type::foo(...)` path call to every `foo` defined in an impl of
//! `Type`). That errs toward reporting — a hot-path purity finding in a
//! same-named function that is not actually on the path is a false
//! positive to allowlist, never a silent miss. The converse edges the
//! graph *cannot* see (calls through stored closures, `fn`-pointer
//! fields, or macro-synthesized names) are the documented
//! false-negative set; see DESIGN.md §13.
//!
//! Calls to names with no workspace definition (std, vendored stubs)
//! produce no edges, but the raw call-site list per function is kept so
//! pattern passes (allocation, panic, lock detection) can inspect them.

use crate::lexer::Tok;
use crate::parser::FileIr;
use std::collections::{BTreeMap, BTreeSet};

/// A function node: `(file index, fn index within that file)`.
pub type NodeId = (usize, usize);

/// One extracted call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Callee name: the bare identifier before `(`.
    pub name: String,
    /// The path segment immediately before the name (`Epc` in
    /// `Epc::touch(..)`, empty for free and method calls).
    pub qualifier: String,
    /// Whether this is a method call (`.name(...)`).
    pub method: bool,
    /// Whether this is a macro invocation (`name!(...)`).
    pub macro_call: bool,
    /// 1-based source line.
    pub line: u32,
}

/// The call graph over a set of parsed files.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Call sites per node, in source order.
    pub calls: BTreeMap<NodeId, Vec<CallSite>>,
    /// Definitions by bare name.
    by_name: BTreeMap<String, Vec<NodeId>>,
    /// Definitions by `Type::name` qualification.
    by_qual: BTreeMap<String, Vec<NodeId>>,
    /// Qualifiers the workspace itself defines: impl'd type names, file
    /// stems (module names), and the path keywords. A qualified call
    /// whose qualifier is *not* in this set targets std or a vendored
    /// stub (`Vec::new`, `HashMap::default`) and produces no edges —
    /// falling back to bare-name matching there would wire every
    /// constructor in the workspace into every caller.
    known_quals: BTreeSet<String>,
}

/// Keywords and control-flow identifiers that look like calls
/// (`if (..)`, `while (..)`) but are not.
const NON_CALLS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "move", "fn", "let", "mut", "ref", "where", "impl", "dyn", "unsafe", "async", "await", "use",
    "pub", "crate", "self", "Self", "super", "mod", "const", "static", "type", "struct", "enum",
    "trait", "union",
];

impl CallGraph {
    /// Builds the graph from parsed files, skipping test-gated spans
    /// and `#[cfg(feature = "audit")]`/`#[cfg(debug_assertions)]`-gated
    /// code (compiled out of release, so its calls are not real edges
    /// for release-behavior passes).
    pub fn build(files: &[FileIr]) -> CallGraph {
        let mut g = CallGraph::default();
        for kw in ["self", "Self", "crate", "super"] {
            g.known_quals.insert(kw.to_string());
        }
        for (fi, file) in files.iter().enumerate() {
            if let Some(stem) = file
                .path
                .rsplit('/')
                .next()
                .and_then(|n| n.strip_suffix(".rs"))
            {
                g.known_quals.insert(stem.to_string());
            }
            for (ni, f) in file.fns.iter().enumerate() {
                if f.in_test || gated_fn(file, f) {
                    continue;
                }
                g.by_name.entry(f.name.clone()).or_default().push((fi, ni));
                g.by_qual.entry(f.qual.clone()).or_default().push((fi, ni));
                if let Some((ty, _)) = f.qual.split_once("::") {
                    g.known_quals.insert(ty.to_string());
                }
            }
        }
        for (fi, file) in files.iter().enumerate() {
            for (ni, f) in file.fns.iter().enumerate() {
                if f.in_test || f.body.is_none() || gated_fn(file, f) {
                    continue;
                }
                let mut sites = Vec::new();
                for (s, e) in file.own_ranges(ni) {
                    extract_calls(file, s, e, &mut sites);
                }
                g.calls.insert((fi, ni), sites);
            }
        }
        g
    }

    /// Nodes defined under the bare `name`.
    pub fn defs_named(&self, name: &str) -> &[NodeId] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Nodes defined under the `Type::name` qualification.
    pub fn defs_qualified(&self, qual: &str) -> &[NodeId] {
        self.by_qual.get(qual).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Resolves one call site to candidate definitions, applying the
    /// `accept` filter (typically a file-scope restriction).
    fn resolve(&self, site: &CallSite, accept: &dyn Fn(NodeId) -> bool) -> Vec<NodeId> {
        if site.macro_call {
            return Vec::new();
        }
        // `Type::name(..)`: prefer the qualified match when one exists.
        if !site.qualifier.is_empty() {
            let qual = format!("{}::{}", site.qualifier, site.name);
            let hits: Vec<NodeId> = self
                .defs_qualified(&qual)
                .iter()
                .copied()
                .filter(|&n| accept(n))
                .collect();
            if !hits.is_empty() {
                return hits;
            }
            // A workspace-qualified call with no exact match (module
            // path like `costs::lookup(..)`, or a trait method under a
            // known type) still matches by bare name below; a call
            // qualified by a type the workspace never defines
            // (`Vec::new`, `HashMap::default`) targets std and has no
            // workspace edges at all.
            if !self.known_quals.contains(&site.qualifier) {
                return Vec::new();
            }
        }
        self.defs_named(&site.name)
            .iter()
            .copied()
            .filter(|&n| accept(n))
            .collect()
    }

    /// The transitive closure of nodes reachable from `roots` through
    /// call edges, `roots` included. `accept` restricts which
    /// definitions participate (e.g. only simulator crates).
    pub fn reachable_from(
        &self,
        roots: &[NodeId],
        accept: &dyn Fn(NodeId) -> bool,
    ) -> BTreeSet<NodeId> {
        let mut seen: BTreeSet<NodeId> = roots.iter().copied().collect();
        let mut work: Vec<NodeId> = roots.to_vec();
        while let Some(n) = work.pop() {
            let Some(sites) = self.calls.get(&n) else {
                continue;
            };
            for site in sites {
                for callee in self.resolve(site, accept) {
                    if seen.insert(callee) {
                        work.push(callee);
                    }
                }
            }
        }
        seen
    }

    /// All nodes from which any node in `sinks` is reachable (the
    /// reverse closure), `sinks` included.
    pub fn reaching(
        &self,
        sinks: &BTreeSet<NodeId>,
        accept: &dyn Fn(NodeId) -> bool,
    ) -> BTreeSet<NodeId> {
        // Materialize forward edges once, then invert.
        let mut rev: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for (&caller, sites) in &self.calls {
            for site in sites {
                for callee in self.resolve(site, accept) {
                    rev.entry(callee).or_default().push(caller);
                }
            }
        }
        let mut seen: BTreeSet<NodeId> = sinks.clone();
        let mut work: Vec<NodeId> = sinks.iter().copied().collect();
        while let Some(n) = work.pop() {
            if let Some(callers) = rev.get(&n) {
                for &c in callers {
                    if seen.insert(c) {
                        work.push(c);
                    }
                }
            }
        }
        seen
    }
}

/// Whether `f`'s body sits inside a compile-gated span
/// (`#[cfg(feature = "audit")]`, `#[cfg(debug_assertions)]`).
fn gated_fn(file: &FileIr, f: &crate::parser::FnDef) -> bool {
    f.body.is_some_and(|(s, _)| file.in_gated(s))
}

/// Extracts call sites from the token range `[s, e]` of `file`,
/// skipping compile-gated spans.
fn extract_calls(file: &FileIr, s: usize, e: usize, out: &mut Vec<CallSite>) {
    let toks = &file.tokens;
    let mut i = s;
    while i <= e {
        if file.in_gated(i) {
            i += 1;
            continue;
        }
        let Tok::Ident(name) = &toks[i].tok else {
            i += 1;
            continue;
        };
        if NON_CALLS.contains(&name.as_str()) {
            i += 1;
            continue;
        }
        let next = toks.get(i + 1).map(|t| &t.tok);
        // Macro invocation: `name!(..)` / `name![..]` / `name!{..}`.
        if next == Some(&Tok::Punct('!')) {
            let after = toks.get(i + 2).map(|t| &t.tok);
            if matches!(
                after,
                Some(&Tok::Punct('(')) | Some(&Tok::Punct('[')) | Some(&Tok::Punct('{'))
            ) {
                out.push(CallSite {
                    name: name.clone(),
                    qualifier: String::new(),
                    method: false,
                    macro_call: true,
                    line: toks[i].line,
                });
                i += 2;
                continue;
            }
        }
        // Call: `name(` or `name::<T>(`.
        let call_paren = match next {
            Some(&Tok::Punct('(')) => true,
            Some(&Tok::Punct(':')) => {
                // Turbofish `name::<..>(`: only when followed by `<`.
                toks.get(i + 2).map(|t| &t.tok) == Some(&Tok::Punct(':'))
                    && toks.get(i + 3).map(|t| &t.tok) == Some(&Tok::Punct('<'))
            }
            _ => false,
        };
        if call_paren {
            let method = i >= 1 && toks[i - 1].tok == Tok::Punct('.');
            // Qualifier: `Seg :: name` (two colons immediately before).
            let qualifier = if !method
                && i >= 3
                && toks[i - 1].tok == Tok::Punct(':')
                && toks[i - 2].tok == Tok::Punct(':')
            {
                match &toks[i - 3].tok {
                    Tok::Ident(q) => q.clone(),
                    _ => String::new(),
                }
            } else {
                String::new()
            };
            out.push(CallSite {
                name: name.clone(),
                qualifier,
                method,
                macro_call: false,
                line: toks[i].line,
            });
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files(srcs: &[(&str, &str)]) -> Vec<FileIr> {
        srcs.iter().map(|(p, s)| FileIr::parse(p, s)).collect()
    }

    #[test]
    fn free_method_and_path_calls_are_extracted() {
        let fs = files(&[(
            "a.rs",
            "fn caller() { helper(); obj.method_x(); Epc::touch(k); vec![1]; }",
        )]);
        let g = CallGraph::build(&fs);
        let sites = g.calls.get(&(0, 0)).unwrap();
        let names: Vec<&str> = sites.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["helper", "method_x", "touch", "vec"]);
        assert!(sites[1].method);
        assert_eq!(sites[2].qualifier, "Epc");
        assert!(sites[3].macro_call);
    }

    #[test]
    fn reachability_follows_method_name_matches() {
        let fs = files(&[
            (
                "a.rs",
                "impl Machine { fn access(&mut self) { self.probe(); } }",
            ),
            (
                "b.rs",
                "impl Tlb { fn probe(&mut self) { self.fill(); } fn fill(&mut self) {} }\n\
                 fn unrelated() {}",
            ),
        ]);
        let g = CallGraph::build(&fs);
        let roots = g.defs_qualified("Machine::access").to_vec();
        let reach = g.reachable_from(&roots, &|_| true);
        assert!(reach.contains(&(1, 0)), "probe reachable");
        assert!(reach.contains(&(1, 1)), "fill reachable transitively");
        assert_eq!(reach.len(), 3, "unrelated is not reachable");
    }

    #[test]
    fn qualified_call_prefers_matching_impl() {
        let fs = files(&[
            ("a.rs", "fn caller() { Epc::touch(1); }"),
            (
                "b.rs",
                "impl Epc { fn touch(&mut self) {} }\nimpl PageTable { fn touch(&mut self) { boom(); } }\nfn boom() {}",
            ),
        ]);
        let g = CallGraph::build(&fs);
        let reach = g.reachable_from(g.defs_named("caller"), &|_| true);
        assert!(reach.contains(&(1, 0)), "Epc::touch matched");
        assert!(!reach.contains(&(1, 1)), "PageTable::touch not matched");
        assert!(!reach.contains(&(1, 2)));
    }

    #[test]
    fn unqualified_method_call_overapproximates_to_all_impls() {
        let fs = files(&[
            ("a.rs", "fn caller(x: &mut Thing) { x.touch(); }"),
            (
                "b.rs",
                "impl Epc { fn touch(&mut self) {} }\nimpl PageTable { fn touch(&mut self) {} }",
            ),
        ]);
        let g = CallGraph::build(&fs);
        let reach = g.reachable_from(g.defs_named("caller"), &|_| true);
        assert!(reach.contains(&(1, 0)) && reach.contains(&(1, 1)));
    }

    #[test]
    fn reverse_reachability_finds_emitting_callers() {
        let fs = files(&[
            ("emit.rs", "impl Table { fn emit(&self) {} }"),
            (
                "use.rs",
                "fn aggregates() { build(); } fn build() { t.emit(); } fn innocent() {}",
            ),
        ]);
        let g = CallGraph::build(&fs);
        let sinks: BTreeSet<NodeId> = g.defs_named("emit").iter().copied().collect();
        let reaching = g.reaching(&sinks, &|_| true);
        assert!(reaching.contains(&(1, 0)), "aggregates reaches emit");
        assert!(reaching.contains(&(1, 1)), "build reaches emit");
        assert!(!reaching.contains(&(1, 2)), "innocent does not");
    }

    #[test]
    fn test_fns_are_excluded_from_the_graph() {
        let fs = files(&[(
            "a.rs",
            "#[cfg(test)]\nmod tests { fn t() { target(); } }\nfn target() {}",
        )]);
        let g = CallGraph::build(&fs);
        let sinks: BTreeSet<NodeId> = g.defs_named("target").iter().copied().collect();
        let reaching = g.reaching(&sinks, &|_| true);
        assert_eq!(reaching.len(), 1, "only target itself");
    }

    #[test]
    fn control_flow_keywords_are_not_calls() {
        let fs = files(&[(
            "a.rs",
            "fn f(x: u64) { if (x > 0) { g(); } while (h()) {} }",
        )]);
        let g = CallGraph::build(&fs);
        let names: Vec<&str> = g.calls[&(0, 0)].iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["g", "h"]);
    }
}
