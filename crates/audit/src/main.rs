//! Command-line entry point:
//! `gauge-audit [--check] [--json] [--strict] [--root DIR] [--explain RULE]`.
//!
//! * `--check` — exit nonzero when any violation survives the
//!   suppression planes or the baseline has stale entries (CI mode).
//! * `--json` — SARIF-shaped machine-readable output.
//! * `--strict` — also fail `--check` on stale *allowlist* entries
//!   (they only warn by default).
//! * `--root DIR` — scan the workspace rooted at `DIR` instead of
//!   discovering it from the current directory.
//! * `--explain RULE` — print the long-form explanation for a rule id
//!   and exit.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

/// The `--help` text, including the exit-code contract.
const HELP: &str = "\
usage: gauge-audit [--check] [--json] [--strict] [--root DIR] [--explain RULE]

  --check         exit nonzero on surviving violations or stale baseline
                  entries (CI mode)
  --json          SARIF-shaped JSON on stdout (runs[0].properties carries
                  per-rule suppressed counts and stale suppression entries)
  --strict        with --check, also fail on stale allowlist entries
  --root DIR      workspace root (default: discovered from cwd)
  --explain RULE  print what a rule enforces, why, and how to suppress

exit codes:
  0  clean (or --check not given)
  1  violations survived the allowlists/baseline, or the baseline has
     stale entries, or --strict and an allowlist entry matched nothing
  2  usage or I/O error";

fn main() -> ExitCode {
    let mut check = false;
    let mut json = false;
    let mut strict = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--json" => json = true,
            "--strict" => strict = true,
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => {
                    eprintln!("gauge-audit: --root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--explain" => {
                let Some(rule) = args.next() else {
                    eprintln!("gauge-audit: --explain requires a rule id");
                    return ExitCode::from(2);
                };
                let Some(info) = audit::rules::rule_info(&rule) else {
                    eprintln!(
                        "gauge-audit: unknown rule `{rule}` (rules: {})",
                        audit::rules::ALL_RULES.join(", ")
                    );
                    return ExitCode::from(2);
                };
                println!("{} — {}\n\n{}", info.id, info.summary, info.explain);
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{HELP}");
                println!("\nrules: {}", audit::rules::ALL_RULES.join(", "));
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("gauge-audit: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| audit::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("gauge-audit: no workspace root found (try --root DIR)");
            return ExitCode::from(2);
        }
    };
    let report = match audit::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gauge-audit: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", audit::to_json(&report));
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        for e in &report.stale_baseline {
            eprintln!("gauge-audit: stale baseline entry (remove it): {e}");
        }
        for e in &report.stale_allow {
            eprintln!("gauge-audit: stale allowlist entry (matched nothing): {e}");
        }
        eprintln!(
            "gauge-audit: {} violation(s), {} suppressed by allowlists, {} baselined, \
             {} files checked",
            report.findings.len(),
            report.suppressed,
            report.baselined,
            report.files_checked
        );
    }
    if check {
        ExitCode::from(audit::exit_code(&report, strict) as u8)
    } else {
        ExitCode::SUCCESS
    }
}
