//! Command-line entry point: `gauge-audit [--check] [--json] [--root DIR]`.
//!
//! * `--check` — exit nonzero when any violation survives the
//!   allowlists (the CI mode).
//! * `--json` — machine-readable output instead of human lines.
//! * `--root DIR` — scan the workspace rooted at `DIR` instead of
//!   discovering it from the current directory.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut check = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => {
                    eprintln!("gauge-audit: --root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: gauge-audit [--check] [--json] [--root DIR]");
                println!("rules: {}", audit::rules::ALL_RULES.join(", "));
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("gauge-audit: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| audit::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("gauge-audit: no workspace root found (try --root DIR)");
            return ExitCode::from(2);
        }
    };
    let report = match audit::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gauge-audit: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", audit::to_json(&report));
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        eprintln!(
            "gauge-audit: {} violation(s), {} suppressed by allowlists, {} files checked",
            report.findings.len(),
            report.suppressed,
            report.files_checked
        );
    }
    if check {
        ExitCode::from(audit::exit_code(&report) as u8)
    } else {
        ExitCode::SUCCESS
    }
}
