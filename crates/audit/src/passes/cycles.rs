//! Rule `cycle-routing`: the cycle-conservation pass.
//!
//! The decomposition identity behind every figure sweep — total cycles
//! = transitions + paging + walks + stalls + compute — is only provable
//! from source if each counter-field mutation and cycle accumulation in
//! the simulator crates is *routed*: either its right-hand side derives
//! from the canonical `sgx_sim::costs` constants, or the enclosing
//! function is declared in the checked manifest
//! (`crates/audit/manifests/cycle-routing.manifest`) and therefore
//! covered by the runtime decomposition audits (`--features audit`).
//!
//! The pass flags every `LHS += RHS` in `mem-sim`/`sgx-sim` whose LHS is
//! a counter field (from `mem_sim::counters`) or a cycle accumulator
//! (`cycles`, `*_cycles`) when the enclosing function is not in the
//! manifest and the RHS does not reference `costs` or an ALL_CAPS
//! `*_CYCLES` constant. It also reports *stale* manifest entries —
//! functions that no longer exist or no longer mutate counters — so the
//! manifest cannot rot into a blanket waiver.

use super::{statement_end, Workspace};
use crate::lexer::Tok;
use crate::parser::FileIr;
use crate::rules::{RuleContext, CYCLE_ROUTING};
use crate::Finding;

/// Crates whose counter mutations the pass checks.
const SCOPE: &[&str] = &["crates/mem-sim/src/", "crates/sgx-sim/src/"];

/// One manifest entry: the function `qual` defined in a file ending
/// with `path_suffix` is audited by hand (and by the runtime identity
/// checks) and may mutate counters freely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Path suffix of the defining file.
    pub path_suffix: String,
    /// Qualified function name (`Type::name` or bare).
    pub qual: String,
}

/// The checked manifest of counter-mutating functions.
#[derive(Debug, Clone, Default)]
pub struct CycleManifest {
    /// Entries in file order.
    pub entries: Vec<ManifestEntry>,
    /// Workspace-relative path of the manifest file (for findings).
    pub source: String,
}

impl CycleManifest {
    /// Parses manifest text: one `path-suffix qualified::fn` pair per
    /// line; `#` comments and blank lines ignored.
    pub fn parse(source: &str, text: &str) -> CycleManifest {
        let entries = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .filter_map(|line| {
                let mut parts = line.split_whitespace();
                let path_suffix = parts.next()?.to_string();
                let qual = parts.next()?.to_string();
                Some(ManifestEntry { path_suffix, qual })
            })
            .collect();
        CycleManifest {
            entries,
            source: source.to_string(),
        }
    }

    fn covers(&self, file: &str, qual: &str) -> bool {
        self.entries
            .iter()
            .any(|e| file.ends_with(&e.path_suffix) && e.qual == qual)
    }
}

/// Runs the pass over the workspace.
pub fn run(ws: &Workspace, ctx: &RuleContext, manifest: &CycleManifest) -> Vec<Finding> {
    let mut out = Vec::new();
    // Manifest entries that matched a real mutating function.
    let mut used = vec![false; manifest.entries.len()];
    for file in &ws.files {
        if !SCOPE.iter().any(|p| file.path.starts_with(p)) {
            continue;
        }
        for (ni, f) in file.fns.iter().enumerate() {
            if f.in_test || f.body.is_none() {
                continue;
            }
            let mut mutates = false;
            for (s, e) in file.own_ranges(ni) {
                scan_range(file, s, e, ctx, &mut mutates, manifest, &f.qual, &mut out);
            }
            if mutates {
                for (k, entry) in manifest.entries.iter().enumerate() {
                    if file.path.ends_with(&entry.path_suffix) && entry.qual == f.qual {
                        used[k] = true;
                    }
                }
            }
        }
    }
    // Stale manifest entries are findings on the manifest file itself.
    for (k, entry) in manifest.entries.iter().enumerate() {
        if !used[k] {
            out.push(Finding {
                rule: CYCLE_ROUTING,
                file: manifest.source.clone(),
                line: 1,
                message: format!(
                    "stale manifest entry `{} {}`: no such function mutates counters any more; \
                     remove the entry",
                    entry.path_suffix, entry.qual
                ),
            });
        }
    }
    out
}

/// Scans `[s, e]` for `+=` mutations of counter/cycle accumulators.
#[allow(clippy::too_many_arguments)]
fn scan_range(
    file: &FileIr,
    s: usize,
    e: usize,
    ctx: &RuleContext,
    mutates: &mut bool,
    manifest: &CycleManifest,
    fn_qual: &str,
    out: &mut Vec<Finding>,
) {
    let toks = &file.tokens;
    for i in s..e {
        if toks[i].tok != Tok::Punct('+')
            || toks.get(i + 1).map(|t| &t.tok) != Some(&Tok::Punct('='))
        {
            continue;
        }
        // LHS: the identifier immediately before `+=`.
        let Some(Tok::Ident(lhs)) = i.checked_sub(1).and_then(|k| toks.get(k)).map(|t| &t.tok)
        else {
            continue;
        };
        if !is_cycle_lhs(lhs, ctx) {
            continue;
        }
        *mutates = true;
        if file.in_test(i) {
            continue;
        }
        if manifest.covers(&file.path, fn_qual) {
            continue;
        }
        if rhs_routed(file, i + 2, e) {
            continue;
        }
        out.push(Finding {
            rule: CYCLE_ROUTING,
            file: file.path.clone(),
            line: toks[i].line,
            message: format!(
                "`{lhs} += ..` in `{fn_qual}` is not routed through sgx_sim::costs and \
                 `{fn_qual}` is not in the cycle-routing manifest; the decomposition identity \
                 is no longer provable from source"
            ),
        });
    }
}

/// Whether `lhs` names a counter field or cycle accumulator.
fn is_cycle_lhs(lhs: &str, ctx: &RuleContext) -> bool {
    ctx.counter_fields.contains(lhs) || lhs == "cycles" || lhs.ends_with("_cycles")
}

/// Whether the right-hand side starting at token `rhs_start` references
/// the canonical costs: the `costs` module or an ALL_CAPS `*_CYCLES`
/// constant.
fn rhs_routed(file: &FileIr, rhs_start: usize, range_end: usize) -> bool {
    let end = statement_end(file, rhs_start).min(range_end);
    file.tokens[rhs_start..=end.min(file.tokens.len() - 1)]
        .iter()
        .any(|t| match &t.tok {
            Tok::Ident(id) => {
                id == "costs"
                    || (id.ends_with("_CYCLES")
                        && id.chars().all(|c| c.is_ascii_uppercase() || c == '_'))
            }
            _ => false,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleContext;

    fn ctx() -> RuleContext {
        RuleContext::from_sources(
            "pub const EWB_CYCLES: u64 = 12_000;",
            "pub struct Counters { pub walk_cycles: u64, pub epc_faults: u64 }",
        )
    }

    fn ws(src: &str) -> Workspace {
        Workspace::build(&[("crates/sgx-sim/src/machine.rs".to_string(), src.to_string())])
    }

    #[test]
    fn unrouted_counter_add_outside_manifest_is_flagged() {
        let w = ws("impl SgxMachine { fn tick(&mut self) { self.counters.epc_faults += 1; } }");
        let f = run(&w, &ctx(), &CycleManifest::default());
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("SgxMachine::tick"));
    }

    #[test]
    fn costs_routed_add_is_clean() {
        let w = ws(
            "impl SgxMachine { fn fault(&mut self) { self.fault_cycles += costs::EWB_CYCLES; } }",
        );
        assert!(run(&w, &ctx(), &CycleManifest::default()).is_empty());
    }

    #[test]
    fn const_routed_add_is_clean() {
        let w = ws("fn charge(c: &mut u64) { *c += 1; cycles += STLB_HIT_CYCLES; }");
        let f = run(&w, &ctx(), &CycleManifest::default());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn manifest_covers_the_function() {
        let w = ws("impl SgxMachine { fn tick(&mut self) { self.counters.epc_faults += 1; } }");
        let m = CycleManifest::parse(
            "m.manifest",
            "# audited\ncrates/sgx-sim/src/machine.rs SgxMachine::tick\n",
        );
        assert!(run(&w, &ctx(), &m).is_empty());
    }

    #[test]
    fn stale_manifest_entry_is_reported() {
        let w = ws("impl SgxMachine { fn quiet(&self) {} }");
        let m = CycleManifest::parse(
            "m.manifest",
            "crates/sgx-sim/src/machine.rs SgxMachine::gone\n",
        );
        let f = run(&w, &ctx(), &m);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("stale manifest entry"));
        assert_eq!(f[0].file, "m.manifest");
    }

    #[test]
    fn mutations_outside_sim_crates_are_ignored() {
        let w = Workspace::build(&[(
            "crates/core/src/sweep.rs".to_string(),
            "fn agg(total_cycles: &mut u64, c: u64) { *total_cycles += c; }".to_string(),
        )]);
        assert!(run(&w, &ctx(), &CycleManifest::default()).is_empty());
    }

    #[test]
    fn non_cycle_adds_are_ignored() {
        let w = ws("fn f(x: &mut u64) { *x += 3; let mut hits = 0; hits += 1; }");
        assert!(run(&w, &ctx(), &CycleManifest::default()).is_empty());
    }
}
