//! The semantic passes: analyses that need the parsed item tree and the
//! workspace call graph rather than a flat token stream.
//!
//! Each pass owns one rule id:
//!
//! * [`determinism`] — `hash-iter`: hash-ordered iteration in functions
//!   that can reach an artifact emission or aggregation sink.
//! * [`cycles`] — `cycle-routing`: counter/cycle mutations outside the
//!   checked manifest and not routed through `sgx_sim::costs`.
//! * [`hotpath`] — `hot-path`: allocation, panics, locks, or I/O in
//!   functions reachable from the `access`/`access_stream` hot path.
//! * [`phase`] — `phase-balance`: `Env::phase`/`phase_end` spans that a
//!   single function body opens and closes unevenly.
//!
//! The passes share one [`Workspace`]: every scanned file parsed to
//! [`FileIr`] plus the [`CallGraph`] built over them. They run on *raw*
//! sources (test-gated spans are skipped internally); the caller applies
//! allowlists and the baseline afterwards, exactly as for the token
//! rules.

pub mod cycles;
pub mod determinism;
pub mod hotpath;
pub mod phase;

use crate::callgraph::CallGraph;
use crate::lexer::Tok;
use crate::parser::FileIr;
use crate::rules::RuleContext;
use crate::Finding;

/// The parsed workspace the semantic passes analyze.
#[derive(Debug)]
pub struct Workspace {
    /// Parsed files, in the order given.
    pub files: Vec<FileIr>,
    /// The call graph over them.
    pub graph: CallGraph,
}

impl Workspace {
    /// Parses `(rel_path, source)` pairs and builds the call graph.
    /// Only `.rs` files under a `src/` tree participate (tests, benches
    /// and fixtures describe behavior, not the shipped model).
    pub fn build(sources: &[(String, String)]) -> Workspace {
        let files: Vec<FileIr> = sources
            .iter()
            .filter(|(rel, _)| semantic_scope(rel))
            .map(|(rel, src)| FileIr::parse(rel, src))
            .collect();
        let graph = CallGraph::build(&files);
        Workspace { files, graph }
    }

    /// Runs all four semantic passes, returning raw findings in pass
    /// order (the caller applies allowlists and the baseline).
    pub fn run_passes(&self, ctx: &RuleContext, manifest: &cycles::CycleManifest) -> Vec<Finding> {
        let mut out = Vec::new();
        out.extend(determinism::run(self));
        out.extend(cycles::run(self, ctx, manifest));
        out.extend(hotpath::run(self));
        out.extend(phase::run(self));
        out
    }
}

/// Whether `rel` participates in semantic analysis: library/binary
/// source trees only.
pub fn semantic_scope(rel: &str) -> bool {
    rel.ends_with(".rs")
        && (rel.starts_with("src/") || (rel.starts_with("crates/") && rel.contains("/src/")))
}

/// Scans forward from token `i` to the end of the enclosing statement:
/// the first `;` at bracket depth zero, or the point where the
/// enclosing block closes. Returns an inclusive end index.
pub(crate) fn statement_end(file: &FileIr, i: usize) -> usize {
    let toks = &file.tokens;
    let mut depth = 0i64;
    let mut k = i;
    while k < toks.len() {
        match toks[k].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                depth -= 1;
                if depth < 0 {
                    return k.saturating_sub(1).max(i);
                }
            }
            Tok::Punct(';') if depth == 0 => return k,
            _ => {}
        }
        k += 1;
    }
    toks.len() - 1
}

/// Collects the identifiers appearing in `[s, e]`.
pub(crate) fn idents_in(file: &FileIr, s: usize, e: usize) -> Vec<&str> {
    file.tokens[s..=e.min(file.tokens.len() - 1)]
        .iter()
        .filter_map(|t| match &t.tok {
            Tok::Ident(id) => Some(id.as_str()),
            _ => None,
        })
        .collect()
}
