//! Rule `phase-balance`: static pairing of `Env::phase` /
//! `Env::phase_end` spans.
//!
//! The trace plane's phase spans nest and must close innermost-first;
//! a span opened and never closed (or closed twice) surfaces at run
//! time as a `WorkloadError::Trace` — but only in *traced* runs, which
//! is exactly how an instrumented workload ships broken and passes its
//! untraced tests. This pass checks the invariant statically, per
//! function body: every `.phase("name")` call must have a matching
//! `.phase_end("name")` in the same body, and vice versa.
//!
//! Approximations: calls with non-literal names pair up by count (they
//! cannot be matched by name); `with_phase(..)` is self-balancing and
//! ignored; a function that opens a span for a *callee* to close is a
//! design the pass rejects by default — balance locally or use
//! `with_phase`.

use super::Workspace;
use crate::lexer::Tok;
use crate::parser::FileIr;
use crate::rules::PHASE_BALANCE;
use crate::Finding;
use std::collections::BTreeMap;

/// Runs the pass over the workspace.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in &ws.files {
        for (ni, f) in file.fns.iter().enumerate() {
            if f.in_test || f.body.is_none() {
                continue;
            }
            // name -> (opens, closes); "" keys the non-literal calls.
            let mut spans: BTreeMap<String, (i64, i64, u32)> = BTreeMap::new();
            for (s, e) in file.own_ranges(ni) {
                collect_spans(file, s, e, &mut spans);
            }
            for (name, (opens, closes, line)) in spans {
                if opens == closes {
                    continue;
                }
                let label = if name.is_empty() {
                    "<non-literal>".to_string()
                } else {
                    format!("\"{name}\"")
                };
                out.push(Finding {
                    rule: PHASE_BALANCE,
                    file: file.path.clone(),
                    line,
                    message: format!(
                        "phase span {label} is unbalanced in `{}`: {opens} phase() vs {closes} \
                         phase_end(); balance them in the same body or use with_phase",
                        f.qual
                    ),
                });
            }
        }
    }
    out
}

/// Collects `.phase(..)` / `.phase_end(..)` call sites in `[s, e]`.
fn collect_spans(file: &FileIr, s: usize, e: usize, spans: &mut BTreeMap<String, (i64, i64, u32)>) {
    let toks = &file.tokens;
    for i in s..=e.min(toks.len() - 1) {
        if file.in_test(i) {
            continue;
        }
        let Tok::Ident(id) = &toks[i].tok else {
            continue;
        };
        let is_open = id == "phase";
        let is_close = id == "phase_end";
        if !is_open && !is_close {
            continue;
        }
        // Method-call shape only: `.phase(` / `.phase_end(`.
        if i == 0
            || toks[i - 1].tok != Tok::Punct('.')
            || toks.get(i + 1).map(|t| &t.tok) != Some(&Tok::Punct('('))
        {
            continue;
        }
        let name = match toks.get(i + 2).map(|t| &t.tok) {
            Some(Tok::Str(s)) => s.clone(),
            _ => String::new(),
        };
        let entry = spans.entry(name).or_insert((0, 0, toks[i].line));
        if is_open {
            entry.0 += 1;
        } else {
            entry.1 += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(src: &str) -> Workspace {
        Workspace::build(&[("crates/workloads/src/w.rs".to_string(), src.to_string())])
    }

    #[test]
    fn balanced_spans_are_clean() {
        let w = ws("fn run(env: &mut Env) {\n\
                 env.phase(\"build\");\n\
                 work(env);\n\
                 env.phase_end(\"build\")?;\n\
             }");
        assert!(run(&w).is_empty());
    }

    #[test]
    fn unclosed_span_is_flagged() {
        let w = ws("fn run(env: &mut Env) { env.phase(\"build\"); work(env); }");
        let f = run(&w);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("\"build\""));
        assert!(f[0].message.contains("1 phase() vs 0 phase_end()"));
    }

    #[test]
    fn close_without_open_is_flagged() {
        let w = ws("fn run(env: &mut Env) { env.phase_end(\"query\")?; }");
        let f = run(&w);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("0 phase() vs 1 phase_end()"));
    }

    #[test]
    fn with_phase_is_self_balancing() {
        let w = ws("fn run(env: &mut Env) { env.with_phase(\"q\", |e| work(e))?; }");
        assert!(run(&w).is_empty());
    }

    #[test]
    fn distinct_names_balance_independently() {
        let w = ws("fn run(env: &mut Env) {\n\
                 env.phase(\"a\"); env.phase(\"b\");\n\
                 env.phase_end(\"b\")?; env.phase_end(\"a\")?;\n\
             }");
        assert!(run(&w).is_empty());
    }

    #[test]
    fn non_literal_names_pair_by_count() {
        let balanced = ws("fn f(env: &mut Env, n: &str) { env.phase(n); env.phase_end(n)?; }");
        assert!(run(&balanced).is_empty());
        let unbalanced = ws("fn f(env: &mut Env, n: &str) { env.phase(n); }");
        let f = run(&unbalanced);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("<non-literal>"));
    }

    #[test]
    fn helper_closing_for_caller_is_flagged_in_both() {
        let w = ws("fn opens(env: &mut Env) { env.phase(\"x\"); help(env); }\n\
             fn help(env: &mut Env) { env.phase_end(\"x\").ok(); }");
        let f = run(&w);
        assert_eq!(f.len(), 2, "split responsibility is rejected per body");
    }
}
