//! Rule `hot-path`: the hot-path purity pass.
//!
//! `Machine::access`/`access_stream` (mem-sim) and
//! `SgxMachine::access`/`access_stream` (sgx-sim) are executed per
//! simulated access — they are the throughput ceiling of every scenario,
//! pinned by `BENCH_hotpath.json`. Any function transitively reachable
//! from them must stay *pure* in the systems sense:
//!
//! * **no allocation** — outside the declared scratch buffers
//!   (allowlisted in `crates/audit/allowlists/hot-path.allow` with a
//!   reason; the ratcheting `stream_buf` is the canonical example);
//! * **no panicking constructs** — `unwrap`/`expect`/`panic!`/`assert!`
//!   (`debug_assert!` and `#[cfg(feature = "audit")]`-gated checks are
//!   compiled out of release builds and exempt);
//! * **no locks** — `Mutex`/`RwLock`/`Condvar`/`.lock()`;
//! * **no I/O** — `println!`-family, `std::fs`, `File`, stdio handles.
//!
//! Reachability is the name-matched over-approximation of
//! [`crate::callgraph`], restricted to the simulator and trace crates
//! (the trace sink sits on the instrumented path). A finding therefore
//! names the offending *function*, which may be reached through any of
//! the four roots.

use super::Workspace;
use crate::callgraph::{CallSite, NodeId};
use crate::lexer::Tok;
use crate::parser::FileIr;
use crate::rules::HOT_PATH;
use crate::Finding;
use std::collections::BTreeSet;

/// Crates that participate in hot-path reachability.
const SCOPE: &[&str] = &[
    "crates/mem-sim/src/",
    "crates/sgx-sim/src/",
    "crates/trace/src/",
];

/// The hot-path roots: `(file suffix, qualified name)`.
const ROOTS: &[(&str, &str)] = &[
    ("crates/mem-sim/src/machine.rs", "Machine::access"),
    ("crates/mem-sim/src/machine.rs", "Machine::access_stream"),
    ("crates/sgx-sim/src/machine.rs", "SgxMachine::access"),
    ("crates/sgx-sim/src/machine.rs", "SgxMachine::access_stream"),
];

/// Allocating constructor paths: `Qual::name`.
const ALLOC_PATH_QUALS: &[&str] = &[
    "Vec", "Box", "String", "VecDeque", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "Rc", "Arc",
];
const ALLOC_PATH_FNS: &[&str] = &["new", "with_capacity", "from", "default"];

/// Allocating (or growth-capable) method calls.
const ALLOC_METHODS: &[&str] = &[
    "to_string",
    "to_owned",
    "to_vec",
    "clone",
    "collect",
    "reserve",
    "reserve_exact",
    "push",
    "insert",
    "extend",
    "append",
    "split_off",
];

/// Allocating macros.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Panicking method calls and macros.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const PANIC_MACROS: &[&str] = &[
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

/// I/O macros and identifiers.
const IO_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];
const IO_IDENTS: &[&str] = &["stdout", "stderr", "stdin", "File", "OpenOptions"];

/// Lock types.
const LOCK_IDENTS: &[&str] = &["Mutex", "RwLock", "Condvar"];

/// Computes the hot-path-reachable node set (for tests and coverage
/// assertions): the transitive closure of the four roots over the
/// simulator/trace crates.
pub fn reachable(ws: &Workspace) -> BTreeSet<NodeId> {
    let mut roots = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        for (ni, f) in file.fns.iter().enumerate() {
            if ROOTS
                .iter()
                .any(|(suf, qual)| file.path.ends_with(suf) && &f.qual == qual)
            {
                roots.push((fi, ni));
            }
        }
    }
    let accept = |n: NodeId| SCOPE.iter().any(|p| ws.files[n.0].path.starts_with(p));
    ws.graph.reachable_from(&roots, &accept)
}

/// Runs the pass over the workspace.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for &(fi, ni) in &reachable(ws) {
        let file = &ws.files[fi];
        let f = &file.fns[ni];
        if f.in_test {
            continue;
        }
        for (s, e) in file.own_ranges(ni) {
            scan_range(file, s, e, &f.qual, &mut out);
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
    out.dedup();
    out
}

/// Scans `[s, e]` of a reachable function for purity violations.
fn scan_range(file: &FileIr, s: usize, e: usize, fn_qual: &str, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    let mut i = s;
    while i <= e {
        if file.in_test(i) || file.in_gated(i) {
            i += 1;
            continue;
        }
        let Tok::Ident(id) = &toks[i].tok else {
            i += 1;
            continue;
        };
        let next = toks.get(i + 1).map(|t| &t.tok);
        // Macro invocation `id!(..)`.
        if next == Some(&Tok::Punct('!'))
            && matches!(
                toks.get(i + 2).map(|t| &t.tok),
                Some(&Tok::Punct('(')) | Some(&Tok::Punct('[')) | Some(&Tok::Punct('{'))
            )
        {
            if ALLOC_MACROS.contains(&id.as_str()) {
                push(
                    out,
                    file,
                    i,
                    fn_qual,
                    &format!("allocating macro `{id}!`"),
                    "allocate",
                );
            } else if PANIC_MACROS.contains(&id.as_str()) {
                push(
                    out,
                    file,
                    i,
                    fn_qual,
                    &format!("panicking macro `{id}!`"),
                    "panic",
                );
            } else if IO_MACROS.contains(&id.as_str()) {
                push(
                    out,
                    file,
                    i,
                    fn_qual,
                    &format!("I/O macro `{id}!`"),
                    "do I/O",
                );
            }
            i += 2;
            continue;
        }
        // Method call `.id(`.
        let is_method_call =
            i >= 1 && toks[i - 1].tok == Tok::Punct('.') && next == Some(&Tok::Punct('('));
        if is_method_call {
            if PANIC_METHODS.contains(&id.as_str()) {
                push(out, file, i, fn_qual, &format!("`.{id}()`"), "panic");
            } else if id == "lock" {
                push(out, file, i, fn_qual, "`.lock()`", "lock");
            } else if ALLOC_METHODS.contains(&id.as_str()) {
                push(
                    out,
                    file,
                    i,
                    fn_qual,
                    &format!("allocating call `.{id}(..)`"),
                    "allocate",
                );
            }
            i += 1;
            continue;
        }
        // Path call `Qual::id(`.
        if next == Some(&Tok::Punct('(')) && i >= 3 {
            if let (Tok::Punct(':'), Tok::Punct(':'), Tok::Ident(q)) =
                (&toks[i - 1].tok, &toks[i - 2].tok, &toks[i - 3].tok)
            {
                if ALLOC_PATH_QUALS.contains(&q.as_str()) && ALLOC_PATH_FNS.contains(&id.as_str()) {
                    push(
                        out,
                        file,
                        i,
                        fn_qual,
                        &format!("allocating call `{q}::{id}(..)`"),
                        "allocate",
                    );
                }
            }
        }
        // Bare banned identifiers (lock types, stdio, fs paths).
        if LOCK_IDENTS.contains(&id.as_str()) {
            push(out, file, i, fn_qual, &format!("lock type `{id}`"), "lock");
        } else if IO_IDENTS.contains(&id.as_str()) {
            push(
                out,
                file,
                i,
                fn_qual,
                &format!("I/O handle `{id}`"),
                "do I/O",
            );
        } else if id == "fs"
            && toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct(':'))
            && toks.get(i + 2).map(|t| &t.tok) == Some(&Tok::Punct(':'))
        {
            push(out, file, i, fn_qual, "`fs::` filesystem access", "do I/O");
        }
        i += 1;
    }
}

fn push(out: &mut Vec<Finding>, file: &FileIr, i: usize, fn_qual: &str, what: &str, verb: &str) {
    out.push(Finding {
        rule: HOT_PATH,
        file: file.path.clone(),
        line: file.tokens[i].line,
        message: format!(
            "{what} in `{fn_qual}`, reachable from the access hot path; hot-path code must \
             not {verb} (declare intended scratch in hot-path.allow)"
        ),
    });
}

/// Names of the call sites a node makes (test hook used to assert
/// call-graph coverage of the real workspace).
pub fn call_names(ws: &Workspace, node: NodeId) -> Vec<CallSite> {
    ws.graph.calls.get(&node).cloned().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(srcs: &[(&str, &str)]) -> Workspace {
        let sources: Vec<(String, String)> = srcs
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        Workspace::build(&sources)
    }

    const MACHINE: &str = "crates/mem-sim/src/machine.rs";

    #[test]
    fn planted_allocation_in_reachable_helper_is_flagged() {
        let w = ws(&[
            (
                MACHINE,
                "impl Machine { pub fn access_stream(&mut self) { self.helper(); } }",
            ),
            (
                "crates/mem-sim/src/paging.rs",
                "impl PageTable { fn helper(&mut self) { let v = Vec::new(); } }",
            ),
        ]);
        let f = run(&w);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("Vec::new"));
        assert!(f[0].message.contains("PageTable::helper"));
    }

    #[test]
    fn removing_the_allocation_changes_the_finding_set() {
        let dirty = ws(&[
            (
                MACHINE,
                "impl Machine { pub fn access_stream(&mut self) { self.helper(); } }",
            ),
            (
                "crates/mem-sim/src/paging.rs",
                "impl PageTable { fn helper(&mut self) { let s = x.to_string(); } }",
            ),
        ]);
        let clean = ws(&[
            (
                MACHINE,
                "impl Machine { pub fn access_stream(&mut self) { self.helper(); } }",
            ),
            (
                "crates/mem-sim/src/paging.rs",
                "impl PageTable { fn helper(&mut self) { let s = 1; } }",
            ),
        ]);
        assert_eq!(run(&dirty).len(), 1);
        assert!(run(&clean).is_empty());
    }

    #[test]
    fn unreachable_allocation_is_not_flagged() {
        let w = ws(&[(
            MACHINE,
            "impl Machine { pub fn access(&mut self) { self.probe(); } fn probe(&self) {} \
                 pub fn report(&self) -> String { format!(\"x\") } }",
        )]);
        assert!(
            run(&w).is_empty(),
            "report is not reachable from access; format! there is fine"
        );
    }

    #[test]
    fn panic_and_lock_and_io_are_flagged() {
        let w = ws(&[(
            MACHINE,
            "impl Machine { pub fn access(&mut self) {\n\
                 let x = opt.unwrap();\n\
                 let g = m.lock();\n\
                 println!(\"dbg\");\n\
             } }",
        )]);
        let msgs: Vec<String> = run(&w).into_iter().map(|f| f.message).collect();
        assert_eq!(msgs.len(), 3, "{msgs:?}");
        assert!(msgs[0].contains("unwrap"));
        assert!(msgs[1].contains("lock"));
        assert!(msgs[2].contains("println"));
    }

    #[test]
    fn audit_gated_assert_is_exempt() {
        let w = ws(&[(
            MACHINE,
            "impl Machine { pub fn access_stream(&mut self) {\n\
                 #[cfg(feature = \"audit\")]\n\
                 assert_eq!(a, b);\n\
                 debug_assert!(ok);\n\
             } }",
        )]);
        assert!(
            run(&w).is_empty(),
            "audit/debug-gated checks are compiled out"
        );
    }

    #[test]
    fn cross_crate_reachability_via_sgx_root() {
        let w = ws(&[
            (
                "crates/sgx-sim/src/machine.rs",
                "impl SgxMachine { pub fn access_stream(&mut self) { self.epc.touch(k); } }",
            ),
            (
                "crates/sgx-sim/src/epc.rs",
                "impl Epc { pub fn touch(&mut self, k: u64) -> bool { self.evicted.insert(k); true } }",
            ),
        ]);
        let f = run(&w);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("Epc::touch"));
        assert!(f[0].message.contains("insert"));
    }
}
