//! Rule `hash-iter`: the determinism pass.
//!
//! The suite's headline guarantee is byte-identical artifacts across
//! runs and `--jobs` levels. Iterating a hash-ordered container
//! (`HashMap`/`HashSet`, or the FxHash variants) produces a
//! randomized-per-process (or at best insertion-dependent) order, so any
//! such iteration in a function *from which an artifact sink is
//! reachable* — an [`Emitter`] write, report aggregation, checkpoint
//! serialization, or `gauge-stats` — can leak nondeterministic order
//! into committed bytes.
//!
//! A flagged site is exempt when the iterated values demonstrably do
//! not depend on order by the end of the same (or immediately
//! following) statement: routed through an explicit sort
//! (`sort`/`sort_by`/...), re-keyed into a `BTreeMap`/`BTreeSet`, or
//! reduced by an order-insensitive fold (`sum`, `count`, `min`, `max`,
//! `all`, `any`, `len`, `fold` is *not* exempt — it is order-sensitive
//! in general).
//!
//! [`Emitter`]: ../../core/emit/trait.Emitter.html

use super::{idents_in, statement_end, Workspace};
use crate::callgraph::NodeId;
use crate::lexer::Tok;
use crate::parser::FileIr;
use crate::rules::HASH_ITER;
use crate::Finding;
use std::collections::BTreeSet;

/// Container type names whose iteration order is hash-dependent.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Iterator-producing methods on those containers.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Identifiers that make an iteration order-safe when they appear by
/// the end of the same or the immediately following statement.
const ORDER_SAFE: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "sum",
    "count",
    "min",
    "max",
    "min_by_key",
    "max_by_key",
    "all",
    "any",
    "len",
    "is_empty",
    "contains",
    "contains_key",
    "product",
];

/// File paths whose every function counts as an artifact sink.
const SINK_FILES: &[&str] = &[
    "crates/core/src/emit.rs",
    "crates/core/src/report.rs",
    "crates/core/src/checkpoint.rs",
];

/// Function names that count as sinks wherever they are defined.
const SINK_FNS: &[&str] = &[
    "emit",
    "emit_with",
    "emit_sealed_with",
    "render",
    "write_atomic_with",
];

/// Runs the pass over the workspace.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    // 1. Sinks: emission/aggregation functions.
    let mut sinks: BTreeSet<NodeId> = BTreeSet::new();
    for (fi, file) in ws.files.iter().enumerate() {
        let file_is_sink = SINK_FILES.contains(&file.path.as_str())
            || file.path.starts_with("crates/gauge-stats/src/");
        for (ni, f) in file.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            if file_is_sink || SINK_FNS.contains(&f.name.as_str()) {
                sinks.insert((fi, ni));
            }
        }
    }
    // 2. Functions from which a sink is reachable.
    let emitting = ws.graph.reaching(&sinks, &|_| true);

    // 3. Flag hash-ordered iteration inside those functions. Bindings
    // are scoped: a function sees hash-typed names from its own
    // signature and body plus item-level declarations (struct fields,
    // statics) outside every function — a `rows: &HashMap` parameter in
    // one function must not taint another function's unrelated `rows`.
    let mut out = Vec::new();
    for &(fi, ni) in &emitting {
        let file = &ws.files[fi];
        let fndef = &file.fns[ni];
        if fndef.in_test {
            continue;
        }
        let mut hash_names = item_level_bindings(file);
        let scope_end = fndef.body.map_or(fndef.sig, |(_, close)| close);
        hash_names.extend(hash_bindings_in(file, fndef.sig, scope_end));
        if hash_names.is_empty() {
            continue;
        }
        for (s, e) in file.own_ranges(ni) {
            scan_range(file, s, e, &hash_names, &fndef.qual, &mut out);
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out.dedup();
    out
}

/// Hash-typed bindings declared outside every function: struct fields
/// and statics, visible to all functions in the file.
fn item_level_bindings(file: &FileIr) -> BTreeSet<String> {
    let mut spans: Vec<(usize, usize)> = file
        .fns
        .iter()
        .map(|f| (f.sig, f.body.map_or(f.sig, |(_, close)| close)))
        .collect();
    spans.sort_unstable();
    let mut out = BTreeSet::new();
    let mut cursor = 0usize;
    for (s, e) in spans {
        if s > cursor {
            out.extend(hash_bindings_in(file, cursor, s.saturating_sub(1)));
        }
        cursor = cursor.max(e + 1);
    }
    if cursor < file.tokens.len() {
        out.extend(hash_bindings_in(file, cursor, file.tokens.len() - 1));
    }
    out
}

/// Names bound to hash-ordered containers within `[s, e]`: typed
/// bindings/fields (`name: HashMap<..>`) and constructor assignments
/// (`name = HashMap::new()`).
pub(crate) fn hash_bindings_in(file: &FileIr, s: usize, e: usize) -> BTreeSet<String> {
    let toks = &file.tokens;
    let mut out = BTreeSet::new();
    if toks.is_empty() {
        return out;
    }
    for i in s..=e.min(toks.len() - 1) {
        let Tok::Ident(name) = &toks[i].tok else {
            continue;
        };
        let Some(next) = toks.get(i + 1) else {
            continue;
        };
        let is_type_pos = next.tok == Tok::Punct(':')
            && toks.get(i + 2).map(|t| &t.tok) != Some(&Tok::Punct(':'));
        let is_assign = next.tok == Tok::Punct('=')
            && toks.get(i + 2).map(|t| &t.tok) != Some(&Tok::Punct('='));
        if !is_type_pos && !is_assign {
            continue;
        }
        // A hash-type name within the next few tokens marks the binding.
        let window_end = (i + 10).min(toks.len());
        let mentions_hash = toks[i + 2..window_end].iter().any(|t| match &t.tok {
            Tok::Ident(id) => HASH_TYPES.contains(&id.as_str()),
            _ => false,
        });
        if mentions_hash {
            out.insert(name.clone());
        }
    }
    out
}

/// Scans `[s, e]` of `file` for iteration over `hash_names`.
fn scan_range(
    file: &FileIr,
    s: usize,
    e: usize,
    hash_names: &BTreeSet<String>,
    fn_qual: &str,
    out: &mut Vec<Finding>,
) {
    let toks = &file.tokens;
    let mut i = s;
    while i <= e {
        if file.in_test(i) {
            i += 1;
            continue;
        }
        // `recv.iter()` / `recv.keys()` / ...
        if let Tok::Ident(m) = &toks[i].tok {
            let is_iter_call = ITER_METHODS.contains(&m.as_str())
                && i >= 2
                && toks[i - 1].tok == Tok::Punct('.')
                && toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('('));
            if is_iter_call {
                if let Tok::Ident(recv) = &toks[i - 2].tok {
                    if hash_names.contains(recv) && !order_safe(file, i, e) {
                        out.push(finding(file, i, fn_qual, recv, m));
                    }
                }
            }
            // `for pat in [&][mut] [self.]recv {`
            if m == "in" {
                if let Some((recv, at)) = for_loop_receiver(file, i + 1) {
                    if hash_names.contains(&recv) && !order_safe(file, at, e) {
                        out.push(finding(file, at, fn_qual, &recv, "for-in"));
                    }
                }
            }
        }
        i += 1;
    }
}

/// If the tokens after a `for .. in` introduce a bare (possibly
/// `self.`-prefixed, `&`/`mut`-decorated) identifier whose next token
/// opens the loop body, returns `(name, index)`.
fn for_loop_receiver(file: &FileIr, mut i: usize) -> Option<(String, usize)> {
    let toks = &file.tokens;
    while matches!(
        toks.get(i).map(|t| &t.tok),
        Some(Tok::Punct('&')) | Some(Tok::Ident(_))
    ) {
        match &toks.get(i)?.tok {
            Tok::Punct('&') => i += 1,
            Tok::Ident(id) if id == "mut" => i += 1,
            Tok::Ident(id)
                if id == "self" && toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('.')) =>
            {
                i += 2;
            }
            Tok::Ident(id) if id == "self" => return None,
            Tok::Ident(name) => {
                return (toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('{')))
                    .then(|| (name.clone(), i));
            }
            _ => return None,
        }
    }
    None
}

/// Whether the iteration at token `i` is exempt: an order-safe
/// identifier appears by the end of the same or the immediately
/// following statement.
fn order_safe(file: &FileIr, i: usize, range_end: usize) -> bool {
    let first_end = statement_end(file, i);
    // Extend through the next statement (collect-then-sort idiom).
    let second_end = if first_end < range_end {
        statement_end(file, first_end + 1)
    } else {
        first_end
    };
    let end = second_end.min(range_end).min(i + 120);
    idents_in(file, i, end)
        .iter()
        .any(|id| ORDER_SAFE.contains(id))
}

fn finding(file: &FileIr, i: usize, fn_qual: &str, recv: &str, method: &str) -> Finding {
    Finding {
        rule: HASH_ITER,
        file: file.path.clone(),
        line: file.tokens[i].line,
        message: format!(
            "hash-ordered iteration over `{recv}` ({method}) in `{fn_qual}`, which can reach \
             an artifact sink; route through a sort or BTreeMap to keep artifacts byte-identical"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(srcs: &[(&str, &str)]) -> Workspace {
        let sources: Vec<(String, String)> = srcs
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        Workspace::build(&sources)
    }

    const EMIT: (&str, &str) = (
        "crates/core/src/emit.rs",
        "pub trait Emitter { fn emit(&self) {} }",
    );

    #[test]
    fn hash_iter_reaching_emit_is_flagged() {
        let w = ws(&[
            EMIT,
            (
                "crates/core/src/report.rs",
                "use std::collections::HashMap;\n\
                 fn aggregate(m: &HashMap<u64, u64>) -> Vec<u64> {\n\
                     let mut v = Vec::new();\n\
                     for (k, val) in m { v.push(*val); }\n\
                     v\n\
                 }",
            ),
        ]);
        let f = run(&w);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`m`"));
    }

    #[test]
    fn sorted_iteration_is_clean() {
        let w = ws(&[
            EMIT,
            (
                "crates/core/src/report.rs",
                "use std::collections::HashMap;\n\
                 fn aggregate(m: &HashMap<u64, u64>) -> Vec<u64> {\n\
                     let mut v: Vec<u64> = m.values().copied().collect();\n\
                     v.sort_unstable();\n\
                     v\n\
                 }",
            ),
        ]);
        assert!(run(&w).is_empty());
    }

    #[test]
    fn order_insensitive_reduction_is_clean() {
        let w = ws(&[
            EMIT,
            (
                "crates/core/src/report.rs",
                "use std::collections::HashMap;\n\
                 fn total(m: &HashMap<u64, u64>) -> u64 { m.values().sum() }",
            ),
        ]);
        assert!(run(&w).is_empty());
    }

    #[test]
    fn btree_iteration_is_never_flagged() {
        let w = ws(&[
            EMIT,
            (
                "crates/core/src/report.rs",
                "use std::collections::BTreeMap;\n\
                 fn rows(m: &BTreeMap<u64, u64>) -> Vec<u64> {\n\
                     let mut v = Vec::new();\n\
                     for (_, val) in m { v.push(*val); }\n\
                     v\n\
                 }",
            ),
        ]);
        assert!(run(&w).is_empty());
    }

    #[test]
    fn hash_iter_far_from_any_sink_is_clean() {
        let w = ws(&[
            EMIT,
            (
                "crates/sgx-sim/src/epcm.rs",
                "use std::collections::HashMap;\n\
                 fn invariants(m: &HashMap<u64, u64>) {\n\
                     for (k, v) in m { internal_check(*k, *v); }\n\
                 }\n\
                 fn internal_check(_k: u64, _v: u64) {}",
            ),
        ]);
        assert!(run(&w).is_empty(), "no sink reachable from invariants");
    }

    #[test]
    fn transitive_reach_through_helper_is_flagged() {
        let w = ws(&[
            EMIT,
            (
                "crates/core/src/sweep.rs",
                "use std::collections::HashMap;\n\
                 fn summarize(m: &HashMap<u64, u64>) {\n\
                     for (k, v) in m { record(*k, *v); }\n\
                 }\n\
                 fn record(_k: u64, _v: u64) { table.emit(); }",
            ),
        ]);
        let f = run(&w);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("summarize"));
    }
}
