//! A minimal, dependency-free Rust lexer.
//!
//! The linter rules only need a token stream with comments stripped,
//! string contents preserved (so allowlists can match `expect` messages),
//! integer literals normalized to values, and line numbers for reporting.
//! A full parse (via `syn` or rustc) would be overkill and would pull
//! network dependencies into an offline build; everything `gauge-audit`
//! checks is expressible over this stream plus brace matching.
//!
//! Handled: line/doc comments, nested block comments, string / raw
//! string / byte-string literals, char literals vs. lifetimes, integer
//! literals in all radixes with `_` separators and type suffixes, float
//! literals (skipped), identifiers, and single-character punctuation.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal, normalized (radix decoded, `_` and suffix
    /// stripped); saturates at `u64::MAX`.
    Int(u64),
    /// String literal contents (escapes left verbatim).
    Str(String),
    /// Any other single character of punctuation.
    Punct(char),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

/// Lexes `src` into a token stream, discarding comments and whitespace.
pub fn lex(src: &str) -> Vec<Token> {
    let cs: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < cs.len() {
        let c = cs[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments (line, and nested block).
        if c == '/' && i + 1 < cs.len() && cs[i + 1] == '/' {
            while i < cs.len() && cs[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && i + 1 < cs.len() && cs[i + 1] == '*' {
            let mut depth = 1u32;
            i += 2;
            while i < cs.len() && depth > 0 {
                if cs[i] == '/' && i + 1 < cs.len() && cs[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if cs[i] == '*' && i + 1 < cs.len() && cs[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if cs[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            continue;
        }
        if c == '"' {
            let start_line = line;
            let (s, ni, nl) = scan_string(&cs, i, line);
            out.push(Token {
                tok: Tok::Str(s),
                line: start_line,
            });
            i = ni;
            line = nl;
            continue;
        }
        if c == '\'' {
            i = skip_char_or_lifetime(&cs, i);
            continue;
        }
        if c.is_ascii_digit() {
            let (tok, ni) = scan_number(&cs, i);
            if let Some(t) = tok {
                out.push(Token { tok: t, line });
            }
            i = ni;
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < cs.len() && (cs[i].is_alphanumeric() || cs[i] == '_') {
                i += 1;
            }
            let ident: String = cs[start..i].iter().collect();
            // String-literal prefixes: r".."#, b"..", br"..", b'..'.
            if matches!(ident.as_str(), "r" | "b" | "br" | "rb") && i < cs.len() {
                if cs[i] == '"' && !ident.contains('r') {
                    let start_line = line;
                    let (s, ni, nl) = scan_string(&cs, i, line);
                    out.push(Token {
                        tok: Tok::Str(s),
                        line: start_line,
                    });
                    i = ni;
                    line = nl;
                    continue;
                }
                if (cs[i] == '"' || cs[i] == '#') && ident.contains('r') {
                    let start_line = line;
                    if let Some((s, ni, nl)) = scan_raw_string(&cs, i, line) {
                        out.push(Token {
                            tok: Tok::Str(s),
                            line: start_line,
                        });
                        i = ni;
                        line = nl;
                        continue;
                    }
                }
                if cs[i] == '\'' && ident == "b" {
                    i = skip_char_or_lifetime(&cs, i);
                    continue;
                }
            }
            out.push(Token {
                tok: Tok::Ident(ident),
                line,
            });
            continue;
        }
        out.push(Token {
            tok: Tok::Punct(c),
            line,
        });
        i += 1;
    }
    out
}

/// Scans a `"..."` literal starting at the opening quote; returns the
/// contents, the index past the closing quote, and the updated line.
fn scan_string(cs: &[char], mut i: usize, mut line: u32) -> (String, usize, u32) {
    let mut s = String::new();
    i += 1; // opening quote
    while i < cs.len() {
        match cs[i] {
            '\\' if i + 1 < cs.len() => {
                s.push(cs[i]);
                s.push(cs[i + 1]);
                if cs[i + 1] == '\n' {
                    line += 1;
                }
                i += 2;
            }
            '"' => {
                i += 1;
                break;
            }
            ch => {
                if ch == '\n' {
                    line += 1;
                }
                s.push(ch);
                i += 1;
            }
        }
    }
    (s, i, line)
}

/// Scans a raw string `#*"..."#*` starting at the first `#` or `"`.
fn scan_raw_string(cs: &[char], mut i: usize, mut line: u32) -> Option<(String, usize, u32)> {
    let mut hashes = 0usize;
    while i < cs.len() && cs[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i >= cs.len() || cs[i] != '"' {
        return None;
    }
    i += 1;
    let mut s = String::new();
    while i < cs.len() {
        if cs[i] == '"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < cs.len() && cs[j] == '#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return Some((s, j, line));
            }
        }
        if cs[i] == '\n' {
            line += 1;
        }
        s.push(cs[i]);
        i += 1;
    }
    Some((s, i, line))
}

/// Skips a char literal (`'a'`, `'\n'`, `b'x'`) or a lifetime
/// (`'static`, `'_`) starting at the quote; returns the index after it.
fn skip_char_or_lifetime(cs: &[char], i: usize) -> usize {
    if i + 1 < cs.len() && cs[i + 1] == '\\' {
        // Escaped char literal: skip to the closing quote.
        let mut j = i + 2;
        while j < cs.len() && cs[j] != '\'' {
            j += 1;
        }
        return (j + 1).min(cs.len());
    }
    if i + 2 < cs.len() && cs[i + 2] == '\'' && cs[i + 1] != '\'' {
        return i + 3; // plain 'a'
    }
    // Lifetime: consume the identifier after the quote.
    let mut j = i + 1;
    while j < cs.len() && (cs[j].is_alphanumeric() || cs[j] == '_') {
        j += 1;
    }
    j
}

/// Scans a numeric literal starting at a digit. Returns `None` as the
/// token for floats (the rules only care about integers) and the index
/// past the literal (including any fraction, exponent, or suffix).
fn scan_number(cs: &[char], mut i: usize) -> (Option<Tok>, usize) {
    let radix: u64 = if cs[i] == '0' && i + 1 < cs.len() {
        match cs[i + 1] {
            'x' | 'X' => {
                i += 2;
                16
            }
            'o' | 'O' => {
                i += 2;
                8
            }
            'b' | 'B' => {
                i += 2;
                2
            }
            _ => 10,
        }
    } else {
        10
    };
    let mut val: u64 = 0;
    let mut in_suffix = false;
    while i < cs.len() && (cs[i].is_ascii_alphanumeric() || cs[i] == '_') {
        let ch = cs[i];
        if ch == '_' {
            i += 1;
            continue;
        }
        if !in_suffix {
            match ch.to_digit(radix as u32) {
                Some(d) => val = val.saturating_mul(radix).saturating_add(d as u64),
                None => in_suffix = true,
            }
        }
        i += 1;
    }
    // Float: a fraction (`12.5`) or exponent suffix already consumed the
    // `e` digits above; detect the fraction here and skip it.
    if i < cs.len() && cs[i] == '.' && i + 1 < cs.len() && cs[i + 1].is_ascii_digit() {
        i += 1;
        while i < cs.len() && (cs[i].is_ascii_alphanumeric() || cs[i] == '_') {
            i += 1;
        }
        return (None, i);
    }
    (Some(Tok::Int(val)), i)
}

/// Token-index ranges `(start, end)` (inclusive) of items gated behind
/// `#[cfg(test)]` or `#[test]`, so rules can skip test-only code.
pub fn test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let Some(attr_end) = test_attr_end(tokens, i) else {
            i += 1;
            continue;
        };
        // Skip any further attributes on the same item.
        let mut j = attr_end + 1;
        while j + 1 < tokens.len()
            && tokens[j].tok == Tok::Punct('#')
            && tokens[j + 1].tok == Tok::Punct('[')
        {
            j = match match_close(tokens, j + 1, '[', ']') {
                Some(e) => e + 1,
                None => break,
            };
        }
        // The item extends to its matching `}` (mod/fn body) or to a
        // terminating `;` (e.g. `#[cfg(test)] use ...;`).
        let mut end = tokens.len() - 1;
        let mut k = j;
        while k < tokens.len() {
            match tokens[k].tok {
                Tok::Punct(';') => {
                    end = k;
                    break;
                }
                Tok::Punct('{') => {
                    end = match_close(tokens, k, '{', '}').unwrap_or(tokens.len() - 1);
                    break;
                }
                _ => k += 1,
            }
        }
        spans.push((i, end));
        i = end + 1;
    }
    spans
}

/// If tokens at `i` start a `#[test]` / `#[cfg(test)]`-style attribute,
/// returns the index of its closing `]`.
fn test_attr_end(tokens: &[Token], i: usize) -> Option<usize> {
    if tokens[i].tok != Tok::Punct('#') || tokens.get(i + 1)?.tok != Tok::Punct('[') {
        return None;
    }
    let close = match_close(tokens, i + 1, '[', ']')?;
    let idents: Vec<&str> = tokens[i + 2..close]
        .iter()
        .filter_map(|t| match &t.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    let first = *idents.first()?;
    // `cfg(not(test))` gates *non*-test code; never exclude it.
    let is_test =
        first == "test" || (first == "cfg" && idents.contains(&"test") && !idents.contains(&"not"));
    is_test.then_some(close)
}

/// Index of the punctuation closing the `open` at `start` (handles
/// nesting); `None` when unbalanced.
fn match_close(tokens: &[Token], start: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i64;
    for (k, t) in tokens.iter().enumerate().skip(start) {
        if t.tok == Tok::Punct(open) {
            depth += 1;
        } else if t.tok == Tok::Punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strips_comments_and_strings_keep_contents() {
        let toks = lex("let x = \"12_000\"; // 12_000\n/* 17_000 */ y");
        assert!(toks.iter().all(|t| t.tok != Tok::Int(12_000)));
        assert!(toks.iter().any(|t| t.tok == Tok::Str("12_000".to_string())));
        assert_eq!(toks.last().unwrap().tok, Tok::Ident("y".into()));
        assert_eq!(toks.last().unwrap().line, 2);
    }

    #[test]
    fn normalizes_integer_literals() {
        let toks = lex("12_000u64 0x10 0b101 17_000");
        let ints: Vec<u64> = toks
            .iter()
            .filter_map(|t| match t.tok {
                Tok::Int(v) => Some(v),
                _ => None,
            })
            .collect();
        assert_eq!(ints, vec![12_000, 16, 5, 17_000]);
    }

    #[test]
    fn floats_and_ranges_do_not_confuse_ints() {
        let toks = lex("let r = 0..1.16 + x.0");
        let ints: Vec<u64> = toks
            .iter()
            .filter_map(|t| match t.tok {
                Tok::Int(v) => Some(v),
                _ => None,
            })
            .collect();
        // `0` from the range start and `0` from the tuple index; the
        // float 1.16 is dropped.
        assert_eq!(ints, vec![0, 0]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // Lifetimes are skipped entirely; none becomes a char literal
        // that would swallow the following tokens.
        assert_eq!(
            idents("fn f<'a>(x: &'a str) -> &'a str { x }"),
            vec!["fn", "f", "x", "str", "str", "x"]
        );
    }

    #[test]
    fn raw_strings_are_opaque() {
        let toks = lex("r#\"evil 12_000 \"quote\" \"# tail");
        assert!(toks.iter().all(|t| t.tok != Tok::Int(12_000)));
        assert_eq!(toks.last().unwrap().tok, Tok::Ident("tail".into()));
    }

    #[test]
    fn cfg_test_mod_span_covers_body() {
        let src = "fn a() { b(); }\n#[cfg(test)]\nmod tests { fn c() { d(); } }\nfn e() {}";
        let toks = lex(src);
        let spans = test_spans(&toks);
        assert_eq!(spans.len(), 1);
        let (s, e) = spans[0];
        let in_span = |name: &str| {
            toks.iter()
                .enumerate()
                .any(|(k, t)| t.tok == Tok::Ident(name.into()) && k >= s && k <= e)
        };
        assert!(in_span("d"));
        assert!(!in_span("b"));
        assert!(!in_span("e"));
    }

    #[test]
    fn test_attr_on_fn_is_excluded() {
        let src = "#[test]\nfn t() { boom(); }\nfn keep() {}";
        let toks = lex(src);
        let spans = test_spans(&toks);
        assert_eq!(spans.len(), 1);
        let keep_idx = toks
            .iter()
            .position(|t| t.tok == Tok::Ident("keep".into()))
            .unwrap();
        assert!(keep_idx > spans[0].1);
    }
}
